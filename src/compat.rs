//! Deprecated flat-batch shims, kept so every pre-session caller compiles
//! and behaves identically.
//!
//! [`TimingEngine::analyze_many`] and [`BatchReport`] predate
//! [`crate::AnalysisSession`]; both now forward to a session (submit all,
//! wait all, preserve input ordering), so the per-stage results are produced
//! by exactly the same code path as session submissions. This module is the
//! allow-listed exception to the workspace's `-D deprecated` policy: the
//! shims themselves may mention each other, while any *new* use elsewhere in
//! the workspace still fails the build.
#![allow(deprecated)]

use std::time::Instant;

use crate::backend::StageReport;
use crate::engine::TimingEngine;
use crate::error::EngineError;
use crate::stage::Stage;

impl TimingEngine {
    /// Analyzes a batch of independent stages, fanning them across worker
    /// threads ([`crate::EngineConfig::threads`]; one per CPU by default).
    /// Outcomes come back in input order; a failing or even panicking stage
    /// yields an `Err` in its slot without aborting the rest of the batch.
    #[deprecated(
        since = "0.2.0",
        note = "use TimingEngine::session(): submit stages (chained through \
                InputSource where needed) and stream or wait_all the results"
    )]
    pub fn analyze_many(&self, stages: &[Stage]) -> BatchReport {
        let started = Instant::now();
        let mut session = self.session();
        let mut handles: Vec<Option<usize>> = Vec::with_capacity(stages.len());
        let mut outcomes: Vec<Option<Result<StageReport, EngineError>>> =
            stages.iter().map(|_| None).collect();
        for (i, stage) in stages.iter().enumerate() {
            match session.submit(stage.clone()) {
                Ok(handle) => handles.push(Some(handle.index())),
                Err(error) => {
                    handles.push(None);
                    outcomes[i] = Some(Err(error));
                }
            }
        }
        let mut by_index: Vec<Option<Result<StageReport, EngineError>>> =
            stages.iter().map(|_| None).collect();
        for (handle, result) in session.wait_all() {
            if handle.index() < by_index.len() {
                by_index[handle.index()] = Some(result);
            }
        }
        for (i, handle) in handles.into_iter().enumerate() {
            if let Some(index) = handle {
                outcomes[i] = by_index[index].take();
            }
        }
        BatchReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| {
                    o.unwrap_or_else(|| {
                        Err(EngineError::InvalidDependency {
                            what: "the session produced no result for this stage".to_string(),
                        })
                    })
                })
                .collect(),
            elapsed_seconds: started.elapsed().as_secs_f64(),
        }
    }
}

/// The outcome of [`TimingEngine::analyze_many`]: one result per stage, in
/// input order.
#[deprecated(
    since = "0.2.0",
    note = "use AnalysisSession::wait_all(), which returns \
            (StageHandle, Result<StageReport, EngineError>) in submission order"
)]
#[derive(Debug)]
pub struct BatchReport {
    /// Per-stage outcomes, in the order the stages were submitted.
    pub outcomes: Vec<Result<StageReport, EngineError>>,
    /// Wall-clock time of the whole batch (seconds).
    pub elapsed_seconds: f64,
}

impl BatchReport {
    /// Number of stages in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterates the successful reports with their stage indices.
    pub fn succeeded(&self) -> impl Iterator<Item = (usize, &StageReport)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().ok().map(|report| (i, report)))
    }

    /// Iterates the failed stages with their indices and errors.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &EngineError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Number of successful stages.
    pub fn ok_count(&self) -> usize {
        self.succeeded().count()
    }

    /// Number of failed stages.
    pub fn err_count(&self) -> usize {
        self.failures().count()
    }

    /// Whether every stage succeeded.
    pub fn all_ok(&self) -> bool {
        self.err_count() == 0
    }

    /// One-line summary of the batch.
    pub fn summary(&self) -> String {
        format!(
            "{} stages: {} ok, {} failed in {:.1} ms",
            self.len(),
            self.ok_count(),
            self.err_count(),
            self.elapsed_seconds * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::config::EngineConfig;
    use crate::engine::TimingEngine;
    use crate::error::EngineError;
    use crate::load::{LumpedCapLoad, MomentsLoad};
    use crate::stage::Stage;
    use rlc_numeric::units::{ff, ps};

    fn fast_engine() -> TimingEngine {
        TimingEngine::new(EngineConfig::fast_for_tests())
    }

    #[test]
    fn degenerate_stage_fails_cleanly_without_aborting() {
        let engine = fast_engine();
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let good = Stage::builder_shared(
            cell.clone(),
            Arc::new(LumpedCapLoad::new(ff(300.0)).unwrap()),
        )
        .label("good")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let degenerate = Stage::builder_shared(
            cell,
            Arc::new(MomentsLoad::new(vec![1e-12, 0.0, 0.0, 0.0, 0.0]).unwrap()),
        )
        .label("degenerate")
        .input_slew(ps(100.0))
        .build()
        .unwrap();

        let batch = engine.analyze_many(&[good, degenerate]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.ok_count(), 1);
        assert_eq!(batch.err_count(), 1);
        assert!(!batch.all_ok());
        let (failed_index, error) = batch.failures().next().unwrap();
        assert_eq!(failed_index, 1);
        assert!(matches!(error, EngineError::Load { .. }));
        assert!(batch.summary().contains("1 failed"));
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let stages: Vec<Stage> = (0..12)
            .map(|i| {
                Stage::builder_shared(
                    cell.clone(),
                    Arc::new(LumpedCapLoad::new(ff(100.0 + 50.0 * i as f64)).unwrap()),
                )
                .label(format!("s{i}"))
                .input_slew(ps(100.0))
                .build()
                .unwrap()
            })
            .collect();
        let engine = TimingEngine::new(
            EngineConfig::builder()
                .extract_rs_per_case(false)
                .threads(4)
                .build(),
        );
        let batch = engine.analyze_many(&stages);
        assert!(batch.all_ok());
        for (i, report) in batch.succeeded() {
            assert_eq!(report.label, format!("s{i}"));
        }
        // Bigger lumped loads mean slower transitions, in order.
        let slews: Vec<f64> = batch.succeeded().map(|(_, r)| r.slew).collect();
        assert!(slews.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn shim_results_match_direct_analysis_exactly() {
        // The shim must forward to the same per-stage code path: results are
        // bit-identical to calling analyze() on each stage.
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let engine = fast_engine();
        let stages: Vec<Stage> = (0..4)
            .map(|i| {
                Stage::builder_shared(
                    cell.clone(),
                    Arc::new(LumpedCapLoad::new(ff(150.0 + 100.0 * i as f64)).unwrap()),
                )
                .label(format!("b{i}"))
                .input_slew(ps(80.0))
                .build()
                .unwrap()
            })
            .collect();
        let batch = engine.analyze_many(&stages);
        assert!(batch.all_ok());
        for (i, report) in batch.succeeded() {
            let direct = engine.analyze(&stages[i]).unwrap();
            assert_eq!(report.delay.to_bits(), direct.delay.to_bits());
            assert_eq!(report.slew.to_bits(), direct.slew.to_bits());
            assert_eq!(report.input_t50.to_bits(), direct.input_t50.to_bits());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = fast_engine().analyze_many(&[]);
        assert!(batch.is_empty());
        assert!(batch.all_ok());
    }
}
