//! The facade side of the static circuit-audit pass: synthesize a stage's
//! load netlist exactly the way the simulation backends do, and run the
//! `rlc-lint` audit over it **before** any matrix is factorized.
//!
//! The synthesis mirrors [`crate::StageReport`]'s far-end propagation: an
//! ideal driver source at the driving point, then
//! [`crate::LoadModel::attach_net`] with the engine's golden segment count.
//! Loads with no physical realization (a moment-space load) have no netlist
//! to audit and lint clean by construction.

use rlc_lint::{lint_circuit, LintOptions};
use rlc_numeric::Diagnostic;
use rlc_spice::circuit::Circuit;
use rlc_spice::SourceWaveform;

use crate::config::EngineConfig;
use crate::stage::Stage;

/// Runs the static audit over the stage's load netlist. Returns every
/// finding; the caller decides enforcement via
/// [`rlc_lint::LintLevel::rejects`].
pub(crate) fn lint_stage(stage: &Stage, config: &EngineConfig) -> Vec<Diagnostic> {
    let mut ckt = Circuit::new();
    let near = ckt.node("out");
    ckt.add_vsource("VDRV", near, Circuit::GROUND, SourceWaveform::dc(0.0));
    let net = match stage
        .load()
        .attach_net(&mut ckt, near, 0.0, config.golden.segments)
    {
        Ok(net) => net,
        // No netlist (moment-space loads): nothing for the static pass to
        // audit — reduction-time validation covers these.
        Err(_) => return Vec::new(),
    };
    let options = LintOptions::new()
        .with_time_step(config.golden.time_step)
        .with_sinks(net.sinks);
    lint_circuit(&ckt, &options)
}
