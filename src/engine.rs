//! [`TimingEngine`]: the facade — one entry point that routes stages to
//! backends, fans batches across threads, and recovers per stage.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rlc_charlib::{CharacterizationGrid, Library};

use crate::backend::{AnalysisBackend, AnalyticBackend, SpiceBackend, StageReport};
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::stage::{BackendChoice, Stage};

/// The unified timing engine.
///
/// ```no_run
/// use rlc_ceff_suite::{
///     DistributedRlcLoad, EngineConfig, Stage, TimingEngine,
/// };
/// use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
/// use rlc_ceff_suite::interconnect::prelude::*;
///
/// let mut library = Library::new(CharacterizationGrid::default());
/// let cell = library.cell_shared(75.0)?;
/// let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(5.0), um(1.6)));
///
/// let stage = Stage::builder(cell, DistributedRlcLoad::new(line, ff(10.0))?)
///     .label("flagship")
///     .input_slew(ps(100.0))
///     .build()?;
/// let engine = TimingEngine::new(EngineConfig::default());
/// let report = engine.analyze(&stage)?;
/// println!("{}", report.describe());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimingEngine {
    config: EngineConfig,
    analytic: Arc<AnalyticBackend>,
    spice: Arc<SpiceBackend>,
}

impl Default for TimingEngine {
    fn default() -> Self {
        TimingEngine::new(EngineConfig::default())
    }
}

impl TimingEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        TimingEngine {
            config,
            analytic: Arc::new(AnalyticBackend),
            spice: Arc::new(SpiceBackend),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Opens the cell library this engine's stages should draw from, on the
    /// default characterization grid: backed by the persistent on-disk cache
    /// when [`EngineConfig::cache_dir`] is set (so repeated processes skip
    /// characterization entirely), plain in-memory otherwise.
    ///
    /// # Errors
    /// Returns [`EngineError::Cache`] when the cache directory cannot be
    /// created.
    pub fn open_library(&self) -> Result<Library, EngineError> {
        self.open_library_with_grid(CharacterizationGrid::default())
    }

    /// [`TimingEngine::open_library`] on a specific characterization grid.
    /// Cache entries are keyed by cell *and* grid, so different grids can
    /// share one cache directory without collisions.
    ///
    /// # Errors
    /// Returns [`EngineError::Cache`] when the cache directory cannot be
    /// created.
    pub fn open_library_with_grid(
        &self,
        grid: CharacterizationGrid,
    ) -> Result<Library, EngineError> {
        match &self.config.cache_dir {
            Some(dir) => Ok(Library::open_cached_with_grid(dir, grid)?),
            None => Ok(Library::new(grid)),
        }
    }

    /// Resolves the backend a stage runs on: its override, or the engine's
    /// default (the analytic flow).
    fn backend_for(&self, stage: &Stage) -> Arc<dyn AnalysisBackend> {
        match stage.backend() {
            None | Some(BackendChoice::Analytic) => self.analytic.clone(),
            Some(BackendChoice::Spice) => self.spice.clone(),
            Some(BackendChoice::Custom(backend)) => backend.clone(),
        }
    }

    /// Analyzes one stage on its backend. Panics inside the analysis are
    /// caught and reported as [`EngineError::StagePanicked`].
    ///
    /// # Errors
    /// Any [`EngineError`] from validation, reduction, modelling or
    /// simulation.
    pub fn analyze(&self, stage: &Stage) -> Result<StageReport, EngineError> {
        let backend = self.backend_for(stage);
        match catch_unwind(AssertUnwindSafe(|| backend.analyze(stage, &self.config))) {
            Ok(result) => result,
            Err(payload) => Err(EngineError::StagePanicked {
                label: stage.label().to_string(),
                detail: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Analyzes a batch of heterogeneous stages, fanning them across worker
    /// threads ([`EngineConfig::threads`]; one per CPU by default). Outcomes
    /// come back in input order; a failing or even panicking stage yields an
    /// `Err` in its slot without aborting the rest of the batch.
    pub fn analyze_many(&self, stages: &[Stage]) -> BatchReport {
        let started = Instant::now();
        let workers = self.config.effective_threads(stages.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<StageReport, EngineError>>>> =
            stages.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= stages.len() {
                        break;
                    }
                    let outcome = self.analyze(&stages[index]);
                    *slots[index].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        BatchReport {
            outcomes: slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot poisoned")
                        .expect("every stage index was visited by a worker")
                })
                .collect(),
            elapsed_seconds: started.elapsed().as_secs_f64(),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The outcome of [`TimingEngine::analyze_many`]: one result per stage, in
/// input order.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-stage outcomes, in the order the stages were submitted.
    pub outcomes: Vec<Result<StageReport, EngineError>>,
    /// Wall-clock time of the whole batch (seconds).
    pub elapsed_seconds: f64,
}

impl BatchReport {
    /// Number of stages in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterates the successful reports with their stage indices.
    pub fn succeeded(&self) -> impl Iterator<Item = (usize, &StageReport)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().ok().map(|report| (i, report)))
    }

    /// Iterates the failed stages with their indices and errors.
    pub fn failures(&self) -> impl Iterator<Item = (usize, &EngineError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().err().map(|e| (i, e)))
    }

    /// Number of successful stages.
    pub fn ok_count(&self) -> usize {
        self.succeeded().count()
    }

    /// Number of failed stages.
    pub fn err_count(&self) -> usize {
        self.failures().count()
    }

    /// Whether every stage succeeded.
    pub fn all_ok(&self) -> bool {
        self.err_count() == 0
    }

    /// One-line summary of the batch.
    pub fn summary(&self) -> String {
        format!(
            "{} stages: {} ok, {} failed in {:.1} ms",
            self.len(),
            self.ok_count(),
            self.err_count(),
            self.elapsed_seconds * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{DistributedRlcLoad, LumpedCapLoad, MomentsLoad};
    use rlc_interconnect::RlcLine;
    use rlc_numeric::units::{ff, mm, nh, pf, ps};

    fn fast_engine() -> TimingEngine {
        TimingEngine::new(EngineConfig::fast_for_tests())
    }

    #[test]
    fn analyze_runs_the_default_analytic_backend() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            DistributedRlcLoad::new(line, ff(10.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = fast_engine().analyze(&stage).unwrap();
        assert_eq!(report.backend, "analytic");
        assert!(report.used_two_ramp);
    }

    #[test]
    fn degenerate_stage_fails_cleanly_without_aborting() {
        let engine = fast_engine();
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let good = Stage::builder_shared(
            cell.clone(),
            Arc::new(LumpedCapLoad::new(ff(300.0)).unwrap()),
        )
        .label("good")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let degenerate = Stage::builder_shared(
            cell,
            Arc::new(MomentsLoad::new(vec![1e-12, 0.0, 0.0, 0.0, 0.0]).unwrap()),
        )
        .label("degenerate")
        .input_slew(ps(100.0))
        .build()
        .unwrap();

        let batch = engine.analyze_many(&[good, degenerate]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.ok_count(), 1);
        assert_eq!(batch.err_count(), 1);
        assert!(!batch.all_ok());
        let (failed_index, error) = batch.failures().next().unwrap();
        assert_eq!(failed_index, 1);
        assert!(matches!(error, EngineError::Load { .. }));
        assert!(batch.summary().contains("1 failed"));
    }

    #[test]
    fn panicking_custom_backend_is_contained_per_stage() {
        #[derive(Debug)]
        struct PanickingBackend;
        impl AnalysisBackend for PanickingBackend {
            fn name(&self) -> &'static str {
                "panics"
            }
            fn analyze(
                &self,
                _stage: &Stage,
                _config: &EngineConfig,
            ) -> Result<StageReport, EngineError> {
                panic!("deliberate test panic");
            }
        }

        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let bomb = Stage::builder_shared(
            cell.clone(),
            Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap()),
        )
        .label("bomb")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Custom(Arc::new(PanickingBackend)))
        .build()
        .unwrap();
        let fine = Stage::builder_shared(cell, Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap()))
            .label("fine")
            .input_slew(ps(100.0))
            .build()
            .unwrap();

        let batch = fast_engine().analyze_many(&[bomb, fine]);
        assert_eq!(batch.ok_count(), 1);
        match &batch.outcomes[0] {
            Err(EngineError::StagePanicked { label, detail }) => {
                assert_eq!(label, "bomb");
                assert!(detail.contains("deliberate"));
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
    }

    #[test]
    fn batch_results_come_back_in_input_order() {
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let stages: Vec<Stage> = (0..12)
            .map(|i| {
                Stage::builder_shared(
                    cell.clone(),
                    Arc::new(LumpedCapLoad::new(ff(100.0 + 50.0 * i as f64)).unwrap()),
                )
                .label(format!("s{i}"))
                .input_slew(ps(100.0))
                .build()
                .unwrap()
            })
            .collect();
        let engine = TimingEngine::new(
            EngineConfig::builder()
                .extract_rs_per_case(false)
                .threads(4)
                .build(),
        );
        let batch = engine.analyze_many(&stages);
        assert!(batch.all_ok());
        for (i, report) in batch.succeeded() {
            assert_eq!(report.label, format!("s{i}"));
        }
        // Bigger lumped loads mean slower transitions, in order.
        let slews: Vec<f64> = batch.succeeded().map(|(_, r)| r.slew).collect();
        assert!(slews.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn open_library_honours_the_cache_dir_option() {
        // No cache_dir: a plain in-memory library.
        let plain = fast_engine().open_library().unwrap();
        assert!(plain.cache().is_none());

        // cache_dir set: the library is backed by the persistent store in
        // exactly that directory (created on demand).
        let dir = std::env::temp_dir().join(format!("rlc-engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = TimingEngine::new(EngineConfig::builder().cache_dir(&dir).build());
        let lib = engine.open_library().unwrap();
        assert_eq!(lib.cache().unwrap().dir(), dir.as_path());
        assert!(dir.is_dir());
        assert_eq!(lib.characterizations_run(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = fast_engine().analyze_many(&[]);
        assert!(batch.is_empty());
        assert!(batch.all_ok());
    }
}
