//! [`TimingEngine`]: the facade — one entry point that routes stages to
//! backends, opens dependency-aware [`AnalysisSession`]s, and recovers per
//! stage.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use rlc_charlib::{CharacterizationGrid, Library};

use crate::backend::{AnalysisBackend, AnalyticBackend, SpiceBackend, StageReport};
use crate::config::{EngineConfig, SessionOptions};
use crate::error::EngineError;
use crate::session::{AnalysisSession, StageHandle};
use crate::stage::{BackendChoice, Stage};
use crate::variation::{DistributionReport, SampleResult};

/// The unified timing engine.
///
/// ```no_run
/// use rlc_ceff_suite::{
///     DistributedRlcLoad, EngineConfig, Stage, TimingEngine,
/// };
/// use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
/// use rlc_ceff_suite::interconnect::prelude::*;
///
/// let mut library = Library::new(CharacterizationGrid::default());
/// let cell = library.cell_shared(75.0)?;
/// let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(5.0), um(1.6)));
///
/// let stage = Stage::builder(cell, DistributedRlcLoad::new(line, ff(10.0))?)
///     .label("flagship")
///     .input_slew(ps(100.0))
///     .build()?;
/// let engine = TimingEngine::new(EngineConfig::default());
/// let report = engine.analyze(&stage)?;
/// println!("{}", report.describe());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimingEngine {
    config: EngineConfig,
    analytic: Arc<AnalyticBackend>,
    spice: Arc<SpiceBackend>,
}

impl Default for TimingEngine {
    fn default() -> Self {
        TimingEngine::new(EngineConfig::default())
    }
}

impl TimingEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        TimingEngine {
            config,
            analytic: Arc::new(AnalyticBackend),
            spice: Arc::new(SpiceBackend),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Opens the cell library this engine's stages should draw from, on the
    /// default characterization grid: backed by the persistent on-disk cache
    /// when [`EngineConfig::cache_dir`] is set (so repeated processes skip
    /// characterization entirely), plain in-memory otherwise.
    ///
    /// # Errors
    /// Returns [`EngineError::Cache`] when the cache directory cannot be
    /// created.
    pub fn open_library(&self) -> Result<Library, EngineError> {
        self.open_library_with_grid(CharacterizationGrid::default())
    }

    /// [`TimingEngine::open_library`] on a specific characterization grid.
    /// Cache entries are keyed by cell *and* grid, so different grids can
    /// share one cache directory without collisions.
    ///
    /// # Errors
    /// Returns [`EngineError::Cache`] when the cache directory cannot be
    /// created.
    pub fn open_library_with_grid(
        &self,
        grid: CharacterizationGrid,
    ) -> Result<Library, EngineError> {
        match &self.config.cache_dir {
            Some(dir) => Ok(Library::open_cached_with_grid(dir, grid)?),
            None => Ok(Library::new(grid)),
        }
    }

    /// Resolves the backend a stage runs on: its override, or the engine's
    /// default (the analytic flow).
    pub(crate) fn backend_for(&self, stage: &Stage) -> Arc<dyn AnalysisBackend> {
        match stage.backend() {
            None | Some(BackendChoice::Analytic) => self.analytic.clone(),
            Some(BackendChoice::Spice) => self.spice.clone(),
            Some(BackendChoice::Custom(backend)) => backend.clone(),
        }
    }

    /// Analyzes one stage on its backend. Panics inside the analysis are
    /// caught and reported as [`EngineError::StagePanicked`].
    ///
    /// When [`EngineConfig::lint_level`] is not `Off`, the static audit pass
    /// ([`crate::lint::lint_circuit`]) runs over the stage's load netlist
    /// first: under `Deny` (the default) Error-severity findings reject the
    /// stage as [`EngineError::Lint`] before any matrix is factorized, and
    /// surviving findings ride along in [`StageReport::lints`].
    ///
    /// # Errors
    /// Any [`EngineError`] from validation, reduction, modelling or
    /// simulation; [`EngineError::Lint`] for a netlist that fails the static
    /// audit; [`EngineError::InvalidDependency`] for a dependent stage
    /// ([`crate::StageBuilder::input_from`]), which only a session can
    /// resolve.
    pub fn analyze(&self, stage: &Stage) -> Result<StageReport, EngineError> {
        if stage.is_dependent() {
            return Err(EngineError::InvalidDependency {
                what: format!(
                    "stage '{}' declares a dependent input ({:?}); submit it to an \
                     AnalysisSession instead of analyzing it directly",
                    stage.label(),
                    stage.input_source()
                ),
            });
        }
        let lints = self.lint_stage(stage)?;
        self.analyze_prelinted(stage, lints)
    }

    /// [`TimingEngine::analyze`] minus the audit: runs the backend and
    /// prepends `lints` — findings an earlier gate (session submit) already
    /// computed for this stage's load, so the netlist is not synthesized and
    /// audited a second time.
    pub(crate) fn analyze_prelinted(
        &self,
        stage: &Stage,
        lints: Vec<rlc_numeric::Diagnostic>,
    ) -> Result<StageReport, EngineError> {
        let backend = self.backend_for(stage);
        let mut report =
            match catch_unwind(AssertUnwindSafe(|| backend.analyze(stage, &self.config))) {
                Ok(result) => result?,
                Err(payload) => {
                    return Err(EngineError::StagePanicked {
                        label: stage.label().to_string(),
                        detail: panic_message(payload.as_ref()),
                    })
                }
            };
        if !lints.is_empty() {
            // Static findings lead; runtime observations (a sparse-kernel
            // degrade the backend noticed) follow.
            let mut combined = lints;
            combined.append(&mut report.lints);
            report.lints = combined;
        }
        Ok(report)
    }

    /// Runs the static audit pass ([`crate::lint::lint_circuit`]) over a
    /// stage's load netlist and returns every finding, regardless of
    /// [`EngineConfig::lint_level`] — the explicit "just audit it" entry
    /// point (and what the service protocol's `LINT` request maps onto).
    /// Nothing is simulated and no matrix is factorized.
    pub fn lint(&self, stage: &Stage) -> Vec<rlc_numeric::Diagnostic> {
        crate::lints::lint_stage(stage, &self.config)
    }

    /// Runs the static audit for a stage per [`EngineConfig::lint_level`]:
    /// returns the findings to attach, or [`EngineError::Lint`] when the
    /// level rejects them. Shared by [`TimingEngine::analyze`] and the
    /// session's submit-time gate.
    pub(crate) fn lint_stage(
        &self,
        stage: &Stage,
    ) -> Result<Vec<rlc_numeric::Diagnostic>, EngineError> {
        if !self.config.lint_level.enabled() {
            return Ok(Vec::new());
        }
        let lints = crate::lints::lint_stage(stage, &self.config);
        if self.config.lint_level.rejects(&lints) {
            return Err(EngineError::Lint {
                label: stage.label().to_string(),
                diagnostics: lints,
            });
        }
        Ok(lints)
    }

    /// Opens a dependency-aware [`AnalysisSession`] with default
    /// [`SessionOptions`]: stages submit individually or in bulk, dependent
    /// stages chain through measured far-end waveforms, and results stream
    /// back in completion order. This supersedes the deprecated flat
    /// `analyze_many`.
    pub fn session(&self) -> AnalysisSession {
        self.session_with(SessionOptions::default())
    }

    /// [`TimingEngine::session`] with explicit options (deadline, in-flight
    /// cap, handoff fidelity).
    pub fn session_with(&self, options: SessionOptions) -> AnalysisSession {
        AnalysisSession::new(self.clone(), options)
    }

    /// Analyzes a stage across its variation plan
    /// ([`crate::StageBuilder::corners`] /
    /// [`crate::StageBuilder::monte_carlo`]): one revalued copy of the stage
    /// per sample — driver supply and on-resistance rescaled, load revalued
    /// through [`crate::LoadModel::scaled`] — scheduled across an
    /// [`AnalysisSession`]'s thread pool, then reduced into a
    /// [`DistributionReport`] in plan order. The reduction is deterministic:
    /// the same stage (and Monte-Carlo seed) always produces a bit-identical
    /// report, regardless of which worker finished first.
    ///
    /// # Errors
    /// [`EngineError::InvalidStage`] when the stage has no variation plan or
    /// is dependent, [`EngineError::Unsupported`] when its load cannot be
    /// revalued, or the first failing sample's analysis error.
    pub fn analyze_distribution(&self, stage: &Stage) -> Result<DistributionReport, EngineError> {
        let mut reports = self.analyze_path_distribution(std::slice::from_ref(stage))?;
        Ok(reports.pop().expect("one report per stage"))
    }

    /// Analyzes a chained path of stages across the **head** stage's
    /// variation plan with corner-consistent handoffs: for each sample, the
    /// whole path is revalued at that sample's spec and chained through
    /// measured far-end waveforms, so sample *i* of stage *k + 1* always
    /// consumes the far end of sample *i* of stage *k* — never a different
    /// corner's waveform. Later stages' own declared inputs (and variation
    /// plans) are ignored; a path corner is one global process condition.
    ///
    /// All `samples × stages` analyses share one session and run across its
    /// thread pool. Returns one [`DistributionReport`] per stage, in path
    /// order.
    ///
    /// # Errors
    /// Like [`TimingEngine::analyze_distribution`]; additionally
    /// [`EngineError::InvalidStage`] for an empty path or a dependent head
    /// stage.
    pub fn analyze_path_distribution(
        &self,
        stages: &[Stage],
    ) -> Result<Vec<DistributionReport>, EngineError> {
        let head = stages.first().ok_or_else(|| {
            EngineError::invalid("path distribution analysis needs at least one stage")
        })?;
        if head.is_dependent() {
            return Err(EngineError::invalid(format!(
                "stage '{}' heads a distribution path but declares a dependent input; \
                 give the head a fixed input event",
                head.label()
            )));
        }
        let specs = head.variation_samples().to_vec();
        if specs.is_empty() {
            return Err(EngineError::invalid(format!(
                "stage '{}' has no variation plan; add corners(..) or monte_carlo(..) \
                 to the builder",
                head.label()
            )));
        }

        let mut session = self.session();
        let mut handles: Vec<Vec<StageHandle>> =
            vec![Vec::with_capacity(specs.len()); stages.len()];
        for (i, spec) in specs.iter().enumerate() {
            let mut prev: Option<StageHandle> = None;
            for (k, template) in stages.iter().enumerate() {
                let sample = template.with_sample(spec, i)?;
                let sample = match prev {
                    None => sample,
                    Some(producer) => sample.rewire_input_from(producer),
                };
                let handle = session.submit(sample)?;
                handles[k].push(handle);
                prev = Some(handle);
            }
        }
        let outcomes = session.wait_all();

        let mut reports = Vec::with_capacity(stages.len());
        for (k, template) in stages.iter().enumerate() {
            let mut samples = Vec::with_capacity(specs.len());
            for (i, handle) in handles[k].iter().enumerate() {
                let report = outcomes[handle.index()].1.as_ref().map_err(Clone::clone)?;
                let peak_noise = report
                    .simulated_far_end
                    .as_ref()
                    .map(|far| far.waveform().overshoot(report.vdd));
                samples.push(SampleResult {
                    spec: specs[i],
                    delay: report.delay,
                    slew: report.slew,
                    peak_noise,
                    backend: report.backend,
                });
            }
            reports.push(DistributionReport::from_samples(
                template.label().to_string(),
                samples,
            ));
        }
        Ok(reports)
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{DistributedRlcLoad, LumpedCapLoad};
    use rlc_interconnect::RlcLine;
    use rlc_numeric::units::{ff, mm, nh, pf, ps};

    fn fast_engine() -> TimingEngine {
        TimingEngine::new(EngineConfig::fast_for_tests())
    }

    #[test]
    fn analyze_runs_the_default_analytic_backend() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            DistributedRlcLoad::new(line, ff(10.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = fast_engine().analyze(&stage).unwrap();
        assert_eq!(report.backend, "analytic");
        assert!(report.used_two_ramp);
    }

    #[test]
    fn panicking_custom_backend_is_contained() {
        #[derive(Debug)]
        struct PanickingBackend;
        impl AnalysisBackend for PanickingBackend {
            fn name(&self) -> &'static str {
                "panics"
            }
            fn analyze(
                &self,
                _stage: &Stage,
                _config: &EngineConfig,
            ) -> Result<StageReport, EngineError> {
                panic!("deliberate test panic");
            }
        }

        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let bomb = Stage::builder_shared(cell, Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap()))
            .label("bomb")
            .input_slew(ps(100.0))
            .backend(BackendChoice::Custom(Arc::new(PanickingBackend)))
            .build()
            .unwrap();
        match fast_engine().analyze(&bomb) {
            Err(EngineError::StagePanicked { label, detail }) => {
                assert_eq!(label, "bomb");
                assert!(detail.contains("deliberate"));
            }
            other => panic!("expected a contained panic, got {other:?}"),
        }
    }

    #[test]
    fn dependent_stages_are_rejected_outside_a_session() {
        let engine = fast_engine();
        let mut session = engine.session();
        let producer = session.reserve();
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let dependent =
            Stage::builder_shared(cell, Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap()))
                .label("chained")
                .input_from(producer)
                .build()
                .unwrap();
        assert!(dependent.is_dependent());
        assert!(dependent.try_input().is_none());
        let err = engine.analyze(&dependent).unwrap_err();
        assert!(matches!(err, EngineError::InvalidDependency { .. }));
        assert!(err.to_string().contains("chained"));
    }

    #[test]
    fn open_library_honours_the_cache_dir_option() {
        // No cache_dir: a plain in-memory library.
        let plain = fast_engine().open_library().unwrap();
        assert!(plain.cache().is_none());

        // cache_dir set: the library is backed by the persistent store in
        // exactly that directory (created on demand).
        let dir = std::env::temp_dir().join(format!("rlc-engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = TimingEngine::new(EngineConfig::builder().cache_dir(&dir).build());
        let lib = engine.open_library().unwrap();
        assert_eq!(lib.cache().unwrap().dir(), dir.as_path());
        assert!(dir.is_dir());
        assert_eq!(lib.characterizations_run(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
