//! [`EngineConfig`]: one builder-style configuration object replacing the
//! scattered `ModelingConfig` / `IterationSettings` / `InductanceCriteria` /
//! `GoldenOptions` knobs of the layer crates.

use std::path::PathBuf;
use std::time::Duration;

use rlc_ceff::far_end::FarEndOptions;
use rlc_ceff::validation::GoldenOptions;
use rlc_ceff::{InductanceCriteria, IterationSettings, ModelingConfig};
use rlc_lint::LintLevel;

/// Which waveform shape the analytic backend produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CeffStrategy {
    /// The paper's flow: screen with Equation 9, two-ramp when inductance is
    /// significant, single ramp otherwise.
    #[default]
    Auto,
    /// Always the classic single-Ceff ramp (the "1 ramp" baseline).
    ForceSingleRamp,
    /// Always the two-ramp waveform (requires a transmission-line load).
    ForceTwoRamp,
}

/// Complete configuration of a [`crate::TimingEngine`].
///
/// Build one with [`EngineConfig::builder`]; the default configuration is
/// the paper's prescription (per-case Rs extraction, Equation 9 defaults,
/// reference simulation fidelity).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Convergence controls for the Ceff iterations.
    pub iteration: IterationSettings,
    /// Inductance-significance thresholds (Equation 9).
    pub criteria: InductanceCriteria,
    /// Re-extract the driver on-resistance against each stage's total load
    /// capacitance (the paper's prescription) instead of reusing the value
    /// cached at characterization time.
    pub extract_rs_per_case: bool,
    /// Waveform-shape strategy for the analytic backend.
    pub strategy: CeffStrategy,
    /// Fidelity of the golden simulation backend.
    pub golden: GoldenOptions,
    /// Worker threads for [`crate::TimingEngine::analyze_many`]; `0` means
    /// one per available CPU.
    pub threads: usize,
    /// Directory of the persistent characterization cache. When set,
    /// libraries opened through [`crate::TimingEngine::open_library`] consult
    /// the on-disk store before running any characterization transients and
    /// persist every miss, so only the first process ever pays the cold
    /// start. `None` (the default) keeps characterization in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// Directory of the persistent stage-*result* cache
    /// ([`crate::StageResultCache`]). When set, every
    /// [`crate::AnalysisSession`] of this engine consults the store before
    /// dispatching a stage to a backend and persists every miss, so an ECO
    /// re-analysis re-simulates only the edited stage's dependency cone.
    /// Many processes (e.g. `rlc-serviced` shards) may share one directory.
    /// `None` (the default) disables result caching.
    pub result_cache_dir: Option<PathBuf>,
    /// Static-analysis enforcement: `Deny` (the default) runs the
    /// `rlc-lint` audit over every stage's load netlist before any
    /// simulation and rejects Error-severity findings as
    /// [`crate::EngineError::Lint`]; `Warn` attaches findings to
    /// [`crate::StageReport::lints`] without rejecting; `Off` skips the
    /// pass entirely.
    pub lint_level: LintLevel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            iteration: IterationSettings::default(),
            criteria: InductanceCriteria::default(),
            extract_rs_per_case: true,
            strategy: CeffStrategy::Auto,
            golden: GoldenOptions::default(),
            threads: 0,
            cache_dir: None,
            result_cache_dir: None,
            lint_level: LintLevel::default(),
        }
    }
}

impl EngineConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }

    /// A cheap configuration for debug-build tests: cached on-resistance and
    /// coarse simulation fidelity.
    pub fn fast_for_tests() -> EngineConfig {
        EngineConfig {
            extract_rs_per_case: false,
            golden: GoldenOptions::coarse_for_tests(),
            ..EngineConfig::default()
        }
    }

    /// The equivalent layer-crate modelling configuration.
    pub fn modeling_config(&self) -> ModelingConfig {
        ModelingConfig {
            iteration: self.iteration,
            criteria: self.criteria,
            extract_rs_per_case: self.extract_rs_per_case,
        }
    }

    /// The configured worker-thread count: [`EngineConfig::threads`], or one
    /// per available CPU when it is `0`. This is the pool ceiling an
    /// [`crate::AnalysisSession`] grows towards (it spawns lazily, one
    /// worker per submission, and [`SessionOptions::max_in_flight`] can cap
    /// it further).
    pub fn base_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// [`EngineConfig::base_threads`] clamped to a known batch size — the
    /// worker count a flat batch of `stages` independent stages warrants.
    pub fn effective_threads(&self, stages: usize) -> usize {
        self.base_threads().min(stages).max(1)
    }
}

/// Options of one [`crate::AnalysisSession`]
/// ([`crate::TimingEngine::session_with`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionOptions {
    /// Wall-clock budget measured from session creation. Stages that have
    /// not *started* when it expires fail with
    /// [`crate::EngineError::DeadlineExceeded`]; stages already running
    /// finish and report normally. `None` (the default) never expires.
    pub deadline: Option<Duration>,
    /// Upper bound on concurrently running stages. `0` (the default) means
    /// one per worker thread ([`EngineConfig::threads`]).
    pub max_in_flight: usize,
    /// Fidelity of the far-end propagation simulation used to resolve
    /// cross-stage handoffs ([`crate::InputSource::FromFarEnd`] /
    /// [`crate::InputSource::FromSink`]) when the producer's report does not
    /// already carry a simulated far-end waveform.
    pub far_end: FarEndOptions,
    /// Hand the producer's full sampled waveform to backends that report
    /// [`crate::BackendCaps::sampled_input`] (default `true`). When `false`
    /// every handoff uses the slew-referenced ramp conversion, which is what
    /// manually chained `analyze` + `far_end` calls compute.
    pub sampled_handoff: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            deadline: None,
            max_in_flight: 0,
            far_end: FarEndOptions::default(),
            sampled_handoff: true,
        }
    }
}

impl SessionOptions {
    /// Default options with a duration-based deadline: the session fails
    /// every stage that has not started `timeout` after session creation.
    ///
    /// Because the budget is a `Duration` measured from session creation —
    /// not an absolute `Instant` of this process's monotonic clock — it is
    /// exactly expressible by a remote client: the timing service's wire
    /// protocol carries it as a nanosecond count, and the server-side
    /// session starts the clock when the connection's session opens.
    pub fn timeout(timeout: Duration) -> Self {
        SessionOptions::default().with_deadline(timeout)
    }

    /// Sets the session deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the number of concurrently running stages.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Sets the handoff-propagation fidelity.
    pub fn with_far_end(mut self, far_end: FarEndOptions) -> Self {
        self.far_end = far_end;
        self
    }

    /// Enables or disables sampled-waveform handoff to capable backends.
    pub fn with_sampled_handoff(mut self, enabled: bool) -> Self {
        self.sampled_handoff = enabled;
        self
    }
}

/// Builder for [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Relative Ceff convergence tolerance (default `1e-4`).
    pub fn ceff_tolerance(mut self, rel_tolerance: f64) -> Self {
        self.config.iteration.rel_tolerance = rel_tolerance;
        self
    }

    /// Maximum Ceff iterations before reporting divergence (default 100).
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.config.iteration.max_iterations = max_iterations;
        self
    }

    /// Fixed-point damping factor in `(0, 1]` (default 1, the paper's plain
    /// update).
    pub fn damping(mut self, damping: f64) -> Self {
        self.config.iteration.damping = damping;
        self
    }

    /// Whole iteration-settings block at once.
    pub fn iteration(mut self, iteration: IterationSettings) -> Self {
        self.config.iteration = iteration;
        self
    }

    /// Whole Equation 9 threshold block at once.
    pub fn inductance_criteria(mut self, criteria: InductanceCriteria) -> Self {
        self.config.criteria = criteria;
        self
    }

    /// Re-extract the driver on-resistance per stage (default `true`).
    pub fn extract_rs_per_case(mut self, enabled: bool) -> Self {
        self.config.extract_rs_per_case = enabled;
        self
    }

    /// Waveform-shape strategy for the analytic backend (default
    /// [`CeffStrategy::Auto`]).
    pub fn strategy(mut self, strategy: CeffStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Fidelity of the golden simulation backend (default: the reference
    /// 40-segment / 0.5 ps fidelity).
    pub fn golden_fidelity(mut self, golden: GoldenOptions) -> Self {
        self.config.golden = golden;
        self
    }

    /// Worker threads for batch analysis; `0` means one per CPU (default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Persistent characterization-cache directory (created on first use).
    /// Libraries opened through [`crate::TimingEngine::open_library`] then
    /// warm-start from disk instead of re-running characterization
    /// transients. Off by default.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.cache_dir = Some(dir.into());
        self
    }

    /// Persistent stage-result cache directory (created on first use).
    /// Sessions of this engine then short-circuit unchanged stages from
    /// disk, re-simulating only the dependency cone of an edit — the
    /// incremental (ECO) re-analysis mode. Off by default.
    pub fn result_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.result_cache_dir = Some(dir.into());
        self
    }

    /// Static-analysis enforcement level (default [`LintLevel::Deny`]).
    pub fn lint_level(mut self, level: LintLevel) -> Self {
        self.config.lint_level = level;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_overrides_individual_knobs() {
        let config = EngineConfig::builder()
            .ceff_tolerance(1e-6)
            .max_iterations(42)
            .damping(0.5)
            .extract_rs_per_case(false)
            .strategy(CeffStrategy::ForceTwoRamp)
            .threads(3)
            .cache_dir("target/test-char-cache")
            .result_cache_dir("target/test-result-cache")
            .build();
        assert_eq!(config.iteration.rel_tolerance, 1e-6);
        assert_eq!(config.iteration.max_iterations, 42);
        assert_eq!(config.iteration.damping, 0.5);
        assert!(!config.extract_rs_per_case);
        assert_eq!(config.strategy, CeffStrategy::ForceTwoRamp);
        assert_eq!(config.threads, 3);
        assert_eq!(
            config.cache_dir.as_deref(),
            Some(std::path::Path::new("target/test-char-cache"))
        );
        // Untouched knobs keep their defaults.
        assert_eq!(config.criteria, InductanceCriteria::default());
        assert_eq!(
            config.result_cache_dir.as_deref(),
            Some(std::path::Path::new("target/test-result-cache"))
        );
        // Both caches are opt-in.
        assert_eq!(EngineConfig::default().cache_dir, None);
        assert_eq!(EngineConfig::default().result_cache_dir, None);
    }

    #[test]
    fn modeling_config_mirrors_the_engine_config() {
        let config = EngineConfig::builder().extract_rs_per_case(false).build();
        let mc = config.modeling_config();
        assert!(!mc.extract_rs_per_case);
        assert_eq!(mc.iteration, config.iteration);
        assert_eq!(mc.criteria, config.criteria);
    }

    #[test]
    fn timeout_is_a_duration_based_deadline() {
        use std::time::Duration;

        let options = SessionOptions::timeout(Duration::from_millis(250));
        assert_eq!(options.deadline, Some(Duration::from_millis(250)));
        // Everything else stays at the defaults a remote client expects.
        let defaults = SessionOptions::default();
        assert_eq!(options.max_in_flight, defaults.max_in_flight);
        assert_eq!(options.sampled_handoff, defaults.sampled_handoff);

        // A session opened with an already-expired budget rejects new work
        // with the typed deadline error — the behaviour the wire protocol
        // maps to a stable response code.
        let engine =
            crate::TimingEngine::new(EngineConfig::builder().extract_rs_per_case(false).build());
        let mut session = engine.session_with(SessionOptions::timeout(Duration::ZERO));
        let stage = crate::Stage::builder(
            crate::fixtures::synthetic_cell_75x(),
            crate::LumpedCapLoad::new(200e-15).unwrap(),
        )
        .input_slew(100e-12)
        .build()
        .unwrap();
        let handle = session.submit(stage).unwrap();
        let (reported, outcome) = session.next_report().expect("one outcome");
        assert_eq!(reported, handle);
        assert!(matches!(
            outcome,
            Err(crate::EngineError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn effective_threads_clamps_to_batch_size() {
        let config = EngineConfig::builder().threads(8).build();
        assert_eq!(config.effective_threads(3), 3);
        assert_eq!(config.effective_threads(100), 8);
        assert_eq!(config.effective_threads(0), 1);
        // threads = 0 resolves to at least one worker.
        let auto = EngineConfig::default();
        assert!(auto.effective_threads(4) >= 1);
    }
}
