//! The unified error type of the timing-engine facade.
//!
//! Every sub-crate keeps its own focused error enum (`MomentError`,
//! `SpiceError`, `CharlibError`, `CeffError`); the facade wraps them in one
//! [`EngineError`] whose [`std::error::Error::source`] chain preserves the
//! underlying error, so callers can both match on the facade category and
//! drill into the layer that actually failed.

use rlc_ceff::CeffError;
use rlc_charlib::CharlibError;
use rlc_moments::MomentError;
use rlc_spice::SpiceError;

/// Any error produced by [`crate::TimingEngine`] and the stage/load builders.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A stage or load description failed validation before any analysis ran
    /// (non-positive slew, negative capacitance, missing required field).
    InvalidStage {
        /// What was wrong with the description.
        what: String,
    },
    /// A load model could not be reduced to a usable admittance (degenerate
    /// moments, non-physical coefficients).
    Load {
        /// The underlying moment/fit error.
        source: MomentError,
    },
    /// The analytic effective-capacitance flow failed.
    Model {
        /// The underlying modelling-flow error.
        source: CeffError,
    },
    /// The golden transient simulation failed.
    Simulation {
        /// The underlying simulator error.
        source: SpiceError,
    },
    /// Cell characterization or table lookup failed.
    Characterization {
        /// The underlying characterization error.
        source: CharlibError,
    },
    /// The persistent characterization cache could not be opened or written.
    /// Only setup/write problems surface here; unreadable or corrupt cache
    /// entries silently fall back to re-characterization instead.
    Cache {
        /// What went wrong with the cache.
        what: String,
    },
    /// The requested operation is not supported by the chosen combination of
    /// load model and backend (e.g. simulating a moment-space load that has
    /// no netlist).
    Unsupported {
        /// What was requested.
        what: String,
    },
    /// A stage analysis panicked; the batch caught the panic and carried on
    /// with the remaining stages.
    StagePanicked {
        /// Label of the stage whose analysis panicked.
        label: String,
        /// The panic payload, if it was a string.
        detail: String,
    },
}

impl EngineError {
    /// Convenience constructor for validation failures.
    pub fn invalid(what: impl Into<String>) -> Self {
        EngineError::InvalidStage { what: what.into() }
    }

    /// Convenience constructor for unsupported operations.
    pub fn unsupported(what: impl Into<String>) -> Self {
        EngineError::Unsupported { what: what.into() }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidStage { what } => write!(f, "invalid stage: {what}"),
            EngineError::Load { source } => write!(f, "load reduction failed: {source}"),
            EngineError::Model { source } => write!(f, "analytic model failed: {source}"),
            EngineError::Simulation { source } => write!(f, "simulation failed: {source}"),
            EngineError::Characterization { source } => {
                write!(f, "characterization failed: {source}")
            }
            EngineError::Cache { what } => write!(f, "characterization cache failed: {what}"),
            EngineError::Unsupported { what } => write!(f, "unsupported operation: {what}"),
            EngineError::StagePanicked { label, detail } => {
                write!(f, "stage '{label}' panicked during analysis: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Load { source } => Some(source),
            EngineError::Model { source } => Some(source),
            EngineError::Simulation { source } => Some(source),
            EngineError::Characterization { source } => Some(source),
            _ => None,
        }
    }
}

impl From<MomentError> for EngineError {
    fn from(source: MomentError) -> Self {
        EngineError::Load { source }
    }
}

impl From<CeffError> for EngineError {
    fn from(source: CeffError) -> Self {
        // An invalid case surfaced by the flow is a stage-description
        // problem, not a numerical one; keep the category honest.
        match source {
            CeffError::InvalidCase(what) => EngineError::InvalidStage { what },
            other => EngineError::Model { source: other },
        }
    }
}

impl From<SpiceError> for EngineError {
    fn from(source: SpiceError) -> Self {
        EngineError::Simulation { source }
    }
}

impl From<CharlibError> for EngineError {
    fn from(source: CharlibError) -> Self {
        match source {
            // Cache problems are an infrastructure category of their own —
            // callers retry without the cache rather than re-characterizing.
            CharlibError::Cache(what) => EngineError::Cache { what },
            other => EngineError::Characterization { source: other },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_chain_reaches_the_underlying_error() {
        let e: EngineError = MomentError::DegenerateLoad("pure cap".into()).into();
        let source = e.source().expect("load errors must chain");
        assert!(source.to_string().contains("pure cap"));
        assert!(e.to_string().contains("load reduction failed"));

        let e: EngineError = SpiceError::InvalidCircuit("no ground".into()).into();
        assert!(e.source().unwrap().to_string().contains("no ground"));

        let e: EngineError = CharlibError::InvalidGrid("empty".into()).into();
        assert!(e.source().unwrap().to_string().contains("empty"));

        let e: EngineError = CharlibError::Cache("read-only filesystem".into()).into();
        assert!(matches!(e, EngineError::Cache { .. }));
        assert!(e.to_string().contains("read-only filesystem"));
        assert!(e.source().is_none());

        let e: EngineError = CeffError::MomentFit("x".into()).into();
        assert!(matches!(e, EngineError::Model { .. }));
        assert!(e.source().is_some());
    }

    #[test]
    fn invalid_case_maps_to_invalid_stage() {
        let e: EngineError = CeffError::InvalidCase("bad slew".into()).into();
        assert!(matches!(e, EngineError::InvalidStage { .. }));
        assert!(e.to_string().contains("bad slew"));
        assert!(e.source().is_none());
    }

    #[test]
    fn constructors_and_display() {
        let e = EngineError::invalid("no input slew");
        assert!(e.to_string().contains("no input slew"));
        let e = EngineError::unsupported("moment load has no netlist");
        assert!(e.to_string().contains("no netlist"));
        let e = EngineError::StagePanicked {
            label: "s3".into(),
            detail: "boom".into(),
        };
        assert!(e.to_string().contains("s3") && e.to_string().contains("boom"));
    }
}
