//! The unified error type of the timing-engine facade.
//!
//! Every sub-crate keeps its own focused error enum (`MomentError`,
//! `SpiceError`, `CharlibError`, `CeffError`); the facade wraps them in one
//! [`EngineError`] whose [`std::error::Error::source`] chain preserves the
//! underlying error, so callers can both match on the facade category and
//! drill into the layer that actually failed.

use rlc_ceff::CeffError;
use rlc_charlib::CharlibError;
use rlc_moments::MomentError;
use rlc_numeric::Diagnostic;
use rlc_spice::SpiceError;

/// Any error produced by [`crate::TimingEngine`] and the stage/load builders.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A stage or load description failed validation before any analysis ran
    /// (non-positive slew, negative capacitance, missing required field).
    InvalidStage {
        /// What was wrong with the description.
        what: String,
    },
    /// A load model could not be reduced to a usable admittance (degenerate
    /// moments, non-physical coefficients).
    Load {
        /// The underlying moment/fit error.
        source: MomentError,
    },
    /// The analytic effective-capacitance flow failed.
    Model {
        /// The underlying modelling-flow error.
        source: CeffError,
    },
    /// The golden transient simulation failed.
    Simulation {
        /// The underlying simulator error.
        source: SpiceError,
    },
    /// Cell characterization or table lookup failed.
    Characterization {
        /// The underlying characterization error.
        source: CharlibError,
    },
    /// The persistent characterization cache could not be opened or written.
    /// Only setup/write problems surface here; unreadable or corrupt cache
    /// entries silently fall back to re-characterization instead.
    Cache {
        /// What went wrong with the cache.
        what: String,
    },
    /// The requested operation is not supported by the chosen combination of
    /// load model and backend (e.g. simulating a moment-space load that has
    /// no netlist).
    Unsupported {
        /// What was requested.
        what: String,
    },
    /// A stage analysis panicked; the batch caught the panic and carried on
    /// with the remaining stages.
    StagePanicked {
        /// Label of the stage whose analysis panicked.
        label: String,
        /// The panic payload, if it was a string.
        detail: String,
    },
    /// A dependent stage referenced a handle an
    /// [`crate::AnalysisSession`] cannot resolve: a handle from another
    /// session, a reservation that was never submitted, or a dependent stage
    /// handed to [`crate::TimingEngine::analyze`] directly (which has no
    /// producer reports to resolve it against).
    InvalidDependency {
        /// What was wrong with the dependency.
        what: String,
    },
    /// Submitting the stage would close a dependency cycle: following its
    /// producer links leads back to the stage itself.
    DependencyCycle {
        /// Label of the stage whose submission would close the cycle.
        label: String,
    },
    /// A [`crate::InputSource::FromSink`] referenced a sink name the
    /// producer's load does not expose.
    UnknownSink {
        /// Label of the producer stage.
        label: String,
        /// The sink name that was requested.
        sink: String,
        /// The sink names the producer's load actually exposes.
        available: Vec<String>,
    },
    /// The stage's producer failed, so its input event could never be
    /// resolved. Only the dependents of a failing stage are poisoned; the
    /// rest of the session continues.
    UpstreamFailed {
        /// Label of the poisoned dependent stage.
        label: String,
        /// Label of the producer that failed.
        upstream: String,
    },
    /// The static audit pass ([`crate::lint`]) found Error-severity problems
    /// in the stage's netlist and [`crate::EngineConfig::lint_level`] is
    /// [`rlc_lint::LintLevel::Deny`]. The stage was rejected before any
    /// matrix was factorized.
    Lint {
        /// Label of the rejected stage.
        label: String,
        /// Every finding the audit produced (Errors and any accompanying
        /// Warnings/Infos), in emission order.
        diagnostics: Vec<Diagnostic>,
    },
    /// The session was cancelled before the stage ran.
    Cancelled {
        /// Label of the stage that never ran.
        label: String,
    },
    /// The session deadline passed before the stage ran. Stages that were
    /// already running when the deadline fired finish and report normally.
    DeadlineExceeded {
        /// Label of the stage that never ran.
        label: String,
    },
}

impl EngineError {
    /// Convenience constructor for validation failures.
    pub fn invalid(what: impl Into<String>) -> Self {
        EngineError::InvalidStage { what: what.into() }
    }

    /// Convenience constructor for unsupported operations.
    pub fn unsupported(what: impl Into<String>) -> Self {
        EngineError::Unsupported { what: what.into() }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidStage { what } => write!(f, "invalid stage: {what}"),
            EngineError::Load { source } => write!(f, "load reduction failed: {source}"),
            EngineError::Model { source } => write!(f, "analytic model failed: {source}"),
            EngineError::Simulation { source } => write!(f, "simulation failed: {source}"),
            EngineError::Characterization { source } => {
                write!(f, "characterization failed: {source}")
            }
            EngineError::Cache { what } => write!(f, "characterization cache failed: {what}"),
            EngineError::Unsupported { what } => write!(f, "unsupported operation: {what}"),
            EngineError::StagePanicked { label, detail } => {
                write!(f, "stage '{label}' panicked during analysis: {detail}")
            }
            EngineError::InvalidDependency { what } => {
                write!(f, "invalid stage dependency: {what}")
            }
            EngineError::DependencyCycle { label } => {
                write!(
                    f,
                    "submitting stage '{label}' would close a dependency cycle"
                )
            }
            EngineError::UnknownSink {
                label,
                sink,
                available,
            } => {
                write!(
                    f,
                    "stage '{label}' exposes no sink named '{sink}' (available: {})",
                    if available.is_empty() {
                        "none".to_string()
                    } else {
                        available.join(", ")
                    }
                )
            }
            EngineError::UpstreamFailed { label, upstream } => {
                write!(
                    f,
                    "stage '{label}' was poisoned: its producer '{upstream}' failed"
                )
            }
            EngineError::Lint { label, diagnostics } => {
                let joined = diagnostics
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; ");
                write!(f, "stage '{label}' failed the static audit: {joined}")
            }
            EngineError::Cancelled { label } => {
                write!(f, "stage '{label}' was cancelled before it ran")
            }
            EngineError::DeadlineExceeded { label } => {
                write!(
                    f,
                    "stage '{label}' missed the session deadline before it ran"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Load { source } => Some(source),
            EngineError::Model { source } => Some(source),
            EngineError::Simulation { source } => Some(source),
            EngineError::Characterization { source } => Some(source),
            _ => None,
        }
    }
}

impl From<MomentError> for EngineError {
    fn from(source: MomentError) -> Self {
        EngineError::Load { source }
    }
}

impl From<CeffError> for EngineError {
    fn from(source: CeffError) -> Self {
        // An invalid case surfaced by the flow is a stage-description
        // problem, not a numerical one; keep the category honest.
        match source {
            CeffError::InvalidCase(what) => EngineError::InvalidStage { what },
            other => EngineError::Model { source: other },
        }
    }
}

impl From<SpiceError> for EngineError {
    fn from(source: SpiceError) -> Self {
        EngineError::Simulation { source }
    }
}

impl From<CharlibError> for EngineError {
    fn from(source: CharlibError) -> Self {
        match source {
            // Cache problems are an infrastructure category of their own —
            // callers retry without the cache rather than re-characterizing.
            CharlibError::Cache(what) => EngineError::Cache { what },
            other => EngineError::Characterization { source: other },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_chain_reaches_the_underlying_error() {
        let e: EngineError = MomentError::DegenerateLoad("pure cap".into()).into();
        let source = e.source().expect("load errors must chain");
        assert!(source.to_string().contains("pure cap"));
        assert!(e.to_string().contains("load reduction failed"));

        let e: EngineError = SpiceError::InvalidCircuit("no ground".into()).into();
        assert!(e.source().unwrap().to_string().contains("no ground"));

        let e: EngineError = CharlibError::InvalidGrid("empty".into()).into();
        assert!(e.source().unwrap().to_string().contains("empty"));

        let e: EngineError = CharlibError::Cache("read-only filesystem".into()).into();
        assert!(matches!(e, EngineError::Cache { .. }));
        assert!(e.to_string().contains("read-only filesystem"));
        assert!(e.source().is_none());

        let e: EngineError = CeffError::MomentFit("x".into()).into();
        assert!(matches!(e, EngineError::Model { .. }));
        assert!(e.source().is_some());
    }

    #[test]
    fn invalid_case_maps_to_invalid_stage() {
        let e: EngineError = CeffError::InvalidCase("bad slew".into()).into();
        assert!(matches!(e, EngineError::InvalidStage { .. }));
        assert!(e.to_string().contains("bad slew"));
        assert!(e.source().is_none());
    }

    #[test]
    fn session_variants_display_their_context() {
        let e = EngineError::UnknownSink {
            label: "tree".into(),
            sink: "rx9".into(),
            available: vec!["rx0".into(), "rx1".into()],
        };
        assert!(e.to_string().contains("rx9") && e.to_string().contains("rx0, rx1"));
        let e = EngineError::UnknownSink {
            label: "moments".into(),
            sink: "far".into(),
            available: vec![],
        };
        assert!(e.to_string().contains("none"));
        let e = EngineError::UpstreamFailed {
            label: "s2".into(),
            upstream: "s1".into(),
        };
        assert!(e.to_string().contains("s2") && e.to_string().contains("s1"));
        assert!(e.source().is_none());
        let e = EngineError::DependencyCycle { label: "a".into() };
        assert!(e.to_string().contains("cycle"));
        let e = EngineError::Cancelled { label: "x".into() };
        assert!(e.to_string().contains("cancelled"));
        let e = EngineError::DeadlineExceeded { label: "x".into() };
        assert!(e.to_string().contains("deadline"));
        let e = EngineError::InvalidDependency {
            what: "foreign handle".into(),
        };
        assert!(e.to_string().contains("foreign handle"));
    }

    #[test]
    fn constructors_and_display() {
        let e = EngineError::invalid("no input slew");
        assert!(e.to_string().contains("no input slew"));
        let e = EngineError::unsupported("moment load has no netlist");
        assert!(e.to_string().contains("no netlist"));
        let e = EngineError::StagePanicked {
            label: "s3".into(),
            detail: "boom".into(),
        };
        assert!(e.to_string().contains("s3") && e.to_string().contains("boom"));
    }
}
