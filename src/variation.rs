//! Statistical and multi-corner timing: Monte-Carlo variation models and the
//! [`DistributionReport`] aggregation over variation-sampled stages.
//!
//! A [`crate::Stage`] can carry a *variation plan* — explicit process corners
//! ([`crate::StageBuilder::corners`]) and/or seeded Monte-Carlo draws
//! ([`crate::StageBuilder::monte_carlo`]). Each plan entry is a
//! [`VariationSpec`] (the same spec type the `rlc-spice` batched
//! [`crate::spice::VariationSweep`] kernel consumes): per-element-class R/L/C
//! scale factors, a supply scale, and a temperature shift.
//! [`crate::TimingEngine::analyze_distribution`] materializes one scaled
//! stage per sample — driver supply and on-resistance rescaled, load revalued
//! through [`crate::LoadModel::scaled`] — schedules every sample across an
//! [`crate::AnalysisSession`]'s thread pool, and reduces the per-sample
//! reports into a [`DistributionReport`].
//!
//! Sampling is fully deterministic: Monte-Carlo draws are generated from the
//! seed with [`rlc_numeric::Rng`] at stage-build time, and aggregation walks
//! samples in plan order regardless of which worker finished first — the same
//! seed always produces a bit-identical report.

use rlc_numeric::stats::{DistributionSummary, Rng};

use crate::error::EngineError;

pub use rlc_spice::sweep::VariationSpec;

/// A Gaussian process/environment variation model for Monte-Carlo sampling:
/// each draw perturbs the element-class scale factors of a [`VariationSpec`]
/// around their nominal value of 1 with the configured relative sigmas.
///
/// Draws are clamped to `[0.5, 2.0]` so a pathological tail sample cannot
/// produce a non-physical (or negative) element value; with realistic sigmas
/// (a few percent) the clamp is never active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Relative standard deviation of the resistance scale factor.
    pub r_sigma: f64,
    /// Relative standard deviation of the inductance scale factor.
    pub l_sigma: f64,
    /// Relative standard deviation of the capacitance scale factor.
    pub c_sigma: f64,
    /// Relative standard deviation of the supply scale factor.
    pub vdd_sigma: f64,
    /// Deterministic temperature shift applied to every draw (kelvin, via
    /// [`VariationSpec::with_temperature_delta`]).
    pub temperature_delta: f64,
}

impl Default for VariationModel {
    /// A mild deep-submicron recipe: 5 % sigma on wire R and C, 3 % on L and
    /// the supply, no temperature shift.
    fn default() -> Self {
        VariationModel {
            r_sigma: 0.05,
            l_sigma: 0.03,
            c_sigma: 0.05,
            vdd_sigma: 0.03,
            temperature_delta: 0.0,
        }
    }
}

impl VariationModel {
    /// Sets the resistance sigma.
    pub fn with_r_sigma(mut self, sigma: f64) -> Self {
        self.r_sigma = sigma;
        self
    }

    /// Sets the inductance sigma.
    pub fn with_l_sigma(mut self, sigma: f64) -> Self {
        self.l_sigma = sigma;
        self
    }

    /// Sets the capacitance sigma.
    pub fn with_c_sigma(mut self, sigma: f64) -> Self {
        self.c_sigma = sigma;
        self
    }

    /// Sets the supply sigma.
    pub fn with_vdd_sigma(mut self, sigma: f64) -> Self {
        self.vdd_sigma = sigma;
        self
    }

    /// Sets the deterministic temperature shift applied to every draw.
    pub fn with_temperature_delta(mut self, dt: f64) -> Self {
        self.temperature_delta = dt;
        self
    }

    /// Validates the model.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] for negative, non-finite or
    /// implausibly large (> 0.5) sigmas, or a non-finite temperature shift.
    pub fn validate(&self) -> Result<(), EngineError> {
        for (name, sigma) in [
            ("r_sigma", self.r_sigma),
            ("l_sigma", self.l_sigma),
            ("c_sigma", self.c_sigma),
            ("vdd_sigma", self.vdd_sigma),
        ] {
            if !(sigma.is_finite() && (0.0..=0.5).contains(&sigma)) {
                return Err(EngineError::invalid(format!(
                    "variation model {name} must be finite and within [0, 0.5], got {sigma:e}"
                )));
            }
        }
        if !self.temperature_delta.is_finite() {
            return Err(EngineError::invalid(
                "variation model temperature delta must be finite",
            ));
        }
        Ok(())
    }

    /// Draws one sample spec from the model.
    pub fn sample(&self, rng: &mut Rng) -> VariationSpec {
        let draw = |rng: &mut Rng, sigma: f64| rng.normal(1.0, sigma).clamp(0.5, 2.0);
        VariationSpec::nominal()
            .with_r_scale(draw(rng, self.r_sigma))
            .with_l_scale(draw(rng, self.l_sigma))
            .with_c_scale(draw(rng, self.c_sigma))
            .with_source_scale(draw(rng, self.vdd_sigma))
            .with_temperature_delta(self.temperature_delta)
    }

    /// Generates `n` deterministic draws from `seed`.
    pub fn samples(&self, n: usize, seed: u64) -> Vec<VariationSpec> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

/// One analyzed variation sample of a [`DistributionReport`].
#[derive(Debug, Clone)]
pub struct SampleResult {
    /// The variation spec this sample ran at.
    pub spec: VariationSpec,
    /// 50 % driver-output delay (seconds).
    pub delay: f64,
    /// 10–90 % driver-output transition time (seconds).
    pub slew: f64,
    /// Largest far-end excursion above the sample's (scaled) supply, when
    /// the sample's backend simulated a far end; `None` otherwise.
    pub peak_noise: Option<f64>,
    /// Name of the backend that analyzed the sample.
    pub backend: &'static str,
}

/// The statistical outcome of analyzing one stage across its variation plan:
/// per-metric distribution summaries plus the worst-sample witness.
#[derive(Debug, Clone)]
pub struct DistributionReport {
    label: String,
    samples: Vec<SampleResult>,
    delay: DistributionSummary,
    slew: DistributionSummary,
    peak_noise: Option<DistributionSummary>,
    worst: usize,
}

impl DistributionReport {
    /// Reduces per-sample results (already in plan order) into a report.
    /// `samples` must be non-empty — callers validate the plan first.
    pub(crate) fn from_samples(label: String, samples: Vec<SampleResult>) -> DistributionReport {
        let delays: Vec<f64> = samples.iter().map(|s| s.delay).collect();
        let slews: Vec<f64> = samples.iter().map(|s| s.slew).collect();
        let noise: Vec<f64> = samples.iter().filter_map(|s| s.peak_noise).collect();
        let worst = delays
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        DistributionReport {
            label,
            delay: DistributionSummary::from_samples(&delays)
                .expect("a variation plan has at least one sample"),
            slew: DistributionSummary::from_samples(&slews)
                .expect("a variation plan has at least one sample"),
            peak_noise: DistributionSummary::from_samples(&noise),
            samples,
            worst,
        }
    }

    /// The analyzed stage's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of variation samples.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Per-sample results, in plan order (corners first, then Monte-Carlo
    /// draws in seed order).
    pub fn samples(&self) -> &[SampleResult] {
        &self.samples
    }

    /// Delay distribution (mean, sigma, min/max, p50/p95/p99).
    pub fn delay(&self) -> &DistributionSummary {
        &self.delay
    }

    /// Slew distribution.
    pub fn slew(&self) -> &DistributionSummary {
        &self.slew
    }

    /// Peak-noise distribution over the samples whose backend simulated a
    /// far end; `None` when no sample carried a far-end waveform.
    pub fn peak_noise(&self) -> Option<&DistributionSummary> {
        self.peak_noise.as_ref()
    }

    /// The worst sample (largest delay) and its index in plan order — the
    /// witness a signoff flow escalates.
    pub fn worst_sample(&self) -> (usize, &SampleResult) {
        (self.worst, &self.samples[self.worst])
    }

    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        let (index, worst) = self.worst_sample();
        format!(
            "{}: {} samples, delay {:.1} ps (sigma {:.2} ps, p99 {:.1} ps), \
             slew {:.1} ps, worst sample #{index} ({:.1} ps)",
            self.label,
            self.num_samples(),
            self.delay.mean * 1e12,
            self.delay.std_dev * 1e12,
            self.delay.p99 * 1e12,
            self.slew.mean * 1e12,
            worst.delay * 1e12,
        )
    }
}

/// Maps a spice-layer spec-validation failure onto the facade error type.
pub(crate) fn validate_spec(spec: &VariationSpec) -> Result<(), EngineError> {
    spec.validate()
        .map_err(|e| EngineError::invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_draws_are_seed_deterministic_and_clamped() {
        let model = VariationModel::default().with_temperature_delta(25.0);
        let a = model.samples(32, 7);
        let b = model.samples(32, 7);
        assert_eq!(a, b);
        let c = model.samples(32, 8);
        assert_ne!(a, c);
        for spec in &a {
            for s in [spec.r_scale, spec.l_scale, spec.c_scale, spec.source_scale] {
                assert!((0.5..=2.0).contains(&s));
            }
            assert_eq!(spec.temperature_delta, 25.0);
            assert!(spec.validate().is_ok());
        }
    }

    #[test]
    fn model_validation_rejects_bad_sigmas() {
        assert!(VariationModel::default().validate().is_ok());
        assert!(VariationModel::default()
            .with_r_sigma(-0.1)
            .validate()
            .is_err());
        assert!(VariationModel::default()
            .with_vdd_sigma(0.9)
            .validate()
            .is_err());
        assert!(VariationModel::default()
            .with_c_sigma(f64::NAN)
            .validate()
            .is_err());
        assert!(VariationModel::default()
            .with_temperature_delta(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn report_reduces_samples_and_finds_the_worst() {
        let mk = |delay: f64, noise: Option<f64>| SampleResult {
            spec: VariationSpec::nominal(),
            delay,
            slew: 2.0 * delay,
            peak_noise: noise,
            backend: "test",
        };
        let report = DistributionReport::from_samples(
            "net".into(),
            vec![
                mk(10e-12, None),
                mk(30e-12, Some(0.2)),
                mk(20e-12, Some(0.1)),
            ],
        );
        assert_eq!(report.num_samples(), 3);
        assert!((report.delay().mean - 20e-12).abs() < 1e-18);
        assert_eq!(report.delay().max, 30e-12);
        let (index, worst) = report.worst_sample();
        assert_eq!(index, 1);
        assert_eq!(worst.delay, 30e-12);
        let noise = report.peak_noise().expect("two samples carried noise");
        assert_eq!(noise.count, 2);
        assert_eq!(noise.max, 0.2);
        assert!(report.describe().contains("3 samples"));
        assert!(report.describe().contains("worst sample #1"));
    }
}
