//! Incremental re-analysis (ECO) subsystem: a persistent, content-addressed
//! stage-result cache.
//!
//! After an engineering change order edits one stage of a large design,
//! almost everything downstream of the signoff flow is unchanged — but a
//! naive re-run re-simulates every stage. The [`StageResultCache`] makes the
//! re-run incremental: every completed [`StageReport`] is persisted under a
//! key derived from the *full identity* of the work that produced it, and an
//! [`crate::AnalysisSession`] whose engine was configured with
//! [`crate::EngineConfigBuilder::result_cache_dir`] consults the store before
//! dispatching a stage to a backend. A hit short-circuits the stage — no
//! effective-capacitance iteration, no transient simulation, no far-end
//! propagation — and feeds its dependents exactly as a fresh run would.
//!
//! ## The cache key
//!
//! A stage's key is an FNV-1a fingerprint over every input that can change
//! its report:
//!
//! * the **driver cell** — inverter spec (widths, device parameters,
//!   supply), the characterized timing table, and the extracted
//!   on-resistance;
//! * the **load topology** — a type tag plus every element value, via
//!   [`crate::LoadModel::cache_fingerprint`];
//! * the **input** — the fixed [`InputEvent`], or, for dependent stages, the
//!   *producer's own cache key* plus the tapped sink name. Keys therefore
//!   chain transitively: editing one stage changes its key, which changes
//!   its consumers' keys, and so on down the dependency cone — while
//!   untouched upstream stages and sibling branches keep their keys and hit;
//! * the **engine configuration** knobs that affect results — backend
//!   choice, Ceff strategy, iteration/criteria tolerances, golden fidelity,
//!   per-case Rs extraction, lint level, and the session's handoff options.
//!
//! Stages that cannot be fingerprinted faithfully — a user-supplied
//! [`crate::BackendChoice::Custom`] backend, or a custom [`crate::LoadModel`]
//! that does not implement [`crate::LoadModel::cache_fingerprint`] — are
//! simply never cached: correctness degrades to a cache miss, not to a stale
//! answer.
//!
//! ## The store
//!
//! Entries use the same defensive idiom as the characterization cache
//! (`rlc-charlib`): a versioned binary layout (magic, format version, echoed
//! key, length-prefixed payload, FNV-1a checksum), atomic
//! write-to-temp-then-rename stores so concurrent writers never tear an
//! entry, and *silent fallback-and-heal* on any read damage — a truncated,
//! corrupted, stale-versioned or foreign entry is treated as a miss, the
//! stage re-simulates, and the store overwrites the damaged entry.
//!
//! Reports are stored bit-exactly: every scalar round-trips through raw IEEE
//! bits, and the driver-output waveform is persisted as its exact model
//! parameters ([`crate::ceff::SingleRampModel`] /
//! [`crate::ceff::TwoRampModel`]) or exact samples
//! ([`crate::SampledWaveform`]), so a dependent stage resolved from a cached
//! producer sees bit-identical handoff waveforms.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rlc_ceff::{SingleRampModel, TwoRampModel};
use rlc_lint::{Diagnostic, LintLevel, Severity};
use rlc_spice::{MosfetParams, MosfetType, Waveform};

use crate::backend::StageReport;
use crate::config::{CeffStrategy, EngineConfig, SessionOptions};
use crate::driver::SampledWaveform;
use crate::error::EngineError;
use crate::stage::{BackendChoice, InputEvent, Stage};

/// Magic prefix of every stage-result cache entry.
const MAGIC: &[u8; 8] = b"RLCECO\0\0";

/// Bumped whenever the entry layout or the key recipe changes; entries
/// written by other versions silently read as misses.
pub const FORMAT_VERSION: u32 = 1;

/// Distinguishes temp files of concurrent writers within one process.
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// ---------------------------------------------------------------------------
// Byte codec (shared by the fingerprints and the entry payload, so keyed
// fields and stored fields can never diverge).
// ---------------------------------------------------------------------------

#[derive(Default)]
pub(crate) struct Enc(Vec<u8>);

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.0.push(u8::from(v));
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Raw IEEE bits: `f64::to_bits` round-trips every value (including
    /// signed zeros and NaN payloads) exactly.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v.as_bytes());
    }
    pub(crate) fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
    pub(crate) fn finish(self) -> Vec<u8> {
        self.0
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec { bytes, at: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn str(&mut self) -> Option<String> {
        let len = usize::try_from(self.u64()?).ok()?;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
    fn f64s(&mut self) -> Option<Vec<f64>> {
        let len = usize::try_from(self.u64()?).ok()?;
        // Defensive cap: a torn length prefix must not drive a huge
        // allocation before the checksum would have rejected the entry.
        if len > self.bytes.len() / 8 + 1 {
            return None;
        }
        (0..len).map(|_| self.f64()).collect()
    }
    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

// ---------------------------------------------------------------------------
// Waveform persistence
// ---------------------------------------------------------------------------

/// Exact persistable description of a driver-output waveform, produced by
/// [`crate::DriverModel::cache_descriptor`]. Covers every waveform the
/// engine's own backends emit; custom `DriverModel` implementations return
/// `None` and their reports are simply not cached.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveformDescriptor {
    /// The paper's saturated single ramp.
    SingleRamp {
        /// Supply voltage (V).
        vdd: f64,
        /// Full-swing ramp duration (s).
        tr: f64,
        /// Absolute start time (s).
        start_time: f64,
    },
    /// The paper's two-ramp waveform.
    TwoRamp {
        /// Supply voltage (V).
        vdd: f64,
        /// Breakpoint fraction `f = Z0/(Z0+Rs)`.
        f: f64,
        /// First-ramp full-swing duration (s).
        tr1: f64,
        /// Second-ramp full-swing duration (s).
        tr2: f64,
        /// Absolute start time (s).
        start_time: f64,
    },
    /// A sampled simulator waveform, stored sample-exactly.
    Sampled {
        /// Supply voltage (V).
        vdd: f64,
        /// Sample times (s), strictly increasing.
        times: Vec<f64>,
        /// Sample values (V).
        values: Vec<f64>,
    },
}

impl WaveformDescriptor {
    fn encode(&self, e: &mut Enc) {
        match self {
            WaveformDescriptor::SingleRamp {
                vdd,
                tr,
                start_time,
            } => {
                e.u8(0);
                e.f64(*vdd);
                e.f64(*tr);
                e.f64(*start_time);
            }
            WaveformDescriptor::TwoRamp {
                vdd,
                f,
                tr1,
                tr2,
                start_time,
            } => {
                e.u8(1);
                e.f64(*vdd);
                e.f64(*f);
                e.f64(*tr1);
                e.f64(*tr2);
                e.f64(*start_time);
            }
            WaveformDescriptor::Sampled { vdd, times, values } => {
                e.u8(2);
                e.f64(*vdd);
                e.f64s(times);
                e.f64s(values);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Option<WaveformDescriptor> {
        match d.u8()? {
            0 => Some(WaveformDescriptor::SingleRamp {
                vdd: d.f64()?,
                tr: d.f64()?,
                start_time: d.f64()?,
            }),
            1 => Some(WaveformDescriptor::TwoRamp {
                vdd: d.f64()?,
                f: d.f64()?,
                tr1: d.f64()?,
                tr2: d.f64()?,
                start_time: d.f64()?,
            }),
            2 => Some(WaveformDescriptor::Sampled {
                vdd: d.f64()?,
                times: d.f64s()?,
                values: d.f64s()?,
            }),
            _ => None,
        }
    }

    /// Rebuilds the concrete waveform. `None` when the stored parameters
    /// would violate a model invariant (the constructors assert) — treated
    /// as entry damage by the caller.
    fn rebuild(&self) -> Option<Arc<dyn crate::DriverModel>> {
        match self {
            WaveformDescriptor::SingleRamp {
                vdd,
                tr,
                start_time,
            } => (*vdd > 0.0 && *tr > 0.0 && start_time.is_finite())
                .then(|| SingleRampModel::new(*vdd, *tr, *start_time))
                .map(|m| Arc::new(m) as Arc<dyn crate::DriverModel>),
            WaveformDescriptor::TwoRamp {
                vdd,
                f,
                tr1,
                tr2,
                start_time,
            } => (*vdd > 0.0
                && *f > 0.0
                && *f < 1.0
                && *tr1 > 0.0
                && *tr2 > 0.0
                && start_time.is_finite())
            .then(|| TwoRampModel::new(*vdd, *f, *tr1, *tr2, *start_time))
            .map(|m| Arc::new(m) as Arc<dyn crate::DriverModel>),
            WaveformDescriptor::Sampled { vdd, times, values } => {
                sampled_from_parts(*vdd, times, values)
                    .map(|s| Arc::new(s) as Arc<dyn crate::DriverModel>)
            }
        }
    }
}

/// Validates stored samples before handing them to `Waveform::new`, whose
/// invariants are asserts: a checksummed-but-hostile entry must degrade to a
/// miss, never a panic.
fn sampled_from_parts(vdd: f64, times: &[f64], values: &[f64]) -> Option<SampledWaveform> {
    if times.len() != values.len() || times.len() < 2 {
        return None;
    }
    if !times.windows(2).all(|w| w[1] > w[0]) {
        return None;
    }
    if times.iter().chain(values.iter()).any(|v| !v.is_finite()) {
        return None;
    }
    if !vdd.is_finite() || vdd <= 0.0 {
        return None;
    }
    Some(SampledWaveform::new(
        Waveform::new(times.to_vec(), values.to_vec()),
        vdd,
    ))
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

fn encode_mosfet(e: &mut Enc, p: &MosfetParams) {
    e.u8(match p.mos_type {
        MosfetType::Nmos => 0,
        MosfetType::Pmos => 1,
    });
    e.f64(p.vth);
    e.f64(p.alpha);
    e.f64(p.k_sat);
    e.f64(p.k_v);
    e.f64(p.lambda);
    e.f64(p.c_gate_per_width);
    e.f64(p.c_junction_per_width);
}

/// Fingerprint of a characterized driver cell: the inverter spec, the full
/// timing table and the extracted on-resistance. Any recharacterization that
/// changes a single table entry changes the fingerprint.
pub fn driver_fingerprint(cell: &rlc_charlib::DriverCell) -> u64 {
    let mut e = Enc::default();
    let spec = cell.spec();
    e.f64(spec.nmos_width);
    e.f64(spec.pmos_width);
    e.f64(spec.vdd);
    encode_mosfet(&mut e, &spec.nmos);
    encode_mosfet(&mut e, &spec.pmos);
    let table = cell.table();
    e.f64s(table.slew_axis());
    e.f64s(table.load_axis());
    for row in table.delay_rows() {
        e.f64s(row);
    }
    for row in table.transition_rows() {
        e.f64s(row);
    }
    e.f64(cell.on_resistance());
    fnv(&e.finish())
}

/// Fingerprint of every engine/session knob that can change a report:
/// backend-independent tolerances, strategy, golden fidelity, lint level and
/// the session's handoff options. Scheduling-only knobs (threads, deadline,
/// in-flight cap) are deliberately excluded.
fn config_fingerprint(config: &EngineConfig, options: &SessionOptions) -> u64 {
    let mut e = Enc::default();
    e.f64(config.iteration.rel_tolerance);
    e.u64(config.iteration.max_iterations as u64);
    e.f64(config.iteration.damping);
    e.f64(config.iteration.min_fraction_of_total);
    e.f64(config.criteria.load_fraction_limit);
    e.f64(config.criteria.line_resistance_factor);
    e.f64(config.criteria.driver_resistance_factor);
    e.f64(config.criteria.rise_time_factor);
    e.bool(config.extract_rs_per_case);
    e.u8(match config.strategy {
        CeffStrategy::Auto => 0,
        CeffStrategy::ForceSingleRamp => 1,
        CeffStrategy::ForceTwoRamp => 2,
    });
    e.u64(config.golden.segments as u64);
    e.f64(config.golden.time_step);
    e.f64(config.golden.max_stop_time);
    e.u8(match config.lint_level {
        LintLevel::Off => 0,
        LintLevel::Warn => 1,
        LintLevel::Deny => 2,
    });
    e.u64(options.far_end.segments as u64);
    e.f64(options.far_end.time_step);
    e.f64(options.far_end.settle_time);
    e.bool(options.sampled_handoff);
    fnv(&e.finish())
}

/// The input half of a stage's identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputFingerprint<'a> {
    /// A fixed input event ([`crate::StageBuilder::input_slew`]).
    Fixed(InputEvent),
    /// Input taken from the producer's primary far end; `producer` is the
    /// producer's own combined cache key, so upstream changes propagate
    /// through the cone transitively.
    FarEnd {
        /// The producer's combined cache key.
        producer: u64,
    },
    /// Input taken from a named sink of the producer's load.
    Sink {
        /// The producer's combined cache key.
        producer: u64,
        /// The tapped sink name.
        sink: &'a str,
    },
}

fn input_fingerprint(input: &InputFingerprint<'_>) -> u64 {
    let mut e = Enc::default();
    match input {
        InputFingerprint::Fixed(event) => {
            e.u8(0);
            e.f64(event.slew);
            e.f64(event.delay);
        }
        InputFingerprint::FarEnd { producer } => {
            e.u8(1);
            e.u64(*producer);
        }
        InputFingerprint::Sink { producer, sink } => {
            e.u8(2);
            e.u64(*producer);
            e.str(sink);
        }
    }
    fnv(&e.finish())
}

/// The content-addressed identity of one stage analysis: four component
/// fingerprints (driver, load, input, configuration+backend) plus the label,
/// combined into the 64-bit entry key. The components are echoed inside
/// every entry and re-verified on load, so a 64-bit key collision cannot
/// return another stage's report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageKey {
    driver: u64,
    load: u64,
    input: u64,
    config: u64,
    key: u64,
}

impl StageKey {
    /// The combined 64-bit key (the entry file name, and the value dependent
    /// stages chain into their own input fingerprints).
    pub fn value(&self) -> u64 {
        self.key
    }
}

/// Computes the cache key of `stage`, or `None` when the stage cannot be
/// fingerprinted faithfully (custom backend, custom load without
/// [`crate::LoadModel::cache_fingerprint`]) and must always re-simulate.
pub fn stage_key(
    stage: &Stage,
    input: InputFingerprint<'_>,
    config: &EngineConfig,
    options: &SessionOptions,
) -> Option<StageKey> {
    let backend_tag: u8 = match stage.backend() {
        None => 0,
        Some(BackendChoice::Analytic) => 1,
        Some(BackendChoice::Spice) => 2,
        // A user-supplied backend has no stable content fingerprint; treat
        // its stages as uncacheable rather than risk replaying a report the
        // current implementation would not produce.
        Some(BackendChoice::Custom(_)) => return None,
    };
    let load = stage.load().cache_fingerprint()?;
    let driver = driver_fingerprint(stage.driver());
    let input = input_fingerprint(&input);
    let config = {
        let mut e = Enc::default();
        e.u64(config_fingerprint(config, options));
        e.u8(backend_tag);
        fnv(&e.finish())
    };
    let key = {
        let mut e = Enc::default();
        e.u32(FORMAT_VERSION);
        e.u64(driver);
        e.u64(load);
        e.u64(input);
        e.u64(config);
        e.str(stage.label());
        fnv(&e.finish())
    };
    Some(StageKey {
        driver,
        load,
        input,
        config,
        key,
    })
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

fn intern_backend(name: &str) -> &'static str {
    match name {
        "analytic" => "analytic",
        "rlc-spice" => "rlc-spice",
        "reduced-order" => "reduced-order",
        // Unknown names cannot occur for cacheable stages (custom backends
        // are never cached), but a hand-edited entry must not break the
        // `&'static str` contract of `StageReport::backend`.
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

fn encode_severity(s: Severity) -> u8 {
    match s {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    }
}

fn decode_severity(v: u8) -> Option<Severity> {
    match v {
        0 => Some(Severity::Info),
        1 => Some(Severity::Warning),
        2 => Some(Severity::Error),
        _ => None,
    }
}

fn encode_payload(key: &StageKey, report: &StageReport, desc: &WaveformDescriptor) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(key.driver);
    e.u64(key.load);
    e.u64(key.input);
    e.u64(key.config);
    e.str(&report.label);
    e.str(report.backend);
    e.f64(report.delay);
    e.f64(report.slew);
    e.f64(report.input_t50);
    e.f64(report.vdd);
    e.bool(report.used_two_ramp);
    e.f64(report.elapsed_seconds);
    desc.encode(&mut e);
    match &report.simulated_far_end {
        None => e.u8(0),
        Some(far) => {
            e.u8(1);
            e.f64(far.vdd());
            e.f64s(far.waveform().times());
            e.f64s(far.waveform().values());
        }
    }
    e.u32(report.lints.len() as u32);
    for lint in &report.lints {
        e.str(&lint.code);
        e.u8(encode_severity(lint.severity));
        e.str(&lint.locus);
        e.str(&lint.message);
    }
    e.finish()
}

fn decode_payload(payload: &[u8], key: &StageKey, label: &str) -> Option<StageReport> {
    let mut d = Dec::new(payload);
    // Component echo: a 64-bit key collision (or a foreign entry renamed
    // under our key) is caught here, field by field.
    if d.u64()? != key.driver
        || d.u64()? != key.load
        || d.u64()? != key.input
        || d.u64()? != key.config
    {
        return None;
    }
    if d.str()? != label {
        return None;
    }
    let backend = intern_backend(&d.str()?);
    let delay = d.f64()?;
    let slew = d.f64()?;
    let input_t50 = d.f64()?;
    let vdd = d.f64()?;
    let used_two_ramp = d.bool()?;
    let elapsed_seconds = d.f64()?;
    let waveform = WaveformDescriptor::decode(&mut d)?.rebuild()?;
    let simulated_far_end = match d.u8()? {
        0 => None,
        1 => {
            let far_vdd = d.f64()?;
            let times = d.f64s()?;
            let values = d.f64s()?;
            Some(sampled_from_parts(far_vdd, &times, &values)?)
        }
        _ => return None,
    };
    let count = d.u32()?;
    // Defensive cap as for sample vectors: each lint takes ≥ 18 bytes.
    if count as usize > payload.len() / 18 + 1 {
        return None;
    }
    let mut lints = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let code = d.str()?;
        let severity = decode_severity(d.u8()?)?;
        let locus = d.str()?;
        let message = d.str()?;
        lints.push(Diagnostic::new(code, severity, locus, message));
    }
    if !d.done() {
        return None;
    }
    Some(StageReport {
        label: label.to_string(),
        backend,
        delay,
        slew,
        input_t50,
        vdd,
        used_two_ramp,
        waveform,
        simulated_far_end,
        // Analytic-flow internals are not persisted: a cached report keeps
        // the signoff essentials, not the iteration trace.
        analytic: None,
        lints,
        elapsed_seconds,
        cache_hit: true,
    })
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// A persistent, content-addressed store of completed [`StageReport`]s.
///
/// Open one through [`crate::EngineConfigBuilder::result_cache_dir`] (every
/// [`crate::AnalysisSession`] of that engine then consults it
/// automatically), or directly for tooling. Many processes may share one
/// directory: stores are atomic temp-file renames, and damaged or torn
/// entries read as misses.
#[derive(Debug)]
pub struct StageResultCache {
    dir: PathBuf,
}

impl StageResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    /// [`EngineError::Cache`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<StageResultCache, EngineError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| EngineError::Cache {
            what: format!(
                "could not create result-cache directory {}: {e}",
                dir.display()
            ),
        })?;
        Ok(StageResultCache { dir })
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The path an entry with combined key `key` ([`StageKey::value`]) lives
    /// at — exposed for tooling and damage-injection tests.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("stage-{key:016x}.bin"))
    }

    /// Loads the report stored under `key`, re-labelled checks included:
    /// `None` on a genuine miss *and* on any read damage (truncation, stale
    /// format version, checksum mismatch, foreign or colliding entry) — the
    /// caller re-simulates and the next [`StageResultCache::store`] heals
    /// the entry.
    pub fn load(&self, key: &StageKey, label: &str) -> Option<StageReport> {
        let bytes = fs::read(self.entry_path(key.value())).ok()?;
        decode_entry(&bytes, key, label)
    }

    /// Persists a report under `key` with an atomic temp-file + rename, so
    /// a concurrent reader sees either the old entry or the new one, never
    /// a torn write. Reports whose waveform has no
    /// [`crate::DriverModel::cache_descriptor`] are silently skipped (they
    /// can never be requested back: such stages also compute no key).
    ///
    /// # Errors
    /// [`EngineError::Cache`] on filesystem write failures.
    pub fn store(&self, key: &StageKey, report: &StageReport) -> Result<(), EngineError> {
        let Some(desc) = report.waveform.cache_descriptor() else {
            return Ok(());
        };
        let payload = encode_payload(key, report, &desc);
        let mut bytes = Vec::with_capacity(MAGIC.len() + 24 + payload.len() + 8);
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&key.value().to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv(&payload).to_le_bytes());

        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".stage-{:016x}.{}.{nonce}.tmp",
            key.value(),
            std::process::id()
        ));
        let write = (|| -> std::io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            fs::rename(&tmp, self.entry_path(key.value()))
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(EngineError::Cache {
                what: format!("could not persist stage result {:016x}: {e}", key.value()),
            });
        }
        Ok(())
    }
}

fn decode_entry(bytes: &[u8], key: &StageKey, label: &str) -> Option<StageReport> {
    let mut d = Dec::new(bytes);
    if d.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if d.u32()? != FORMAT_VERSION {
        return None;
    }
    if d.u64()? != key.value() {
        return None;
    }
    let len = usize::try_from(d.u64()?).ok()?;
    let payload = d.take(len)?;
    let checksum = d.u64()?;
    if !d.done() || fnv(payload) != checksum {
        return None;
    }
    decode_payload(payload, key, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::synthetic_cell_75x;
    use crate::{DistributedRlcLoad, LumpedCapLoad};
    use rlc_interconnect::prelude::*;
    use rlc_numeric::units::{ff, ps};

    fn line() -> RlcLine {
        EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(2.0), um(1.6)))
    }

    fn some_stage(label: &str, c_load: f64) -> Stage {
        Stage::builder(
            synthetic_cell_75x(),
            DistributedRlcLoad::new(line(), c_load).unwrap(),
        )
        .label(label)
        .input_slew(ps(100.0))
        .build()
        .unwrap()
    }

    fn key_of(stage: &Stage) -> StageKey {
        stage_key(
            stage,
            InputFingerprint::Fixed(stage.input()),
            &EngineConfig::default(),
            &SessionOptions::default(),
        )
        .expect("built-in stages are cacheable")
    }

    #[test]
    fn key_covers_driver_load_input_config_and_label() {
        let base = key_of(&some_stage("a", ff(10.0)));
        assert_eq!(base, key_of(&some_stage("a", ff(10.0))), "deterministic");

        let other_load = key_of(&some_stage("a", ff(20.0)));
        assert_ne!(base.value(), other_load.value());

        let other_label = key_of(&some_stage("b", ff(10.0)));
        assert_ne!(base.value(), other_label.value());

        let stage = some_stage("a", ff(10.0));
        let other_config = stage_key(
            &stage,
            InputFingerprint::Fixed(stage.input()),
            &EngineConfig::builder().extract_rs_per_case(false).build(),
            &SessionOptions::default(),
        )
        .unwrap();
        assert_ne!(base.value(), other_config.value());

        let other_input = stage_key(
            &stage,
            InputFingerprint::FarEnd { producer: 7 },
            &EngineConfig::default(),
            &SessionOptions::default(),
        )
        .unwrap();
        assert_ne!(base.value(), other_input.value());
        let other_producer = stage_key(
            &stage,
            InputFingerprint::FarEnd { producer: 8 },
            &EngineConfig::default(),
            &SessionOptions::default(),
        )
        .unwrap();
        assert_ne!(other_input.value(), other_producer.value());
    }

    #[test]
    fn custom_load_without_fingerprint_is_uncacheable() {
        #[derive(Debug)]
        struct Opaque(LumpedCapLoad);
        impl crate::LoadModel for Opaque {
            fn reduce(&self) -> Result<rlc_ceff::flow::ReducedLoad, EngineError> {
                self.0.reduce()
            }
            fn total_capacitance(&self) -> f64 {
                self.0.total_capacitance()
            }
            fn attach(
                &self,
                ckt: &mut rlc_spice::Circuit,
                near: rlc_spice::NodeId,
                v_initial: f64,
                segments: usize,
            ) -> Result<rlc_spice::NodeId, EngineError> {
                self.0.attach(ckt, near, v_initial, segments)
            }
            fn describe(&self) -> String {
                "opaque".into()
            }
        }
        let stage = Stage::builder(
            synthetic_cell_75x(),
            Opaque(LumpedCapLoad::new(ff(100.0)).unwrap()),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        assert!(stage_key(
            &stage,
            InputFingerprint::Fixed(stage.input()),
            &EngineConfig::default(),
            &SessionOptions::default(),
        )
        .is_none());
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("rlc-eco-rt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = StageResultCache::open(&dir).unwrap();

        let stage = some_stage("rt", ff(10.0));
        let engine = crate::TimingEngine::new(EngineConfig::default());
        let report = engine.analyze(&stage).unwrap();
        let key = key_of(&stage);

        assert!(cache.load(&key, "rt").is_none(), "cold store is empty");
        cache.store(&key, &report).unwrap();
        let cached = cache.load(&key, "rt").expect("stored entry loads");

        assert_eq!(cached.label, report.label);
        assert_eq!(cached.backend, report.backend);
        assert_eq!(cached.delay.to_bits(), report.delay.to_bits());
        assert_eq!(cached.slew.to_bits(), report.slew.to_bits());
        assert_eq!(cached.input_t50.to_bits(), report.input_t50.to_bits());
        assert_eq!(cached.vdd.to_bits(), report.vdd.to_bits());
        assert_eq!(cached.used_two_ramp, report.used_two_ramp);
        assert_eq!(cached.lints, report.lints);
        assert!(cached.cache_hit && !report.cache_hit);
        // The waveform replays exactly: same samples out of `to_source`.
        let t_stop = report.waveform.end_time() + ps(100.0);
        let a = report.waveform.to_source(t_stop);
        let b = cached.waveform.to_source(t_stop);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_label_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("rlc-eco-lb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = StageResultCache::open(&dir).unwrap();
        let stage = some_stage("lbl", ff(10.0));
        let engine = crate::TimingEngine::new(EngineConfig::default());
        let report = engine.analyze(&stage).unwrap();
        let key = key_of(&stage);
        cache.store(&key, &report).unwrap();
        assert!(cache.load(&key, "other").is_none());
        assert!(cache.load(&key, "lbl").is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
