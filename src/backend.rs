//! The [`AnalysisBackend`] extension trait and the two built-in backends:
//! the paper's analytic effective-capacitance flow ([`AnalyticBackend`]) and
//! the golden transistor-level simulation ([`SpiceBackend`]), selectable per
//! stage within one batch.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use rlc_ceff::far_end::FarEndOptions;
use rlc_ceff::flow::{DriverOutputModeler, ModelWaveform};
use rlc_ceff::{CeffIteration, CriteriaReport};
use rlc_moments::RationalAdmittance;
use rlc_numeric::units::ps;
use rlc_spice::circuit::Circuit;
use rlc_spice::testbench::{add_inverter_driver, add_inverter_driver_with_input, OutputTransition};
use rlc_spice::transient::{
    TransientAnalysis, TransientOptions, TransientResult, TransientWorkspace,
};
use rlc_spice::{SourceWaveform, SpiceError, Waveform};

use crate::config::{CeffStrategy, EngineConfig};
use crate::driver::{DriverModel, SampledWaveform};
use crate::error::EngineError;
use crate::load::LoadModel;
use crate::stage::Stage;

thread_local! {
    /// Per-worker-thread simulation workspace: `analyze_many` fans stages
    /// across threads, and every golden simulation a thread runs (driver
    /// stages, far-end propagation) reuses one set of kernel buffers.
    static SIM_WORKSPACE: RefCell<TransientWorkspace> = RefCell::new(TransientWorkspace::new());
}

/// Runs a transient analysis through this thread's cached workspace.
fn run_transient(options: TransientOptions, ckt: &Circuit) -> Result<TransientResult, SpiceError> {
    SIM_WORKSPACE.with(|ws| TransientAnalysis::new(options).run_with(ckt, &mut ws.borrow_mut()))
}

/// What a backend can consume and produce, reported through
/// [`AnalysisBackend::caps`] so loads, sessions and backends negotiate
/// instead of panicking on unsupported combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendCaps {
    /// The backend can drive the stage with an arbitrary **sampled input
    /// waveform** ([`Stage::input_waveform`]) instead of the ideal ramp of
    /// the input event. Sessions hand a producer's measured far-end waveform
    /// straight through to such backends; everyone else gets the
    /// slew-referenced ramp conversion.
    pub sampled_input: bool,
    /// Reports for physical loads with a distinct far end carry the
    /// simulated far-end waveform ([`StageReport::simulated_far_end`]), so a
    /// session can reuse it for the primary-far-end handoff without an extra
    /// propagation simulation.
    pub simulates_far_end: bool,
}

/// An analysis backend: turns a [`Stage`] into a [`StageReport`].
///
/// The trait is object-safe; engines and stages hold backends as
/// `Arc<dyn AnalysisBackend>`, so new backends (a faster reduced-order
/// solver, a remote simulation farm) plug in without touching the engine.
pub trait AnalysisBackend: std::fmt::Debug + Send + Sync {
    /// A short stable identifier, recorded in each report.
    fn name(&self) -> &'static str;

    /// The backend's capability report. The conservative default (no sampled
    /// input, no simulated far end) keeps custom backends working unchanged:
    /// a session then always applies the ramp conversion on handoff.
    fn caps(&self) -> BackendCaps {
        BackendCaps::default()
    }

    /// Analyzes one stage.
    ///
    /// # Errors
    /// Any [`EngineError`]; batch analysis records the error for this stage
    /// and continues with the rest.
    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError>;
}

/// Analytic-flow details recorded when the [`AnalyticBackend`] produced the
/// report.
#[derive(Debug, Clone)]
pub struct AnalyticDetails {
    /// The fitted (or exact) rational admittance of the load.
    pub fit: RationalAdmittance,
    /// Driver on-resistance used for the breakpoint (ohms).
    pub driver_resistance: f64,
    /// Voltage breakpoint fraction `f` (1.0 for loads without a line).
    pub breakpoint: f64,
    /// The converged first-ramp (or single-ramp) Ceff iteration.
    pub ceff1: CeffIteration,
    /// The converged second-ramp Ceff iteration (two-ramp models only).
    pub ceff2: Option<CeffIteration>,
    /// The Equation 9 evaluation.
    pub criteria: CriteriaReport,
}

/// The result of analyzing one stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Label of the analyzed stage.
    pub label: String,
    /// Name of the backend that produced the report.
    pub backend: &'static str,
    /// 50 % driver-output delay from the input's 50 % crossing (seconds).
    pub delay: f64,
    /// 10–90 % driver-output transition time (seconds).
    pub slew: f64,
    /// Absolute time of the input's 50 % crossing (seconds).
    pub input_t50: f64,
    /// Supply voltage (volts).
    pub vdd: f64,
    /// Whether the two-ramp waveform was selected.
    pub used_two_ramp: bool,
    /// The driver-output waveform, behind the [`DriverModel`] object.
    pub waveform: Arc<dyn DriverModel>,
    /// The simulated far-end waveform, when the backend simulated a load
    /// with a distinct far end (SPICE backend on line or pi loads).
    pub simulated_far_end: Option<SampledWaveform>,
    /// Analytic-flow internals (None for simulated reports).
    pub analytic: Option<AnalyticDetails>,
    /// Wall-clock time the analysis took (seconds).
    pub elapsed_seconds: f64,
}

impl StageReport {
    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        format!(
            "{}: [{}] delay = {:.1} ps, slew = {:.1} ps, {}",
            self.label,
            self.backend,
            self.delay * 1e12,
            self.slew * 1e12,
            self.waveform.describe()
        )
    }

    /// Replaces the driver with an ideal PWL source of this report's output
    /// waveform, attaches the load's netlist and runs the (linear, fast)
    /// propagation simulation. Shared by [`StageReport::far_end`] and
    /// [`StageReport::far_end_sinks`].
    fn propagate_through(
        &self,
        load: &dyn LoadModel,
        options: &FarEndOptions,
    ) -> Result<(TransientResult, crate::load::AttachedNet), EngineError> {
        let t_stop = self.waveform.end_time() + options.settle_time + load.settle_horizon();
        let source = self.waveform.to_source(t_stop);

        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("VDRV", near, Circuit::GROUND, source);
        ckt.set_initial_condition(near, 0.0);
        let net = load.attach_net(&mut ckt, near, 0.0, options.segments)?;

        let result = run_transient(TransientOptions::try_new(options.time_step, t_stop)?, &ckt)?;
        Ok((result, net))
    }

    /// Propagates this report's driver-output waveform through a load's
    /// netlist (an ideal PWL source driving the load — step 5 of the paper's
    /// flow) and measures the far-end response at the load's primary sink.
    ///
    /// # Errors
    /// Returns load/simulation errors, and a measurement error when the far
    /// end never completes its transition within the simulated window.
    pub fn far_end(
        &self,
        load: &dyn LoadModel,
        options: &FarEndOptions,
    ) -> Result<FarEndReport, EngineError> {
        let (result, net) = self.propagate_through(load, options)?;
        let far = result.waveform(net.primary);
        let t50 = far.crossing_fraction(0.5, self.vdd, true).ok_or_else(|| {
            EngineError::unsupported("far end never crossed 50% within the window".to_string())
        })?;
        let slew = far.slew_10_90(self.vdd, true).ok_or_else(|| {
            EngineError::unsupported("far end never completed 10-90% within the window".to_string())
        })?;
        Ok(FarEndReport {
            delay_from_input: t50 - self.input_t50,
            slew,
            overshoot: far.overshoot(self.vdd),
            waveform: far,
        })
    }

    /// Like [`StageReport::far_end`], but measures **every** named sink the
    /// load exposes ([`crate::LoadModel::attach_net`]): tree receiver pins,
    /// or the victim and aggressor far ends of a coupled bus.
    ///
    /// A sink that completes a transition reports its delay and slew; a sink
    /// that stays near its initial level (a quiet bus neighbour) reports
    /// `None` for both and carries the coupled disturbance in
    /// [`SinkFarEnd::peak_noise`].
    ///
    /// # Errors
    /// Returns load and simulation errors.
    pub fn far_end_sinks(
        &self,
        load: &dyn LoadModel,
        options: &FarEndOptions,
    ) -> Result<Vec<SinkFarEnd>, EngineError> {
        let (result, net) = self.propagate_through(load, options)?;
        Ok(net
            .sinks
            .into_iter()
            .map(|(name, node)| {
                let waveform = result.waveform(node);
                let v0 = waveform.values().first().copied().unwrap_or(0.0);
                let rising = waveform.last_value() > v0;
                // Measure each sink against its *own* settled swing, so an
                // aggressor driven below the victim supply still gets its 50%
                // and 10–90% crossings right; anything below half the supply
                // is treated as coupled noise, not a transition.
                let swing = (waveform.last_value() - v0).abs();
                let transitioned = swing > 0.5 * self.vdd;
                let delay_from_input = transitioned
                    .then(|| waveform.crossing_fraction(0.5, swing, rising))
                    .flatten()
                    .map(|t50| t50 - self.input_t50);
                let slew = transitioned
                    .then(|| waveform.slew_10_90(swing, rising))
                    .flatten();
                let peak_noise = waveform
                    .values()
                    .iter()
                    .map(|v| (v - v0).abs())
                    .fold(0.0, f64::max);
                SinkFarEnd {
                    sink: name,
                    delay_from_input,
                    slew,
                    overshoot: waveform.overshoot(self.vdd),
                    peak_noise,
                    waveform,
                }
            })
            .collect())
    }
}

/// The far-end measurement of one named sink
/// ([`StageReport::far_end_sinks`]).
#[derive(Debug, Clone)]
pub struct SinkFarEnd {
    /// The sink name (`"far"` for single-sink loads, tree pin names, or
    /// `"victim"` / `"aggressor"` for a coupled bus).
    pub sink: String,
    /// 50 % delay from the input's 50 % crossing (seconds); `None` when the
    /// sink never completed a transition (for example a quiet aggressor).
    pub delay_from_input: Option<f64>,
    /// 10–90 % transition time (seconds); `None` without a transition.
    pub slew: Option<f64>,
    /// Overshoot above the supply (volts).
    pub overshoot: f64,
    /// Largest excursion from the sink's initial level (volts) — the coupled
    /// noise for sinks that are not supposed to switch.
    pub peak_noise: f64,
    /// The sink voltage waveform.
    pub waveform: Waveform,
}

/// The far-end response obtained by driving a load with a modelled (or
/// simulated) driver-output waveform.
#[derive(Debug, Clone)]
pub struct FarEndReport {
    /// 50 % far-end delay from the input's 50 % crossing (seconds).
    pub delay_from_input: f64,
    /// 10–90 % far-end transition time (seconds).
    pub slew: f64,
    /// Far-end overshoot above the supply (volts).
    pub overshoot: f64,
    /// The far-end voltage waveform.
    pub waveform: Waveform,
}

/// The paper's analytic effective-capacitance flow as a backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticBackend;

impl AnalysisBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        let started = Instant::now();
        let load = stage.load().reduce()?;
        let input = stage.input();
        let modeler = DriverOutputModeler::new(config.modeling_config());
        let model = match config.strategy {
            CeffStrategy::Auto => {
                modeler.model_reduced(stage.driver(), &load, input.slew, input.delay)
            }
            CeffStrategy::ForceSingleRamp => {
                modeler.model_reduced_single_ramp(stage.driver(), &load, input.slew, input.delay)
            }
            CeffStrategy::ForceTwoRamp => {
                modeler.model_reduced_two_ramp(stage.driver(), &load, input.slew, input.delay)
            }
        }?;
        let waveform: Arc<dyn DriverModel> = match model.waveform {
            ModelWaveform::SingleRamp(m) => Arc::new(m),
            ModelWaveform::TwoRamp(m) => Arc::new(m),
        };
        Ok(StageReport {
            label: stage.label().to_string(),
            backend: self.name(),
            delay: model.delay(),
            slew: model.slew(),
            input_t50: model.input_t50,
            vdd: model.vdd,
            used_two_ramp: model.is_two_ramp(),
            waveform,
            simulated_far_end: None,
            analytic: Some(AnalyticDetails {
                fit: model.fit,
                driver_resistance: model.driver_resistance,
                breakpoint: model.breakpoint,
                ceff1: model.ceff1,
                ceff2: model.ceff2,
                criteria: model.criteria,
            }),
            elapsed_seconds: started.elapsed().as_secs_f64(),
        })
    }
}

/// The golden transistor-level simulation as a backend: builds the inverter
/// testbench, attaches the stage's load netlist, runs the transient analysis
/// and measures the driver output.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpiceBackend;

impl AnalysisBackend for SpiceBackend {
    fn name(&self) -> &'static str {
        "rlc-spice"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            sampled_input: true,
            simulates_far_end: true,
        }
    }

    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        let started = Instant::now();
        let input = stage.input();
        let spec = stage.driver().spec();
        let golden = &config.golden;

        let mut ckt = Circuit::new();
        let nodes = match stage.input_waveform() {
            // Sampled handoff: drive the inverter gate with the measured
            // upstream waveform, mirrored around the supply because the
            // rising upstream transition is the *falling* gate input of this
            // (inverting) stage's rising output. Only well-defined when both
            // stages share a supply rail — a cross-rail chain (the mirror
            // would not reach ground) falls back to the slew-referenced ramp
            // the session always resolves alongside the waveform.
            Some(sampled) if (sampled.vdd() - spec.vdd).abs() <= 1e-6 * spec.vdd => {
                let mut pts: Vec<(f64, f64)> = sampled
                    .waveform()
                    .times()
                    .iter()
                    .zip(sampled.waveform().values())
                    .map(|(&t, &v)| (t, spec.vdd - v))
                    .collect();
                if let Some(&(last_t, last_v)) = pts.last() {
                    pts.push((last_t.max(golden.max_stop_time) + ps(1.0), last_v));
                }
                add_inverter_driver_with_input(
                    &mut ckt,
                    spec,
                    SourceWaveform::pwl(pts),
                    OutputTransition::Rising,
                )
            }
            _ => add_inverter_driver(
                &mut ckt,
                spec,
                input.slew,
                input.delay,
                OutputTransition::Rising,
            ),
        };
        let far_node = stage
            .load()
            .attach(&mut ckt, nodes.output, 0.0, golden.segments)?;

        // Simulation window: the input ramp, several round trips on any net
        // (2.5 × the load's settle horizon = 10 × the time of flight for a
        // single line, and covers branch sums and late aggressor events),
        // and the RC settling of the driver against the full load.
        let line_r = stage
            .load()
            .wave()
            .map(|w| w.line_resistance)
            .unwrap_or(0.0);
        let rs_estimate = 3.0e-3 / spec.nmos_width;
        let settle = 8.0 * (rs_estimate + line_r) * stage.load().total_capacitance();
        // The runaway cap bounds the simulated window *after* the input
        // event, not absolute time: chained session stages carry absolute
        // delays that grow along the path, and capping at an absolute
        // max_stop_time would truncate a late stage's window to nothing.
        let t_stop =
            (input.delay + input.slew + 2.5 * stage.load().settle_horizon() + settle + ps(200.0))
                .min(input.delay + golden.max_stop_time);

        let result = run_transient(TransientOptions::try_new(golden.time_step, t_stop)?, &ckt)?;
        let input_wave = result.waveform(nodes.input);
        let near = result.waveform(nodes.output);
        let vdd = spec.vdd;

        let input_t50 = input_wave
            .crossing_fraction(0.5, vdd, false)
            .ok_or_else(|| {
                EngineError::unsupported(
                    "simulated input never crossed 50% of the supply".to_string(),
                )
            })?;
        let t50 = near.crossing_fraction(0.5, vdd, true).ok_or_else(|| {
            EngineError::unsupported(
                "simulated driver output never crossed 50% within the window".to_string(),
            )
        })?;
        let slew = near.slew_10_90(vdd, true).ok_or_else(|| {
            EngineError::unsupported(
                "simulated driver output never completed the 10-90% transition".to_string(),
            )
        })?;

        let simulated_far_end = if far_node != nodes.output {
            Some(SampledWaveform::new(result.waveform(far_node), vdd))
        } else {
            None
        };
        Ok(StageReport {
            label: stage.label().to_string(),
            backend: self.name(),
            delay: t50 - input_t50,
            slew,
            input_t50,
            vdd,
            used_two_ramp: false,
            waveform: Arc::new(SampledWaveform::new(near, vdd)),
            simulated_far_end,
            analytic: None,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{DistributedRlcLoad, LumpedCapLoad};
    use rlc_interconnect::RlcLine;
    use rlc_numeric::units::{ff, mm, nh, pf};

    fn fast_config() -> EngineConfig {
        EngineConfig::fast_for_tests()
    }

    #[test]
    fn analytic_backend_selects_two_ramp_for_the_flagship_case() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            DistributedRlcLoad::new(line, ff(10.0)).unwrap(),
        )
        .label("flagship")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = AnalyticBackend.analyze(&stage, &fast_config()).unwrap();
        assert!(report.used_two_ramp);
        assert_eq!(report.backend, "analytic");
        let details = report.analytic.as_ref().unwrap();
        assert!(details.ceff2.unwrap().ceff > details.ceff1.ceff);
        assert!(details.breakpoint > 0.4 && details.breakpoint < 0.6);
        assert!(report.delay > 0.0 && report.slew > report.delay);
        assert!(report.describe().contains("flagship"));
        assert!(report.elapsed_seconds >= 0.0);
    }

    #[test]
    fn strategy_forces_the_waveform_shape() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            DistributedRlcLoad::new(line, ff(10.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let single_cfg = EngineConfig {
            strategy: CeffStrategy::ForceSingleRamp,
            ..fast_config()
        };
        let one = AnalyticBackend.analyze(&stage, &single_cfg).unwrap();
        assert!(!one.used_two_ramp);
        let two_cfg = EngineConfig {
            strategy: CeffStrategy::ForceTwoRamp,
            ..fast_config()
        };
        let two = AnalyticBackend.analyze(&stage, &two_cfg).unwrap();
        assert!(two.used_two_ramp);
        assert!(one.slew < two.slew);
    }

    #[test]
    fn analytic_backend_handles_lumped_loads() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(400.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = AnalyticBackend.analyze(&stage, &fast_config()).unwrap();
        assert!(!report.used_two_ramp);
        let details = report.analytic.as_ref().unwrap();
        assert!((details.ceff1.ceff - ff(400.0)).abs() < 1e-21);
        assert_eq!(details.breakpoint, 1.0);
    }

    #[test]
    fn spice_backend_measures_a_real_transition() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(300.0)).unwrap(),
        )
        .label("sim")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = SpiceBackend.analyze(&stage, &fast_config()).unwrap();
        assert_eq!(report.backend, "rlc-spice");
        assert!(report.analytic.is_none());
        assert!(report.delay > 0.0 && report.slew > 0.0);
        // The sampled waveform completes the transition.
        assert!(report.waveform.v(report.waveform.end_time() + ps(200.0)) > 0.9 * report.vdd);
    }
}
