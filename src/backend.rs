//! The [`AnalysisBackend`] extension trait and the two built-in backends:
//! the paper's analytic effective-capacitance flow ([`AnalyticBackend`]) and
//! the golden transistor-level simulation ([`SpiceBackend`]), selectable per
//! stage within one batch.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use rlc_ceff::far_end::FarEndOptions;
use rlc_ceff::flow::{DriverOutputModeler, ModelWaveform};
use rlc_ceff::{CeffIteration, CriteriaReport};
use rlc_moments::{tree_transfer_moments, RationalAdmittance, TransferModel};
use rlc_numeric::units::ps;
use rlc_numeric::Diagnostic;
use rlc_spice::circuit::Circuit;
use rlc_spice::testbench::{add_inverter_driver, add_inverter_driver_with_input, OutputTransition};
use rlc_spice::transient::{
    TransientAnalysis, TransientOptions, TransientResult, TransientWorkspace,
};
use rlc_spice::{SourceWaveform, SpiceError, Waveform};

use crate::config::{CeffStrategy, EngineConfig};
use crate::driver::{DriverModel, SampledWaveform};
use crate::error::EngineError;
use crate::load::LoadModel;
use crate::stage::Stage;

thread_local! {
    /// Per-worker-thread simulation workspace: `analyze_many` fans stages
    /// across threads, and every golden simulation a thread runs (driver
    /// stages, far-end propagation) reuses one set of kernel buffers.
    static SIM_WORKSPACE: RefCell<TransientWorkspace> = RefCell::new(TransientWorkspace::new());
}

/// Runs a transient analysis through this thread's cached workspace.
fn run_transient(options: TransientOptions, ckt: &Circuit) -> Result<TransientResult, SpiceError> {
    SIM_WORKSPACE.with(|ws| TransientAnalysis::new(options).run_with(ckt, &mut ws.borrow_mut()))
}

/// The Info-level lint recording that a sparse transient kernel failed its
/// pivot-health gate and the run silently fell back to dense factor-once.
pub(crate) fn sparse_degrade_lint(locus: &str) -> Diagnostic {
    Diagnostic::info(
        rlc_lint::codes::SPARSE_DEGRADED,
        locus,
        "sparse kernel degraded to dense factor-once: the companion matrix failed the \
         pivot-health gate (near-singular stamp, often a floating or weakly anchored node)",
    )
}

/// What a backend can consume and produce, reported through
/// [`AnalysisBackend::caps`] so loads, sessions and backends negotiate
/// instead of panicking on unsupported combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendCaps {
    /// The backend can drive the stage with an arbitrary **sampled input
    /// waveform** ([`Stage::input_waveform`]) instead of the ideal ramp of
    /// the input event. Sessions hand a producer's measured far-end waveform
    /// straight through to such backends; everyone else gets the
    /// slew-referenced ramp conversion.
    pub sampled_input: bool,
    /// Reports for physical loads with a distinct far end carry the
    /// simulated far-end waveform ([`StageReport::simulated_far_end`]), so a
    /// session can reuse it for the primary-far-end handoff without an extra
    /// propagation simulation.
    pub simulates_far_end: bool,
}

/// An analysis backend: turns a [`Stage`] into a [`StageReport`].
///
/// The trait is object-safe; engines and stages hold backends as
/// `Arc<dyn AnalysisBackend>`, so new backends (a faster reduced-order
/// solver, a remote simulation farm) plug in without touching the engine.
pub trait AnalysisBackend: std::fmt::Debug + Send + Sync {
    /// A short stable identifier, recorded in each report.
    fn name(&self) -> &'static str;

    /// The backend's capability report. The conservative default (no sampled
    /// input, no simulated far end) keeps custom backends working unchanged:
    /// a session then always applies the ramp conversion on handoff.
    fn caps(&self) -> BackendCaps {
        BackendCaps::default()
    }

    /// Analyzes one stage.
    ///
    /// # Errors
    /// Any [`EngineError`]; batch analysis records the error for this stage
    /// and continues with the rest.
    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError>;
}

/// Analytic-flow details recorded when the [`AnalyticBackend`] produced the
/// report.
#[derive(Debug, Clone)]
pub struct AnalyticDetails {
    /// The fitted (or exact) rational admittance of the load.
    pub fit: RationalAdmittance,
    /// Driver on-resistance used for the breakpoint (ohms).
    pub driver_resistance: f64,
    /// Voltage breakpoint fraction `f` (1.0 for loads without a line).
    pub breakpoint: f64,
    /// The converged first-ramp (or single-ramp) Ceff iteration.
    pub ceff1: CeffIteration,
    /// The converged second-ramp Ceff iteration (two-ramp models only).
    pub ceff2: Option<CeffIteration>,
    /// The Equation 9 evaluation.
    pub criteria: CriteriaReport,
}

/// The result of analyzing one stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Label of the analyzed stage.
    pub label: String,
    /// Name of the backend that produced the report.
    pub backend: &'static str,
    /// 50 % driver-output delay from the input's 50 % crossing (seconds).
    pub delay: f64,
    /// 10–90 % driver-output transition time (seconds).
    pub slew: f64,
    /// Absolute time of the input's 50 % crossing (seconds).
    pub input_t50: f64,
    /// Supply voltage (volts).
    pub vdd: f64,
    /// Whether the two-ramp waveform was selected.
    pub used_two_ramp: bool,
    /// The driver-output waveform, behind the [`DriverModel`] object.
    pub waveform: Arc<dyn DriverModel>,
    /// The simulated far-end waveform, when the backend simulated a load
    /// with a distinct far end (SPICE backend on line or pi loads).
    pub simulated_far_end: Option<SampledWaveform>,
    /// Analytic-flow internals (None for simulated reports).
    pub analytic: Option<AnalyticDetails>,
    /// Lint findings attached to this report: the static pre-analysis audit
    /// (when [`crate::EngineConfig::lint_level`] is not `Off`) plus runtime
    /// observations such as a sparse-kernel degrade
    /// (`rlc_lint::codes::SPARSE_DEGRADED`). Empty under `LintLevel::Off`
    /// and for clean stages.
    pub lints: Vec<Diagnostic>,
    /// Wall-clock time the analysis took (seconds).
    pub elapsed_seconds: f64,
    /// Provenance: `true` when this report was replayed from the persistent
    /// stage-result cache ([`crate::StageResultCache`]) instead of being
    /// computed by a backend. Cached reports carry `analytic: None`.
    pub cache_hit: bool,
}

impl StageReport {
    /// One-line human-readable summary.
    pub fn describe(&self) -> String {
        format!(
            "{}: [{}] delay = {:.1} ps, slew = {:.1} ps, {}",
            self.label,
            self.backend,
            self.delay * 1e12,
            self.slew * 1e12,
            self.waveform.describe()
        )
    }

    /// Replaces the driver with an ideal PWL source of this report's output
    /// waveform, attaches the load's netlist and runs the (linear, fast)
    /// propagation simulation. Shared by [`StageReport::far_end`] and
    /// [`StageReport::far_end_sinks`].
    fn propagate_through(
        &self,
        load: &dyn LoadModel,
        options: &FarEndOptions,
    ) -> Result<(TransientResult, crate::load::AttachedNet), EngineError> {
        let t_stop = self.waveform.end_time() + options.settle_time + load.settle_horizon();
        let source = self.waveform.to_source(t_stop);

        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("VDRV", near, Circuit::GROUND, source);
        ckt.set_initial_condition(near, 0.0);
        let net = load.attach_net(&mut ckt, near, 0.0, options.segments)?;

        let result = run_transient(TransientOptions::try_new(options.time_step, t_stop)?, &ckt)?;
        Ok((result, net))
    }

    /// Propagates this report's driver-output waveform through a load's
    /// netlist (an ideal PWL source driving the load — step 5 of the paper's
    /// flow) and measures the far-end response at the load's primary sink.
    ///
    /// # Errors
    /// Returns load/simulation errors, and a measurement error when the far
    /// end never completes its transition within the simulated window.
    pub fn far_end(
        &self,
        load: &dyn LoadModel,
        options: &FarEndOptions,
    ) -> Result<FarEndReport, EngineError> {
        let (result, net) = self.propagate_through(load, options)?;
        let far = result.waveform(net.primary);
        let t50 = far.crossing_fraction(0.5, self.vdd, true).ok_or_else(|| {
            EngineError::unsupported("far end never crossed 50% within the window".to_string())
        })?;
        let slew = far.slew_10_90(self.vdd, true).ok_or_else(|| {
            EngineError::unsupported("far end never completed 10-90% within the window".to_string())
        })?;
        Ok(FarEndReport {
            delay_from_input: t50 - self.input_t50,
            slew,
            overshoot: far.overshoot(self.vdd),
            waveform: far,
            degraded_to_dense: result.degraded_to_dense(),
        })
    }

    /// Like [`StageReport::far_end`], but measures **every** named sink the
    /// load exposes ([`crate::LoadModel::attach_net`]): tree receiver pins,
    /// or the victim and aggressor far ends of a coupled bus.
    ///
    /// A sink that completes a transition reports its delay and slew; a sink
    /// that stays near its initial level (a quiet bus neighbour) reports
    /// `None` for both and carries the coupled disturbance in
    /// [`SinkFarEnd::peak_noise`].
    ///
    /// # Errors
    /// Returns load and simulation errors.
    pub fn far_end_sinks(
        &self,
        load: &dyn LoadModel,
        options: &FarEndOptions,
    ) -> Result<Vec<SinkFarEnd>, EngineError> {
        let (result, net) = self.propagate_through(load, options)?;
        Ok(net
            .sinks
            .into_iter()
            .map(|(name, node)| {
                let waveform = result.waveform(node);
                let v0 = waveform.values().first().copied().unwrap_or(0.0);
                let rising = waveform.last_value() > v0;
                // Measure each sink against its *own* settled swing, so an
                // aggressor driven below the victim supply still gets its 50%
                // and 10–90% crossings right; anything below half the supply
                // is treated as coupled noise, not a transition.
                let swing = (waveform.last_value() - v0).abs();
                let transitioned = swing > 0.5 * self.vdd;
                let delay_from_input = transitioned
                    .then(|| waveform.crossing_fraction(0.5, swing, rising))
                    .flatten()
                    .map(|t50| t50 - self.input_t50);
                let slew = transitioned
                    .then(|| waveform.slew_10_90(swing, rising))
                    .flatten();
                let peak_noise = waveform
                    .values()
                    .iter()
                    .map(|v| (v - v0).abs())
                    .fold(0.0, f64::max);
                SinkFarEnd {
                    sink: name,
                    delay_from_input,
                    slew,
                    overshoot: waveform.overshoot(self.vdd),
                    peak_noise,
                    waveform,
                }
            })
            .collect())
    }
}

/// The far-end measurement of one named sink
/// ([`StageReport::far_end_sinks`]).
#[derive(Debug, Clone)]
pub struct SinkFarEnd {
    /// The sink name (`"far"` for single-sink loads, tree pin names, or
    /// `"victim"` / `"aggressor"` for a coupled bus).
    pub sink: String,
    /// 50 % delay from the input's 50 % crossing (seconds); `None` when the
    /// sink never completed a transition (for example a quiet aggressor).
    pub delay_from_input: Option<f64>,
    /// 10–90 % transition time (seconds); `None` without a transition.
    pub slew: Option<f64>,
    /// Overshoot above the supply (volts).
    pub overshoot: f64,
    /// Largest excursion from the sink's initial level (volts) — the coupled
    /// noise for sinks that are not supposed to switch.
    pub peak_noise: f64,
    /// The sink voltage waveform.
    pub waveform: Waveform,
}

/// The far-end response obtained by driving a load with a modelled (or
/// simulated) driver-output waveform.
#[derive(Debug, Clone)]
pub struct FarEndReport {
    /// 50 % far-end delay from the input's 50 % crossing (seconds).
    pub delay_from_input: f64,
    /// 10–90 % far-end transition time (seconds).
    pub slew: f64,
    /// Far-end overshoot above the supply (volts).
    pub overshoot: f64,
    /// The far-end voltage waveform.
    pub waveform: Waveform,
    /// `true` when the propagation simulation's sparse kernel failed its
    /// pivot-health gate and silently fell back to the dense factor-once
    /// kernel — surfaced by the session as an Info-level
    /// `rlc_lint::codes::SPARSE_DEGRADED` lint on the consuming stage.
    pub degraded_to_dense: bool,
}

/// The paper's analytic effective-capacitance flow as a backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticBackend;

/// Runs the paper's analytic Ceff flow on a stage and assembles the report,
/// shared by [`AnalyticBackend`] and the driver-modeling half of
/// [`ReducedOrderBackend`] (which stamps its own backend name on the result).
fn analytic_stage_report(
    backend_name: &'static str,
    stage: &Stage,
    config: &EngineConfig,
) -> Result<StageReport, EngineError> {
    let started = Instant::now();
    let load = stage.load().reduce()?;
    let input = stage.input();
    let modeler = DriverOutputModeler::new(config.modeling_config());
    let model = match config.strategy {
        CeffStrategy::Auto => modeler.model_reduced(stage.driver(), &load, input.slew, input.delay),
        CeffStrategy::ForceSingleRamp => {
            modeler.model_reduced_single_ramp(stage.driver(), &load, input.slew, input.delay)
        }
        CeffStrategy::ForceTwoRamp => {
            modeler.model_reduced_two_ramp(stage.driver(), &load, input.slew, input.delay)
        }
    }?;
    let waveform: Arc<dyn DriverModel> = match model.waveform {
        ModelWaveform::SingleRamp(m) => Arc::new(m),
        ModelWaveform::TwoRamp(m) => Arc::new(m),
    };
    Ok(StageReport {
        label: stage.label().to_string(),
        backend: backend_name,
        delay: model.delay(),
        slew: model.slew(),
        input_t50: model.input_t50,
        vdd: model.vdd,
        used_two_ramp: model.is_two_ramp(),
        waveform,
        simulated_far_end: None,
        lints: Vec::new(),
        analytic: Some(AnalyticDetails {
            fit: model.fit,
            driver_resistance: model.driver_resistance,
            breakpoint: model.breakpoint,
            ceff1: model.ceff1,
            ceff2: model.ceff2,
            criteria: model.criteria,
        }),
        elapsed_seconds: started.elapsed().as_secs_f64(),
        cache_hit: false,
    })
}

impl AnalysisBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        analytic_stage_report(self.name(), stage, config)
    }
}

/// The golden transistor-level simulation as a backend: builds the inverter
/// testbench, attaches the stage's load netlist, runs the transient analysis
/// and measures the driver output.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpiceBackend;

impl AnalysisBackend for SpiceBackend {
    fn name(&self) -> &'static str {
        "rlc-spice"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            sampled_input: true,
            simulates_far_end: true,
        }
    }

    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        let started = Instant::now();
        let input = stage.input();
        let spec = stage.driver().spec();
        let golden = &config.golden;

        let mut ckt = Circuit::new();
        let nodes = match stage.input_waveform() {
            // Sampled handoff: drive the inverter gate with the measured
            // upstream waveform, mirrored around the supply because the
            // rising upstream transition is the *falling* gate input of this
            // (inverting) stage's rising output. Only well-defined when both
            // stages share a supply rail — a cross-rail chain (the mirror
            // would not reach ground) falls back to the slew-referenced ramp
            // the session always resolves alongside the waveform.
            Some(sampled) if (sampled.vdd() - spec.vdd).abs() <= 1e-6 * spec.vdd => {
                let mut pts: Vec<(f64, f64)> = sampled
                    .waveform()
                    .times()
                    .iter()
                    .zip(sampled.waveform().values())
                    .map(|(&t, &v)| (t, spec.vdd - v))
                    .collect();
                if let Some(&(last_t, last_v)) = pts.last() {
                    pts.push((last_t.max(golden.max_stop_time) + ps(1.0), last_v));
                }
                add_inverter_driver_with_input(
                    &mut ckt,
                    spec,
                    SourceWaveform::pwl(pts),
                    OutputTransition::Rising,
                )
            }
            _ => add_inverter_driver(
                &mut ckt,
                spec,
                input.slew,
                input.delay,
                OutputTransition::Rising,
            ),
        };
        let far_node = stage
            .load()
            .attach(&mut ckt, nodes.output, 0.0, golden.segments)?;

        // Simulation window: the input ramp, several round trips on any net
        // (2.5 × the load's settle horizon = 10 × the time of flight for a
        // single line, and covers branch sums and late aggressor events),
        // and the RC settling of the driver against the full load.
        let line_r = stage
            .load()
            .wave()
            .map(|w| w.line_resistance)
            .unwrap_or(0.0);
        let rs_estimate = 3.0e-3 / spec.nmos_width;
        let settle = 8.0 * (rs_estimate + line_r) * stage.load().total_capacitance();
        // The runaway cap bounds the simulated window *after* the input
        // event, not absolute time: chained session stages carry absolute
        // delays that grow along the path, and capping at an absolute
        // max_stop_time would truncate a late stage's window to nothing.
        let t_stop =
            (input.delay + input.slew + 2.5 * stage.load().settle_horizon() + settle + ps(200.0))
                .min(input.delay + golden.max_stop_time);

        let result = run_transient(TransientOptions::try_new(golden.time_step, t_stop)?, &ckt)?;
        let input_wave = result.waveform(nodes.input);
        let near = result.waveform(nodes.output);
        let vdd = spec.vdd;

        let input_t50 = input_wave
            .crossing_fraction(0.5, vdd, false)
            .ok_or_else(|| {
                EngineError::unsupported(
                    "simulated input never crossed 50% of the supply".to_string(),
                )
            })?;
        let t50 = near.crossing_fraction(0.5, vdd, true).ok_or_else(|| {
            EngineError::unsupported(
                "simulated driver output never crossed 50% within the window".to_string(),
            )
        })?;
        let slew = near.slew_10_90(vdd, true).ok_or_else(|| {
            EngineError::unsupported(
                "simulated driver output never completed the 10-90% transition".to_string(),
            )
        })?;

        let simulated_far_end = if far_node != nodes.output {
            Some(SampledWaveform::new(result.waveform(far_node), vdd))
        } else {
            None
        };
        // Nonlinear driver stages never take the sparse path today, but the
        // check costs nothing and keeps the degrade observable if that
        // changes.
        let lints = if result.degraded_to_dense() {
            vec![sparse_degrade_lint(stage.label())]
        } else {
            Vec::new()
        };
        Ok(StageReport {
            label: stage.label().to_string(),
            backend: self.name(),
            delay: t50 - input_t50,
            slew,
            input_t50,
            vdd,
            used_two_ramp: false,
            waveform: Arc::new(SampledWaveform::new(near, vdd)),
            simulated_far_end,
            lints,
            analytic: None,
            elapsed_seconds: started.elapsed().as_secs_f64(),
            cache_hit: false,
        })
    }
}

/// Why [`ReducedOrderBackend`] could not model a stage in moment space.
/// [`ReducedOrderBackend::analyze`] turns every one of these into a silent
/// fallback to full simulation; [`ReducedOrderBackend::analyze_reduced`]
/// surfaces them for callers that want to know.
#[derive(Debug, Clone)]
pub enum ReductionError {
    /// The load exposes no [`rlc_interconnect::RlcTree`] topology
    /// ([`LoadModel::tree_topology`] returned `None`) — lumped caps, pi
    /// models, coupled buses and moment-space loads.
    NoTreeTopology,
    /// The driver-side analytic Ceff flow failed (degenerate load fit,
    /// non-convergence).
    Driver(EngineError),
    /// The transfer-moment fit failed: degenerate transfer, repeated pole,
    /// or the unstable pole that AWE moment matching cannot rule out.
    Fit(rlc_moments::MomentError),
    /// The modeled far-end response never completed its transition within
    /// the sampled window — the reduced model is not trustworthy here.
    UnresolvedFarEnd,
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::NoTreeTopology => {
                write!(f, "load has no RLC-tree topology to reduce")
            }
            ReductionError::Driver(e) => write!(f, "driver modeling failed: {e}"),
            ReductionError::Fit(e) => write!(f, "transfer-moment fit failed: {e}"),
            ReductionError::UnresolvedFarEnd => write!(
                f,
                "modeled far end never completed its transition within the sampled window"
            ),
        }
    }
}

impl std::error::Error for ReductionError {}

/// A moment-matched reduced-order backend: models the driver with the
/// paper's analytic Ceff flow, then answers the far-end waveform **in closed
/// form** instead of time stepping — the interconnect transfer from the
/// driving point to the primary sink is fitted to a 2-pole rational
/// ([`rlc_moments::TransferModel`] over [`rlc_moments::tree_transfer_moments`])
/// and the driver's piecewise-linear output is pushed through it as a
/// superposition of closed-form ramp responses. A far-end answer costs
/// microseconds where the transient kernel takes milliseconds.
///
/// Moment matching is honest about its limits: loads without a tree
/// topology, degenerate or unstable fits, and responses that fail to settle
/// all produce a typed [`ReductionError`], and [`AnalysisBackend::analyze`]
/// falls back to the golden [`SpiceBackend`] — the report then carries the
/// fallback backend's name (`"rlc-spice"`), so callers can detect the
/// downgrade from `report.backend`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReducedOrderBackend {
    fallback: SpiceBackend,
}

/// Sample count for the modeled far-end waveform — fine enough that linear
/// interpolation error in the 50 % / 10–90 % measurements is negligible.
const ROM_SAMPLES: usize = 1200;

impl ReducedOrderBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        ReducedOrderBackend::default()
    }

    /// Analyzes a stage in moment space, surfacing the typed error instead
    /// of falling back.
    ///
    /// # Errors
    /// A [`ReductionError`] describing why the stage cannot be answered by
    /// the reduced-order model.
    pub fn analyze_reduced(
        &self,
        stage: &Stage,
        config: &EngineConfig,
    ) -> Result<StageReport, ReductionError> {
        let started = Instant::now();
        let tree = stage
            .load()
            .tree_topology()
            .ok_or(ReductionError::NoTreeTopology)?;
        let sink_name = tree
            .sinks()
            .next()
            .map(|(_, s)| s.name.clone())
            .ok_or(ReductionError::NoTreeTopology)?;
        let h =
            tree_transfer_moments(&tree, &sink_name, 3).ok_or(ReductionError::NoTreeTopology)?;
        let model = TransferModel::from_moments(&h).map_err(ReductionError::Fit)?;

        let mut report =
            analytic_stage_report(self.name(), stage, config).map_err(ReductionError::Driver)?;

        // Sample window: the full driver transition plus ten of the fit's
        // slowest time constants — the closed-form response has settled to
        // within e^-10 of its asymptote by then.
        let t_stop = report.waveform.end_time() + 10.0 * model.max_time_constant();
        let far = rom_far_end_waveform(&model, report.waveform.to_source(t_stop), t_stop);

        let vdd = report.vdd;
        if far.crossing_fraction(0.5, vdd, true).is_none() || far.slew_10_90(vdd, true).is_none() {
            return Err(ReductionError::UnresolvedFarEnd);
        }
        report.simulated_far_end = Some(SampledWaveform::new(far, vdd));
        report.elapsed_seconds = started.elapsed().as_secs_f64();
        Ok(report)
    }
}

/// Pushes a piecewise-linear source through a fitted transfer model by ramp
/// superposition: a PWL waveform is a sum of shifted ramps (one slope change
/// per breakpoint), and the model's unit-ramp response is closed form, so
/// the output is an exact evaluation of the reduced model — no time
/// stepping, no numerical integration.
fn rom_far_end_waveform(model: &TransferModel, source: SourceWaveform, t_stop: f64) -> Waveform {
    let points = match source {
        SourceWaveform::Pwl(points) => points,
        SourceWaveform::Dc(v) => vec![(0.0, v)],
        // Driver models only emit PWL or DC sources; treat anything else as
        // holding its t = 0 value.
        other => vec![(0.0, other.value_at(0.0))],
    };
    let v0 = points.first().map_or(0.0, |p| p.1);

    // Slope changes: v_in(t) = v0 + sum_j dm_j * (t - t_j)+.
    let mut changes: Vec<(f64, f64)> = Vec::new();
    let mut prev_slope = 0.0;
    for w in points.windows(2) {
        let dt = w[1].0 - w[0].0;
        if dt <= 0.0 {
            continue;
        }
        let slope = (w[1].1 - w[0].1) / dt;
        if slope != prev_slope {
            changes.push((w[0].0, slope - prev_slope));
        }
        prev_slope = slope;
    }
    if prev_slope != 0.0 {
        // The source holds its last value after the final breakpoint.
        changes.push((points.last().unwrap().0, -prev_slope));
    }

    let n = ROM_SAMPLES;
    let times: Vec<f64> = (0..n).map(|k| k as f64 * t_stop / (n - 1) as f64).collect();
    let values: Vec<f64> = times
        .iter()
        .map(|&t| {
            let transient: f64 = changes
                .iter()
                .map(|&(tj, dm)| dm * model.unit_ramp_response(t - tj))
                .sum();
            v0 * model.dc_gain() + transient
        })
        .collect();
    Waveform::new(times, values)
}

impl AnalysisBackend for ReducedOrderBackend {
    fn name(&self) -> &'static str {
        "reduced-order"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            // The driver half is the analytic flow, which models ideal-ramp
            // inputs only.
            sampled_input: false,
            // Reports carry the modeled far-end waveform.
            simulates_far_end: true,
        }
    }

    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        match self.analyze_reduced(stage, config) {
            Ok(report) => Ok(report),
            // Typed reduction failures degrade to the golden simulation; the
            // report keeps the fallback's name so the downgrade is visible.
            Err(_) => self.fallback.analyze(stage, config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{DistributedRlcLoad, LumpedCapLoad};
    use rlc_interconnect::RlcLine;
    use rlc_numeric::units::{ff, mm, nh, pf};

    fn fast_config() -> EngineConfig {
        EngineConfig::fast_for_tests()
    }

    #[test]
    fn analytic_backend_selects_two_ramp_for_the_flagship_case() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            DistributedRlcLoad::new(line, ff(10.0)).unwrap(),
        )
        .label("flagship")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = AnalyticBackend.analyze(&stage, &fast_config()).unwrap();
        assert!(report.used_two_ramp);
        assert_eq!(report.backend, "analytic");
        let details = report.analytic.as_ref().unwrap();
        assert!(details.ceff2.unwrap().ceff > details.ceff1.ceff);
        assert!(details.breakpoint > 0.4 && details.breakpoint < 0.6);
        assert!(report.delay > 0.0 && report.slew > report.delay);
        assert!(report.describe().contains("flagship"));
        assert!(report.elapsed_seconds >= 0.0);
    }

    #[test]
    fn strategy_forces_the_waveform_shape() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            DistributedRlcLoad::new(line, ff(10.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let single_cfg = EngineConfig {
            strategy: CeffStrategy::ForceSingleRamp,
            ..fast_config()
        };
        let one = AnalyticBackend.analyze(&stage, &single_cfg).unwrap();
        assert!(!one.used_two_ramp);
        let two_cfg = EngineConfig {
            strategy: CeffStrategy::ForceTwoRamp,
            ..fast_config()
        };
        let two = AnalyticBackend.analyze(&stage, &two_cfg).unwrap();
        assert!(two.used_two_ramp);
        assert!(one.slew < two.slew);
    }

    #[test]
    fn analytic_backend_handles_lumped_loads() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(400.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = AnalyticBackend.analyze(&stage, &fast_config()).unwrap();
        assert!(!report.used_two_ramp);
        let details = report.analytic.as_ref().unwrap();
        assert!((details.ceff1.ceff - ff(400.0)).abs() < 1e-21);
        assert_eq!(details.breakpoint, 1.0);
    }

    /// A balanced 8-sink RC(L)-dominated clock-tree-like net whose primary
    /// sink (`rx0`) has a stable 2-pole transfer fit.
    fn balanced_8sink_tree() -> rlc_interconnect::RlcTree {
        let mut tree = rlc_interconnect::RlcTree::new();
        let root = tree.add_branch(None, RlcLine::new(100.0, nh(0.4), pf(0.5), mm(2.0)));
        let l1a = tree.add_branch(Some(root), RlcLine::new(120.0, nh(0.3), pf(0.4), mm(1.5)));
        let l1b = tree.add_branch(Some(root), RlcLine::new(120.0, nh(0.3), pf(0.4), mm(1.5)));
        for (i, &parent) in [l1a, l1a, l1b, l1b].iter().enumerate() {
            let mid = tree.add_branch(
                Some(parent),
                RlcLine::new(150.0, nh(0.2), pf(0.25), mm(1.0)),
            );
            let s1 = tree.add_branch(Some(mid), RlcLine::new(180.0, nh(0.1), pf(0.15), mm(0.6)));
            let s2 = tree.add_branch(Some(mid), RlcLine::new(180.0, nh(0.1), pf(0.15), mm(0.6)));
            tree.set_sink(s1, &format!("rx{}", 2 * i), ff(12.0));
            tree.set_sink(s2, &format!("rx{}", 2 * i + 1), ff(18.0));
        }
        tree
    }

    #[test]
    fn reduced_order_backend_models_the_far_end_in_closed_form() {
        // An 8-sink RLC tree: the ROM must answer the primary sink's waveform
        // without a transient simulation, and the answer must agree with a
        // real simulation of the same driver waveform through the same tree.
        let load = crate::load::RlcTreeLoad::new(balanced_8sink_tree()).unwrap();
        let stage = Stage::builder(crate::test_fixtures::synthetic_cell_75x(), load.clone())
            .label("rom")
            .input_slew(ps(100.0))
            .build()
            .unwrap();

        let report = ReducedOrderBackend::new()
            .analyze(&stage, &fast_config())
            .unwrap();
        assert_eq!(report.backend, "reduced-order");
        assert!(
            report.analytic.is_some(),
            "driver half is the analytic flow"
        );
        let modeled = report.simulated_far_end.as_ref().expect("modeled far end");
        let rom_t50 = modeled
            .waveform()
            .crossing_fraction(0.5, report.vdd, true)
            .unwrap();
        let rom_delay = rom_t50 - report.input_t50;

        // Golden cross-check: push the same driver waveform through the same
        // tree with the transient kernel. The deep tree settles in the
        // nanosecond range, so give the simulation a wider window than the
        // single-line default.
        let options = FarEndOptions {
            settle_time: ps(4000.0),
            ..FarEndOptions::default()
        };
        let simulated = report.far_end(&load, &options).unwrap();
        let rel = (rom_delay - simulated.delay_from_input).abs() / simulated.delay_from_input;
        assert!(
            rel < 0.05,
            "ROM far-end delay {rom_delay:e} vs simulated {:e} ({:.1}% off)",
            simulated.delay_from_input,
            rel * 100.0
        );
        let rom_slew = modeled.waveform().slew_10_90(report.vdd, true).unwrap();
        let slew_rel = (rom_slew - simulated.slew).abs() / simulated.slew;
        assert!(
            slew_rel < 0.10,
            "ROM far-end slew {rom_slew:e} vs simulated {:e}",
            simulated.slew
        );
    }

    #[test]
    fn reduced_order_backend_falls_back_on_loads_without_a_tree() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(300.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let backend = ReducedOrderBackend::new();
        assert!(matches!(
            backend.analyze_reduced(&stage, &fast_config()),
            Err(ReductionError::NoTreeTopology)
        ));
        // analyze() silently degrades to the golden simulation and the
        // report says so.
        let report = backend.analyze(&stage, &fast_config()).unwrap();
        assert_eq!(report.backend, "rlc-spice");
        assert!(report.analytic.is_none());
    }

    #[test]
    fn reduced_order_backend_falls_back_on_unstable_fits() {
        // An inductive 3-sink tree whose primary-sink Padé fit lands a pole
        // in the right half plane — the classic AWE non-passivity. The typed
        // error surfaces from analyze_reduced and analyze() degrades to the
        // golden simulation.
        let trunk = RlcLine::new(60.0, nh(2.0), pf(0.6), mm(3.0));
        let stub = RlcLine::new(120.0, nh(1.0), pf(0.3), mm(1.5));
        let mut tree = rlc_interconnect::RlcTree::new();
        let t = tree.add_branch(None, trunk);
        let a = tree.add_branch(Some(t), stub);
        let b = tree.add_branch(Some(t), stub);
        let c = tree.add_branch(Some(b), stub);
        tree.set_sink(a, "rx0", ff(20.0));
        tree.set_sink(b, "rx1", ff(10.0));
        tree.set_sink(c, "rx2", ff(15.0));
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            crate::load::RlcTreeLoad::new(tree).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let backend = ReducedOrderBackend::new();
        match backend.analyze_reduced(&stage, &fast_config()) {
            Err(ReductionError::Fit(e)) => {
                assert!(e.to_string().contains("unstable"), "got: {e}")
            }
            other => panic!("expected an unstable-fit error, got {other:?}"),
        }
        let report = backend.analyze(&stage, &fast_config()).unwrap();
        assert_eq!(report.backend, "rlc-spice");
    }

    #[test]
    fn spice_backend_measures_a_real_transition() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(300.0)).unwrap(),
        )
        .label("sim")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let report = SpiceBackend.analyze(&stage, &fast_config()).unwrap();
        assert_eq!(report.backend, "rlc-spice");
        assert!(report.analytic.is_none());
        assert!(report.delay > 0.0 && report.slew > 0.0);
        // The sampled waveform completes the transition.
        assert!(report.waveform.v(report.waveform.end_time() + ps(200.0)) > 0.9 * report.vdd);
    }
}
