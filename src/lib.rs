//! # rlc-ceff-suite
//!
//! Umbrella crate for the reproduction of *"An Effective Capacitance Based
//! Driver Output Model for On-Chip RLC Interconnects"* (Agarwal, Sylvester,
//! Blaauw — DAC 2003), and home of the [`TimingEngine`] facade: one coherent
//! entry point over the whole stack.
//!
//! ## The facade
//!
//! A [`Stage`] describes one unit of work — a characterized driver, the load
//! it drives (any [`LoadModel`]: lumped capacitor, RC pi, distributed RLC
//! line, raw admittance moments) and the input event. A [`TimingEngine`]
//! analyzes stages on a selectable [`AnalysisBackend`] (the paper's analytic
//! effective-capacitance flow, or the golden `rlc-spice` transistor-level
//! simulation) and returns [`StageReport`]s whose waveforms live behind the
//! object-safe [`DriverModel`] trait:
//!
//! ```no_run
//! use rlc_ceff_suite::{DistributedRlcLoad, EngineConfig, Stage, TimingEngine};
//! use rlc_ceff_suite::charlib::{CharacterizationGrid, Library};
//! use rlc_ceff_suite::interconnect::prelude::*;
//!
//! let mut library = Library::new(CharacterizationGrid::default());
//! let cell = library.cell_shared(75.0)?;
//! let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(5.0), um(1.6)));
//!
//! let stage = Stage::builder(cell, DistributedRlcLoad::new(line, ff(10.0))?)
//!     .label("flagship")
//!     .input_slew(ps(100.0))
//!     .build()?;
//!
//! let engine = TimingEngine::new(EngineConfig::default());
//! let report = engine.analyze(&stage)?;
//! println!("{}", report.describe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Batches fan out across threads with per-stage error recovery — one
//! degenerate stage yields an `Err` in its slot instead of aborting the run:
//!
//! ```no_run
//! # use rlc_ceff_suite::{Stage, TimingEngine};
//! # fn demo(engine: &TimingEngine, stages: &[Stage]) {
//! let batch = engine.analyze_many(stages);
//! for (index, report) in batch.succeeded() {
//!     println!("stage {index}: {}", report.describe());
//! }
//! for (index, error) in batch.failures() {
//!     eprintln!("stage {index} failed: {error}");
//! }
//! # }
//! ```
//!
//! ## The layer crates
//!
//! The facade re-exports the individual workspace crates, so one dependency
//! reaches the whole stack:
//!
//! * [`numeric`] — complex arithmetic, power series, dense LU, interpolation.
//! * [`spice`] — the MNA transient simulator (the HSPICE stand-in).
//! * [`interconnect`] — geometry, technology, parasitic extraction, lines.
//! * [`moments`] — driving-point admittance moments and the rational fit.
//! * [`charlib`] — NLDM-style cell characterization and driver resistance.
//! * [`ceff`] — the paper's two-ramp effective-capacitance driver model.
//!
//! See the repository `README.md` for a tour, the crate map and migration
//! notes from the pre-facade API.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use rlc_ceff as ceff;
pub use rlc_charlib as charlib;
pub use rlc_interconnect as interconnect;
pub use rlc_lint as lint;
pub use rlc_moments as moments;
pub use rlc_numeric as numeric;
pub use rlc_spice as spice;

mod backend;
mod compat;
mod config;
mod driver;
pub mod eco;
mod engine;
mod error;
mod lints;
mod load;
mod session;
mod stage;
mod variation;

pub use backend::{
    AnalysisBackend, AnalyticBackend, AnalyticDetails, BackendCaps, FarEndReport,
    ReducedOrderBackend, ReductionError, SinkFarEnd, SpiceBackend, StageReport,
};
#[allow(deprecated)]
pub use compat::BatchReport;
pub use config::{CeffStrategy, EngineConfig, EngineConfigBuilder, SessionOptions};
pub use driver::{DriverModel, SampledWaveform};
pub use eco::{
    driver_fingerprint, stage_key, InputFingerprint, StageKey, StageResultCache, WaveformDescriptor,
};
pub use engine::TimingEngine;
pub use error::EngineError;
pub use load::{
    AttachedNet, CoupledBusLoad, DistributedRlcLoad, LoadModel, LumpedCapLoad, MomentsLoad,
    PiModelLoad, RlcTreeLoad,
};
pub use rlc_lint::{Diagnostic, LintLevel, Severity};
pub use session::{AnalysisSession, InputSource, SessionReports, StageHandle, StageOutcome};
pub use stage::{
    AggressorSpec, AggressorSwitching, BackendChoice, InputEvent, Stage, StageBuilder,
};
pub use variation::{DistributionReport, SampleResult, VariationModel, VariationSpec};

/// Convenient glob import of the facade types.
pub mod prelude {
    pub use crate::backend::{
        AnalysisBackend, AnalyticBackend, AnalyticDetails, BackendCaps, FarEndReport,
        ReducedOrderBackend, ReductionError, SinkFarEnd, SpiceBackend, StageReport,
    };
    #[allow(deprecated)]
    pub use crate::compat::BatchReport;
    pub use crate::config::{CeffStrategy, EngineConfig, EngineConfigBuilder, SessionOptions};
    pub use crate::driver::{DriverModel, SampledWaveform};
    pub use crate::eco::{
        driver_fingerprint, stage_key, InputFingerprint, StageKey, StageResultCache,
        WaveformDescriptor,
    };
    pub use crate::engine::TimingEngine;
    pub use crate::error::EngineError;
    pub use crate::load::{
        AttachedNet, CoupledBusLoad, DistributedRlcLoad, LoadModel, LumpedCapLoad, MomentsLoad,
        PiModelLoad, RlcTreeLoad,
    };
    pub use crate::session::{
        AnalysisSession, InputSource, SessionReports, StageHandle, StageOutcome,
    };
    pub use crate::stage::{
        AggressorSpec, AggressorSwitching, BackendChoice, InputEvent, Stage, StageBuilder,
    };
    pub use crate::variation::{DistributionReport, SampleResult, VariationModel, VariationSpec};
    pub use rlc_lint::{Diagnostic, LintLevel, Severity};
}

/// Version of the reproduction suite.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Deterministic synthetic fixtures shared by this workspace's own unit
/// tests, integration tests and benches, so they cannot silently diverge.
/// Hidden from the documented API surface: downstream users should
/// characterize real cells instead.
#[doc(hidden)]
pub mod fixtures {
    use rlc_charlib::{DriverCell, TimingTable};
    use rlc_numeric::units::{ff, pf, ps};
    use rlc_spice::testbench::InverterSpec;

    /// A synthetic affine cell table scaled by drive strength: fast and
    /// deterministic, no characterization simulations. The inverter spec is
    /// real, so the SPICE backend can still simulate it.
    pub fn synthetic_cell(size: f64, on_resistance: f64) -> DriverCell {
        let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
        let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
        let transition: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(12000.0) / size)
                    .collect()
            })
            .collect();
        let delay: Vec<Vec<f64>> = slews
            .iter()
            .map(|&s| {
                loads
                    .iter()
                    .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(4000.0) / size)
                    .collect()
            })
            .collect();
        DriverCell::from_parts(
            InverterSpec::sized_018(size),
            TimingTable::new(slews, loads, delay, transition),
            on_resistance,
        )
    }

    /// The canonical 75X instance of [`synthetic_cell`].
    pub fn synthetic_cell_75x() -> DriverCell {
        synthetic_cell(75.0, 70.0)
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    pub(crate) use crate::fixtures::synthetic_cell_75x;
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
