//! # rlc-ceff-suite
//!
//! Umbrella crate for the reproduction of *"An Effective Capacitance Based
//! Driver Output Model for On-Chip RLC Interconnects"* (Agarwal, Sylvester,
//! Blaauw — DAC 2003).
//!
//! This crate re-exports the individual workspace crates so that the examples
//! and cross-crate integration tests have a single dependency, and so that a
//! downstream user can depend on one crate and reach the whole stack:
//!
//! * [`numeric`] — complex arithmetic, power series, dense LU, interpolation.
//! * [`spice`] — the MNA transient simulator (the HSPICE stand-in).
//! * [`interconnect`] — geometry, technology, parasitic extraction, lines.
//! * [`moments`] — driving-point admittance moments and the rational fit.
//! * [`charlib`] — NLDM-style cell characterization and driver resistance.
//! * [`ceff`] — the paper's two-ramp effective-capacitance driver model.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and results.

#![deny(missing_docs)]

pub use rlc_ceff as ceff;
pub use rlc_charlib as charlib;
pub use rlc_interconnect as interconnect;
pub use rlc_moments as moments;
pub use rlc_numeric as numeric;
pub use rlc_spice as spice;

/// Version of the reproduction suite.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
