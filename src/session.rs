//! [`AnalysisSession`]: dependency-aware, streaming stage analysis.
//!
//! The flat batch API (`analyze_many`) treats every stage as independent;
//! real paths are not. The waveform measured at one stage's far end *is* the
//! input event of the next driver, and a signoff flow wants per-stage
//! results as they land, not one big synchronized collect. A session models
//! exactly that:
//!
//! * Stages are submitted individually or in bulk and return typed
//!   [`StageHandle`]s.
//! * A stage may declare its input as [`InputSource::FromFarEnd`] or
//!   [`InputSource::FromSink`] instead of a fixed
//!   [`crate::InputEvent`]; the session resolves the producer's measured
//!   far-end waveform into the dependent driver's input — a slew-referenced
//!   ramp by default ([`crate::InputEvent::from_measured`]), or the full
//!   sampled waveform when the backend reports
//!   [`crate::BackendCaps::sampled_input`].
//! * Scheduling is topological over a work queue on the engine's thread
//!   pool: independent stages run in parallel, dependents unblock the moment
//!   their producer completes, cycles and unknown sink names are rejected at
//!   submit time, and a failing producer poisons **only** its dependents
//!   ([`EngineError::UpstreamFailed`]).
//! * Results stream out via [`AnalysisSession::next_report`] (or the
//!   [`AnalysisSession::reports`] iterator) in completion order;
//!   [`AnalysisSession::wait_all`] blocks for everything and returns results
//!   in submission order. [`crate::SessionOptions`] adds a deadline and an
//!   in-flight cap; [`AnalysisSession::cancel`] aborts everything that has
//!   not started yet.
//!
//! ```no_run
//! use rlc_ceff_suite::{DistributedRlcLoad, EngineConfig, Stage, TimingEngine};
//! # fn demo(cell: std::sync::Arc<rlc_ceff_suite::charlib::DriverCell>,
//! #        load: DistributedRlcLoad) -> Result<(), rlc_ceff_suite::EngineError> {
//! let engine = TimingEngine::new(EngineConfig::default());
//! let mut session = engine.session();
//! let first = session.submit(
//!     Stage::builder_shared(cell.clone(), std::sync::Arc::new(load))
//!         .label("driver-0")
//!         .input_slew(100e-12)
//!         .build()?,
//! )?;
//! let second = session.submit(
//!     Stage::builder_shared(cell, std::sync::Arc::new(load))
//!         .label("driver-1")
//!         .input_from(first) // input = measured far end of driver-0
//!         .build()?,
//! )?;
//! for (handle, outcome) in session.reports() {
//!     println!("stage {} finished: {:?}", handle.index(), outcome.map(|r| r.delay));
//! }
//! # let _ = second;
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::backend::StageReport;
use crate::config::SessionOptions;
use crate::driver::SampledWaveform;
use crate::engine::TimingEngine;
use crate::error::EngineError;
use crate::stage::{InputEvent, Stage};

/// Session identifiers are process-global so a handle can never resolve
/// against the wrong session.
static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(1);

/// A typed reference to a stage submitted to (or reserved in) one
/// [`AnalysisSession`]. Handles are cheap, copyable, hashable, and only
/// valid within the session that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageHandle {
    session: u64,
    index: usize,
}

impl StageHandle {
    /// The stage's position in submission order (reservations count).
    pub fn index(&self) -> usize {
        self.index
    }

    pub(crate) fn session(&self) -> u64 {
        self.session
    }
}

impl std::fmt::Display for StageHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage #{}", self.index)
    }
}

/// Where a stage's input event comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSource {
    /// A fixed input event ([`crate::StageBuilder::input_slew`]).
    Event(InputEvent),
    /// The measured waveform at the producer's **primary far end**
    /// ([`crate::StageBuilder::input_from`]).
    FromFarEnd {
        /// The producer stage.
        stage: StageHandle,
    },
    /// The measured waveform at a **named sink** of the producer's load
    /// ([`crate::StageBuilder::input_from_sink`]): a tree receiver pin, or
    /// the `"victim"` / `"aggressor"` far end of a coupled bus.
    FromSink {
        /// The producer stage.
        stage: StageHandle,
        /// The sink name the producer's load must expose
        /// ([`crate::LoadModel::sink_names`]).
        sink: String,
    },
}

impl InputSource {
    /// The producer handle, for dependent sources.
    pub fn producer(&self) -> Option<StageHandle> {
        match self {
            InputSource::Event(_) => None,
            InputSource::FromFarEnd { stage } => Some(*stage),
            InputSource::FromSink { stage, .. } => Some(*stage),
        }
    }
}

/// One streamed session outcome.
pub type StageOutcome = (StageHandle, Result<StageReport, EngineError>);

// A handful of slots per session; per-variant size is irrelevant next to
// keeping the state machine readable.
#[allow(clippy::large_enum_variant)]
enum Phase {
    /// Reserved via [`AnalysisSession::reserve`], not yet submitted.
    Reserved,
    /// Submitted, waiting on `unmet` dependencies.
    Waiting { stage: Stage, unmet: usize },
    /// All dependencies met; parked in the ready queue.
    Queued { stage: Stage },
    /// A worker is analyzing it.
    Running,
    /// Finished (or failed / was poisoned / cancelled). The stage is kept so
    /// dependents can propagate through its load.
    Done {
        stage: Option<Stage>,
        result: Result<StageReport, EngineError>,
    },
}

struct SlotData {
    label: String,
    /// Sink names of the load, recorded at submit time so consumers can be
    /// validated regardless of the slot's phase. `None` while reserved.
    sink_names: Option<Vec<String>>,
    /// Permanent dependency edges (producer + ordering deps), for cycle
    /// detection.
    deps: Vec<usize>,
    /// Dependent slots to unblock (or poison) when this one completes.
    waiters: Vec<usize>,
    /// Cached handoff propagations of a completed producer (primary far end
    /// / named sinks), so N dependents fanning out of one producer run its
    /// ms-scale propagation simulation once, not N times.
    far_cache: Option<Arc<crate::backend::FarEndReport>>,
    sinks_cache: Option<Arc<Vec<crate::backend::SinkFarEnd>>>,
    /// Serializes the *computation* of the caches above: when N dependents
    /// resolve simultaneously, one holds the gate and simulates while the
    /// rest block on it and then read the cache, instead of all N racing
    /// into redundant simulations. Per-slot, so distinct producers still
    /// resolve in parallel; never held together with the state lock.
    handoff_gate: Arc<Mutex<()>>,
    /// Static-audit findings computed at submit time (the gate that rejects
    /// Error-severity netlists under `Deny`). Kept so the worker can attach
    /// them to the report without synthesizing and auditing the netlist a
    /// second time.
    lints: Vec<rlc_numeric::Diagnostic>,
    /// The stage's result-cache key, recorded by the worker (hit or miss)
    /// before the slot completes so dependents can chain it into their own
    /// keys. `None` while pending, when result caching is off, or when the
    /// stage cannot be fingerprinted (custom backend/load, uncacheable
    /// producer).
    cache_key: Option<crate::eco::StageKey>,
    phase: Phase,
}

impl SlotData {
    fn reserved(index: usize) -> SlotData {
        SlotData {
            label: format!("reserved #{index}"),
            sink_names: None,
            deps: Vec::new(),
            waiters: Vec::new(),
            far_cache: None,
            sinks_cache: None,
            handoff_gate: Arc::new(Mutex::new(())),
            lints: Vec::new(),
            cache_key: None,
            phase: Phase::Reserved,
        }
    }
}

struct State {
    slots: Vec<SlotData>,
    ready: VecDeque<usize>,
    cancelled: bool,
    deadline_fired: bool,
    shutdown: bool,
    /// Number of results that will eventually be sent on `tx`.
    expected: usize,
    tx: Sender<StageOutcome>,
}

struct Shared {
    id: u64,
    state: Mutex<State>,
    work: Condvar,
    deadline: Option<Instant>,
    options: SessionOptions,
    engine: TimingEngine,
    /// The persistent stage-result store, opened from
    /// [`crate::EngineConfig::result_cache_dir`]. `None` when result caching
    /// is off (or the directory could not be created — caching is an
    /// optimization, so an unusable store silently degrades to re-simulation
    /// like any damaged entry would).
    result_cache: Option<crate::eco::StageResultCache>,
    /// Number of stages dispatched to a backend (result-cache misses plus
    /// uncacheable stages).
    simulated: AtomicU64,
    /// Number of stages short-circuited from the result cache.
    result_hits: AtomicU64,
}

impl Shared {
    fn deadline_is_past(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A dependency-aware analysis session. Create one with
/// [`TimingEngine::session`] / [`TimingEngine::session_with`]; see the
/// [module docs](self) for the full model.
pub struct AnalysisSession {
    shared: Arc<Shared>,
    rx: Receiver<StageOutcome>,
    workers: Vec<JoinHandle<()>>,
    /// Upper bound on worker threads; they are spawned lazily, one per
    /// submission, so small sessions never build a full CPU-wide pool.
    worker_target: usize,
    reported: usize,
}

impl std::fmt::Debug for AnalysisSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisSession")
            .field("id", &self.shared.id)
            .field("workers", &self.workers.len())
            .field("reported", &self.reported)
            .finish()
    }
}

impl AnalysisSession {
    pub(crate) fn new(engine: TimingEngine, options: SessionOptions) -> AnalysisSession {
        let id = NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel();
        let worker_target = {
            let base = engine.config().base_threads();
            match options.max_in_flight {
                0 => base,
                cap => base.min(cap),
            }
            .max(1)
        };
        let result_cache = engine
            .config()
            .result_cache_dir
            .clone()
            .and_then(|dir| crate::eco::StageResultCache::open(dir).ok());
        let shared = Arc::new(Shared {
            id,
            state: Mutex::new(State {
                slots: Vec::new(),
                ready: VecDeque::new(),
                cancelled: false,
                deadline_fired: false,
                shutdown: false,
                expected: 0,
                tx,
            }),
            work: Condvar::new(),
            deadline: options.deadline.map(|d| Instant::now() + d),
            options,
            engine,
            result_cache,
            simulated: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
        });
        AnalysisSession {
            shared,
            rx,
            workers: Vec::new(),
            worker_target,
            reported: 0,
        }
    }

    /// Spawns one more worker thread unless the pool already reached its
    /// target. Called per submission, so a 2-stage session on a 64-core
    /// host runs on 2 threads, not 64 parked ones.
    fn ensure_worker(&mut self) {
        if self.workers.len() < self.worker_target {
            self.spawn_worker();
        }
    }

    fn spawn_worker(&mut self) {
        let shared = self.shared.clone();
        self.workers
            .push(std::thread::spawn(move || worker_loop(&shared)));
    }

    /// Number of handles issued so far (submissions plus reservations).
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("session state").slots.len()
    }

    /// Whether nothing has been submitted or reserved yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn handle(&self, index: usize) -> StageHandle {
        StageHandle {
            session: self.shared.id,
            index,
        }
    }

    /// Reserves a handle whose stage will be supplied later with
    /// [`AnalysisSession::submit_reserved`]. This is how mutually-referencing
    /// graphs are wired up front — and why cycle rejection exists: with
    /// reservations, a forward reference can point back at an earlier stage.
    ///
    /// A reservation that is never submitted fails (and poisons its
    /// dependents) when [`AnalysisSession::wait_all`] is called.
    pub fn reserve(&mut self) -> StageHandle {
        let mut st = self.shared.state.lock().expect("session state");
        let index = st.slots.len();
        st.slots.push(SlotData::reserved(index));
        drop(st);
        self.handle(index)
    }

    /// Submits a stage and returns its handle. Dependencies
    /// ([`crate::StageBuilder::input_from`],
    /// [`crate::StageBuilder::input_from_sink`],
    /// [`crate::StageBuilder::after`]) are validated here: handles must
    /// belong to this session, must not close a cycle, and `FromSink` names
    /// must exist on the producer's load. The static audit pass also runs
    /// here (per [`crate::EngineConfig::lint_level`]): a netlist with
    /// Error-severity findings under `Deny` is rejected as
    /// [`EngineError::Lint`] **before** the stage ever reaches a worker —
    /// no matrix is built or factorized for it.
    ///
    /// # Errors
    /// [`EngineError::InvalidDependency`], [`EngineError::DependencyCycle`],
    /// [`EngineError::UnknownSink`] or [`EngineError::Lint`]; the stage is
    /// not enqueued on error.
    pub fn submit(&mut self, stage: Stage) -> Result<StageHandle, EngineError> {
        let lints = self.shared.engine.lint_stage(&stage)?;
        let index = {
            let mut st = self.shared.state.lock().expect("session state");
            let index = st.slots.len();
            let deps = validate(&st, self.shared.id, index, &stage)?;
            st.slots.push(SlotData::reserved(index));
            st.slots[index].lints = lints;
            fill(&mut st, &self.shared, index, stage, deps);
            index
        };
        self.ensure_worker();
        Ok(self.handle(index))
    }

    /// Fills a reservation made with [`AnalysisSession::reserve`].
    ///
    /// # Errors
    /// Like [`AnalysisSession::submit`], plus
    /// [`EngineError::InvalidDependency`] when the handle belongs to another
    /// session or was already submitted. The reservation stays open on
    /// validation errors.
    pub fn submit_reserved(
        &mut self,
        handle: StageHandle,
        stage: Stage,
    ) -> Result<(), EngineError> {
        let lints = self.shared.engine.lint_stage(&stage)?;
        let mut st = self.shared.state.lock().expect("session state");
        if handle.session != self.shared.id || handle.index >= st.slots.len() {
            return Err(EngineError::InvalidDependency {
                what: format!(
                    "stage '{}' cannot fill a reservation from another session",
                    stage.label()
                ),
            });
        }
        if !matches!(st.slots[handle.index].phase, Phase::Reserved) {
            // `sink_names` is only recorded when a stage is actually filled,
            // so it distinguishes a genuinely-submitted slot from a
            // reservation that wait_all() already expired as a failure.
            let what = if st.slots[handle.index].sink_names.is_some() {
                format!("{handle} was already submitted")
            } else {
                format!(
                    "{handle} was an unfilled reservation that wait_all() already \
                     resolved as failed; reserve a new handle"
                )
            };
            return Err(EngineError::InvalidDependency { what });
        }
        let deps = validate(&st, self.shared.id, handle.index, &stage)?;
        st.slots[handle.index].lints = lints;
        fill(&mut st, &self.shared, handle.index, stage, deps);
        drop(st);
        self.ensure_worker();
        Ok(())
    }

    /// Submits a batch of stages, failing fast on the first invalid one
    /// (stages submitted before the failure stay submitted).
    ///
    /// # Errors
    /// See [`AnalysisSession::submit`].
    pub fn submit_all<I>(&mut self, stages: I) -> Result<Vec<StageHandle>, EngineError>
    where
        I: IntoIterator<Item = Stage>,
    {
        let stages = stages.into_iter();
        // A wide batch wants its full worker complement immediately, not one
        // new thread per submission — the first stages should already be
        // fanning out while the tail of the batch is still validating.
        let known = stages.size_hint().0;
        while self.workers.len() < self.worker_target.min(known) {
            self.spawn_worker();
        }
        stages.map(|s| self.submit(s)).collect()
    }

    /// Blocks for the next completed stage, in completion order. Returns
    /// `None` once every stage submitted *so far* has been reported (more
    /// can be submitted afterwards, which re-arms the stream).
    ///
    /// Unfilled reservations produce no result until
    /// [`AnalysisSession::wait_all`] resolves them as failures — a dependent
    /// blocked on one makes this call block too.
    pub fn next_report(&mut self) -> Option<StageOutcome> {
        let expected = self.shared.state.lock().expect("session state").expected;
        if self.reported >= expected {
            return None;
        }
        match self.rx.recv() {
            Ok(outcome) => {
                self.reported += 1;
                Some(outcome)
            }
            Err(_) => None,
        }
    }

    /// Non-blocking sibling of [`AnalysisSession::next_report`]: returns the
    /// next completed stage if one is already available, `None` when nothing
    /// has completed yet **or** everything submitted so far has been
    /// reported. Disambiguate the two `None` cases with
    /// [`AnalysisSession::outstanding`] — this is what lets a service front
    /// end poll many sessions (one per shard) without parking a thread on
    /// each.
    pub fn try_next_report(&mut self) -> Option<StageOutcome> {
        let expected = self.shared.state.lock().expect("session state").expected;
        if self.reported >= expected {
            return None;
        }
        match self.rx.try_recv() {
            Ok(outcome) => {
                self.reported += 1;
                Some(outcome)
            }
            Err(_) => None,
        }
    }

    /// Number of submitted stages whose outcomes have not been streamed yet
    /// (zero means [`AnalysisSession::try_next_report`]'s `None` is "all
    /// reported", not "still running").
    pub fn outstanding(&self) -> usize {
        let expected = self.shared.state.lock().expect("session state").expected;
        expected.saturating_sub(self.reported)
    }

    /// Streaming iterator over completions: yields `(handle, outcome)` in
    /// completion order until everything submitted so far has been reported.
    pub fn reports(&mut self) -> SessionReports<'_> {
        SessionReports { session: self }
    }

    /// Blocks until every submitted stage has completed and returns all
    /// outcomes **in submission order** (including any that were already
    /// streamed). Reservations that were never filled fail here with
    /// [`EngineError::InvalidDependency`] and poison their dependents.
    pub fn wait_all(&mut self) -> Vec<StageOutcome> {
        {
            let mut st = self.shared.state.lock().expect("session state");
            for i in 0..st.slots.len() {
                if matches!(st.slots[i].phase, Phase::Reserved) {
                    let label = st.slots[i].label.clone();
                    st.expected += 1;
                    complete(
                        &mut st,
                        &self.shared.work,
                        self.shared.id,
                        i,
                        Err(EngineError::InvalidDependency {
                            what: format!("{label} was never submitted"),
                        }),
                        None,
                    );
                }
            }
        }
        while self.next_report().is_some() {}
        let st = self.shared.state.lock().expect("session state");
        st.slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let result = match &slot.phase {
                    Phase::Done { result, .. } => result.clone(),
                    _ => Err(EngineError::InvalidDependency {
                        what: format!("stage '{}' never completed", slot.label),
                    }),
                };
                (
                    StageHandle {
                        session: self.shared.id,
                        index: i,
                    },
                    result,
                )
            })
            .collect()
    }

    /// Number of stages this session dispatched to an analysis backend —
    /// result-cache misses plus uncacheable stages. With a warm
    /// [`crate::StageResultCache`] and no edits this stays at zero for a
    /// full re-analysis.
    pub fn stages_simulated(&self) -> u64 {
        self.shared.simulated.load(Ordering::Relaxed)
    }

    /// Number of stages short-circuited from the persistent result cache
    /// ([`crate::EngineConfigBuilder::result_cache_dir`]). Always zero when
    /// result caching is off.
    pub fn result_cache_hits(&self) -> u64 {
        self.shared.result_hits.load(Ordering::Relaxed)
    }

    /// Cancels everything that has not started running: queued and waiting
    /// stages complete with [`EngineError::Cancelled`], stages already on a
    /// worker finish and report normally, and later submissions fail
    /// immediately. Idempotent.
    pub fn cancel(&self) {
        let mut st = self.shared.state.lock().expect("session state");
        if st.cancelled {
            return;
        }
        st.cancelled = true;
        st.ready.clear();
        abort_pending(&mut st, self.shared.id, |label| EngineError::Cancelled {
            label,
        });
        self.shared.work.notify_all();
    }
}

/// Streaming iterator over an [`AnalysisSession`]'s completions
/// ([`AnalysisSession::reports`]).
#[derive(Debug)]
pub struct SessionReports<'a> {
    session: &'a mut AnalysisSession,
}

impl Iterator for SessionReports<'_> {
    type Item = StageOutcome;

    fn next(&mut self) -> Option<StageOutcome> {
        self.session.next_report()
    }
}

impl Drop for AnalysisSession {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("session state");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Validates a stage's dependencies against the current session state and
/// returns the dependency slot indices. `index` is the slot the stage is
/// about to occupy.
fn validate(
    st: &State,
    session: u64,
    index: usize,
    stage: &Stage,
) -> Result<Vec<usize>, EngineError> {
    let mut deps = Vec::new();
    let producer = stage.input_source().producer();
    for handle in producer.iter().chain(stage.after_handles()) {
        if handle.session() != session {
            return Err(EngineError::InvalidDependency {
                what: format!(
                    "stage '{}' references a handle from another session",
                    stage.label()
                ),
            });
        }
        if handle.index() == index {
            return Err(EngineError::DependencyCycle {
                label: stage.label().to_string(),
            });
        }
        if handle.index() >= st.slots.len() {
            return Err(EngineError::InvalidDependency {
                what: format!(
                    "stage '{}' references {handle}, which does not exist in this session",
                    stage.label()
                ),
            });
        }
        deps.push(handle.index());
    }
    // One edge per producer: a duplicate (e.g. `.input_from(a).after(a)`)
    // would register the stage as a waiter twice and double-count `unmet`,
    // which the completion walk must never see.
    deps.sort_unstable();
    deps.dedup();

    // Cycle check: walk the recorded dependency edges from every direct
    // dependency; reaching `index` means this submission would close a loop.
    let mut stack = deps.clone();
    let mut seen = vec![false; st.slots.len()];
    while let Some(d) = stack.pop() {
        if d == index {
            return Err(EngineError::DependencyCycle {
                label: stage.label().to_string(),
            });
        }
        if seen[d] {
            continue;
        }
        seen[d] = true;
        stack.extend(st.slots[d].deps.iter().copied());
    }

    // Sink negotiation: a producer whose load is already known must expose
    // the requested measurement point. (Producers still in reservation are
    // re-checked at resolution time.)
    match stage.input_source() {
        InputSource::Event(_) => {}
        InputSource::FromFarEnd { stage: p } => {
            if let Some(names) = &st.slots[p.index()].sink_names {
                if names.is_empty() {
                    return Err(EngineError::InvalidDependency {
                        what: format!(
                            "stage '{}' depends on the far end of '{}', whose load has no \
                             physical netlist to measure",
                            stage.label(),
                            st.slots[p.index()].label
                        ),
                    });
                }
            }
        }
        InputSource::FromSink { stage: p, sink } => {
            if let Some(names) = &st.slots[p.index()].sink_names {
                if !names.iter().any(|n| n == sink) {
                    return Err(EngineError::UnknownSink {
                        label: st.slots[p.index()].label.clone(),
                        sink: sink.clone(),
                        available: names.clone(),
                    });
                }
            }
        }
    }
    Ok(deps)
}

/// Fills slot `index` with a validated stage: registers its edges, and
/// either queues it, parks it on its dependencies, or fails it immediately
/// (cancelled session, expired deadline, already-failed producer).
fn fill(st: &mut State, shared: &Shared, index: usize, stage: Stage, deps: Vec<usize>) {
    st.slots[index].label = stage.label().to_string();
    st.slots[index].sink_names = Some(stage.load().sink_names());
    st.slots[index].deps = deps.clone();
    st.expected += 1;

    let label = stage.label().to_string();
    if st.cancelled {
        complete(
            st,
            &shared.work,
            shared.id,
            index,
            Err(EngineError::Cancelled { label }),
            None,
        );
        return;
    }
    if st.deadline_fired || shared.deadline_is_past() {
        if !st.deadline_fired {
            // First observer of the expired deadline: abort everything
            // pending too, not just this submission — otherwise queued
            // stages would still run after the deadline whenever a
            // post-deadline submit raced the workers to the flag.
            fire_deadline(st, shared.id);
        }
        complete(
            st,
            &shared.work,
            shared.id,
            index,
            Err(EngineError::DeadlineExceeded { label }),
            None,
        );
        return;
    }

    let mut unmet = 0;
    for &d in &deps {
        match &st.slots[d].phase {
            Phase::Done { result: Ok(_), .. } => {}
            Phase::Done { result: Err(_), .. } => {
                let upstream = st.slots[d].label.clone();
                complete(
                    st,
                    &shared.work,
                    shared.id,
                    index,
                    Err(EngineError::UpstreamFailed { label, upstream }),
                    None,
                );
                return;
            }
            _ => {
                st.slots[d].waiters.push(index);
                unmet += 1;
            }
        }
    }
    if unmet == 0 {
        st.slots[index].phase = Phase::Queued { stage };
        st.ready.push_back(index);
        shared.work.notify_one();
    } else {
        st.slots[index].phase = Phase::Waiting { stage, unmet };
    }
}

/// Marks slot `index` done with `result`, streams the outcome, and walks the
/// waiter graph: dependents of a success are unblocked (queued when their
/// last dependency clears), dependents of a failure are poisoned with
/// [`EngineError::UpstreamFailed`] — transitively, but nothing else.
fn complete(
    st: &mut State,
    work: &Condvar,
    session: u64,
    index: usize,
    result: Result<StageReport, EngineError>,
    stage: Option<Stage>,
) {
    let stream = result.clone();
    complete_with_stream(st, work, session, index, result, stream, stage);
}

/// Like [`complete`], but the caller supplies the streamed copy of the
/// result. Workers clone their report *before* taking the state lock and
/// come here directly — a wide batch completing on many threads must not
/// serialize on waveform deep-copies held under the mutex.
fn complete_with_stream(
    st: &mut State,
    work: &Condvar,
    session: u64,
    index: usize,
    result: Result<StageReport, EngineError>,
    stream: Result<StageReport, EngineError>,
    stage: Option<Stage>,
) {
    let mut worklist = vec![(index, result, stream, stage)];
    while let Some((i, result, stream, stage)) = worklist.pop() {
        let failed = result.is_err();
        let upstream_label = st.slots[i].label.clone();
        st.slots[i].phase = Phase::Done { stage, result };
        let _ = st.tx.send((StageHandle { session, index: i }, stream));
        for w in std::mem::take(&mut st.slots[i].waiters) {
            match &mut st.slots[w].phase {
                Phase::Waiting { unmet, .. } if failed => {
                    let _ = unmet;
                    let label = st.slots[w].label.clone();
                    let poison = EngineError::UpstreamFailed {
                        label,
                        upstream: upstream_label.clone(),
                    };
                    worklist.push((w, Err(poison.clone()), Err(poison), None));
                }
                Phase::Waiting { unmet, .. } => {
                    *unmet -= 1;
                    if *unmet == 0 {
                        if let Phase::Waiting { stage, .. } =
                            std::mem::replace(&mut st.slots[w].phase, Phase::Running)
                        {
                            st.slots[w].phase = Phase::Queued { stage };
                            st.ready.push_back(w);
                            work.notify_one();
                        }
                    }
                }
                // Already done (cancelled / deadline / poisoned earlier).
                _ => {}
            }
        }
    }
}

/// Fails every waiting or queued slot with `err(label)`. Safe without waiter
/// propagation: every waiter of an aborted slot is itself waiting (a running
/// stage never waits), so this sweep reaches it directly.
fn abort_pending(st: &mut State, session: u64, err: impl Fn(String) -> EngineError) {
    for i in 0..st.slots.len() {
        if matches!(
            st.slots[i].phase,
            Phase::Waiting { .. } | Phase::Queued { .. }
        ) {
            let label = st.slots[i].label.clone();
            st.slots[i].phase = Phase::Done {
                stage: None,
                result: Err(err(label.clone())),
            };
            st.slots[i].waiters.clear();
            let _ = st
                .tx
                .send((StageHandle { session, index: i }, Err(err(label))));
        }
    }
}

fn fire_deadline(st: &mut State, session: u64) {
    st.deadline_fired = true;
    st.ready.clear();
    abort_pending(st, session, |label| EngineError::DeadlineExceeded { label });
}

fn worker_loop(shared: &Shared) {
    loop {
        let (index, stage, lints) = {
            let mut st = shared.state.lock().expect("session state");
            loop {
                if st.shutdown {
                    return;
                }
                if !st.deadline_fired && shared.deadline_is_past() {
                    fire_deadline(&mut st, shared.id);
                }
                if let Some(i) = st.ready.pop_front() {
                    match std::mem::replace(&mut st.slots[i].phase, Phase::Running) {
                        Phase::Queued { stage } => {
                            break (i, stage, std::mem::take(&mut st.slots[i].lints))
                        }
                        other => {
                            st.slots[i].phase = other;
                            continue;
                        }
                    }
                }
                st = wait_for_work(shared, st);
            }
        };
        // Incremental mode: compute the stage's content-addressed identity
        // (dependents chain their producer's recorded key, so identity flows
        // transitively down the cone) and replay a stored report on a hit.
        // The hit path skips resolve_input entirely — an unchanged cone
        // never runs a far-end propagation, let alone a backend.
        let key = stage_cache_key(shared, &stage);
        if let Some(key) = &key {
            let hit = shared
                .result_cache
                .as_ref()
                .and_then(|cache| cache.load(key, stage.label()));
            if let Some(report) = hit {
                shared.result_hits.fetch_add(1, Ordering::Relaxed);
                let stream = Ok(report.clone());
                let mut st = shared.state.lock().expect("session state");
                st.slots[index].cache_key = Some(*key);
                complete_with_stream(
                    &mut st,
                    &shared.work,
                    shared.id,
                    index,
                    Ok(report),
                    stream,
                    Some(stage),
                );
                continue;
            }
        }
        shared.simulated.fetch_add(1, Ordering::Relaxed);
        // The handoff propagation in resolve_input runs the same simulation
        // code the engine defends with catch_unwind; contain panics here the
        // same way, or a panicking handoff would kill the worker with the
        // slot stuck in Running and wait_all blocked forever.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            resolve_input(shared, &stage).and_then(|(s, mut handoff_lints)| {
                // The load was already synthesized and audited at submit
                // time; reuse those findings instead of linting twice.
                let mut report = shared.engine.analyze_prelinted(&s, lints)?;
                // Observations from the handoff propagation (a sparse kernel
                // degrading to dense) belong to the consumer that triggered
                // it.
                report.lints.append(&mut handoff_lints);
                Ok(report)
            })
        }))
        .unwrap_or_else(|payload| {
            Err(EngineError::StagePanicked {
                label: stage.label().to_string(),
                detail: crate::engine::panic_message(payload.as_ref()),
            })
        });
        // Persist the freshly simulated report before completing the slot
        // (store failures degrade to "not cached", never to a stage error).
        if let (Some(cache), Some(key), Ok(report)) = (&shared.result_cache, &key, &result) {
            let _ = cache.store(key, report);
        }
        // Deep-copy the report for the completion stream while no lock is
        // held; only the bookkeeping below happens under the mutex.
        let stream = result.clone();
        let mut st = shared.state.lock().expect("session state");
        st.slots[index].cache_key = key;
        complete_with_stream(
            &mut st,
            &shared.work,
            shared.id,
            index,
            result,
            stream,
            Some(stage),
        );
    }
}

/// Computes the result-cache key of a stage about to run: a fixed input
/// event fingerprints directly; a dependent stage chains its producer's
/// recorded key (always available — producers complete before dependents are
/// queued). An uncacheable producer (custom backend/load) makes the whole
/// downstream cone uncacheable, which is exactly the conservative behavior
/// we want: never replay what we could not have identified.
fn stage_cache_key(shared: &Shared, stage: &Stage) -> Option<crate::eco::StageKey> {
    shared.result_cache.as_ref()?;
    let producer_key = |p: &StageHandle| -> Option<u64> {
        let st = shared.state.lock().expect("session state");
        st.slots[p.index()].cache_key.map(|k| k.value())
    };
    let input = match stage.input_source() {
        InputSource::Event(event) => crate::eco::InputFingerprint::Fixed(*event),
        InputSource::FromFarEnd { stage: p } => crate::eco::InputFingerprint::FarEnd {
            producer: producer_key(p)?,
        },
        InputSource::FromSink { stage: p, sink } => crate::eco::InputFingerprint::Sink {
            producer: producer_key(p)?,
            sink: sink.as_str(),
        },
    };
    crate::eco::stage_key(stage, input, shared.engine.config(), &shared.options)
}

fn wait_for_work<'a>(shared: &'a Shared, st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    match shared.deadline {
        // Once the deadline fired there is nothing left to time out on.
        Some(deadline) if !st.deadline_fired => {
            let timeout = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            shared
                .work
                .wait_timeout(st, timeout)
                .expect("session state")
                .0
        }
        _ => shared.work.wait(st).expect("session state"),
    }
}

/// Resolves a dependent stage's input from its producer's completed report:
/// measures the handoff waveform (reusing the producer's simulated far end
/// when present, otherwise running the far-end propagation), converts it to
/// a slew-referenced ramp event, and attaches the sampled waveform when the
/// consumer's backend negotiates [`crate::BackendCaps::sampled_input`].
///
/// Alongside the resolved stage it returns any lint observations the handoff
/// produced — today the `L030` Info lint when the propagation's sparse
/// kernel silently degraded to dense — which the worker attaches to the
/// consumer's report.
fn resolve_input(
    shared: &Shared,
    stage: &Stage,
) -> Result<(Stage, Vec<rlc_numeric::Diagnostic>), EngineError> {
    let (producer_index, sink) = match stage.input_source() {
        InputSource::Event(_) => return Ok((stage.clone(), Vec::new())),
        InputSource::FromFarEnd { stage: p } => (p.index(), None),
        InputSource::FromSink { stage: p, sink } => (p.index(), Some(sink.clone())),
    };
    let mut handoff_lints = Vec::new();
    let (producer_stage, report) = {
        let st = shared.state.lock().expect("session state");
        match &st.slots[producer_index].phase {
            Phase::Done {
                stage: Some(ps),
                result: Ok(r),
            } => (ps.clone(), r.clone()),
            _ => {
                return Err(EngineError::InvalidDependency {
                    what: format!(
                        "producer of stage '{}' has no completed report (scheduler invariant)",
                        stage.label()
                    ),
                })
            }
        }
    };

    let producer_label = producer_stage.label().to_string();
    // Reusing the producer's already-simulated far end is negotiated: the
    // report must carry the waveform *and* the producer's backend must
    // declare [`crate::BackendCaps::simulates_far_end`].
    let reuse_simulated = shared
        .engine
        .backend_for(&producer_stage)
        .caps()
        .simulates_far_end;
    let (waveform, vdd, t50, slew) = match sink {
        None => match (&report.simulated_far_end, reuse_simulated) {
            (Some(sim), true) => {
                let measured = sim.ramp_event().ok_or_else(|| {
                    EngineError::unsupported(format!(
                        "the simulated far end of stage '{producer_label}' never completed a \
                         transition; it cannot drive a dependent stage"
                    ))
                })?;
                (
                    sim.waveform().clone(),
                    sim.vdd(),
                    measured.t50(),
                    0.8 * measured.slew,
                )
            }
            _ => {
                let far = cached_far_end(shared, producer_index, &producer_stage, &report)?;
                if far.degraded_to_dense {
                    handoff_lints.push(crate::backend::sparse_degrade_lint(&format!(
                        "far-end propagation of '{producer_label}'"
                    )));
                }
                (
                    far.waveform.clone(),
                    report.vdd,
                    report.input_t50 + far.delay_from_input,
                    far.slew,
                )
            }
        },
        Some(name) => {
            let sinks = cached_far_end_sinks(shared, producer_index, &producer_stage, &report)?;
            let sink_report = sinks
                .iter()
                .find(|s| s.sink == name)
                .cloned()
                .ok_or_else(|| EngineError::UnknownSink {
                    label: producer_label.clone(),
                    sink: name.clone(),
                    available: sinks.iter().map(|s| s.sink.clone()).collect(),
                })?;
            let incomplete = || {
                EngineError::unsupported(format!(
                    "sink '{name}' of stage '{producer_label}' never completed a transition \
                     (a quiet neighbour only carries noise); it cannot drive a dependent stage"
                ))
            };
            let delay = sink_report.delay_from_input.ok_or_else(incomplete)?;
            let slew = sink_report.slew.ok_or_else(incomplete)?;
            // The engine models rising driver outputs only (the paper's
            // convention); a sink that completed a *falling* transition — an
            // opposite-switching bus aggressor — would silently hand off the
            // wrong edge polarity. Reject it instead.
            let v0 = sink_report
                .waveform
                .values()
                .first()
                .copied()
                .unwrap_or(0.0);
            if sink_report.waveform.last_value() < v0 {
                return Err(EngineError::unsupported(format!(
                    "sink '{name}' of stage '{producer_label}' completes a falling transition; \
                     the rising-edge stage convention cannot chain it — chain from a rising \
                     sink instead"
                )));
            }
            (
                sink_report.waveform,
                report.vdd,
                report.input_t50 + delay,
                slew,
            )
        }
    };

    let event = InputEvent::from_measured(t50, slew);
    let caps = shared.engine.backend_for(stage).caps();
    let sampled = (shared.options.sampled_handoff && caps.sampled_input)
        .then(|| SampledWaveform::new(waveform, vdd));
    Ok((stage.resolve_input(event, sampled), handoff_lints))
}

/// The producer's primary-far-end propagation, computed at most once per
/// producer slot no matter how many dependents fan out of it: the slot's
/// handoff gate serializes simultaneous resolvers, so one simulates while
/// the rest wait and read the cache.
fn cached_far_end(
    shared: &Shared,
    index: usize,
    producer_stage: &Stage,
    report: &StageReport,
) -> Result<Arc<crate::backend::FarEndReport>, EngineError> {
    let gate = shared.state.lock().expect("session state").slots[index]
        .handoff_gate
        .clone();
    let _serialized = gate.lock().expect("handoff gate");
    if let Some(cached) = shared.state.lock().expect("session state").slots[index]
        .far_cache
        .clone()
    {
        return Ok(cached);
    }
    let computed = Arc::new(report.far_end(producer_stage.load(), &shared.options.far_end)?);
    let mut st = shared.state.lock().expect("session state");
    Ok(st.slots[index].far_cache.get_or_insert(computed).clone())
}

/// The producer's per-sink propagation, computed at most once per producer
/// slot ([`cached_far_end`]'s multi-sink sibling).
fn cached_far_end_sinks(
    shared: &Shared,
    index: usize,
    producer_stage: &Stage,
    report: &StageReport,
) -> Result<Arc<Vec<crate::backend::SinkFarEnd>>, EngineError> {
    let gate = shared.state.lock().expect("session state").slots[index]
        .handoff_gate
        .clone();
    let _serialized = gate.lock().expect("handoff gate");
    if let Some(cached) = shared.state.lock().expect("session state").slots[index]
        .sinks_cache
        .clone()
    {
        return Ok(cached);
    }
    let computed = Arc::new(report.far_end_sinks(producer_stage.load(), &shared.options.far_end)?);
    let mut st = shared.state.lock().expect("session state");
    Ok(st.slots[index].sinks_cache.get_or_insert(computed).clone())
}
