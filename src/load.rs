//! The [`LoadModel`] extension trait and the built-in load models.
//!
//! A load model answers two questions for the engine:
//!
//! 1. *What does the driver see analytically?* — [`LoadModel::reduce`]
//!    produces the [`ReducedLoad`] (rational admittance + optional wave
//!    parameters) the paper's charge-matching flow runs against.
//! 2. *What is the physical netlist?* — [`LoadModel::attach`] appends the
//!    load to a simulator circuit so the SPICE backend can run the golden
//!    testbench against exactly the same load.
//!
//! Three loads ship with the facade — [`LumpedCapLoad`], [`PiModelLoad`] and
//! [`DistributedRlcLoad`] — plus [`MomentsLoad`] for loads known only through
//! extracted admittance moments. Downstream users implement the trait for
//! anything else (coupled buses, tree nets, …).

use crate::error::EngineError;
use rlc_ceff::flow::{ReducedLoad, WaveParameters};
use rlc_interconnect::RlcLine;
use rlc_moments::{PiModel, RationalAdmittance};
use rlc_spice::circuit::{Circuit, NodeId};
use rlc_spice::testbench::add_rlc_ladder;

/// An abstract load seen by a driver: anything that can be reduced to a
/// rational driving-point admittance and (optionally) realized as a netlist.
///
/// The trait is object-safe; stages store loads as `Arc<dyn LoadModel>`.
pub trait LoadModel: std::fmt::Debug + Send + Sync {
    /// Reduces the load for the analytic flow.
    ///
    /// # Errors
    /// Returns a load error when no usable admittance exists (for example
    /// degenerate moments).
    fn reduce(&self) -> Result<ReducedLoad, EngineError>;

    /// Total capacitance of the load (used for driver on-resistance
    /// extraction and simulation-window estimates).
    fn total_capacitance(&self) -> f64;

    /// Wave parameters when the load contains a transmission line.
    fn wave(&self) -> Option<WaveParameters> {
        None
    }

    /// Appends the load's netlist to `ckt` at the driving-point node `near`,
    /// returning the node the far-end response should be measured at.
    /// `segments` controls discretization for distributed loads and
    /// `v_initial` the initial condition of created nodes.
    ///
    /// # Errors
    /// Returns [`EngineError::Unsupported`] for loads with no physical
    /// realization.
    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError>;

    /// One-line human-readable description.
    fn describe(&self) -> String;
}

/// A lumped capacitive load `Y(s) = C s` — the classic NLDM table load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LumpedCapLoad {
    c: f64,
}

impl LumpedCapLoad {
    /// Creates a lumped capacitor load.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] unless `c` is positive and
    /// finite.
    pub fn new(c: f64) -> Result<Self, EngineError> {
        if !(c > 0.0 && c.is_finite()) {
            return Err(EngineError::invalid(format!(
                "lumped load capacitance must be positive and finite, got {c:e}"
            )));
        }
        Ok(LumpedCapLoad { c })
    }

    /// The capacitance (farads).
    pub fn capacitance(&self) -> f64 {
        self.c
    }
}

impl LoadModel for LumpedCapLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        ReducedLoad::lumped(self.c).map_err(EngineError::from)
    }

    fn total_capacitance(&self) -> f64 {
        self.c
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        _v_initial: f64,
        _segments: usize,
    ) -> Result<NodeId, EngineError> {
        ckt.add_capacitor("CLOAD", near, Circuit::GROUND, self.c);
        Ok(near)
    }

    fn describe(&self) -> String {
        format!("lumped C = {:.1} fF", self.c * 1e15)
    }
}

/// An O'Brien–Savarino RC pi load: `c_near` at the driving point, series
/// resistance, `c_far` behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiModelLoad {
    pi: PiModel,
}

impl PiModelLoad {
    /// Wraps an already synthesized pi model.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] for non-physical element values.
    pub fn new(pi: PiModel) -> Result<Self, EngineError> {
        let physical = pi.c_near >= 0.0
            && pi.c_far > 0.0
            && pi.resistance > 0.0
            && [pi.c_near, pi.c_far, pi.resistance]
                .iter()
                .all(|v| v.is_finite());
        if !physical {
            return Err(EngineError::invalid(format!(
                "pi model elements must be physical (c_near = {:.3e}, R = {:.3e}, c_far = {:.3e})",
                pi.c_near, pi.resistance, pi.c_far
            )));
        }
        Ok(PiModelLoad { pi })
    }

    /// Synthesizes the pi load from the first three admittance moments.
    ///
    /// # Errors
    /// Returns a load error when the moments are not RC-realizable (which is
    /// exactly what happens for inductance-dominated nets — use
    /// [`DistributedRlcLoad`] there).
    pub fn from_moments(moments: &[f64]) -> Result<Self, EngineError> {
        Ok(PiModelLoad {
            pi: PiModel::from_moments(moments)?,
        })
    }

    /// The underlying pi model.
    pub fn pi(&self) -> &PiModel {
        &self.pi
    }
}

impl LoadModel for PiModelLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        Ok(ReducedLoad {
            fit: self.pi.admittance(),
            external_load: self.pi.total_capacitance(),
            wave: None,
        })
    }

    fn total_capacitance(&self) -> f64 {
        self.pi.total_capacitance()
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        _segments: usize,
    ) -> Result<NodeId, EngineError> {
        if self.pi.c_near > 0.0 {
            ckt.add_capacitor("CNEAR", near, Circuit::GROUND, self.pi.c_near);
        }
        let far = ckt.node("pi_far");
        ckt.add_resistor("RPI", near, far, self.pi.resistance.max(1e-6));
        ckt.add_capacitor("CFAR", far, Circuit::GROUND, self.pi.c_far);
        ckt.set_initial_condition(far, v_initial);
        Ok(far)
    }

    fn describe(&self) -> String {
        format!(
            "pi load: Cn = {:.1} fF, R = {:.1} ohm, Cf = {:.1} fF",
            self.pi.c_near * 1e15,
            self.pi.resistance,
            self.pi.c_far * 1e15
        )
    }
}

/// The paper's load: a distributed RLC line terminated by a fan-out
/// capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedRlcLoad {
    line: RlcLine,
    c_load: f64,
}

impl DistributedRlcLoad {
    /// Creates the load from an extracted line and the far-end capacitance.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] if `c_load` is negative or
    /// non-finite.
    pub fn new(line: RlcLine, c_load: f64) -> Result<Self, EngineError> {
        if !(c_load >= 0.0 && c_load.is_finite()) {
            return Err(EngineError::invalid(format!(
                "far-end load capacitance must be non-negative and finite, got {c_load:e}"
            )));
        }
        Ok(DistributedRlcLoad { line, c_load })
    }

    /// The line.
    pub fn line(&self) -> &RlcLine {
        &self.line
    }

    /// The fan-out capacitance at the far end (farads).
    pub fn fanout_capacitance(&self) -> f64 {
        self.c_load
    }
}

impl LoadModel for DistributedRlcLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        ReducedLoad::from_line(&self.line, self.c_load).map_err(EngineError::from)
    }

    fn total_capacitance(&self) -> f64 {
        self.line.capacitance() + self.c_load
    }

    fn wave(&self) -> Option<WaveParameters> {
        Some(WaveParameters::of_line(&self.line))
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError> {
        Ok(add_rlc_ladder(
            ckt,
            near,
            self.line.resistance(),
            self.line.inductance(),
            self.line.capacitance(),
            segments,
            self.c_load,
            v_initial,
            "line",
        ))
    }

    fn describe(&self) -> String {
        format!(
            "RLC line ({}) + CL = {:.1} fF",
            self.line,
            self.c_load * 1e15
        )
    }
}

/// A load known only through its driving-point admittance moments (for
/// example handed over from a parasitic reducer). Analytic-backend only: it
/// has no netlist, and the rational fit happens at analysis time — so a
/// degenerate moment set fails *per stage*, which is exactly what the batch
/// error-recovery path is for.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentsLoad {
    moments: Vec<f64>,
}

impl MomentsLoad {
    /// Creates the load from admittance moments (`moments[k]` is the
    /// coefficient of `s^(k+1)`; the first is the total capacitance).
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the moments are empty, not
    /// finite, or the total capacitance is not positive. Note that a
    /// *degenerate but well-formed* moment set (e.g. a pure capacitor given
    /// five moments) passes construction and fails later, at
    /// [`LoadModel::reduce`] time.
    pub fn new(moments: Vec<f64>) -> Result<Self, EngineError> {
        if moments.is_empty() || !moments.iter().all(|m| m.is_finite()) {
            return Err(EngineError::invalid(
                "admittance moments must be a non-empty list of finite values",
            ));
        }
        if moments[0] <= 0.0 {
            return Err(EngineError::invalid(format!(
                "the first admittance moment (total capacitance) must be positive, got {:e}",
                moments[0]
            )));
        }
        Ok(MomentsLoad { moments })
    }

    /// The stored moments.
    pub fn moments(&self) -> &[f64] {
        &self.moments
    }
}

impl LoadModel for MomentsLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        let fit = RationalAdmittance::from_moments(&self.moments)?;
        Ok(ReducedLoad {
            fit,
            external_load: self.moments[0],
            wave: None,
        })
    }

    fn total_capacitance(&self) -> f64 {
        self.moments[0]
    }

    fn attach(
        &self,
        _ckt: &mut Circuit,
        _near: NodeId,
        _v_initial: f64,
        _segments: usize,
    ) -> Result<NodeId, EngineError> {
        Err(EngineError::unsupported(
            "a moment-space load has no netlist; use the analytic backend or a physical load model",
        ))
    }

    fn describe(&self) -> String {
        format!(
            "moment-space load: {} moments, Ctotal = {:.1} fF",
            self.moments.len(),
            self.moments[0] * 1e15
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_moments::distributed_admittance_moments;
    use rlc_numeric::units::{ff, mm, nh, pf};

    #[test]
    fn lumped_load_reduces_exactly() {
        let load = LumpedCapLoad::new(ff(250.0)).unwrap();
        let reduced = load.reduce().unwrap();
        assert_eq!(reduced.fit.pole_count(), 0);
        assert!((reduced.total_capacitance() - 250e-15).abs() < 1e-24);
        assert!(reduced.wave.is_none());
        assert!(load.describe().contains("250.0 fF"));
        assert!(LumpedCapLoad::new(-1.0).is_err());
        assert!(LumpedCapLoad::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pi_load_reduces_to_one_pole() {
        let pi = PiModel {
            c_near: 0.2e-12,
            resistance: 120.0,
            c_far: 0.9e-12,
        };
        let load = PiModelLoad::new(pi).unwrap();
        let reduced = load.reduce().unwrap();
        assert_eq!(reduced.fit.pole_count(), 1);
        assert!((load.total_capacitance() - 1.1e-12).abs() < 1e-24);
        assert!(PiModelLoad::new(PiModel {
            c_near: -1e-12,
            resistance: 120.0,
            c_far: 0.9e-12,
        })
        .is_err());
    }

    #[test]
    fn rlc_load_reduces_to_the_paper_fit() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let load = DistributedRlcLoad::new(line, ff(10.0)).unwrap();
        let reduced = load.reduce().unwrap();
        assert_eq!(reduced.fit.pole_count(), 2);
        assert!(reduced.wave.is_some());
        assert!((reduced.total_capacitance() - (1.10e-12 + 10e-15)).abs() < 1e-18);
        assert!(load.wave().is_some());
        assert!(DistributedRlcLoad::new(line, -1.0).is_err());
    }

    #[test]
    fn moments_load_defers_degeneracy_to_reduce_time() {
        // A pure capacitor expressed as five moments: construction succeeds,
        // reduction fails — the per-stage error the batch path must survive.
        let degenerate = MomentsLoad::new(vec![1e-12, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(matches!(degenerate.reduce(), Err(EngineError::Load { .. })));

        // A healthy moment set reduces fine.
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let healthy = MomentsLoad::new(distributed_admittance_moments(&line, ff(10.0), 5)).unwrap();
        assert!(healthy.reduce().is_ok());
        assert!(healthy.moments().len() == 5);

        assert!(MomentsLoad::new(vec![]).is_err());
        assert!(MomentsLoad::new(vec![-1e-12, 0.0]).is_err());
    }

    #[test]
    fn loads_are_object_safe() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let loads: Vec<Box<dyn LoadModel>> = vec![
            Box::new(LumpedCapLoad::new(ff(100.0)).unwrap()),
            Box::new(DistributedRlcLoad::new(line, ff(10.0)).unwrap()),
        ];
        for load in &loads {
            assert!(load.total_capacitance() > 0.0);
            assert!(!load.describe().is_empty());
        }
    }
}
