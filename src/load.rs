//! The [`LoadModel`] extension trait and the built-in load models.
//!
//! A load model answers two questions for the engine:
//!
//! 1. *What does the driver see analytically?* — [`LoadModel::reduce`]
//!    produces the [`ReducedLoad`] (rational admittance + optional wave
//!    parameters) the paper's charge-matching flow runs against.
//! 2. *What is the physical netlist?* — [`LoadModel::attach`] appends the
//!    load to a simulator circuit so the SPICE backend can run the golden
//!    testbench against exactly the same load.
//!
//! Five physical loads ship with the facade — [`LumpedCapLoad`],
//! [`PiModelLoad`], [`DistributedRlcLoad`], the multi-sink [`RlcTreeLoad`]
//! and the crosstalk [`CoupledBusLoad`] — plus [`MomentsLoad`] for loads
//! known only through extracted admittance moments. Downstream users
//! implement the trait for anything else.
//!
//! Loads with more than one observation point (tree sinks, the aggressor far
//! end of a bus) also implement [`LoadModel::attach_net`], which returns an
//! [`AttachedNet`] naming every sink node.

use std::sync::Arc;

use crate::error::EngineError;
use crate::stage::{AggressorSpec, AggressorSwitching};
use crate::variation::VariationSpec;
use rlc_ceff::flow::{ReducedLoad, WaveParameters};
use rlc_interconnect::{CoupledBus, RlcLine, RlcTree};
use rlc_moments::{tree_admittance_moments, PiModel, RationalAdmittance};
use rlc_spice::circuit::{Circuit, NodeId};
use rlc_spice::SourceWaveform;

/// An abstract load seen by a driver: anything that can be reduced to a
/// rational driving-point admittance and (optionally) realized as a netlist.
///
/// The trait is object-safe; stages store loads as `Arc<dyn LoadModel>`.
pub trait LoadModel: std::fmt::Debug + Send + Sync {
    /// Reduces the load for the analytic flow.
    ///
    /// # Errors
    /// Returns a load error when no usable admittance exists (for example
    /// degenerate moments).
    fn reduce(&self) -> Result<ReducedLoad, EngineError>;

    /// Total capacitance of the load (used for driver on-resistance
    /// extraction and simulation-window estimates).
    fn total_capacitance(&self) -> f64;

    /// Wave parameters when the load contains a transmission line.
    fn wave(&self) -> Option<WaveParameters> {
        None
    }

    /// A conservative estimate of how much simulation time the load needs
    /// *beyond* the driver transition and the configured settle time: wave
    /// round trips, multi-branch flight times, late aggressor events.
    /// Defaults to four times the wave parameters' time of flight; loads
    /// whose propagation is not captured by a single line (trees, buses)
    /// override it.
    fn settle_horizon(&self) -> f64 {
        self.wave().map(|w| 4.0 * w.time_of_flight).unwrap_or(0.0)
    }

    /// Appends the load's netlist to `ckt` at the driving-point node `near`,
    /// returning the node the far-end response should be measured at.
    /// `segments` controls discretization for distributed loads and
    /// `v_initial` the initial condition of created nodes.
    ///
    /// # Errors
    /// Returns [`EngineError::Unsupported`] for loads with no physical
    /// realization.
    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError>;

    /// Appends the load's netlist like [`LoadModel::attach`], additionally
    /// reporting **every** named sink node. The default implementation wraps
    /// [`LoadModel::attach`] as a single sink named `"far"`; multi-sink loads
    /// (trees, buses) override it.
    ///
    /// # Errors
    /// Returns [`EngineError::Unsupported`] for loads with no physical
    /// realization.
    fn attach_net(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<AttachedNet, EngineError> {
        let primary = self.attach(ckt, near, v_initial, segments)?;
        Ok(AttachedNet {
            primary,
            sinks: vec![("far".to_string(), primary)],
        })
    }

    /// The sink names [`LoadModel::attach_net`] would expose, **without**
    /// building the netlist. Sessions use this to validate
    /// [`crate::InputSource::FromSink`] references at submit time. The
    /// default matches the default `attach_net` (one sink named `"far"`);
    /// loads with no physical realization return an empty list.
    fn sink_names(&self) -> Vec<String> {
        vec!["far".to_string()]
    }

    /// A copy of this load with its aggressor drive replaced, for loads that
    /// model one (a coupled bus). Returns `None` for loads without an
    /// aggressor — [`crate::StageBuilder::aggressor`] turns that into a
    /// typed validation error instead of a backend panic.
    fn with_aggressor(&self, _spec: AggressorSpec) -> Option<Arc<dyn LoadModel>> {
        None
    }

    /// A copy of this load with every element value rescaled per the
    /// variation spec: resistances by the temperature-adjusted resistance
    /// scale ([`VariationSpec::effective_r_scale`]), inductances (self and
    /// mutual) by the inductance scale, and capacitances (shunt, coupling,
    /// far-end loads) by the capacitance scale. This is the seam
    /// [`crate::TimingEngine::analyze_distribution`] revalues each variation
    /// sample through.
    ///
    /// Returns `None` for loads that cannot be revalued — a moment-space
    /// load, whose moments mix powers of R and C that one pair of scale
    /// factors cannot untangle — which distribution analysis turns into a
    /// typed [`EngineError::Unsupported`] instead of silently reusing the
    /// nominal values.
    fn scaled(&self, _spec: &VariationSpec) -> Option<Arc<dyn LoadModel>> {
        None
    }

    /// The load's interconnect topology as an [`RlcTree`], when it has one.
    /// This is what moment-space reduced-order backends
    /// ([`crate::ReducedOrderBackend`]) consume to build sink transfer
    /// functions; loads with no tree realization (lumped caps, pi models,
    /// coupled buses, moment-space loads) return `None` and such backends
    /// fall back to simulation.
    fn tree_topology(&self) -> Option<RlcTree> {
        None
    }

    /// A stable content fingerprint of the load — a hash over a type tag
    /// plus every element value — used to key the persistent stage-result
    /// cache ([`crate::StageResultCache`]). Two loads with the same
    /// fingerprint must be electrically identical.
    ///
    /// Returns `None` (the default) when the load has no faithful
    /// fingerprint; stages driving such loads are never cached and always
    /// re-simulate, which degrades performance but never correctness.
    /// Downstream implementations may hash their parameters with any stable
    /// scheme — the value is opaque to the engine.
    fn cache_fingerprint(&self) -> Option<u64> {
        None
    }

    /// One-line human-readable description.
    fn describe(&self) -> String;
}

/// Fingerprints one line's four element values into `e` for
/// [`LoadModel::cache_fingerprint`].
fn fingerprint_line(e: &mut crate::eco::Enc, line: &RlcLine) {
    e.f64(line.resistance());
    e.f64(line.inductance());
    e.f64(line.capacitance());
    e.f64(line.length());
}

/// `line` with its total parasitics rescaled per `spec` (geometry is
/// untouched: variation perturbs extracted values, not layout).
fn scale_line(line: &RlcLine, spec: &VariationSpec) -> RlcLine {
    RlcLine::new(
        line.resistance() * spec.effective_r_scale(),
        line.inductance() * spec.l_scale,
        line.capacitance() * spec.c_scale,
        line.length(),
    )
}

/// The measurement points a load's netlist exposes after
/// [`LoadModel::attach_net`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttachedNet {
    /// The primary far-end node (what [`LoadModel::attach`] returns).
    pub primary: NodeId,
    /// Every named sink with its circuit node, in declaration order.
    pub sinks: Vec<(String, NodeId)>,
}

/// A lumped capacitive load `Y(s) = C s` — the classic NLDM table load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LumpedCapLoad {
    c: f64,
}

impl LumpedCapLoad {
    /// Creates a lumped capacitor load.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] unless `c` is positive and
    /// finite.
    pub fn new(c: f64) -> Result<Self, EngineError> {
        if !(c > 0.0 && c.is_finite()) {
            return Err(EngineError::invalid(format!(
                "lumped load capacitance must be positive and finite, got {c:e}"
            )));
        }
        Ok(LumpedCapLoad { c })
    }

    /// The capacitance (farads).
    pub fn capacitance(&self) -> f64 {
        self.c
    }
}

impl LoadModel for LumpedCapLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        ReducedLoad::lumped(self.c).map_err(EngineError::from)
    }

    fn total_capacitance(&self) -> f64 {
        self.c
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        _v_initial: f64,
        _segments: usize,
    ) -> Result<NodeId, EngineError> {
        ckt.add_capacitor("CLOAD", near, Circuit::GROUND, self.c);
        Ok(near)
    }

    fn scaled(&self, spec: &VariationSpec) -> Option<Arc<dyn LoadModel>> {
        Some(Arc::new(LumpedCapLoad {
            c: self.c * spec.c_scale,
        }))
    }

    fn cache_fingerprint(&self) -> Option<u64> {
        let mut e = crate::eco::Enc::default();
        e.u8(1);
        e.f64(self.c);
        Some(crate::eco::fnv(&e.finish()))
    }

    fn describe(&self) -> String {
        format!("lumped C = {:.1} fF", self.c * 1e15)
    }
}

/// An O'Brien–Savarino RC pi load: `c_near` at the driving point, series
/// resistance, `c_far` behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiModelLoad {
    pi: PiModel,
}

impl PiModelLoad {
    /// Wraps an already synthesized pi model.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] for non-physical element values.
    pub fn new(pi: PiModel) -> Result<Self, EngineError> {
        let physical = pi.c_near >= 0.0
            && pi.c_far > 0.0
            && pi.resistance > 0.0
            && [pi.c_near, pi.c_far, pi.resistance]
                .iter()
                .all(|v| v.is_finite());
        if !physical {
            return Err(EngineError::invalid(format!(
                "pi model elements must be physical (c_near = {:.3e}, R = {:.3e}, c_far = {:.3e})",
                pi.c_near, pi.resistance, pi.c_far
            )));
        }
        Ok(PiModelLoad { pi })
    }

    /// Synthesizes the pi load from the first three admittance moments.
    ///
    /// # Errors
    /// Returns a load error when the moments are not RC-realizable (which is
    /// exactly what happens for inductance-dominated nets — use
    /// [`DistributedRlcLoad`] there).
    pub fn from_moments(moments: &[f64]) -> Result<Self, EngineError> {
        Ok(PiModelLoad {
            pi: PiModel::from_moments(moments)?,
        })
    }

    /// The underlying pi model.
    pub fn pi(&self) -> &PiModel {
        &self.pi
    }
}

impl LoadModel for PiModelLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        Ok(ReducedLoad {
            fit: self.pi.admittance(),
            external_load: self.pi.total_capacitance(),
            wave: None,
        })
    }

    fn total_capacitance(&self) -> f64 {
        self.pi.total_capacitance()
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        _segments: usize,
    ) -> Result<NodeId, EngineError> {
        if self.pi.c_near > 0.0 {
            ckt.add_capacitor("CNEAR", near, Circuit::GROUND, self.pi.c_near);
        }
        let far = ckt.node("pi_far");
        ckt.add_resistor("RPI", near, far, self.pi.resistance.max(1e-6));
        ckt.add_capacitor("CFAR", far, Circuit::GROUND, self.pi.c_far);
        ckt.set_initial_condition(far, v_initial);
        Ok(far)
    }

    fn scaled(&self, spec: &VariationSpec) -> Option<Arc<dyn LoadModel>> {
        Some(Arc::new(PiModelLoad {
            pi: PiModel {
                c_near: self.pi.c_near * spec.c_scale,
                resistance: self.pi.resistance * spec.effective_r_scale(),
                c_far: self.pi.c_far * spec.c_scale,
            },
        }))
    }

    fn cache_fingerprint(&self) -> Option<u64> {
        let mut e = crate::eco::Enc::default();
        e.u8(2);
        e.f64(self.pi.c_near);
        e.f64(self.pi.resistance);
        e.f64(self.pi.c_far);
        Some(crate::eco::fnv(&e.finish()))
    }

    fn describe(&self) -> String {
        format!(
            "pi load: Cn = {:.1} fF, R = {:.1} ohm, Cf = {:.1} fF",
            self.pi.c_near * 1e15,
            self.pi.resistance,
            self.pi.c_far * 1e15
        )
    }
}

/// The paper's load: a distributed RLC line terminated by a fan-out
/// capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedRlcLoad {
    line: RlcLine,
    c_load: f64,
}

impl DistributedRlcLoad {
    /// Creates the load from an extracted line and the far-end capacitance.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] if `c_load` is negative or
    /// non-finite.
    pub fn new(line: RlcLine, c_load: f64) -> Result<Self, EngineError> {
        if !(c_load >= 0.0 && c_load.is_finite()) {
            return Err(EngineError::invalid(format!(
                "far-end load capacitance must be non-negative and finite, got {c_load:e}"
            )));
        }
        Ok(DistributedRlcLoad { line, c_load })
    }

    /// The line.
    pub fn line(&self) -> &RlcLine {
        &self.line
    }

    /// The fan-out capacitance at the far end (farads).
    pub fn fanout_capacitance(&self) -> f64 {
        self.c_load
    }
}

impl LoadModel for DistributedRlcLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        ReducedLoad::from_line(&self.line, self.c_load).map_err(EngineError::from)
    }

    fn total_capacitance(&self) -> f64 {
        self.line.capacitance() + self.c_load
    }

    fn wave(&self) -> Option<WaveParameters> {
        Some(WaveParameters::of_line(&self.line))
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError> {
        // The single-line type is a thin wrapper over the one-branch tree;
        // the topology synthesizer is the only ladder-construction path.
        Ok(self
            .line
            .add_to_circuit(ckt, near, segments, self.c_load, v_initial, "line"))
    }

    fn tree_topology(&self) -> Option<RlcTree> {
        Some(RlcTree::single_line(self.line, self.c_load))
    }

    fn scaled(&self, spec: &VariationSpec) -> Option<Arc<dyn LoadModel>> {
        Some(Arc::new(DistributedRlcLoad {
            line: scale_line(&self.line, spec),
            c_load: self.c_load * spec.c_scale,
        }))
    }

    fn cache_fingerprint(&self) -> Option<u64> {
        let mut e = crate::eco::Enc::default();
        e.u8(3);
        fingerprint_line(&mut e, &self.line);
        e.f64(self.c_load);
        Some(crate::eco::fnv(&e.finish()))
    }

    fn describe(&self) -> String {
        format!(
            "RLC line ({}) + CL = {:.1} fF",
            self.line,
            self.c_load * 1e15
        )
    }
}

/// A multi-sink RLC tree load: the [`RlcTree`] IR behind the [`LoadModel`]
/// seam.
///
/// The analytic reduction computes the tree's driving-point admittance
/// moments by the bottom-up traversal
/// ([`rlc_moments::tree_admittance_moments`]) and fits the paper's rational
/// admittance to them. A one-branch tree reduces *identically* to
/// [`DistributedRlcLoad`] (wave parameters included, so the two-ramp model
/// still applies); branching trees carry no single characteristic impedance
/// and run the classic single-ramp flow against the fitted admittance, while
/// simulation backends and [`crate::StageReport::far_end_sinks`] see the full
/// per-sink netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct RlcTreeLoad {
    tree: RlcTree,
}

impl RlcTreeLoad {
    /// Wraps a tree, validating that it has at least one branch and one
    /// named sink.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] for empty or sinkless trees.
    pub fn new(tree: RlcTree) -> Result<Self, EngineError> {
        if tree.num_branches() == 0 {
            return Err(EngineError::invalid(
                "a tree load needs at least one branch",
            ));
        }
        if tree.num_sinks() == 0 {
            return Err(EngineError::invalid(
                "a tree load needs at least one named sink",
            ));
        }
        Ok(RlcTreeLoad { tree })
    }

    /// The underlying tree.
    pub fn tree(&self) -> &RlcTree {
        &self.tree
    }
}

impl LoadModel for RlcTreeLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        let moments = tree_admittance_moments(&self.tree, 5);
        let fit = RationalAdmittance::from_moments(&moments)?;
        let (external_load, wave) = match self.tree.as_single_line() {
            Some((line, c_load)) => (c_load, Some(WaveParameters::of_line(line))),
            None => (self.tree.sink_capacitance(), None),
        };
        Ok(ReducedLoad {
            fit,
            external_load,
            wave,
        })
    }

    fn total_capacitance(&self) -> f64 {
        self.tree.total_capacitance()
    }

    fn wave(&self) -> Option<WaveParameters> {
        self.tree
            .as_single_line()
            .map(|(line, _)| WaveParameters::of_line(line))
    }

    fn settle_horizon(&self) -> f64 {
        4.0 * self.tree.total_time_of_flight()
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError> {
        Ok(self.attach_net(ckt, near, v_initial, segments)?.primary)
    }

    fn attach_net(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<AttachedNet, EngineError> {
        let sinks: Vec<(String, NodeId)> = self
            .tree
            .add_to_circuit(ckt, near, segments, v_initial, "net")
            .into_iter()
            .map(|s| (s.name, s.node))
            .collect();
        let primary = sinks
            .first()
            .expect("construction guarantees at least one sink")
            .1;
        Ok(AttachedNet { primary, sinks })
    }

    fn sink_names(&self) -> Vec<String> {
        self.tree
            .sinks()
            .map(|(_, sink)| sink.name.clone())
            .collect()
    }

    fn tree_topology(&self) -> Option<RlcTree> {
        Some(self.tree.clone())
    }

    fn scaled(&self, spec: &VariationSpec) -> Option<Arc<dyn LoadModel>> {
        // Rebuild in branch order: `add_branch` appends, so the i-th old
        // branch maps onto the i-th new id and parent links carry over.
        let mut tree = RlcTree::new();
        let mut ids = Vec::with_capacity(self.tree.num_branches());
        for (_, branch) in self.tree.branches() {
            let parent = branch.parent().map(|p| ids[p.index()]);
            ids.push(tree.add_branch(parent, scale_line(branch.line(), spec)));
        }
        for (id, sink) in self.tree.sinks() {
            tree.set_sink(ids[id.index()], &sink.name, sink.c_load * spec.c_scale);
        }
        Some(Arc::new(RlcTreeLoad { tree }))
    }

    fn cache_fingerprint(&self) -> Option<u64> {
        let mut e = crate::eco::Enc::default();
        e.u8(4);
        e.u64(self.tree.num_branches() as u64);
        for (_, branch) in self.tree.branches() {
            match branch.parent() {
                None => e.u64(u64::MAX),
                Some(p) => e.u64(p.index() as u64),
            }
            fingerprint_line(&mut e, branch.line());
        }
        e.u64(self.tree.num_sinks() as u64);
        for (id, sink) in self.tree.sinks() {
            e.u64(id.index() as u64);
            e.str(&sink.name);
            e.f64(sink.c_load);
        }
        Some(crate::eco::fnv(&e.finish()))
    }

    fn describe(&self) -> String {
        format!(
            "RLC tree: {} branches, {} sinks, Ctotal = {:.1} fF",
            self.tree.num_branches(),
            self.tree.num_sinks(),
            self.tree.total_capacitance() * 1e15
        )
    }
}

/// A victim/aggressor coupled-bus load: the crosstalk scenario behind the
/// [`LoadModel`] seam.
///
/// The **victim** line is driven by the stage's driver; the **aggressor** is
/// driven by an ideal ramp described by the [`AggressorSpec`] (direction,
/// slew, delay, amplitude), which the load itself wires into the netlist at
/// attach time. For the analytic flow the bus reduces to the victim line
/// with the coupling capacitance folded in at the scenario's Miller factor
/// (quiet ×1, same-direction ×0, opposite ×2) — the classic decoupled
/// approximation — while simulation backends solve the fully coupled system
/// (coupling caps plus per-segment mutual inductances).
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledBusLoad {
    bus: CoupledBus,
    aggressor: AggressorSpec,
}

impl CoupledBusLoad {
    /// Creates the load from the bus geometry and the aggressor's drive.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the aggressor description
    /// is invalid ([`AggressorSpec::new`] already validates fresh specs).
    pub fn new(bus: CoupledBus, aggressor: AggressorSpec) -> Result<Self, EngineError> {
        // Re-validate so a hand-rolled struct literal cannot smuggle NaNs in.
        let aggressor = AggressorSpec::new(
            aggressor.switching,
            aggressor.slew,
            aggressor.delay,
            aggressor.amplitude,
        )?;
        Ok(CoupledBusLoad { bus, aggressor })
    }

    /// The bus geometry.
    pub fn bus(&self) -> &CoupledBus {
        &self.bus
    }

    /// The aggressor drive description.
    pub fn aggressor(&self) -> &AggressorSpec {
        &self.aggressor
    }

    /// The victim line with the Miller-scaled coupling capacitance folded
    /// into its shunt capacitance — what the analytic single-line flow sees.
    pub fn effective_victim_line(&self) -> RlcLine {
        let victim = self.bus.victim();
        RlcLine::new(
            victim.resistance(),
            victim.inductance(),
            victim.capacitance()
                + self.aggressor.switching.miller_factor() * self.bus.coupling_capacitance(),
            victim.length(),
        )
    }

    /// The aggressor's source waveform and initial level for the victim's
    /// rising transition.
    fn aggressor_drive(&self) -> (SourceWaveform, f64) {
        let a = &self.aggressor;
        match a.switching {
            AggressorSwitching::Quiet => (SourceWaveform::dc(0.0), 0.0),
            AggressorSwitching::SameDirection => (
                SourceWaveform::rising_ramp(a.amplitude, a.delay, a.slew),
                0.0,
            ),
            AggressorSwitching::OppositeDirection => (
                SourceWaveform::falling_ramp(a.amplitude, a.delay, a.slew),
                a.amplitude,
            ),
        }
    }
}

impl LoadModel for CoupledBusLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        ReducedLoad::from_line(&self.effective_victim_line(), self.bus.victim_load())
            .map_err(EngineError::from)
    }

    fn total_capacitance(&self) -> f64 {
        self.effective_victim_line().capacitance() + self.bus.victim_load()
    }

    fn wave(&self) -> Option<WaveParameters> {
        Some(WaveParameters::of_line(&self.effective_victim_line()))
    }

    fn settle_horizon(&self) -> f64 {
        // Both wires must settle, and the aggressor event itself may end
        // after the victim transition — cover it in full.
        let tof = self
            .effective_victim_line()
            .time_of_flight()
            .max(self.bus.aggressor().time_of_flight());
        4.0 * tof + self.aggressor.delay + self.aggressor.slew
    }

    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError> {
        Ok(self.attach_net(ckt, near, v_initial, segments)?.primary)
    }

    fn attach_net(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<AttachedNet, EngineError> {
        let (waveform, v_aggressor) = self.aggressor_drive();
        let aggressor_near = ckt.node("agg_in");
        ckt.add_vsource("VAGG", aggressor_near, Circuit::GROUND, waveform);
        ckt.set_initial_condition(aggressor_near, v_aggressor);
        let (victim_far, aggressor_far) = self.bus.add_to_circuit(
            ckt,
            near,
            aggressor_near,
            segments,
            v_initial,
            v_aggressor,
            "bus",
        );
        Ok(AttachedNet {
            primary: victim_far,
            sinks: vec![
                ("victim".to_string(), victim_far),
                ("aggressor".to_string(), aggressor_far),
            ],
        })
    }

    fn sink_names(&self) -> Vec<String> {
        vec!["victim".to_string(), "aggressor".to_string()]
    }

    fn with_aggressor(&self, spec: AggressorSpec) -> Option<Arc<dyn LoadModel>> {
        Some(Arc::new(CoupledBusLoad {
            bus: self.bus,
            aggressor: spec,
        }))
    }

    fn scaled(&self, spec: &VariationSpec) -> Option<Arc<dyn LoadModel>> {
        // The aggressor rail tracks the victim supply, so its swing scales
        // with the same source factor.
        Some(Arc::new(CoupledBusLoad {
            bus: CoupledBus::new(
                scale_line(self.bus.victim(), spec),
                scale_line(self.bus.aggressor(), spec),
                self.bus.coupling_capacitance() * spec.c_scale,
                self.bus.mutual_inductance() * spec.l_scale,
                self.bus.victim_load() * spec.c_scale,
                self.bus.aggressor_load() * spec.c_scale,
            ),
            aggressor: AggressorSpec {
                amplitude: self.aggressor.amplitude * spec.source_scale,
                ..self.aggressor
            },
        }))
    }

    fn cache_fingerprint(&self) -> Option<u64> {
        let mut e = crate::eco::Enc::default();
        e.u8(5);
        fingerprint_line(&mut e, self.bus.victim());
        fingerprint_line(&mut e, self.bus.aggressor());
        e.f64(self.bus.coupling_capacitance());
        e.f64(self.bus.mutual_inductance());
        e.f64(self.bus.victim_load());
        e.f64(self.bus.aggressor_load());
        e.u8(match self.aggressor.switching {
            AggressorSwitching::Quiet => 0,
            AggressorSwitching::SameDirection => 1,
            AggressorSwitching::OppositeDirection => 2,
        });
        e.f64(self.aggressor.slew);
        e.f64(self.aggressor.delay);
        e.f64(self.aggressor.amplitude);
        Some(crate::eco::fnv(&e.finish()))
    }

    fn describe(&self) -> String {
        format!(
            "{} | aggressor {:?} (slew {:.0} ps)",
            self.bus,
            self.aggressor.switching,
            self.aggressor.slew * 1e12
        )
    }
}

/// A load known only through its driving-point admittance moments (for
/// example handed over from a parasitic reducer). Analytic-backend only: it
/// has no netlist, and the rational fit happens at analysis time — so a
/// degenerate moment set fails *per stage*, which is exactly what the batch
/// error-recovery path is for.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentsLoad {
    moments: Vec<f64>,
}

impl MomentsLoad {
    /// Creates the load from admittance moments (`moments[k]` is the
    /// coefficient of `s^(k+1)`; the first is the total capacitance).
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the moments are empty, not
    /// finite, or the total capacitance is not positive. Note that a
    /// *degenerate but well-formed* moment set (e.g. a pure capacitor given
    /// five moments) passes construction and fails later, at
    /// [`LoadModel::reduce`] time.
    pub fn new(moments: Vec<f64>) -> Result<Self, EngineError> {
        if moments.is_empty() || !moments.iter().all(|m| m.is_finite()) {
            return Err(EngineError::invalid(
                "admittance moments must be a non-empty list of finite values",
            ));
        }
        if moments[0] <= 0.0 {
            return Err(EngineError::invalid(format!(
                "the first admittance moment (total capacitance) must be positive, got {:e}",
                moments[0]
            )));
        }
        Ok(MomentsLoad { moments })
    }

    /// The stored moments.
    pub fn moments(&self) -> &[f64] {
        &self.moments
    }
}

impl LoadModel for MomentsLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        let fit = RationalAdmittance::from_moments(&self.moments)?;
        Ok(ReducedLoad {
            fit,
            external_load: self.moments[0],
            wave: None,
        })
    }

    fn total_capacitance(&self) -> f64 {
        self.moments[0]
    }

    fn attach(
        &self,
        _ckt: &mut Circuit,
        _near: NodeId,
        _v_initial: f64,
        _segments: usize,
    ) -> Result<NodeId, EngineError> {
        Err(EngineError::unsupported(
            "a moment-space load has no netlist; use the analytic backend or a physical load model",
        ))
    }

    fn sink_names(&self) -> Vec<String> {
        // No netlist, no observable sinks: sessions reject dependent stages
        // that try to chain off a moment-space producer at submit time.
        Vec::new()
    }

    fn cache_fingerprint(&self) -> Option<u64> {
        let mut e = crate::eco::Enc::default();
        e.u8(6);
        e.f64s(&self.moments);
        Some(crate::eco::fnv(&e.finish()))
    }

    fn describe(&self) -> String {
        format!(
            "moment-space load: {} moments, Ctotal = {:.1} fF",
            self.moments.len(),
            self.moments[0] * 1e15
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_moments::distributed_admittance_moments;
    use rlc_numeric::units::{ff, mm, nh, pf};

    #[test]
    fn lumped_load_reduces_exactly() {
        let load = LumpedCapLoad::new(ff(250.0)).unwrap();
        let reduced = load.reduce().unwrap();
        assert_eq!(reduced.fit.pole_count(), 0);
        assert!((reduced.total_capacitance() - 250e-15).abs() < 1e-24);
        assert!(reduced.wave.is_none());
        assert!(load.describe().contains("250.0 fF"));
        assert!(LumpedCapLoad::new(-1.0).is_err());
        assert!(LumpedCapLoad::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pi_load_reduces_to_one_pole() {
        let pi = PiModel {
            c_near: 0.2e-12,
            resistance: 120.0,
            c_far: 0.9e-12,
        };
        let load = PiModelLoad::new(pi).unwrap();
        let reduced = load.reduce().unwrap();
        assert_eq!(reduced.fit.pole_count(), 1);
        assert!((load.total_capacitance() - 1.1e-12).abs() < 1e-24);
        assert!(PiModelLoad::new(PiModel {
            c_near: -1e-12,
            resistance: 120.0,
            c_far: 0.9e-12,
        })
        .is_err());
    }

    #[test]
    fn rlc_load_reduces_to_the_paper_fit() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let load = DistributedRlcLoad::new(line, ff(10.0)).unwrap();
        let reduced = load.reduce().unwrap();
        assert_eq!(reduced.fit.pole_count(), 2);
        assert!(reduced.wave.is_some());
        assert!((reduced.total_capacitance() - (1.10e-12 + 10e-15)).abs() < 1e-18);
        assert!(load.wave().is_some());
        assert!(DistributedRlcLoad::new(line, -1.0).is_err());
    }

    #[test]
    fn moments_load_defers_degeneracy_to_reduce_time() {
        // A pure capacitor expressed as five moments: construction succeeds,
        // reduction fails — the per-stage error the batch path must survive.
        let degenerate = MomentsLoad::new(vec![1e-12, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(matches!(degenerate.reduce(), Err(EngineError::Load { .. })));

        // A healthy moment set reduces fine.
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let healthy = MomentsLoad::new(distributed_admittance_moments(&line, ff(10.0), 5)).unwrap();
        assert!(healthy.reduce().is_ok());
        assert!(healthy.moments().len() == 5);

        assert!(MomentsLoad::new(vec![]).is_err());
        assert!(MomentsLoad::new(vec![-1e-12, 0.0]).is_err());
    }

    #[test]
    fn one_branch_tree_load_reduces_identically_to_the_line_load() {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let line_load = DistributedRlcLoad::new(line, ff(10.0)).unwrap();
        let tree_load = RlcTreeLoad::new(RlcTree::single_line(line, ff(10.0))).unwrap();
        let a = line_load.reduce().unwrap();
        let b = tree_load.reduce().unwrap();
        assert_eq!(a.fit, b.fit);
        assert_eq!(a.external_load, b.external_load);
        assert_eq!(a.wave, b.wave);
        assert_eq!(line_load.wave(), tree_load.wave());
        assert_eq!(line_load.total_capacitance(), tree_load.total_capacitance());
    }

    #[test]
    fn branching_tree_load_reduces_without_wave_parameters() {
        let trunk = RlcLine::new(40.0, nh(2.0), pf(0.5), mm(2.0));
        let stub = RlcLine::new(20.0, nh(1.0), pf(0.3), mm(1.0));
        let mut tree = RlcTree::new();
        let t = tree.add_branch(None, trunk);
        let l = tree.add_branch(Some(t), stub);
        let r = tree.add_branch(Some(t), stub);
        tree.set_sink(l, "rx0", ff(15.0));
        tree.set_sink(r, "rx1", ff(25.0));
        let load = RlcTreeLoad::new(tree).unwrap();
        let reduced = load.reduce().unwrap();
        assert!(reduced.wave.is_none());
        assert!(load.wave().is_none());
        assert!((reduced.external_load - 40e-15).abs() < 1e-24);
        assert!((reduced.total_capacitance() - load.total_capacitance()).abs() < 1e-18);
        assert!(load.describe().contains("3 branches"));

        // attach_net exposes both sinks; attach returns the first.
        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(0.0));
        let net = load.attach_net(&mut ckt, near, 0.0, 6).unwrap();
        assert_eq!(net.sinks.len(), 2);
        assert_eq!(net.sinks[0].0, "rx0");
        assert_eq!(net.primary, net.sinks[0].1);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn tree_load_rejects_empty_and_sinkless_trees() {
        assert!(RlcTreeLoad::new(RlcTree::new()).is_err());
        let mut tree = RlcTree::new();
        tree.add_branch(None, RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0)));
        assert!(RlcTreeLoad::new(tree).is_err());
    }

    #[test]
    fn coupled_bus_miller_reduction_orders_the_scenarios() {
        use crate::stage::{AggressorSpec, AggressorSwitching};
        use rlc_interconnect::CoupledBus;
        use rlc_numeric::units::ps;

        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let bus = CoupledBus::symmetric(line, pf(0.4), nh(1.0), ff(10.0));
        let load_for = |switching| {
            CoupledBusLoad::new(
                bus,
                AggressorSpec::new(switching, ps(100.0), ps(20.0), 1.8).unwrap(),
            )
            .unwrap()
        };
        let same = load_for(AggressorSwitching::SameDirection);
        let quiet = load_for(AggressorSwitching::Quiet);
        let opposite = load_for(AggressorSwitching::OppositeDirection);
        // Effective victim capacitance: same < quiet < opposite.
        assert!(same.total_capacitance() < quiet.total_capacitance());
        assert!(quiet.total_capacitance() < opposite.total_capacitance());
        // Same-direction switching cancels the coupling entirely: identical
        // to the uncoupled victim line.
        let solo = DistributedRlcLoad::new(line, ff(10.0)).unwrap();
        assert_eq!(same.reduce().unwrap().fit, solo.reduce().unwrap().fit);
        assert!(opposite.describe().contains("aggressor"));
    }

    #[test]
    fn coupled_bus_attach_wires_the_aggressor_source() {
        use crate::stage::{AggressorSpec, AggressorSwitching};
        use rlc_interconnect::CoupledBus;
        use rlc_numeric::units::ps;

        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let bus = CoupledBus::symmetric(line, pf(0.4), nh(1.0), ff(10.0));
        let load = CoupledBusLoad::new(
            bus,
            AggressorSpec::new(
                AggressorSwitching::OppositeDirection,
                ps(100.0),
                ps(20.0),
                1.8,
            )
            .unwrap(),
        )
        .unwrap();
        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(0.0));
        let net = load.attach_net(&mut ckt, near, 0.0, 8).unwrap();
        assert_eq!(net.sinks.len(), 2);
        assert_eq!(net.sinks[0].0, "victim");
        assert_eq!(net.sinks[1].0, "aggressor");
        assert_eq!(net.primary, net.sinks[0].1);
        // The aggressor source was added by the load.
        assert!(ckt.find_node("agg_in").is_some());
        assert!(ckt.validate().is_ok());
    }

    #[test]
    fn sink_names_match_attach_net_without_building_a_circuit() {
        use crate::stage::AggressorSpec;
        use rlc_interconnect::CoupledBus;

        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        // Single-sink loads expose the default "far".
        assert_eq!(
            DistributedRlcLoad::new(line, ff(10.0))
                .unwrap()
                .sink_names(),
            vec!["far".to_string()]
        );
        assert_eq!(
            LumpedCapLoad::new(ff(100.0)).unwrap().sink_names(),
            vec!["far".to_string()]
        );
        // Moment-space loads have no netlist, hence no sinks.
        assert!(MomentsLoad::new(vec![1e-12, -1e-23])
            .unwrap()
            .sink_names()
            .is_empty());
        // Buses name both far ends.
        let bus_load = CoupledBusLoad::new(
            CoupledBus::symmetric(line, pf(0.4), nh(1.0), ff(10.0)),
            AggressorSpec::quiet(1.8).unwrap(),
        )
        .unwrap();
        assert_eq!(bus_load.sink_names(), vec!["victim", "aggressor"]);

        // Tree sinks, in the same order attach_net reports them.
        let trunk = RlcLine::new(40.0, nh(2.0), pf(0.5), mm(2.0));
        let stub = RlcLine::new(20.0, nh(1.0), pf(0.3), mm(1.0));
        let mut tree = RlcTree::new();
        let t = tree.add_branch(None, trunk);
        let l = tree.add_branch(Some(t), stub);
        let r = tree.add_branch(Some(t), stub);
        tree.set_sink(l, "rx0", ff(15.0));
        tree.set_sink(r, "rx1", ff(25.0));
        let load = RlcTreeLoad::new(tree).unwrap();
        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(0.0));
        let net = load.attach_net(&mut ckt, near, 0.0, 4).unwrap();
        let attached: Vec<String> = net.sinks.into_iter().map(|(n, _)| n).collect();
        assert_eq!(load.sink_names(), attached);
    }

    #[test]
    fn with_aggressor_swaps_the_drive_on_buses_only() {
        use crate::stage::{AggressorSpec, AggressorSwitching};
        use rlc_interconnect::CoupledBus;
        use rlc_numeric::units::ps;

        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let opposite =
            AggressorSpec::new(AggressorSwitching::OppositeDirection, ps(80.0), 0.0, 1.8).unwrap();
        // Non-coupled loads refuse.
        assert!(LumpedCapLoad::new(ff(100.0))
            .unwrap()
            .with_aggressor(opposite)
            .is_none());
        assert!(DistributedRlcLoad::new(line, ff(10.0))
            .unwrap()
            .with_aggressor(opposite)
            .is_none());
        // The bus swaps its spec (and keeps its geometry).
        let quiet = CoupledBusLoad::new(
            CoupledBus::symmetric(line, pf(0.4), nh(1.0), ff(10.0)),
            AggressorSpec::quiet(1.8).unwrap(),
        )
        .unwrap();
        let swapped = quiet.with_aggressor(opposite).unwrap();
        assert!(swapped.total_capacitance() > quiet.total_capacitance());
        assert_eq!(swapped.sink_names(), quiet.sink_names());
    }

    #[test]
    fn scaled_revalues_every_element_class() {
        use crate::variation::VariationSpec;

        let spec = VariationSpec::nominal()
            .with_r_scale(1.2)
            .with_l_scale(0.9)
            .with_c_scale(1.1)
            .with_source_scale(0.95);
        let r_eff = spec.effective_r_scale();

        // Lumped: capacitance only.
        let lumped = LumpedCapLoad::new(ff(200.0)).unwrap();
        let scaled = lumped.scaled(&spec).unwrap();
        assert!((scaled.total_capacitance() - 1.1 * 200e-15).abs() < 1e-27);

        // Pi: R by the (temperature-adjusted) resistance scale, C by c_scale.
        let pi = PiModelLoad::new(PiModel {
            c_near: 0.2e-12,
            resistance: 120.0,
            c_far: 0.9e-12,
        })
        .unwrap();
        let scaled = pi.scaled(&spec).unwrap();
        assert!((scaled.total_capacitance() - 1.1 * 1.1e-12).abs() < 1e-24);

        // Line: every class, load included; geometry untouched.
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let load = DistributedRlcLoad::new(line, ff(10.0)).unwrap();
        let scaled = load.scaled(&spec).unwrap();
        let tree = scaled.tree_topology().unwrap();
        let (scaled_line, c_load) = tree.as_single_line().map(|(l, c)| (*l, c)).unwrap();
        assert!((scaled_line.resistance() - 72.44 * r_eff).abs() < 1e-9);
        assert!((scaled_line.inductance() - 0.9 * 5.14e-9).abs() < 1e-21);
        assert!((scaled_line.capacitance() - 1.1 * 1.10e-12).abs() < 1e-24);
        assert_eq!(scaled_line.length(), line.length());
        assert!((c_load - 1.1 * 10e-15).abs() < 1e-27);

        // Tree: structure, parents and sink names survive the rebuild.
        let trunk = RlcLine::new(40.0, nh(2.0), pf(0.5), mm(2.0));
        let stub = RlcLine::new(20.0, nh(1.0), pf(0.3), mm(1.0));
        let mut t = RlcTree::new();
        let root = t.add_branch(None, trunk);
        let l = t.add_branch(Some(root), stub);
        let r = t.add_branch(Some(root), stub);
        t.set_sink(l, "rx0", ff(15.0));
        t.set_sink(r, "rx1", ff(25.0));
        let tree_load = RlcTreeLoad::new(t).unwrap();
        let scaled = tree_load.scaled(&spec).unwrap();
        assert_eq!(scaled.sink_names(), tree_load.sink_names());
        let st = scaled.tree_topology().unwrap();
        assert_eq!(st.num_branches(), 3);
        assert!((st.total_capacitance() - 1.1 * tree_load.total_capacitance()).abs() < 1e-24);

        // Bus: coupling C, mutual L and the aggressor amplitude all scale.
        let bus = CoupledBus::symmetric(line, pf(0.4), nh(1.0), ff(10.0));
        let bus_load = CoupledBusLoad::new(bus, AggressorSpec::quiet(1.8).unwrap()).unwrap();
        let scaled = bus_load.scaled(&spec).unwrap();
        // Quiet aggressor -> Miller factor 1: effective C = line C + cc, and
        // every term scales by c_scale.
        assert!((scaled.total_capacitance() - 1.1 * bus_load.total_capacitance()).abs() < 1e-24);
        assert_eq!(scaled.sink_names(), bus_load.sink_names());

        // Temperature feeds the resistance scale.
        let hot = VariationSpec::nominal().with_temperature_delta(100.0);
        assert!(hot.effective_r_scale() > 1.0);
        let hot_line = load.scaled(&hot).unwrap().tree_topology().unwrap();
        let (hl, _) = hot_line.as_single_line().unwrap();
        assert!((hl.resistance() - 72.44 * hot.effective_r_scale()).abs() < 1e-9);

        // Moment-space loads cannot be revalued.
        assert!(MomentsLoad::new(vec![1e-12, -1e-23])
            .unwrap()
            .scaled(&spec)
            .is_none());
    }

    #[test]
    fn loads_are_object_safe() {
        use crate::stage::AggressorSpec;
        use rlc_interconnect::CoupledBus;

        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let loads: Vec<Box<dyn LoadModel>> = vec![
            Box::new(LumpedCapLoad::new(ff(100.0)).unwrap()),
            Box::new(DistributedRlcLoad::new(line, ff(10.0)).unwrap()),
            Box::new(RlcTreeLoad::new(RlcTree::single_line(line, ff(10.0))).unwrap()),
            Box::new(
                CoupledBusLoad::new(
                    CoupledBus::symmetric(line, pf(0.4), nh(1.0), ff(10.0)),
                    AggressorSpec::quiet(1.8).unwrap(),
                )
                .unwrap(),
            ),
        ];
        for load in &loads {
            assert!(load.total_capacitance() > 0.0);
            assert!(!load.describe().is_empty());
        }
    }
}
