//! The [`DriverModel`] extension trait: one object-safe interface over every
//! driver-output waveform the engine can produce — the paper's saturated
//! single ramp, its two-ramp waveform, and sampled simulator waveforms.

use rlc_ceff::{SingleRampModel, TwoRampModel};
use rlc_spice::{SourceWaveform, Waveform};

use crate::stage::InputEvent;

/// An abstract driver-output waveform: voltage as a function of time plus the
/// timing metrics a signoff flow propagates.
///
/// The trait is object-safe; stage reports store waveforms as
/// `Arc<dyn DriverModel>`.
pub trait DriverModel: std::fmt::Debug + Send + Sync {
    /// Voltage at absolute time `t` (volts).
    fn v(&self, t: f64) -> f64;

    /// 50 % delay relative to the input's 50 % crossing (seconds).
    ///
    /// Always well defined for the analytic ramps; for sampled waveforms
    /// prefer [`DriverModel::try_delay_from`], which reports a non-settling
    /// transition as `None` instead of `NaN`.
    fn delay_from(&self, input_t50: f64) -> f64;

    /// 10–90 % output transition time (seconds).
    ///
    /// Always well defined for the analytic ramps; for sampled waveforms
    /// prefer [`DriverModel::try_slew`], which reports a non-settling
    /// transition as `None` instead of `NaN`.
    fn slew(&self) -> f64;

    /// Checked 50 % delay: `None` when the waveform never completes the
    /// crossing (a sampled transition that does not settle in its window).
    ///
    /// `NaN` must never escape this method — comparisons against `NaN` are
    /// silently false, which poisons signoff comparisons downstream.
    fn try_delay_from(&self, input_t50: f64) -> Option<f64> {
        let delay = self.delay_from(input_t50);
        (!delay.is_nan()).then_some(delay)
    }

    /// Checked 10–90 % transition time: `None` when the waveform never
    /// completes the transition.
    fn try_slew(&self) -> Option<f64> {
        let slew = self.slew();
        (!slew.is_nan()).then_some(slew)
    }

    /// Time at which the transition is (effectively) complete (seconds).
    fn end_time(&self) -> f64;

    /// The waveform as a PWL source padded to `t_stop`, for driving far-end
    /// simulations.
    fn to_source(&self, t_stop: f64) -> SourceWaveform;

    /// An exact persistable description of this waveform for the
    /// stage-result cache ([`crate::StageResultCache`]): the model parameters
    /// (or samples) that reconstruct it bit-identically. Returns `None` (the
    /// default) for waveform types the cache does not know; reports carrying
    /// such waveforms are simply never persisted.
    fn cache_descriptor(&self) -> Option<crate::eco::WaveformDescriptor> {
        None
    }

    /// One-line human-readable description.
    fn describe(&self) -> String;
}

impl DriverModel for SingleRampModel {
    fn v(&self, t: f64) -> f64 {
        self.value_at(t)
    }

    fn delay_from(&self, input_t50: f64) -> f64 {
        SingleRampModel::delay_from(self, input_t50)
    }

    fn slew(&self) -> f64 {
        self.slew_10_90()
    }

    fn end_time(&self) -> f64 {
        self.start_time + self.tr
    }

    fn to_source(&self, t_stop: f64) -> SourceWaveform {
        SingleRampModel::to_source(self, t_stop)
    }

    fn cache_descriptor(&self) -> Option<crate::eco::WaveformDescriptor> {
        Some(crate::eco::WaveformDescriptor::SingleRamp {
            vdd: self.vdd,
            tr: self.tr,
            start_time: self.start_time,
        })
    }

    fn describe(&self) -> String {
        self.to_string()
    }
}

impl DriverModel for TwoRampModel {
    fn v(&self, t: f64) -> f64 {
        self.value_at(t)
    }

    fn delay_from(&self, input_t50: f64) -> f64 {
        TwoRampModel::delay_from(self, input_t50)
    }

    fn slew(&self) -> f64 {
        self.slew_10_90()
    }

    fn end_time(&self) -> f64 {
        self.start_time + TwoRampModel::end_time(self)
    }

    fn to_source(&self, t_stop: f64) -> SourceWaveform {
        TwoRampModel::to_source(self, t_stop)
    }

    fn cache_descriptor(&self) -> Option<crate::eco::WaveformDescriptor> {
        Some(crate::eco::WaveformDescriptor::TwoRamp {
            vdd: self.vdd,
            f: self.f,
            tr1: self.tr1,
            tr2: self.tr2,
            start_time: self.start_time,
        })
    }

    fn describe(&self) -> String {
        self.to_string()
    }
}

/// A sampled (simulated or measured) driver-output waveform presented behind
/// the same [`DriverModel`] interface as the analytic ramps — this is what
/// the SPICE backend returns.
///
/// The checked metrics ([`DriverModel::try_delay_from`],
/// [`DriverModel::try_slew`]) report a transition that never settles as
/// `None`; the unchecked `f64` metrics delegate to them and fall back to
/// `NaN` only for callers that insist on the plain-number interface. The
/// SPICE backend validates the crossings it needs before constructing a
/// [`crate::StageReport`], so reports never carry `NaN` delays or slews.
#[derive(Debug, Clone)]
pub struct SampledWaveform {
    waveform: Waveform,
    vdd: f64,
}

impl SampledWaveform {
    /// Wraps a sampled waveform with its supply voltage.
    pub fn new(waveform: Waveform, vdd: f64) -> Self {
        SampledWaveform { waveform, vdd }
    }

    /// The underlying samples.
    pub fn waveform(&self) -> &Waveform {
        &self.waveform
    }

    /// Supply voltage (volts).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The slew-referenced input event an ideal downstream driver would see
    /// from this measured waveform ([`InputEvent::from_measured`]): `None`
    /// when the waveform never completes its 50 % crossing or 10–90 %
    /// transition. This is the default cross-stage handoff of
    /// [`crate::AnalysisSession`]; backends reporting
    /// [`crate::BackendCaps::sampled_input`] receive the full waveform
    /// instead.
    pub fn ramp_event(&self) -> Option<InputEvent> {
        let t50 = self.waveform.crossing_fraction(0.5, self.vdd, true)?;
        let slew = self.waveform.slew_10_90(self.vdd, true)?;
        Some(InputEvent::from_measured(t50, slew))
    }
}

impl DriverModel for SampledWaveform {
    fn v(&self, t: f64) -> f64 {
        self.waveform.value_at(t)
    }

    fn delay_from(&self, input_t50: f64) -> f64 {
        self.try_delay_from(input_t50).unwrap_or(f64::NAN)
    }

    fn slew(&self) -> f64 {
        self.try_slew().unwrap_or(f64::NAN)
    }

    fn try_delay_from(&self, input_t50: f64) -> Option<f64> {
        self.waveform
            .crossing_fraction(0.5, self.vdd, true)
            .map(|t| t - input_t50)
    }

    fn try_slew(&self) -> Option<f64> {
        self.waveform.slew_10_90(self.vdd, true)
    }

    fn end_time(&self) -> f64 {
        self.waveform
            .crossing_fraction(0.95, self.vdd, true)
            .unwrap_or_else(|| self.waveform.last_time())
    }

    fn to_source(&self, t_stop: f64) -> SourceWaveform {
        let mut pts: Vec<(f64, f64)> = self
            .waveform
            .times()
            .iter()
            .zip(self.waveform.values())
            .map(|(&t, &v)| (t, v))
            .collect();
        if let Some(&(last_t, _)) = pts.last() {
            if t_stop > last_t {
                pts.push((t_stop, self.waveform.last_value()));
            }
        }
        SourceWaveform::pwl(pts)
    }

    fn cache_descriptor(&self) -> Option<crate::eco::WaveformDescriptor> {
        Some(crate::eco::WaveformDescriptor::Sampled {
            vdd: self.vdd,
            times: self.waveform.times().to_vec(),
            values: self.waveform.values().to_vec(),
        })
    }

    fn describe(&self) -> String {
        format!(
            "sampled waveform: {} points over {:.1} ps, vdd = {:.2} V",
            self.waveform.len(),
            self.waveform.last_time() * 1e12,
            self.vdd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::units::ps;

    #[test]
    fn ramps_behave_identically_through_the_trait_object() {
        let single = SingleRampModel::new(1.8, ps(200.0), ps(50.0));
        let two = TwoRampModel::new(1.8, 0.5, ps(60.0), ps(240.0), ps(50.0));
        let models: Vec<Box<dyn DriverModel>> = vec![Box::new(single), Box::new(two)];
        for m in &models {
            assert_eq!(m.v(0.0), 0.0);
            assert!((m.v(m.end_time() + ps(100.0)) - 1.8).abs() < 1e-9);
            assert!(m.slew() > 0.0);
            assert!(m.delay_from(ps(40.0)) > 0.0);
            assert!(m.end_time() > ps(50.0));
            assert!(!m.describe().is_empty());
            let src = m.to_source(ps(1000.0));
            for &t in &[0.0, ps(80.0), ps(150.0), ps(400.0), ps(900.0)] {
                assert!((src.value_at(t) - m.v(t)).abs() < 1e-9);
            }
        }
        // Through the object, trait metrics match the inherent ones.
        assert!((models[0].slew() - single.slew_10_90()).abs() < 1e-18);
    }

    #[test]
    fn sampled_waveform_measures_like_its_source_ramp() {
        let ramp = SingleRampModel::new(1.8, ps(200.0), ps(50.0));
        let sampled = SampledWaveform::new(ramp.to_waveform(ps(600.0), 1200), 1.8);
        assert!((sampled.slew() - ramp.slew_10_90()).abs() < ps(2.0));
        assert!((sampled.delay_from(ps(40.0)) - ramp.delay_from(ps(40.0))).abs() < ps(2.0));
        assert!((sampled.v(ps(150.0)) - ramp.value_at(ps(150.0))).abs() < 0.01);
        assert!(sampled.end_time() > ps(200.0));
        assert_eq!(sampled.vdd(), 1.8);
        assert!(sampled.describe().contains("sampled"));
        let src = sampled.to_source(ps(1000.0));
        assert!((src.value_at(ps(900.0)) - 1.8).abs() < 1e-6);
    }

    #[test]
    fn incomplete_transitions_surface_as_none_not_nan() {
        // A waveform that never reaches 50 %.
        let flat = Waveform::from_fn(|_| 0.1, ps(500.0), 100);
        let sampled = SampledWaveform::new(flat, 1.8);
        // The checked metrics say "no transition" explicitly …
        assert_eq!(sampled.try_delay_from(0.0), None);
        assert_eq!(sampled.try_slew(), None);
        // … and through the trait object as well.
        let model: &dyn DriverModel = &sampled;
        assert_eq!(model.try_delay_from(0.0), None);
        assert_eq!(model.try_slew(), None);
        // The legacy f64 interface keeps its NaN sentinel for callers that
        // bypass the checked API.
        assert!(sampled.delay_from(0.0).is_nan());
        assert!(sampled.slew().is_nan());
        assert!(!sampled.waveform().is_empty());
    }

    #[test]
    fn complete_transitions_report_some_through_the_checked_api() {
        let ramp = SingleRampModel::new(1.8, ps(200.0), ps(50.0));
        let sampled = SampledWaveform::new(ramp.to_waveform(ps(600.0), 1200), 1.8);
        let delay = sampled.try_delay_from(ps(40.0)).unwrap();
        assert!((delay - sampled.delay_from(ps(40.0))).abs() < 1e-18);
        let slew = sampled.try_slew().unwrap();
        assert!((slew - sampled.slew()).abs() < 1e-18);
        // Analytic ramps are always complete: the default impls wrap them.
        let model: &dyn DriverModel = &ramp;
        assert!(model.try_delay_from(ps(40.0)).is_some());
        assert!(model.try_slew().is_some());
    }
}
