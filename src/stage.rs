//! [`Stage`]: one validated unit of timing analysis — a driver, the load it
//! drives, the input event, and (optionally) a per-stage backend override.

use std::sync::Arc;

use rlc_charlib::DriverCell;

use crate::backend::AnalysisBackend;
use crate::error::EngineError;
use crate::load::LoadModel;

/// The input event applied to the driver: a saturated ramp described by its
/// 0–100 % transition time, starting at an absolute delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputEvent {
    /// Input transition time (seconds, 0–100 %).
    pub slew: f64,
    /// Absolute time at which the input ramp starts (seconds).
    pub delay: f64,
}

impl InputEvent {
    /// Absolute time of the input's 50 % crossing.
    pub fn t50(&self) -> f64 {
        self.delay + 0.5 * self.slew
    }
}

/// Which backend analyzes a stage.
#[derive(Clone)]
pub enum BackendChoice {
    /// The paper's analytic effective-capacitance flow.
    Analytic,
    /// The golden `rlc-spice` transient simulation.
    Spice,
    /// A user-supplied backend.
    Custom(Arc<dyn AnalysisBackend>),
}

impl std::fmt::Debug for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Analytic => write!(f, "Analytic"),
            BackendChoice::Spice => write!(f, "Spice"),
            BackendChoice::Custom(b) => write!(f, "Custom({})", b.name()),
        }
    }
}

/// One validated timing-analysis stage. Build with [`Stage::builder`]; the
/// builder — unlike the deprecated panicking `AnalysisCase::new` — returns
/// `Err` for bad descriptions, so a malformed stage in a batch is a per-stage
/// report instead of a crash.
#[derive(Debug, Clone)]
pub struct Stage {
    label: String,
    driver: Arc<DriverCell>,
    load: Arc<dyn LoadModel>,
    input: InputEvent,
    backend: Option<BackendChoice>,
}

impl Stage {
    /// Starts building a stage from a driver and a load model.
    pub fn builder<L: LoadModel + 'static>(
        driver: impl Into<Arc<DriverCell>>,
        load: L,
    ) -> StageBuilder {
        Self::builder_shared(driver.into(), Arc::new(load))
    }

    /// Starts building a stage from shared driver/load handles (lets many
    /// stages of a batch share one characterized cell and one load).
    pub fn builder_shared(driver: Arc<DriverCell>, load: Arc<dyn LoadModel>) -> StageBuilder {
        StageBuilder {
            label: None,
            driver,
            load,
            slew: None,
            delay: rlc_numeric::units::ps(20.0),
            backend: None,
        }
    }

    /// The stage label (used in reports and error messages).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The characterized driver.
    pub fn driver(&self) -> &DriverCell {
        &self.driver
    }

    /// The load model.
    pub fn load(&self) -> &dyn LoadModel {
        self.load.as_ref()
    }

    /// The input event.
    pub fn input(&self) -> InputEvent {
        self.input
    }

    /// The per-stage backend override, if any.
    pub fn backend(&self) -> Option<&BackendChoice> {
        self.backend.as_ref()
    }
}

/// Builder for [`Stage`].
#[derive(Debug, Clone)]
pub struct StageBuilder {
    label: Option<String>,
    driver: Arc<DriverCell>,
    load: Arc<dyn LoadModel>,
    slew: Option<f64>,
    delay: f64,
    backend: Option<BackendChoice>,
}

impl StageBuilder {
    /// Names the stage (defaults to `"stage"`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the input transition time (seconds, 0–100 %). Required.
    pub fn input_slew(mut self, slew: f64) -> Self {
        self.slew = Some(slew);
        self
    }

    /// Sets the absolute start time of the input ramp (default 20 ps).
    pub fn input_delay(mut self, delay: f64) -> Self {
        self.delay = delay;
        self
    }

    /// Overrides the engine's default backend for this stage.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Validates and finishes the stage.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the input slew is missing,
    /// non-positive or non-finite, or the input delay is negative or
    /// non-finite.
    pub fn build(self) -> Result<Stage, EngineError> {
        let slew = self
            .slew
            .ok_or_else(|| EngineError::invalid("input slew is required: call input_slew(..)"))?;
        if !(slew > 0.0 && slew.is_finite()) {
            return Err(EngineError::invalid(format!(
                "input slew must be positive and finite, got {slew:e}"
            )));
        }
        if !(self.delay >= 0.0 && self.delay.is_finite()) {
            return Err(EngineError::invalid(format!(
                "input delay must be non-negative and finite, got {:e}",
                self.delay
            )));
        }
        Ok(Stage {
            label: self.label.unwrap_or_else(|| "stage".to_string()),
            driver: self.driver,
            load: self.load,
            input: InputEvent {
                slew,
                delay: self.delay,
            },
            backend: self.backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LumpedCapLoad;
    use rlc_numeric::units::{ff, ps};

    #[test]
    fn builder_produces_a_labelled_stage() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(200.0)).unwrap(),
        )
        .label("net42")
        .input_slew(ps(100.0))
        .input_delay(ps(40.0))
        .backend(BackendChoice::Analytic)
        .build()
        .unwrap();
        assert_eq!(stage.label(), "net42");
        assert_eq!(stage.input().slew, ps(100.0));
        assert!((stage.input().t50() - ps(90.0)).abs() < 1e-18);
        assert!(matches!(stage.backend(), Some(BackendChoice::Analytic)));
        assert!(stage.driver().vdd() > 0.0);
        assert!(stage.load().total_capacitance() > 0.0);
        assert!(format!("{:?}", stage.backend().unwrap()).contains("Analytic"));
    }

    #[test]
    fn builder_rejects_bad_descriptions_without_panicking() {
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let load: Arc<dyn crate::load::LoadModel> =
            Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap());

        // Missing slew.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidStage { .. }));

        // Non-positive slew.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .input_slew(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("slew"));

        // Negative delay.
        let err = Stage::builder_shared(cell, load)
            .input_slew(ps(100.0))
            .input_delay(-1e-12)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("delay"));
    }

    #[test]
    fn default_label_and_delay_apply() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(200.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        assert_eq!(stage.label(), "stage");
        assert_eq!(stage.input().delay, ps(20.0));
        assert!(stage.backend().is_none());
    }
}
