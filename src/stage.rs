//! [`Stage`]: one validated unit of timing analysis — a driver, the load it
//! drives, the input event, and (optionally) a per-stage backend override.

use std::sync::Arc;

use rlc_charlib::DriverCell;

use crate::backend::AnalysisBackend;
use crate::driver::SampledWaveform;
use crate::error::EngineError;
use crate::load::LoadModel;
use crate::session::{InputSource, StageHandle};
use crate::variation::{VariationModel, VariationSpec};

/// The input event applied to the driver: a saturated ramp described by its
/// 0–100 % transition time, starting at an absolute delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputEvent {
    /// Input transition time (seconds, 0–100 %).
    pub slew: f64,
    /// Absolute time at which the input ramp starts (seconds).
    pub delay: f64,
}

impl InputEvent {
    /// Absolute time of the input's 50 % crossing.
    pub fn t50(&self) -> f64 {
        self.delay + 0.5 * self.slew
    }

    /// The slew-referenced ramp event equivalent to a measured waveform: a
    /// saturated 0–100 % ramp whose 10–90 % transition time matches the
    /// measured one (`slew_10_90 / 0.8`), positioned so its 50 % crossing
    /// lands on the measured absolute crossing time `t50`. This is the
    /// default cross-stage handoff an [`crate::AnalysisSession`] applies when
    /// a producer's far-end waveform becomes a dependent driver's input.
    ///
    /// The ramp start is clamped at `t = 0` (simulations start there), which
    /// only matters for transitions measured within half a slew of the time
    /// origin.
    pub fn from_measured(t50: f64, slew_10_90: f64) -> InputEvent {
        let slew = slew_10_90 / 0.8;
        InputEvent {
            slew,
            delay: (t50 - 0.5 * slew).max(0.0),
        }
    }
}

/// How the aggressor of a coupled bus switches relative to the victim's
/// rising transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggressorSwitching {
    /// The aggressor holds its initial level (0 V); the victim sees the full
    /// coupling capacitance to a quiet neighbour (Miller factor 1).
    Quiet,
    /// The aggressor switches in the same direction as the victim, which
    /// cancels the displacement current through the coupling capacitance
    /// (Miller factor 0) and speeds the victim up.
    #[default]
    SameDirection,
    /// The aggressor switches opposite to the victim — the worst-case
    /// push-out, doubling the effective coupling capacitance (Miller
    /// factor 2).
    OppositeDirection,
}

impl AggressorSwitching {
    /// The classic Miller factor the switching scenario applies to the
    /// coupling capacitance when the bus is reduced to a single victim line
    /// for the analytic flow.
    pub fn miller_factor(self) -> f64 {
        match self {
            AggressorSwitching::Quiet => 1.0,
            AggressorSwitching::SameDirection => 0.0,
            AggressorSwitching::OppositeDirection => 2.0,
        }
    }
}

/// The aggressor's drive on a coupled bus: its switching direction plus the
/// ideal-ramp event applied to the aggressor's near end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggressorSpec {
    /// Switching direction relative to the victim.
    pub switching: AggressorSwitching,
    /// Aggressor ramp transition time (seconds, 0–100 %).
    pub slew: f64,
    /// Absolute time at which the aggressor ramp starts (seconds).
    pub delay: f64,
    /// Aggressor swing (volts), typically the supply voltage.
    pub amplitude: f64,
}

impl AggressorSpec {
    /// Creates and validates an aggressor description.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the slew is not positive
    /// and finite, the delay is negative or non-finite, or the amplitude is
    /// not positive and finite.
    pub fn new(
        switching: AggressorSwitching,
        slew: f64,
        delay: f64,
        amplitude: f64,
    ) -> Result<Self, EngineError> {
        if !(slew > 0.0 && slew.is_finite()) {
            return Err(EngineError::invalid(format!(
                "aggressor slew must be positive and finite, got {slew:e}"
            )));
        }
        if !(delay >= 0.0 && delay.is_finite()) {
            return Err(EngineError::invalid(format!(
                "aggressor delay must be non-negative and finite, got {delay:e}"
            )));
        }
        if !(amplitude > 0.0 && amplitude.is_finite()) {
            return Err(EngineError::invalid(format!(
                "aggressor amplitude must be positive and finite, got {amplitude:e}"
            )));
        }
        Ok(AggressorSpec {
            switching,
            slew,
            delay,
            amplitude,
        })
    }

    /// A quiet aggressor held at 0 V (the ramp parameters are unused but
    /// kept valid).
    pub fn quiet(amplitude: f64) -> Result<Self, EngineError> {
        AggressorSpec::new(
            AggressorSwitching::Quiet,
            rlc_numeric::units::ps(100.0),
            0.0,
            amplitude,
        )
    }
}

/// Which backend analyzes a stage.
#[derive(Clone)]
pub enum BackendChoice {
    /// The paper's analytic effective-capacitance flow.
    Analytic,
    /// The golden `rlc-spice` transient simulation.
    Spice,
    /// A user-supplied backend.
    Custom(Arc<dyn AnalysisBackend>),
}

impl std::fmt::Debug for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Analytic => write!(f, "Analytic"),
            BackendChoice::Spice => write!(f, "Spice"),
            BackendChoice::Custom(b) => write!(f, "Custom({})", b.name()),
        }
    }
}

/// One validated timing-analysis stage. Build with [`Stage::builder`]; the
/// builder — unlike the deprecated panicking `AnalysisCase::new` — returns
/// `Err` for bad descriptions, so a malformed stage in a batch is a per-stage
/// report instead of a crash.
///
/// A stage's input is either a fixed [`InputEvent`]
/// ([`StageBuilder::input_slew`]) or a *dependent* [`InputSource`] declaring
/// that the input is the measured far-end waveform of another stage
/// ([`StageBuilder::input_from`], [`StageBuilder::input_from_sink`]).
/// Dependent stages can only be analyzed through an
/// [`crate::AnalysisSession`], which resolves the producer's waveform into a
/// concrete input event before dispatching to a backend.
#[derive(Debug, Clone)]
pub struct Stage {
    label: String,
    driver: Arc<DriverCell>,
    load: Arc<dyn LoadModel>,
    source: InputSource,
    resolved: Option<InputEvent>,
    input_waveform: Option<SampledWaveform>,
    after: Vec<StageHandle>,
    backend: Option<BackendChoice>,
    variation: Vec<VariationSpec>,
}

impl Stage {
    /// Starts building a stage from a driver and a load model.
    pub fn builder<L: LoadModel + 'static>(
        driver: impl Into<Arc<DriverCell>>,
        load: L,
    ) -> StageBuilder {
        Self::builder_shared(driver.into(), Arc::new(load))
    }

    /// Starts building a stage from shared driver/load handles (lets many
    /// stages of a batch share one characterized cell and one load).
    pub fn builder_shared(driver: Arc<DriverCell>, load: Arc<dyn LoadModel>) -> StageBuilder {
        StageBuilder {
            label: None,
            driver,
            load,
            slew: None,
            delay: None,
            from: None,
            after: Vec::new(),
            aggressor: None,
            backend: None,
            corners: Vec::new(),
            monte_carlo: None,
        }
    }

    /// The stage label (used in reports and error messages).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The characterized driver.
    pub fn driver(&self) -> &DriverCell {
        &self.driver
    }

    /// The load model.
    pub fn load(&self) -> &dyn LoadModel {
        self.load.as_ref()
    }

    /// The load model as a shareable handle.
    pub fn load_shared(&self) -> Arc<dyn LoadModel> {
        self.load.clone()
    }

    /// The input event.
    ///
    /// # Panics
    /// Panics for a dependent stage whose input has not been resolved by a
    /// session yet; use [`Stage::try_input`] or [`Stage::input_source`] when
    /// the stage may be dependent.
    pub fn input(&self) -> InputEvent {
        self.resolved.expect(
            "the input of a dependent stage is only resolved once its producer completes; \
             submit it to an AnalysisSession (or inspect input_source())",
        )
    }

    /// The input event, when it is known: always `Some` for fixed-input
    /// stages and for stages a session already resolved, `None` for a
    /// dependent stage still waiting on its producer.
    pub fn try_input(&self) -> Option<InputEvent> {
        self.resolved
    }

    /// Where the stage's input comes from.
    pub fn input_source(&self) -> &InputSource {
        &self.source
    }

    /// Whether the input is still unresolved (a dependent stage that has not
    /// been run through a session).
    pub fn is_dependent(&self) -> bool {
        self.resolved.is_none()
    }

    /// The sampled input waveform a session attached for backends that
    /// support full-waveform handoff ([`crate::BackendCaps::sampled_input`]).
    /// `None` for fixed-input stages and ramp-converted handoffs.
    pub fn input_waveform(&self) -> Option<&SampledWaveform> {
        self.input_waveform.as_ref()
    }

    /// Extra scheduling-only dependencies ([`StageBuilder::after`]).
    pub fn after_handles(&self) -> &[StageHandle] {
        &self.after
    }

    /// The per-stage backend override, if any.
    pub fn backend(&self) -> Option<&BackendChoice> {
        self.backend.as_ref()
    }

    /// The stage's variation plan ([`StageBuilder::corners`] /
    /// [`StageBuilder::monte_carlo`]), in plan order: corners first, then
    /// Monte-Carlo draws in seed order. Empty for plain single-condition
    /// stages.
    pub fn variation_samples(&self) -> &[VariationSpec] {
        &self.variation
    }

    /// A copy of this stage revalued for one variation sample: the driver's
    /// supply and on-resistance rescaled, the load revalued through
    /// [`crate::LoadModel::scaled`], and the label suffixed with the sample
    /// index. The sample stage carries no variation plan (and no ordering
    /// dependencies) of its own.
    pub(crate) fn with_sample(
        &self,
        spec: &VariationSpec,
        index: usize,
    ) -> Result<Stage, EngineError> {
        let load = self.load.scaled(spec).ok_or_else(|| {
            EngineError::unsupported(format!(
                "stage '{}': its load cannot be revalued for variation analysis: {}",
                self.label,
                self.load.describe()
            ))
        })?;
        let mut sample = self.clone();
        sample.label = format!("{}@s{index}", self.label);
        sample.driver = scaled_driver(&self.driver, spec);
        sample.load = load;
        sample.variation = Vec::new();
        sample.after = Vec::new();
        Ok(sample)
    }

    /// A copy of this stage rewired to chain from `producer`'s primary far
    /// end. Path distribution analysis uses this to keep handoffs
    /// corner-consistent: sample *i* of a stage always feeds sample *i* of
    /// the next stage, never a different corner's waveform.
    pub(crate) fn rewire_input_from(mut self, producer: StageHandle) -> Stage {
        self.source = InputSource::FromFarEnd { stage: producer };
        self.resolved = None;
        self.input_waveform = None;
        self
    }

    /// A copy of this stage with its dependent input resolved to a concrete
    /// event (and optionally the full sampled waveform for capable
    /// backends). Used by the session scheduler just before dispatch.
    pub(crate) fn resolve_input(
        &self,
        event: InputEvent,
        waveform: Option<SampledWaveform>,
    ) -> Stage {
        let mut resolved = self.clone();
        resolved.resolved = Some(event);
        resolved.input_waveform = waveform;
        resolved
    }
}

/// The driver revalued for one variation sample: the supply rail (and with
/// it every rail-referenced measurement) scales by the source factor, and
/// the extracted on-resistance — a channel resistance, which drifts with
/// process and temperature like any other resistor — by the
/// temperature-adjusted resistance scale. The timing table stays the
/// characterized nominal.
fn scaled_driver(driver: &Arc<DriverCell>, spec: &VariationSpec) -> Arc<DriverCell> {
    let r_eff = spec.effective_r_scale();
    if spec.source_scale == 1.0 && r_eff == 1.0 {
        return driver.clone();
    }
    let mut inverter = *driver.spec();
    inverter.vdd *= spec.source_scale;
    Arc::new(DriverCell::from_parts(
        inverter,
        driver.table().clone(),
        driver.on_resistance() * r_eff,
    ))
}

/// Builder for [`Stage`].
#[derive(Debug, Clone)]
pub struct StageBuilder {
    label: Option<String>,
    driver: Arc<DriverCell>,
    load: Arc<dyn LoadModel>,
    slew: Option<f64>,
    delay: Option<f64>,
    from: Option<(StageHandle, Option<String>)>,
    after: Vec<StageHandle>,
    aggressor: Option<AggressorSpec>,
    backend: Option<BackendChoice>,
    corners: Vec<VariationSpec>,
    monte_carlo: Option<(usize, u64, VariationModel)>,
}

impl StageBuilder {
    /// Names the stage (defaults to `"stage"`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the input transition time (seconds, 0–100 %). Required unless
    /// the input comes from another stage ([`StageBuilder::input_from`]).
    pub fn input_slew(mut self, slew: f64) -> Self {
        self.slew = Some(slew);
        self
    }

    /// Sets the absolute start time of the input ramp (default 20 ps).
    pub fn input_delay(mut self, delay: f64) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Declares the input as the measured **primary far-end** waveform of an
    /// already-submitted (or reserved) stage of the same
    /// [`crate::AnalysisSession`]. The session resolves the waveform into a
    /// slew-referenced ramp (or hands the sampled waveform through, when the
    /// backend reports [`crate::BackendCaps::sampled_input`]) once the
    /// producer completes. Mutually exclusive with
    /// [`StageBuilder::input_slew`].
    pub fn input_from(mut self, stage: StageHandle) -> Self {
        self.from = Some((stage, None));
        self
    }

    /// Declares the input as the measured waveform at a **named sink** of
    /// another stage's load (a tree receiver pin, the `"victim"` far end of
    /// a coupled bus). See [`StageBuilder::input_from`].
    pub fn input_from_sink(mut self, stage: StageHandle, sink: impl Into<String>) -> Self {
        self.from = Some((stage, Some(sink.into())));
        self
    }

    /// Adds a scheduling-only dependency: the stage will not start before
    /// `stage` completed, even though no waveform flows between them. A
    /// failing ordering dependency poisons this stage like a failing
    /// producer would.
    pub fn after(mut self, stage: StageHandle) -> Self {
        self.after.push(stage);
        self
    }

    /// Replaces the aggressor drive of a coupled load. Only loads that model
    /// an aggressor (e.g. [`crate::CoupledBusLoad`]) accept this; on any
    /// other load [`StageBuilder::build`] returns a typed
    /// [`EngineError::InvalidStage`] instead of letting the mismatch surface
    /// as a backend panic.
    pub fn aggressor(mut self, spec: AggressorSpec) -> Self {
        self.aggressor = Some(spec);
        self
    }

    /// Overrides the engine's default backend for this stage.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Adds explicit process/environment corners to the stage's variation
    /// plan. [`crate::TimingEngine::analyze_distribution`] analyzes one
    /// revalued copy of the stage per plan entry and reduces the results
    /// into a [`crate::DistributionReport`]. Repeatable; corners accumulate
    /// ahead of any Monte-Carlo draws.
    pub fn corners(mut self, specs: impl IntoIterator<Item = VariationSpec>) -> Self {
        self.corners.extend(specs);
        self
    }

    /// Appends `n` seeded Monte-Carlo draws from `model` to the variation
    /// plan. Draws are generated deterministically at build time with
    /// [`rlc_numeric::Rng`], so the same seed always yields the same plan —
    /// and therefore a bit-identical [`crate::DistributionReport`].
    pub fn monte_carlo(mut self, n: usize, seed: u64, model: VariationModel) -> Self {
        self.monte_carlo = Some((n, seed, model));
        self
    }

    /// Validates and finishes the stage.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the input slew is missing,
    /// non-positive or non-finite, the input delay is negative or
    /// non-finite, a fixed input event is combined with a dependent input
    /// source, or an aggressor override targets a load without an aggressor.
    pub fn build(self) -> Result<Stage, EngineError> {
        let load = match self.aggressor {
            None => self.load,
            Some(spec) => self.load.with_aggressor(spec).ok_or_else(|| {
                EngineError::invalid(format!(
                    "an AggressorSpec only applies to coupled loads \
                     (e.g. CoupledBusLoad); this load has no aggressor: {}",
                    self.load.describe()
                ))
            })?,
        };
        let (source, resolved) = match self.from {
            Some((stage, sink)) => {
                if self.slew.is_some() || self.delay.is_some() {
                    return Err(EngineError::invalid(
                        "a dependent stage derives its input event from its producer; \
                         remove input_slew(..)/input_delay(..)",
                    ));
                }
                let source = match sink {
                    None => InputSource::FromFarEnd { stage },
                    Some(sink) => {
                        if sink.is_empty() {
                            return Err(EngineError::invalid("the sink name must not be empty"));
                        }
                        InputSource::FromSink { stage, sink }
                    }
                };
                (source, None)
            }
            None => {
                let slew = self.slew.ok_or_else(|| {
                    EngineError::invalid(
                        "input slew is required: call input_slew(..) or input_from(..)",
                    )
                })?;
                if !(slew > 0.0 && slew.is_finite()) {
                    return Err(EngineError::invalid(format!(
                        "input slew must be positive and finite, got {slew:e}"
                    )));
                }
                let delay = self.delay.unwrap_or(rlc_numeric::units::ps(20.0));
                if !(delay >= 0.0 && delay.is_finite()) {
                    return Err(EngineError::invalid(format!(
                        "input delay must be non-negative and finite, got {delay:e}"
                    )));
                }
                let event = InputEvent { slew, delay };
                (InputSource::Event(event), Some(event))
            }
        };
        let mut variation = self.corners;
        for spec in &variation {
            crate::variation::validate_spec(spec)?;
        }
        if let Some((n, seed, model)) = self.monte_carlo {
            model.validate()?;
            // Draws from a validated model are clamped physical by
            // construction; only explicit corners need re-validation.
            variation.extend(model.samples(n, seed));
        }
        Ok(Stage {
            label: self.label.unwrap_or_else(|| "stage".to_string()),
            driver: self.driver,
            load,
            source,
            resolved,
            input_waveform: None,
            after: self.after,
            backend: self.backend,
            variation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LumpedCapLoad;
    use rlc_numeric::units::{ff, ps};

    #[test]
    fn builder_produces_a_labelled_stage() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(200.0)).unwrap(),
        )
        .label("net42")
        .input_slew(ps(100.0))
        .input_delay(ps(40.0))
        .backend(BackendChoice::Analytic)
        .build()
        .unwrap();
        assert_eq!(stage.label(), "net42");
        assert_eq!(stage.input().slew, ps(100.0));
        assert!((stage.input().t50() - ps(90.0)).abs() < 1e-18);
        assert!(matches!(stage.backend(), Some(BackendChoice::Analytic)));
        assert!(stage.driver().vdd() > 0.0);
        assert!(stage.load().total_capacitance() > 0.0);
        assert!(format!("{:?}", stage.backend().unwrap()).contains("Analytic"));
    }

    #[test]
    fn builder_rejects_bad_descriptions_without_panicking() {
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let load: Arc<dyn crate::load::LoadModel> =
            Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap());

        // Missing slew.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidStage { .. }));

        // Non-positive slew.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .input_slew(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("slew"));

        // Negative delay.
        let err = Stage::builder_shared(cell, load)
            .input_slew(ps(100.0))
            .input_delay(-1e-12)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("delay"));
    }

    #[test]
    fn aggressor_spec_validates_and_reports_miller_factors() {
        let spec = AggressorSpec::new(
            AggressorSwitching::OppositeDirection,
            ps(80.0),
            ps(10.0),
            1.8,
        )
        .unwrap();
        assert_eq!(spec.switching.miller_factor(), 2.0);
        assert_eq!(AggressorSwitching::Quiet.miller_factor(), 1.0);
        assert_eq!(AggressorSwitching::SameDirection.miller_factor(), 0.0);
        assert!(AggressorSpec::quiet(1.8).is_ok());
        assert!(AggressorSpec::new(AggressorSwitching::Quiet, 0.0, 0.0, 1.8).is_err());
        assert!(AggressorSpec::new(AggressorSwitching::Quiet, ps(80.0), -1.0, 1.8).is_err());
        assert!(AggressorSpec::new(AggressorSwitching::Quiet, ps(80.0), 0.0, f64::NAN).is_err());
    }

    #[test]
    fn from_measured_positions_the_ramp_on_the_crossing() {
        let event = InputEvent::from_measured(ps(300.0), ps(80.0));
        // 0-100% slew = 10-90% / 0.8.
        assert!((event.slew - ps(100.0)).abs() < 1e-18);
        assert!((event.t50() - ps(300.0)).abs() < 1e-18);
        // Clamped at t = 0 when the crossing is too early.
        let early = InputEvent::from_measured(ps(10.0), ps(80.0));
        assert_eq!(early.delay, 0.0);
    }

    #[test]
    fn aggressor_override_requires_a_coupled_load() {
        use crate::load::CoupledBusLoad;
        use rlc_interconnect::{CoupledBus, RlcLine};
        use rlc_numeric::units::{mm, nh, pf};

        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let spec =
            AggressorSpec::new(AggressorSwitching::OppositeDirection, ps(80.0), 0.0, 1.8).unwrap();

        // On a lumped load: a typed validation error, not a backend panic.
        let err = Stage::builder_shared(
            cell.clone(),
            Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap()),
        )
        .input_slew(ps(100.0))
        .aggressor(spec)
        .build()
        .unwrap_err();
        assert!(matches!(err, crate::EngineError::InvalidStage { .. }));
        assert!(err.to_string().contains("aggressor"));

        // On a coupled bus: the stage's load carries the replacement spec.
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let bus = CoupledBus::symmetric(line, pf(0.4), nh(1.0), ff(10.0));
        let quiet = CoupledBusLoad::new(bus, AggressorSpec::quiet(1.8).unwrap()).unwrap();
        let quiet_cap = crate::load::LoadModel::total_capacitance(&quiet);
        let stage = Stage::builder(cell, quiet.clone())
            .input_slew(ps(100.0))
            .aggressor(spec)
            .build()
            .unwrap();
        // Opposite-direction switching doubles the coupling: more capacitance
        // than the quiet spec the load was built with.
        assert!(stage.load().total_capacitance() > quiet_cap);
    }

    #[test]
    fn dependent_builder_rejects_conflicting_inputs() {
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let load: Arc<dyn crate::load::LoadModel> =
            Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap());
        // A handle is only obtainable from a session; fabricate one through
        // the engine to exercise the builder paths.
        let engine = crate::TimingEngine::new(crate::EngineConfig::fast_for_tests());
        let mut session = engine.session();
        let handle = session.reserve();

        // Slew + dependent source conflict.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .input_slew(ps(100.0))
            .input_from(handle)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("dependent"));

        // Empty sink names are rejected.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .input_from_sink(handle, "")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("sink name"));

        // A well-formed dependent stage records its source and ordering deps.
        let other = session.reserve();
        let stage = Stage::builder_shared(cell, load)
            .input_from_sink(handle, "rx0")
            .after(other)
            .build()
            .unwrap();
        assert!(stage.is_dependent());
        assert_eq!(stage.after_handles(), &[other]);
        assert_eq!(stage.input_source().producer(), Some(handle));
    }

    #[test]
    fn default_label_and_delay_apply() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(200.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        assert_eq!(stage.label(), "stage");
        assert_eq!(stage.input().delay, ps(20.0));
        assert!(stage.backend().is_none());
    }
}
