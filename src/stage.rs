//! [`Stage`]: one validated unit of timing analysis — a driver, the load it
//! drives, the input event, and (optionally) a per-stage backend override.

use std::sync::Arc;

use rlc_charlib::DriverCell;

use crate::backend::AnalysisBackend;
use crate::error::EngineError;
use crate::load::LoadModel;

/// The input event applied to the driver: a saturated ramp described by its
/// 0–100 % transition time, starting at an absolute delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputEvent {
    /// Input transition time (seconds, 0–100 %).
    pub slew: f64,
    /// Absolute time at which the input ramp starts (seconds).
    pub delay: f64,
}

impl InputEvent {
    /// Absolute time of the input's 50 % crossing.
    pub fn t50(&self) -> f64 {
        self.delay + 0.5 * self.slew
    }
}

/// How the aggressor of a coupled bus switches relative to the victim's
/// rising transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggressorSwitching {
    /// The aggressor holds its initial level (0 V); the victim sees the full
    /// coupling capacitance to a quiet neighbour (Miller factor 1).
    Quiet,
    /// The aggressor switches in the same direction as the victim, which
    /// cancels the displacement current through the coupling capacitance
    /// (Miller factor 0) and speeds the victim up.
    #[default]
    SameDirection,
    /// The aggressor switches opposite to the victim — the worst-case
    /// push-out, doubling the effective coupling capacitance (Miller
    /// factor 2).
    OppositeDirection,
}

impl AggressorSwitching {
    /// The classic Miller factor the switching scenario applies to the
    /// coupling capacitance when the bus is reduced to a single victim line
    /// for the analytic flow.
    pub fn miller_factor(self) -> f64 {
        match self {
            AggressorSwitching::Quiet => 1.0,
            AggressorSwitching::SameDirection => 0.0,
            AggressorSwitching::OppositeDirection => 2.0,
        }
    }
}

/// The aggressor's drive on a coupled bus: its switching direction plus the
/// ideal-ramp event applied to the aggressor's near end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggressorSpec {
    /// Switching direction relative to the victim.
    pub switching: AggressorSwitching,
    /// Aggressor ramp transition time (seconds, 0–100 %).
    pub slew: f64,
    /// Absolute time at which the aggressor ramp starts (seconds).
    pub delay: f64,
    /// Aggressor swing (volts), typically the supply voltage.
    pub amplitude: f64,
}

impl AggressorSpec {
    /// Creates and validates an aggressor description.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the slew is not positive
    /// and finite, the delay is negative or non-finite, or the amplitude is
    /// not positive and finite.
    pub fn new(
        switching: AggressorSwitching,
        slew: f64,
        delay: f64,
        amplitude: f64,
    ) -> Result<Self, EngineError> {
        if !(slew > 0.0 && slew.is_finite()) {
            return Err(EngineError::invalid(format!(
                "aggressor slew must be positive and finite, got {slew:e}"
            )));
        }
        if !(delay >= 0.0 && delay.is_finite()) {
            return Err(EngineError::invalid(format!(
                "aggressor delay must be non-negative and finite, got {delay:e}"
            )));
        }
        if !(amplitude > 0.0 && amplitude.is_finite()) {
            return Err(EngineError::invalid(format!(
                "aggressor amplitude must be positive and finite, got {amplitude:e}"
            )));
        }
        Ok(AggressorSpec {
            switching,
            slew,
            delay,
            amplitude,
        })
    }

    /// A quiet aggressor held at 0 V (the ramp parameters are unused but
    /// kept valid).
    pub fn quiet(amplitude: f64) -> Result<Self, EngineError> {
        AggressorSpec::new(
            AggressorSwitching::Quiet,
            rlc_numeric::units::ps(100.0),
            0.0,
            amplitude,
        )
    }
}

/// Which backend analyzes a stage.
#[derive(Clone)]
pub enum BackendChoice {
    /// The paper's analytic effective-capacitance flow.
    Analytic,
    /// The golden `rlc-spice` transient simulation.
    Spice,
    /// A user-supplied backend.
    Custom(Arc<dyn AnalysisBackend>),
}

impl std::fmt::Debug for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Analytic => write!(f, "Analytic"),
            BackendChoice::Spice => write!(f, "Spice"),
            BackendChoice::Custom(b) => write!(f, "Custom({})", b.name()),
        }
    }
}

/// One validated timing-analysis stage. Build with [`Stage::builder`]; the
/// builder — unlike the deprecated panicking `AnalysisCase::new` — returns
/// `Err` for bad descriptions, so a malformed stage in a batch is a per-stage
/// report instead of a crash.
#[derive(Debug, Clone)]
pub struct Stage {
    label: String,
    driver: Arc<DriverCell>,
    load: Arc<dyn LoadModel>,
    input: InputEvent,
    backend: Option<BackendChoice>,
}

impl Stage {
    /// Starts building a stage from a driver and a load model.
    pub fn builder<L: LoadModel + 'static>(
        driver: impl Into<Arc<DriverCell>>,
        load: L,
    ) -> StageBuilder {
        Self::builder_shared(driver.into(), Arc::new(load))
    }

    /// Starts building a stage from shared driver/load handles (lets many
    /// stages of a batch share one characterized cell and one load).
    pub fn builder_shared(driver: Arc<DriverCell>, load: Arc<dyn LoadModel>) -> StageBuilder {
        StageBuilder {
            label: None,
            driver,
            load,
            slew: None,
            delay: rlc_numeric::units::ps(20.0),
            backend: None,
        }
    }

    /// The stage label (used in reports and error messages).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The characterized driver.
    pub fn driver(&self) -> &DriverCell {
        &self.driver
    }

    /// The load model.
    pub fn load(&self) -> &dyn LoadModel {
        self.load.as_ref()
    }

    /// The input event.
    pub fn input(&self) -> InputEvent {
        self.input
    }

    /// The per-stage backend override, if any.
    pub fn backend(&self) -> Option<&BackendChoice> {
        self.backend.as_ref()
    }
}

/// Builder for [`Stage`].
#[derive(Debug, Clone)]
pub struct StageBuilder {
    label: Option<String>,
    driver: Arc<DriverCell>,
    load: Arc<dyn LoadModel>,
    slew: Option<f64>,
    delay: f64,
    backend: Option<BackendChoice>,
}

impl StageBuilder {
    /// Names the stage (defaults to `"stage"`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the input transition time (seconds, 0–100 %). Required.
    pub fn input_slew(mut self, slew: f64) -> Self {
        self.slew = Some(slew);
        self
    }

    /// Sets the absolute start time of the input ramp (default 20 ps).
    pub fn input_delay(mut self, delay: f64) -> Self {
        self.delay = delay;
        self
    }

    /// Overrides the engine's default backend for this stage.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Validates and finishes the stage.
    ///
    /// # Errors
    /// Returns [`EngineError::InvalidStage`] when the input slew is missing,
    /// non-positive or non-finite, or the input delay is negative or
    /// non-finite.
    pub fn build(self) -> Result<Stage, EngineError> {
        let slew = self
            .slew
            .ok_or_else(|| EngineError::invalid("input slew is required: call input_slew(..)"))?;
        if !(slew > 0.0 && slew.is_finite()) {
            return Err(EngineError::invalid(format!(
                "input slew must be positive and finite, got {slew:e}"
            )));
        }
        if !(self.delay >= 0.0 && self.delay.is_finite()) {
            return Err(EngineError::invalid(format!(
                "input delay must be non-negative and finite, got {:e}",
                self.delay
            )));
        }
        Ok(Stage {
            label: self.label.unwrap_or_else(|| "stage".to_string()),
            driver: self.driver,
            load: self.load,
            input: InputEvent {
                slew,
                delay: self.delay,
            },
            backend: self.backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LumpedCapLoad;
    use rlc_numeric::units::{ff, ps};

    #[test]
    fn builder_produces_a_labelled_stage() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(200.0)).unwrap(),
        )
        .label("net42")
        .input_slew(ps(100.0))
        .input_delay(ps(40.0))
        .backend(BackendChoice::Analytic)
        .build()
        .unwrap();
        assert_eq!(stage.label(), "net42");
        assert_eq!(stage.input().slew, ps(100.0));
        assert!((stage.input().t50() - ps(90.0)).abs() < 1e-18);
        assert!(matches!(stage.backend(), Some(BackendChoice::Analytic)));
        assert!(stage.driver().vdd() > 0.0);
        assert!(stage.load().total_capacitance() > 0.0);
        assert!(format!("{:?}", stage.backend().unwrap()).contains("Analytic"));
    }

    #[test]
    fn builder_rejects_bad_descriptions_without_panicking() {
        let cell = Arc::new(crate::test_fixtures::synthetic_cell_75x());
        let load: Arc<dyn crate::load::LoadModel> =
            Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap());

        // Missing slew.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidStage { .. }));

        // Non-positive slew.
        let err = Stage::builder_shared(cell.clone(), load.clone())
            .input_slew(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("slew"));

        // Negative delay.
        let err = Stage::builder_shared(cell, load)
            .input_slew(ps(100.0))
            .input_delay(-1e-12)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("delay"));
    }

    #[test]
    fn aggressor_spec_validates_and_reports_miller_factors() {
        let spec = AggressorSpec::new(
            AggressorSwitching::OppositeDirection,
            ps(80.0),
            ps(10.0),
            1.8,
        )
        .unwrap();
        assert_eq!(spec.switching.miller_factor(), 2.0);
        assert_eq!(AggressorSwitching::Quiet.miller_factor(), 1.0);
        assert_eq!(AggressorSwitching::SameDirection.miller_factor(), 0.0);
        assert!(AggressorSpec::quiet(1.8).is_ok());
        assert!(AggressorSpec::new(AggressorSwitching::Quiet, 0.0, 0.0, 1.8).is_err());
        assert!(AggressorSpec::new(AggressorSwitching::Quiet, ps(80.0), -1.0, 1.8).is_err());
        assert!(AggressorSpec::new(AggressorSwitching::Quiet, ps(80.0), 0.0, f64::NAN).is_err());
    }

    #[test]
    fn default_label_and_delay_apply() {
        let stage = Stage::builder(
            crate::test_fixtures::synthetic_cell_75x(),
            LumpedCapLoad::new(ff(200.0)).unwrap(),
        )
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        assert_eq!(stage.label(), "stage");
        assert_eq!(stage.input().delay, ps(20.0));
        assert!(stage.backend().is_none());
    }
}
