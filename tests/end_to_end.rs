//! Cross-crate integration tests: the complete flow from geometry extraction
//! through characterization, modelling and golden-simulation validation.
//!
//! These run in debug mode as part of `cargo test --workspace`, so they use
//! the coarse characterization grid and reduced simulation fidelity; the
//! full-fidelity numbers are produced by the `rlc-bench` experiment binaries.

use rlc_ceff::prelude::*;
use rlc_ceff::validation::GoldenOptions;
use rlc_charlib::prelude::*;
use rlc_interconnect::prelude::*;

fn coarse_cell(size: f64) -> DriverCell {
    DriverCell::characterize(size, &CharacterizationGrid::coarse_for_tests())
        .expect("characterization failed")
}

fn fast_modeler() -> DriverOutputModeler {
    DriverOutputModeler::new(ModelingConfig {
        extract_rs_per_case: false,
        ..ModelingConfig::default()
    })
}

/// The paper's flagship inductive case: the flow must pick the two-ramp model
/// and land within loose error bands of the golden simulation even with the
/// coarse test fidelity.
#[test]
fn inductive_case_end_to_end() {
    let cell = coarse_cell(75.0);
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(5.0), um(1.6)));
    let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).expect("valid case");
    let cmp = CaseComparison::evaluate(&case, &fast_modeler(), &GoldenOptions::coarse_for_tests())
        .expect("comparison failed");
    assert!(cmp.used_two_ramp, "the 75X / 5 mm case must be inductive");
    assert!(
        cmp.delay_error.abs() < 0.30,
        "delay error too large: {:.1}% (sim {:.1} ps, model {:.1} ps)",
        cmp.delay_error * 100.0,
        cmp.sim_delay * 1e12,
        cmp.model_delay * 1e12
    );
    assert!(
        cmp.slew_error.abs() < 0.45,
        "slew error too large: {:.1}%",
        cmp.slew_error * 100.0
    );
}

/// A weak driver on the same wire is not inductive: the screening criteria
/// must route it to the single-ramp model (the paper's Figure 6, left).
#[test]
fn weak_driver_case_uses_single_ramp() {
    let cell = coarse_cell(25.0);
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(4.0), um(1.6)));
    let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).expect("valid case");
    let model = fast_modeler().model(&case).expect("modelling failed");
    assert!(!model.is_two_ramp(), "{}", model.describe());
    assert!(!model.criteria.driver_resistance_check.passes);
}

/// The core claim of the paper: for an inductive case the two-ramp model is
/// substantially more accurate than the classic single-Ceff ramp, for both
/// delay and slew.
#[test]
fn two_ramp_beats_one_ramp_on_inductive_case() {
    let cell = coarse_cell(75.0);
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(4.0), um(1.6)));
    let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(50.0)).expect("valid case");
    let modeler = fast_modeler();
    let golden = GoldenWaveforms::simulate(&case, &GoldenOptions::coarse_for_tests())
        .expect("golden simulation failed");
    let two = CaseComparison::against_golden(&golden, modeler.model_two_ramp(&case).unwrap())
        .expect("two-ramp comparison failed");
    let one = CaseComparison::against_golden(&golden, modeler.model_single_ramp(&case).unwrap())
        .expect("one-ramp comparison failed");
    assert!(
        two.delay_error.abs() < 0.5 * one.delay_error.abs(),
        "two-ramp delay error {:.1}% should be well under the one-ramp error {:.1}%",
        two.delay_error * 100.0,
        one.delay_error * 100.0
    );
    assert!(
        two.slew_error.abs() < one.slew_error.abs(),
        "two-ramp slew error {:.1}% should beat the one-ramp error {:.1}%",
        two.slew_error * 100.0,
        one.slew_error * 100.0
    );
    // The one-ramp baseline reproduces the published failure signature:
    // it overestimates delay and underestimates slew.
    assert!(one.delay_error > 0.2);
    assert!(one.slew_error < -0.15);
}

/// The far end of the line, driven by the modelled waveform, must land near
/// the golden far-end response (the paper's Figure 6, right).
#[test]
fn far_end_response_tracks_golden() {
    let cell = coarse_cell(75.0);
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(4.0), um(0.8)));
    let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(50.0)).expect("valid case");
    let modeler = fast_modeler();
    let options = GoldenOptions::coarse_for_tests();
    let golden = GoldenWaveforms::simulate(&case, &options).expect("golden simulation failed");
    let cmp = CaseComparison::against_golden(&golden, modeler.model(&case).unwrap()).unwrap();
    let far_opts = rlc_ceff::far_end::FarEndOptions {
        segments: 14,
        time_step: ps(1.0),
        ..Default::default()
    };
    let far = cmp
        .far_end(&golden, &line, ff(10.0), &far_opts)
        .expect("far-end comparison failed");
    assert!(
        far.delay_error.abs() < 0.25,
        "far-end delay error {:.1}%",
        far.delay_error * 100.0
    );
    assert!(
        far.slew_error.abs() < 0.45,
        "far-end slew error {:.1}%",
        far.slew_error * 100.0
    );
}

/// Published parasitics, the extractor and the criteria have to agree on the
/// classification of the paper's own figure cases.
#[test]
fn paper_figure_cases_are_classified_as_published() {
    let cell75 = coarse_cell(75.0);
    let cell25 = coarse_cell(25.0);
    let modeler = fast_modeler();

    // Figure 5 right-hand case (100X is approximated by 75X here for the
    // coarse grid): 5 mm / 1.6 um must be inductive with a strong driver.
    let fig5 = rlc_interconnect::paper_cases::figure5_right_case();
    let line = RlcLine::new(
        fig5.parasitics.r_ohms,
        fig5.parasitics.l_nh * 1e-9,
        fig5.parasitics.c_pf * 1e-12,
        mm(fig5.parasitics.length_mm),
    );
    let case = AnalysisCase::try_new(&cell75, &line, ff(10.0), ps(fig5.input_slew_ps))
        .expect("valid case");
    assert!(modeler.model(&case).unwrap().is_two_ramp());

    // Figure 6 left-hand case: 25X driver is not inductive.
    let fig6 = rlc_interconnect::paper_cases::figure6_left_case();
    let line = RlcLine::new(
        fig6.parasitics.r_ohms,
        fig6.parasitics.l_nh * 1e-9,
        fig6.parasitics.c_pf * 1e-12,
        mm(fig6.parasitics.length_mm),
    );
    let case = AnalysisCase::try_new(&cell25, &line, ff(10.0), ps(fig6.input_slew_ps))
        .expect("valid case");
    assert!(!modeler.model(&case).unwrap().is_two_ramp());
}
