//! Integration tests of the persistent stage-result cache
//! ([`rlc_ceff_suite::StageResultCache`]) through the session front: warm
//! sessions must replay bit-identical reports without touching a backend,
//! damaged stores must silently fall back to re-simulation and heal, and
//! concurrent writers must never leave a torn file behind — mirroring the
//! charlib `CharCache` damage suite one layer up.

use std::fs;
use std::path::{Path, PathBuf};

use rlc_ceff_suite::fixtures::synthetic_cell_75x;
use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::{
    stage_key, DistributedRlcLoad, EngineConfig, InputFingerprint, SessionOptions, Stage,
    StageReport, StageResultCache, TimingEngine,
};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlc-result-cache-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fixed_stage(label: &str, c_load: f64) -> Stage {
    let line = EmpiricalExtractor::cmos018().extract(&WireGeometry::new(mm(2.0), um(1.6)));
    Stage::builder(
        synthetic_cell_75x(),
        DistributedRlcLoad::new(line, c_load).unwrap(),
    )
    .label(label)
    .input_slew(ps(100.0))
    .build()
    .unwrap()
}

fn engine_with_cache(dir: &Path) -> TimingEngine {
    TimingEngine::new(EngineConfig::builder().result_cache_dir(dir).build())
}

/// Runs one single-stage session; returns the report plus the session's
/// (stages simulated, cache hits) counters.
fn run_once(engine: &TimingEngine, stage: Stage) -> (StageReport, u64, u64) {
    let mut session = engine.session();
    session.submit(stage).unwrap();
    let results = session.wait_all();
    let report = results[0].1.clone().unwrap();
    (
        report,
        session.stages_simulated(),
        session.result_cache_hits(),
    )
}

fn assert_bit_identical(a: &StageReport, b: &StageReport) {
    assert_eq!(a.label, b.label);
    assert_eq!(a.backend, b.backend);
    assert_eq!(
        a.delay.to_bits(),
        b.delay.to_bits(),
        "delay must replay exactly"
    );
    assert_eq!(
        a.slew.to_bits(),
        b.slew.to_bits(),
        "slew must replay exactly"
    );
    assert_eq!(a.input_t50.to_bits(), b.input_t50.to_bits());
    assert_eq!(a.vdd.to_bits(), b.vdd.to_bits());
    assert_eq!(a.used_two_ramp, b.used_two_ramp);
    assert_eq!(a.lints.len(), b.lints.len());
    // The waveform is rebuilt from its exact model parameters: it must
    // evaluate bit-identically everywhere, not just describe alike.
    assert_eq!(a.waveform.describe(), b.waveform.describe());
    for &t in &[0.0, ps(50.0), ps(123.4), ps(400.0), ps(900.0)] {
        assert_eq!(a.waveform.v(t).to_bits(), b.waveform.v(t).to_bits());
    }
}

/// The single `stage-*.bin` entry in a cache directory.
fn only_entry(dir: &Path) -> PathBuf {
    let entries: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .map(|n| {
                    let n = n.to_string_lossy();
                    n.starts_with("stage-") && n.ends_with(".bin")
                })
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one entry: {entries:?}");
    entries.into_iter().next().unwrap()
}

#[test]
fn warm_session_replays_bit_identically_without_simulating() {
    let dir = tmp_dir("warm");

    let cold = engine_with_cache(&dir);
    let (first, simulated, hits) = run_once(&cold, fixed_stage("warm", ff(120.0)));
    assert_eq!((simulated, hits), (1, 0));
    assert!(!first.cache_hit, "a cold run is not a replay");

    // A fresh engine over the same directory replays without simulating.
    let warm = engine_with_cache(&dir);
    let (replayed, simulated, hits) = run_once(&warm, fixed_stage("warm", ff(120.0)));
    assert_eq!((simulated, hits), (0, 1), "warm start must not simulate");
    assert!(replayed.cache_hit);
    assert_bit_identical(&first, &replayed);
    // Iteration internals are signoff detail, not replayed.
    assert!(replayed.analytic.is_none());

    // Caching off (no result_cache_dir): same stage simulates again.
    let plain = TimingEngine::new(EngineConfig::default());
    let (report, simulated, hits) = run_once(&plain, fixed_stage("warm", ff(120.0)));
    assert_eq!((simulated, hits), (1, 0));
    assert!(!report.cache_hit);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_kind_of_damage_reads_as_a_miss_then_heals() {
    let dir = tmp_dir("damaged");
    let engine = engine_with_cache(&dir);
    let (original, ..) = run_once(&engine, fixed_stage("dmg", ff(80.0)));
    let entry = only_entry(&dir);
    let good = fs::read(&entry).unwrap();

    let mut bit_flip = good.clone();
    let mid = bit_flip.len() / 2;
    bit_flip[mid] ^= 0x01;
    let mut stale_version = good.clone();
    stale_version[8] ^= 0xff; // first byte of the little-endian format version
    let mut trailing = good.clone();
    trailing.extend_from_slice(b"garbage");

    let damages: Vec<(&str, Vec<u8>)> = vec![
        ("empty file", Vec::new()),
        ("truncated inside the header", good[..7].to_vec()),
        (
            "truncated inside the payload",
            good[..good.len() / 3].to_vec(),
        ),
        ("truncated checksum", good[..good.len() - 1].to_vec()),
        ("stale format version", stale_version),
        ("payload bit flip", bit_flip),
        ("trailing garbage", trailing),
    ];
    for (what, bytes) in damages {
        fs::write(&entry, &bytes).unwrap();
        // Damage reads as a miss: the session silently re-simulates …
        let (report, simulated, hits) = run_once(&engine, fixed_stage("dmg", ff(80.0)));
        assert_eq!(
            (simulated, hits),
            (1, 0),
            "{what} must fall back to simulation"
        );
        assert!(!report.cache_hit, "{what}");
        assert_bit_identical(&original, &report);
        // … and heals the entry on the way out: the *next* run replays.
        let (healed, simulated, hits) = run_once(&engine, fixed_stage("dmg", ff(80.0)));
        assert_eq!((simulated, hits), (0, 1), "{what} must heal the entry");
        assert!(healed.cache_hit, "{what}");
        assert_bit_identical(&original, &healed);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_entry_under_our_key_is_never_a_wrong_hit() {
    let dir = tmp_dir("foreign");
    let engine = engine_with_cache(&dir);
    run_once(&engine, fixed_stage("victim", ff(80.0)));
    let victim_entry = only_entry(&dir);

    // Park a *different* stage's (perfectly valid) entry under the victim's
    // key, as a stray rename or key collision would. The checksum is intact,
    // so only the component echo inside the payload can catch this.
    let other_dir = tmp_dir("foreign-other");
    let other_engine = engine_with_cache(&other_dir);
    run_once(&other_engine, fixed_stage("victim", ff(220.0)));
    fs::copy(only_entry(&other_dir), &victim_entry).unwrap();

    let (report, simulated, hits) = run_once(&engine, fixed_stage("victim", ff(80.0)));
    assert_eq!(
        (simulated, hits),
        (1, 0),
        "a foreign entry must be ignored, not returned"
    );
    assert!(!report.cache_hit);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&other_dir);
}

#[test]
fn config_change_invalidates_but_scheduling_knobs_do_not() {
    let dir = tmp_dir("config");
    let engine = engine_with_cache(&dir);
    run_once(&engine, fixed_stage("cfg", ff(80.0)));

    // A result-affecting knob (iteration tolerance) must miss.
    let mut strict = EngineConfig {
        result_cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };
    strict.iteration.rel_tolerance /= 10.0;
    let (_, simulated, hits) = run_once(&TimingEngine::new(strict), fixed_stage("cfg", ff(80.0)));
    assert_eq!(
        (simulated, hits),
        (1, 0),
        "tolerance change must invalidate"
    );

    // A scheduling knob (worker cap) must not: same analysis, same key.
    let engine = engine_with_cache(&dir);
    let mut session = engine.session_with(SessionOptions {
        max_in_flight: 1,
        ..SessionOptions::default()
    });
    session.submit(fixed_stage("cfg", ff(80.0))).unwrap();
    let results = session.wait_all();
    assert!(results[0].1.is_ok());
    assert_eq!(
        session.result_cache_hits(),
        1,
        "scheduling knobs are not identity"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_round_trip_cleanly() {
    let dir = tmp_dir("concurrent");
    let engine = TimingEngine::new(EngineConfig::default());
    let stage = fixed_stage("hammer", ff(150.0));
    let report = engine.analyze(&stage).unwrap();
    let key = stage_key(
        &stage,
        InputFingerprint::Fixed(stage.input()),
        engine.config(),
        &SessionOptions::default(),
    )
    .unwrap();

    // Two writers hammer the same key while a reader polls it: atomic
    // write-rename means every successful load decodes to exactly the
    // written report — a torn file either fails the decode (miss,
    // acceptable) or would produce different numbers (never acceptable).
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (dir, key, report) = (&dir, &key, &report);
            scope.spawn(move || {
                let cache = StageResultCache::open(dir).unwrap();
                for _ in 0..50 {
                    cache.store(key, report).unwrap();
                }
            });
        }
        let (dir, key, report) = (&dir, &key, &report);
        scope.spawn(move || {
            let cache = StageResultCache::open(dir).unwrap();
            for _ in 0..200 {
                if let Some(loaded) = cache.load(key, "hammer") {
                    assert_eq!(loaded.delay.to_bits(), report.delay.to_bits());
                    assert_eq!(loaded.slew.to_bits(), report.slew.to_bits());
                }
            }
        });
    });

    // After the dust settles the entry replays and no temp files leak.
    let cache = StageResultCache::open(&dir).unwrap();
    let loaded = cache.load(&key, "hammer").unwrap();
    assert_bit_identical(&report, &loaded);
    assert!(loaded.cache_hit);
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files must not leak: {leftovers:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unusable_cache_dir_is_an_open_error_but_never_a_session_error() {
    let dir = tmp_dir("unusable");
    fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("blocker");
    fs::write(&blocker, b"not a directory").unwrap();
    let inside = blocker.join("cache");

    // Opening directly reports the failure …
    assert!(StageResultCache::open(&inside).is_err());

    // … but a session configured with the same unusable path silently runs
    // uncached: caching is an optimization, never a correctness gate.
    let engine = engine_with_cache(&inside);
    let (report, simulated, hits) = run_once(&engine, fixed_stage("nocache", ff(80.0)));
    assert_eq!((simulated, hits), (1, 0));
    assert!(!report.cache_hit);
    let _ = fs::remove_dir_all(&dir);
}
