//! Fixtures shared by the facade integration tests (`tests/facade.rs`,
//! `tests/session.rs`), delegating to the crate's canonical doc(hidden)
//! fixture module so every suite exercises the same synthetic cell.

// Each integration-test binary compiles this module independently and uses a
// different subset of it.
#![allow(dead_code)]

use rlc_ceff_suite::charlib::DriverCell;
use rlc_ceff_suite::interconnect::RlcLine;
use rlc_ceff_suite::numeric::units::{mm, nh, pf};

/// The workspace's synthetic affine cell ([`rlc_ceff_suite::fixtures`]).
pub fn synthetic_cell(size: f64, on_resistance: f64) -> DriverCell {
    rlc_ceff_suite::fixtures::synthetic_cell(size, on_resistance)
}

/// The paper's flagship 5 mm / 1.6 µm line.
pub fn paper_line() -> RlcLine {
    RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
}
