//! Integration tests of the `TimingEngine` facade: heterogeneous batches
//! with per-stage error recovery, analytic-vs-simulation backend parity, and
//! trait-object safety of the extension points.

use std::sync::Arc;

use rlc_ceff_suite::charlib::{CharacterizationGrid, DriverCell};
use rlc_ceff_suite::interconnect::RlcLine;
use rlc_ceff_suite::moments::PiModel;
use rlc_ceff_suite::numeric::units::{ff, mm, nh, pf, ps};
use rlc_ceff_suite::{
    AnalysisBackend, BackendChoice, DistributedRlcLoad, DriverModel, EngineConfig, EngineError,
    LoadModel, LumpedCapLoad, MomentsLoad, PiModelLoad, Stage, TimingEngine,
};

mod common;
use common::{paper_line, synthetic_cell};

fn fast_engine() -> TimingEngine {
    TimingEngine::new(EngineConfig::fast_for_tests())
}

/// The acceptance-criteria batch: ≥ 8 heterogeneous stages mixing all four
/// load models and both backends, with one deliberately degenerate stage —
/// every stage gets a report slot and the degenerate one fails alone.
/// Deliberately exercises the deprecated `analyze_many` shim, which must
/// keep behaving exactly like the pre-session batch API.
#[test]
#[allow(deprecated)]
fn heterogeneous_batch_recovers_per_stage() {
    let strong = Arc::new(synthetic_cell(75.0, 70.0));
    let weak = Arc::new(synthetic_cell(25.0, 220.0));
    let line = paper_line();
    let short_line = RlcLine::new(43.5, nh(3.1), pf(0.66), mm(3.0));

    let pi = PiModel {
        c_near: 0.2e-12,
        resistance: 150.0,
        c_far: 0.7e-12,
    };
    let healthy_moments =
        rlc_ceff_suite::moments::distributed_admittance_moments(&line, ff(10.0), 5);

    let stages = vec![
        // 1: the flagship inductive net, analytic -> two-ramp.
        Stage::builder_shared(
            strong.clone(),
            Arc::new(DistributedRlcLoad::new(line, ff(10.0)).unwrap()),
        )
        .label("flagship")
        .input_slew(ps(100.0))
        .build()
        .unwrap(),
        // 2: weak driver on the same wire, analytic -> single ramp.
        Stage::builder_shared(
            weak.clone(),
            Arc::new(DistributedRlcLoad::new(line, ff(10.0)).unwrap()),
        )
        .label("weak-driver")
        .input_slew(ps(100.0))
        .build()
        .unwrap(),
        // 3: a lumped capacitive load.
        Stage::builder_shared(
            strong.clone(),
            Arc::new(LumpedCapLoad::new(ff(400.0)).unwrap()),
        )
        .label("lumped")
        .input_slew(ps(100.0))
        .build()
        .unwrap(),
        // 4: an RC pi load.
        Stage::builder_shared(strong.clone(), Arc::new(PiModelLoad::new(pi).unwrap()))
            .label("pi")
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        // 5: a moment-space load with healthy moments.
        Stage::builder_shared(
            strong.clone(),
            Arc::new(MomentsLoad::new(healthy_moments).unwrap()),
        )
        .label("moments")
        .input_slew(ps(100.0))
        .build()
        .unwrap(),
        // 6: the DEGENERATE stage — a pure capacitor disguised as five
        // moments; the rational fit fails at analysis time.
        Stage::builder_shared(
            strong.clone(),
            Arc::new(MomentsLoad::new(vec![1e-12, 0.0, 0.0, 0.0, 0.0]).unwrap()),
        )
        .label("degenerate")
        .input_slew(ps(100.0))
        .build()
        .unwrap(),
        // 7: the golden simulation backend on a lumped load.
        Stage::builder_shared(
            strong.clone(),
            Arc::new(LumpedCapLoad::new(ff(300.0)).unwrap()),
        )
        .label("sim-lumped")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Spice)
        .build()
        .unwrap(),
        // 8: the golden simulation backend on a short RLC line.
        Stage::builder_shared(
            strong.clone(),
            Arc::new(DistributedRlcLoad::new(short_line, ff(10.0)).unwrap()),
        )
        .label("sim-line")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Spice)
        .build()
        .unwrap(),
        // 9: a different slew on the flagship net.
        Stage::builder_shared(
            strong,
            Arc::new(DistributedRlcLoad::new(line, ff(10.0)).unwrap()),
        )
        .label("fast-input")
        .input_slew(ps(50.0))
        .build()
        .unwrap(),
    ];

    let batch = fast_engine().analyze_many(&stages);
    assert_eq!(batch.len(), 9);
    assert_eq!(batch.err_count(), 1, "only the degenerate stage may fail");
    assert_eq!(batch.ok_count(), 8);

    // The failure is the degenerate stage, with a chained load error.
    let (index, error) = batch.failures().next().unwrap();
    assert_eq!(stages[index].label(), "degenerate");
    assert!(matches!(error, EngineError::Load { .. }));
    assert!(std::error::Error::source(error).is_some());

    // Reports come back in input order with the expected shapes.
    let by_label = |label: &str| {
        batch
            .succeeded()
            .find(|(i, _)| stages[*i].label() == label)
            .map(|(_, r)| r)
            .unwrap_or_else(|| panic!("no report for {label}"))
    };
    assert!(by_label("flagship").used_two_ramp);
    assert!(!by_label("weak-driver").used_two_ramp);
    assert!(!by_label("lumped").used_two_ramp);
    assert!(!by_label("pi").used_two_ramp);
    assert_eq!(by_label("sim-lumped").backend, "rlc-spice");
    assert!(by_label("sim-line").simulated_far_end.is_some());
    for (_, report) in batch.succeeded() {
        assert!(report.delay > 0.0, "{}", report.describe());
        assert!(report.slew > 0.0, "{}", report.describe());
    }
    // The pi load shields the far capacitance: its Ceff is below the total.
    let pi_details = by_label("pi").analytic.as_ref().unwrap();
    assert!(pi_details.ceff1.ceff < pi.total_capacitance());
    assert!(pi_details.ceff1.ceff > pi.c_near);
}

/// Backend parity on the canonical stage: with a real characterized cell the
/// analytic flow must land within the loose coarse-fidelity error bands of
/// the golden simulation (the same bands the pre-facade end-to-end test
/// used).
#[test]
#[allow(deprecated)] // pins the analyze_many shim's behaviour
fn analytic_and_spice_backends_agree_on_the_flagship_stage() {
    let cell = Arc::new(
        DriverCell::characterize(75.0, &CharacterizationGrid::coarse_for_tests())
            .expect("characterization failed"),
    );
    let load: Arc<dyn LoadModel> =
        Arc::new(DistributedRlcLoad::new(paper_line(), ff(10.0)).unwrap());
    let analytic_stage = Stage::builder_shared(cell.clone(), load.clone())
        .label("analytic")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
    let spice_stage = Stage::builder_shared(cell, load)
        .label("golden")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Spice)
        .build()
        .unwrap();

    let engine = fast_engine();
    let batch = engine.analyze_many(&[analytic_stage, spice_stage]);
    assert!(batch.all_ok(), "{}", batch.summary());
    let analytic = batch.outcomes[0].as_ref().unwrap();
    let golden = batch.outcomes[1].as_ref().unwrap();

    assert!(
        analytic.used_two_ramp,
        "the 75X / 5 mm case must be inductive"
    );
    let delay_error = (analytic.delay - golden.delay) / golden.delay;
    let slew_error = (analytic.slew - golden.slew) / golden.slew;
    assert!(
        delay_error.abs() < 0.30,
        "delay error {:.1}% (sim {:.1} ps, model {:.1} ps)",
        delay_error * 100.0,
        golden.delay * 1e12,
        analytic.delay * 1e12
    );
    assert!(
        slew_error.abs() < 0.45,
        "slew error {:.1}%",
        slew_error * 100.0
    );

    // The two waveforms are exercisable through the same trait object.
    for report in [analytic, golden] {
        let w = &report.waveform;
        assert!(w.v(w.end_time() + ps(500.0)) > 0.9 * report.vdd);
        assert!(w.to_source(5e-9).value_at(4.9e-9) > 0.9 * report.vdd);
    }
}

/// `DriverModel`, `LoadModel` and `AnalysisBackend` must all be usable as
/// trait objects (the facade's extension seams).
#[test]
fn extension_traits_are_object_safe() {
    // dyn LoadModel over every built-in load.
    let loads: Vec<Box<dyn LoadModel>> = vec![
        Box::new(LumpedCapLoad::new(ff(100.0)).unwrap()),
        Box::new(
            PiModelLoad::new(PiModel {
                c_near: 0.1e-12,
                resistance: 100.0,
                c_far: 0.4e-12,
            })
            .unwrap(),
        ),
        Box::new(DistributedRlcLoad::new(paper_line(), ff(10.0)).unwrap()),
        Box::new(MomentsLoad::new(vec![1e-12, -1e-23, 1e-34, -2e-45, 3e-56]).unwrap()),
    ];
    for load in &loads {
        assert!(load.total_capacitance() > 0.0);
        assert!(!load.describe().is_empty());
    }

    // dyn AnalysisBackend: a custom backend that delegates to the analytic
    // one but stamps its own name.
    #[derive(Debug)]
    struct Relabeled;
    impl AnalysisBackend for Relabeled {
        fn name(&self) -> &'static str {
            "relabeled"
        }
        fn analyze(
            &self,
            stage: &Stage,
            config: &EngineConfig,
        ) -> Result<rlc_ceff_suite::StageReport, EngineError> {
            let mut report = rlc_ceff_suite::AnalyticBackend.analyze(stage, config)?;
            report.backend = self.name();
            Ok(report)
        }
    }

    let cell = synthetic_cell(75.0, 70.0);
    let stage = Stage::builder(cell, LumpedCapLoad::new(ff(200.0)).unwrap())
        .label("custom-backend")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Custom(Arc::new(Relabeled)))
        .build()
        .unwrap();
    let report = fast_engine().analyze(&stage).unwrap();
    assert_eq!(report.backend, "relabeled");

    // dyn DriverModel comes back in the report and behaves like a waveform.
    let w: &Arc<dyn DriverModel> = &report.waveform;
    assert_eq!(w.v(0.0), 0.0);
    assert!(w.slew() > 0.0);
}

/// The builder path returns errors (not panics) for malformed stages, and
/// the resulting error messages say what was wrong.
#[test]
#[allow(deprecated)] // pins the analyze_many shim's behaviour
fn malformed_stages_error_instead_of_panicking() {
    let cell = synthetic_cell(75.0, 70.0);
    let err = Stage::builder(cell.clone(), LumpedCapLoad::new(ff(100.0)).unwrap())
        .input_slew(-1.0e-12)
        .build()
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidStage { .. }));
    assert!(err.to_string().contains("slew"));

    // Bad loads are rejected at load-construction time.
    assert!(LumpedCapLoad::new(0.0).is_err());
    assert!(DistributedRlcLoad::new(paper_line(), f64::NAN).is_err());
    assert!(MomentsLoad::new(vec![]).is_err());

    // A moment-space load cannot run on the simulation backend: per-stage
    // Unsupported error, not a crash.
    let healthy_moments =
        rlc_ceff_suite::moments::distributed_admittance_moments(&paper_line(), ff(10.0), 5);
    let stage = Stage::builder(cell, MomentsLoad::new(healthy_moments).unwrap())
        .label("moments-on-spice")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Spice)
        .build()
        .unwrap();
    let batch = fast_engine().analyze_many(&[stage]);
    assert_eq!(batch.err_count(), 1);
    assert!(matches!(
        batch.failures().next().unwrap().1,
        EngineError::Unsupported { .. }
    ));
}
