//! Integration tests of the variation engine: Monte-Carlo distribution
//! parity against independent per-sample runs, bit-identical seed
//! determinism, multi-corner sweeps through the reduced-order backend, and
//! corner-consistent path chaining.

use std::sync::Arc;

use rlc_ceff_suite::charlib::DriverCell;
use rlc_ceff_suite::interconnect::{RlcLine, RlcTree};
use rlc_ceff_suite::numeric::units::{ff, mm, nh, pf, ps};
use rlc_ceff_suite::{
    BackendChoice, DistributedRlcLoad, EngineConfig, EngineError, MomentsLoad, ReducedOrderBackend,
    RlcTreeLoad, Stage, TimingEngine, VariationModel, VariationSpec,
};

mod common;
use common::{paper_line, synthetic_cell};

fn fast_engine() -> TimingEngine {
    TimingEngine::new(EngineConfig::fast_for_tests())
}

/// An RC-dominated line whose single-branch tree reduces cleanly, so the
/// reduced-order backend never has to fall back to the simulator.
fn rc_line() -> RlcLine {
    RlcLine::new(200.0, nh(0.5), pf(1.0), mm(3.0))
}

/// Hand-rolls the facade's per-sample scaling with public API only: the
/// driver supply and on-resistance rescaled, every line element and sink
/// load revalued. The batched engine must agree with this naive build
/// exactly.
fn naive_scaled_stage(spec: &VariationSpec, line: &RlcLine, c_load: f64) -> Stage {
    let cell = synthetic_cell(75.0, 70.0);
    let mut inverter = *cell.spec();
    inverter.vdd *= spec.source_scale;
    let driver = DriverCell::from_parts(
        inverter,
        cell.table().clone(),
        cell.on_resistance() * spec.effective_r_scale(),
    );
    let scaled = RlcLine::new(
        line.resistance() * spec.effective_r_scale(),
        line.inductance() * spec.l_scale,
        line.capacitance() * spec.c_scale,
        line.length(),
    );
    Stage::builder(
        driver,
        DistributedRlcLoad::new(scaled, c_load * spec.c_scale).unwrap(),
    )
    .input_slew(ps(100.0))
    .backend(BackendChoice::Spice)
    .build()
    .unwrap()
}

#[test]
fn monte_carlo_distribution_matches_independent_runs() {
    let engine = fast_engine();
    let line = paper_line();
    let c_load = ff(10.0);
    let model = VariationModel::default();

    let stage = Stage::builder(
        synthetic_cell(75.0, 70.0),
        DistributedRlcLoad::new(line, c_load).unwrap(),
    )
    .label("mc-net")
    .input_slew(ps(100.0))
    .backend(BackendChoice::Spice)
    .monte_carlo(16, 42, model)
    .build()
    .unwrap();
    assert_eq!(stage.variation_samples().len(), 16);

    let report = engine.analyze_distribution(&stage).unwrap();
    assert_eq!(report.num_samples(), 16);
    assert_eq!(report.label(), "mc-net");

    // The plan must be exactly the model's seeded draws, in order, and every
    // batched sample must agree with a naive independent rebuild-and-analyze
    // of the same spec to the last bit.
    let specs = model.samples(16, 42);
    for (i, sample) in report.samples().iter().enumerate() {
        assert_eq!(sample.spec, specs[i], "plan order must follow seed order");
        let naive = engine
            .analyze(&naive_scaled_stage(&specs[i], &line, c_load))
            .unwrap();
        assert_eq!(
            sample.delay.to_bits(),
            naive.delay.to_bits(),
            "sample {i}: batched delay {:e} != naive delay {:e}",
            sample.delay,
            naive.delay
        );
        assert_eq!(sample.slew.to_bits(), naive.slew.to_bits());
        assert_eq!(sample.backend, "rlc-spice");
        let noise = sample.peak_noise.expect("spice samples carry a far end");
        let naive_far = naive.simulated_far_end.as_ref().unwrap();
        assert_eq!(
            noise.to_bits(),
            naive_far.waveform().overshoot(naive.vdd).to_bits()
        );
    }

    // The summaries reduce those samples.
    let mean: f64 =
        report.samples().iter().map(|s| s.delay).sum::<f64>() / report.num_samples() as f64;
    assert!((report.delay().mean - mean).abs() <= 1e-15 * mean.abs());
    let (worst, sample) = report.worst_sample();
    assert_eq!(sample.delay, report.delay().max);
    assert_eq!(report.samples()[worst].delay, report.delay().max);
}

#[test]
fn same_seed_is_bit_identical_across_runs() {
    let engine = fast_engine();
    let build = |seed: u64| {
        Stage::builder(
            synthetic_cell(75.0, 70.0),
            DistributedRlcLoad::new(rc_line(), ff(20.0)).unwrap(),
        )
        .label("seeded")
        .input_slew(ps(80.0))
        .monte_carlo(24, seed, VariationModel::default())
        .build()
        .unwrap()
    };
    let a = engine.analyze_distribution(&build(7)).unwrap();
    let b = engine.analyze_distribution(&build(7)).unwrap();
    for (x, y) in a.samples().iter().zip(b.samples()) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.delay.to_bits(), y.delay.to_bits());
        assert_eq!(x.slew.to_bits(), y.slew.to_bits());
    }
    for (x, y) in [(a.delay(), b.delay()), (a.slew(), b.slew())] {
        assert_eq!(x.mean.to_bits(), y.mean.to_bits());
        assert_eq!(x.std_dev.to_bits(), y.std_dev.to_bits());
        assert_eq!(x.min.to_bits(), y.min.to_bits());
        assert_eq!(x.max.to_bits(), y.max.to_bits());
        assert_eq!(x.p50.to_bits(), y.p50.to_bits());
        assert_eq!(x.p95.to_bits(), y.p95.to_bits());
        assert_eq!(x.p99.to_bits(), y.p99.to_bits());
    }
    assert_eq!(a.worst_sample().0, b.worst_sample().0);

    // A different seed perturbs the distribution.
    let c = engine.analyze_distribution(&build(8)).unwrap();
    assert_ne!(a.delay().mean.to_bits(), c.delay().mean.to_bits());
}

#[test]
fn corner_sweep_through_the_reduced_order_backend() {
    let engine = fast_engine();
    let mut tree = RlcTree::new();
    let trunk = tree.add_branch(None, rc_line());
    tree.set_sink(trunk, "rx", ff(25.0));

    let fast = VariationSpec::nominal().with_r_scale(0.8).with_c_scale(0.9);
    let slow = VariationSpec::nominal().with_r_scale(1.3).with_c_scale(1.2);
    let stage = Stage::builder(synthetic_cell(75.0, 70.0), RlcTreeLoad::new(tree).unwrap())
        .label("corner-net")
        .input_slew(ps(100.0))
        .backend(BackendChoice::Custom(Arc::new(ReducedOrderBackend::new())))
        .corners([fast, VariationSpec::nominal(), slow])
        .build()
        .unwrap();

    let report = engine.analyze_distribution(&stage).unwrap();
    assert_eq!(report.num_samples(), 3);
    for sample in report.samples() {
        assert_eq!(
            sample.backend, "reduced-order",
            "every corner must be answered in moment space, not by fallback"
        );
        assert!(sample.peak_noise.is_some(), "the ROM models the far end");
    }
    // Near-end delay is NOT monotone in the RC corner (a larger wire R
    // shields the far capacitance), so only assert that the corners actually
    // perturb the answer and that the witness is the true argmax.
    let delays: Vec<f64> = report.samples().iter().map(|s| s.delay).collect();
    assert!(delays[0] != delays[1] && delays[1] != delays[2] && delays[0] != delays[2]);
    let argmax = delays
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0;
    assert_eq!(report.worst_sample().0, argmax);
}

#[test]
fn path_distribution_chains_corner_consistently() {
    let engine = fast_engine();
    let line = rc_line();
    let slow = VariationSpec::nominal()
        .with_r_scale(1.25)
        .with_c_scale(1.15)
        .with_source_scale(0.95);

    let head = Stage::builder(
        synthetic_cell(75.0, 70.0),
        DistributedRlcLoad::new(line, ff(15.0)).unwrap(),
    )
    .label("p1")
    .input_slew(ps(100.0))
    .backend(BackendChoice::Spice)
    .corners([VariationSpec::nominal(), slow])
    .build()
    .unwrap();
    // The tail's declared input is a placeholder: each sample is rewired to
    // consume the matching sample of the head.
    let tail = Stage::builder(
        synthetic_cell(25.0, 220.0),
        DistributedRlcLoad::new(line, ff(5.0)).unwrap(),
    )
    .label("p2")
    .input_slew(ps(50.0))
    .backend(BackendChoice::Spice)
    .build()
    .unwrap();

    let reports = engine.analyze_path_distribution(&[head, tail]).unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].label(), "p1");
    assert_eq!(reports[1].label(), "p2");
    assert_eq!(reports[1].num_samples(), 2);

    // Golden cross-check of the slow corner: hand-chain the two scaled
    // stages through a session. Sample 1 of the tail must have consumed the
    // far end of sample 1 of the head — bit-identically.
    let s1 = naive_scaled_stage(&slow, &line, ff(15.0));
    let cell = synthetic_cell(25.0, 220.0);
    let mut inverter = *cell.spec();
    inverter.vdd *= slow.source_scale;
    let tail_driver = DriverCell::from_parts(
        inverter,
        cell.table().clone(),
        cell.on_resistance() * slow.effective_r_scale(),
    );
    let scaled_line = RlcLine::new(
        line.resistance() * slow.effective_r_scale(),
        line.inductance() * slow.l_scale,
        line.capacitance() * slow.c_scale,
        line.length(),
    );
    let mut session = engine.session();
    let h1 = session.submit(s1).unwrap();
    let s2 = Stage::builder(
        tail_driver,
        DistributedRlcLoad::new(scaled_line, ff(5.0) * slow.c_scale).unwrap(),
    )
    .backend(BackendChoice::Spice)
    .input_from(h1)
    .build()
    .unwrap();
    let h2 = session.submit(s2).unwrap();
    let outcomes = session.wait_all();
    let golden = outcomes[h2.index()].1.as_ref().unwrap();

    let sample = &reports[1].samples()[1];
    assert_eq!(
        sample.delay.to_bits(),
        golden.delay.to_bits(),
        "tail slow-corner delay {:e} != hand-chained {:e}",
        sample.delay,
        golden.delay
    );
    assert_eq!(sample.slew.to_bits(), golden.slew.to_bits());

    // And the slow corner is strictly slower than nominal on both stages.
    for report in &reports {
        assert!(report.samples()[1].delay > report.samples()[0].delay);
    }
}

#[test]
fn variation_plan_validation_and_unsupported_loads() {
    let engine = fast_engine();
    let plain = Stage::builder(
        synthetic_cell(75.0, 70.0),
        DistributedRlcLoad::new(rc_line(), ff(10.0)).unwrap(),
    )
    .input_slew(ps(100.0))
    .build()
    .unwrap();
    match engine.analyze_distribution(&plain) {
        Err(EngineError::InvalidStage { what }) => {
            assert!(what.contains("no variation plan"), "got: {what}")
        }
        other => panic!("expected InvalidStage, got {other:?}"),
    }
    assert!(matches!(
        engine.analyze_path_distribution(&[]),
        Err(EngineError::InvalidStage { .. })
    ));

    // A corner outside the physical range is rejected at build time.
    assert!(Stage::builder(
        synthetic_cell(75.0, 70.0),
        DistributedRlcLoad::new(rc_line(), ff(10.0)).unwrap(),
    )
    .input_slew(ps(100.0))
    .corners([VariationSpec::nominal().with_r_scale(-1.0)])
    .build()
    .is_err());

    // Moment-space loads have no netlist to revalue: a typed Unsupported,
    // not a crash.
    let moments = rlc_ceff_suite::moments::distributed_admittance_moments(&rc_line(), ff(10.0), 5);
    let abstract_stage = Stage::builder(
        synthetic_cell(75.0, 70.0),
        MomentsLoad::new(moments).unwrap(),
    )
    .input_slew(ps(100.0))
    .corners([VariationSpec::nominal()])
    .build()
    .unwrap();
    match engine.analyze_distribution(&abstract_stage) {
        Err(EngineError::Unsupported { what }) => {
            assert!(what.contains("revalued"), "got: {what}")
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}
