//! Integration tests of the dependency-aware `AnalysisSession`: chained
//! handoff parity against manual propagation, diamond scheduling, cycle and
//! sink validation at submit time, poisoning, cancellation, deadlines, and
//! provable concurrency of independent stages.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::charlib::DriverCell;
use rlc_ceff_suite::interconnect::RlcLine;
use rlc_ceff_suite::numeric::units::{ff, mm, nh, pf, ps};
use rlc_ceff_suite::{
    AnalysisBackend, AnalyticBackend, BackendChoice, DistributedRlcLoad, EngineConfig, EngineError,
    InputEvent, LoadModel, LumpedCapLoad, RlcTreeLoad, SessionOptions, Stage, StageReport,
    TimingEngine,
};

mod common;
use common::{paper_line, synthetic_cell};

fn fast_engine() -> TimingEngine {
    TimingEngine::new(EngineConfig::fast_for_tests())
}

/// Cheap far-end fidelity shared by the session and the manual reference so
/// the parity comparison is exact.
fn fast_far_opts() -> FarEndOptions {
    FarEndOptions {
        segments: 12,
        time_step: ps(1.0),
        ..FarEndOptions::default()
    }
}

fn line_stage(cell: &Arc<DriverCell>, label: &str) -> rlc_ceff_suite::StageBuilder {
    Stage::builder_shared(
        cell.clone(),
        Arc::new(DistributedRlcLoad::new(paper_line(), ff(10.0)).unwrap()),
    )
    .label(label)
}

/// The acceptance criterion: a 4-stage dependent path analyzed through the
/// session matches manually-chained `analyze` + far-end propagation calls to
/// within 1e-9 relative on every per-stage delay and slew. The chain passes
/// through a line, a branching RLC tree (named sink) and another line.
#[test]
fn chained_session_matches_manual_propagation_to_1e_minus_9() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let far_opts = fast_far_opts();

    let trunk = RlcLine::new(40.0, nh(2.0), pf(0.5), mm(2.0));
    let stub = RlcLine::new(20.0, nh(1.0), pf(0.3), mm(1.0));
    let mut tree = rlc_ceff_suite::interconnect::RlcTree::new();
    let t = tree.add_branch(None, trunk);
    let l = tree.add_branch(Some(t), stub);
    let r = tree.add_branch(Some(t), stub);
    tree.set_sink(l, "rx0", ff(15.0));
    tree.set_sink(r, "rx1", ff(25.0));

    let loads: Vec<Arc<dyn LoadModel>> = vec![
        Arc::new(DistributedRlcLoad::new(paper_line(), ff(10.0)).unwrap()),
        Arc::new(RlcTreeLoad::new(tree).unwrap()),
        Arc::new(DistributedRlcLoad::new(paper_line(), ff(20.0)).unwrap()),
        Arc::new(LumpedCapLoad::new(ff(300.0)).unwrap()),
    ];

    // Manual reference: analyze, propagate, convert, repeat.
    let mut manual: Vec<StageReport> = Vec::new();
    let mut event = InputEvent {
        slew: ps(100.0),
        delay: ps(20.0),
    };
    for (i, load) in loads.iter().enumerate() {
        let stage = Stage::builder_shared(cell.clone(), load.clone())
            .label(format!("manual-{i}"))
            .input_slew(event.slew)
            .input_delay(event.delay)
            .build()
            .unwrap();
        let report = engine.analyze(&stage).unwrap();
        if i + 1 < loads.len() {
            // Stage 1 hands off through the tree's "rx1" sink; the line
            // stages through their primary far end.
            let (t50, slew) = if i == 1 {
                let sinks = report.far_end_sinks(load.as_ref(), &far_opts).unwrap();
                let s = sinks.iter().find(|s| s.sink == "rx1").unwrap();
                (
                    report.input_t50 + s.delay_from_input.unwrap(),
                    s.slew.unwrap(),
                )
            } else {
                let far = report.far_end(load.as_ref(), &far_opts).unwrap();
                (report.input_t50 + far.delay_from_input, far.slew)
            };
            let full_slew = slew / 0.8;
            event = InputEvent {
                slew: full_slew,
                delay: t50 - 0.5 * full_slew,
            };
        }
        manual.push(report);
    }

    // The same path through a session.
    let mut session = engine.session_with(SessionOptions::default().with_far_end(far_opts));
    let mut handles = Vec::new();
    for (i, load) in loads.iter().enumerate() {
        let mut builder = Stage::builder_shared(cell.clone(), load.clone()).label(format!("s{i}"));
        builder = match i {
            0 => builder.input_slew(ps(100.0)),
            2 => builder.input_from_sink(handles[1], "rx1"),
            _ => builder.input_from(handles[i - 1]),
        };
        handles.push(session.submit(builder.build().unwrap()).unwrap());
    }
    let results = session.wait_all();
    assert_eq!(results.len(), 4);
    for ((_, outcome), reference) in results.iter().zip(&manual) {
        let report = outcome.as_ref().expect("every chained stage succeeds");
        let delay_err = (report.delay - reference.delay).abs() / reference.delay;
        let slew_err = (report.slew - reference.slew).abs() / reference.slew;
        let t50_err = (report.input_t50 - reference.input_t50).abs() / reference.input_t50;
        assert!(
            delay_err <= 1e-9 && slew_err <= 1e-9 && t50_err <= 1e-9,
            "{}: delay err {delay_err:.2e}, slew err {slew_err:.2e}, t50 err {t50_err:.2e}",
            report.label
        );
    }
}

/// A backend that records the order stages complete in, then delegates.
#[derive(Debug)]
struct Recording {
    order: Arc<Mutex<Vec<String>>>,
}

impl AnalysisBackend for Recording {
    fn name(&self) -> &'static str {
        "recording"
    }
    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        let report = AnalyticBackend.analyze(stage, config);
        self.order.lock().unwrap().push(stage.label().to_string());
        report
    }
}

/// Diamond graph: `a` fans out to `b` and `c`, and `d` consumes `b`'s far
/// end while also ordering after `c`. The scheduler must run `d` last and
/// everything must succeed.
#[test]
fn diamond_dependencies_schedule_topologically() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let order = Arc::new(Mutex::new(Vec::new()));
    let backend = |order: &Arc<Mutex<Vec<String>>>| {
        BackendChoice::Custom(Arc::new(Recording {
            order: order.clone(),
        }))
    };

    let mut session = engine.session_with(SessionOptions::default().with_far_end(fast_far_opts()));
    let a = session
        .submit(
            line_stage(&cell, "a")
                .input_slew(ps(100.0))
                .backend(backend(&order))
                .build()
                .unwrap(),
        )
        .unwrap();
    let b = session
        .submit(
            line_stage(&cell, "b")
                .input_from(a)
                .backend(backend(&order))
                .build()
                .unwrap(),
        )
        .unwrap();
    let c = session
        .submit(
            line_stage(&cell, "c")
                .input_from(a)
                .backend(backend(&order))
                .build()
                .unwrap(),
        )
        .unwrap();
    let d = session
        .submit(
            line_stage(&cell, "d")
                .input_from(b)
                .after(c)
                .backend(backend(&order))
                .build()
                .unwrap(),
        )
        .unwrap();

    let results = session.wait_all();
    assert_eq!(results.len(), 4);
    assert!(results.iter().all(|(_, r)| r.is_ok()));
    // Submission-order results line up with the handles.
    for (expected, (handle, _)) in [a, b, c, d].iter().zip(&results) {
        assert_eq!(expected, handle);
    }
    let order = order.lock().unwrap();
    let pos = |label: &str| order.iter().position(|l| l == label).unwrap();
    assert!(pos("a") < pos("b") && pos("a") < pos("c"));
    assert!(pos("b") < pos("d") && pos("c") < pos("d"));
}

/// Cycles are rejected at submit time: self-reference, and a mutual cycle
/// wired through reservations.
#[test]
fn cycles_are_rejected_at_submit_time() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let mut session = engine.session();

    // Self-cycle.
    let c = session.reserve();
    let err = session
        .submit_reserved(c, line_stage(&cell, "self").input_from(c).build().unwrap())
        .unwrap_err();
    assert!(matches!(err, EngineError::DependencyCycle { .. }));

    // Mutual cycle across two reservations: the second fill closes the loop.
    let a = session.reserve();
    let b = session.reserve();
    session
        .submit_reserved(a, line_stage(&cell, "a").input_from(b).build().unwrap())
        .unwrap();
    let err = session
        .submit_reserved(b, line_stage(&cell, "b").input_from(a).build().unwrap())
        .unwrap_err();
    assert!(matches!(err, EngineError::DependencyCycle { .. }));

    // Ordering-only (`after`) edges count too.
    let x = session.reserve();
    let y = session.reserve();
    session
        .submit_reserved(
            x,
            line_stage(&cell, "x")
                .input_slew(ps(100.0))
                .after(y)
                .build()
                .unwrap(),
        )
        .unwrap();
    let err = session
        .submit_reserved(
            y,
            line_stage(&cell, "y")
                .input_slew(ps(100.0))
                .after(x)
                .build()
                .unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::DependencyCycle { .. }));
}

/// Submit-time reference validation: unknown sink names, producers without a
/// netlist, and handles from another session are all typed errors.
#[test]
fn bad_references_are_rejected_at_submit_time() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let mut session = engine.session();

    let producer = session
        .submit(
            line_stage(&cell, "producer")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();

    // A line load only exposes "far".
    let err = session
        .submit(
            line_stage(&cell, "bad-sink")
                .input_from_sink(producer, "rx9")
                .build()
                .unwrap(),
        )
        .unwrap_err();
    match &err {
        EngineError::UnknownSink {
            label,
            sink,
            available,
        } => {
            assert_eq!(label, "producer");
            assert_eq!(sink, "rx9");
            assert_eq!(available, &vec!["far".to_string()]);
        }
        other => panic!("expected UnknownSink, got {other:?}"),
    }

    // A moment-space producer has no far end to chain from.
    let moments = session
        .submit(
            Stage::builder_shared(
                cell.clone(),
                Arc::new(
                    rlc_ceff_suite::MomentsLoad::new(
                        rlc_ceff_suite::moments::distributed_admittance_moments(
                            &paper_line(),
                            ff(10.0),
                            5,
                        ),
                    )
                    .unwrap(),
                ),
            )
            .label("moments")
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();
    let err = session
        .submit(
            line_stage(&cell, "chained-off-moments")
                .input_from(moments)
                .build()
                .unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidDependency { .. }));

    // Handles do not cross sessions.
    let mut other_session = engine.session();
    let err = other_session
        .submit(
            line_stage(&cell, "foreign")
                .input_from(producer)
                .build()
                .unwrap(),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidDependency { .. }));

    let results = session.wait_all();
    assert_eq!(results.len(), 2, "rejected stages were never enqueued");
    assert!(results.iter().all(|(_, r)| r.is_ok()));
}

/// A backend that always fails.
#[derive(Debug)]
struct Failing;

impl AnalysisBackend for Failing {
    fn name(&self) -> &'static str {
        "failing"
    }
    fn analyze(&self, _: &Stage, _: &EngineConfig) -> Result<StageReport, EngineError> {
        Err(EngineError::unsupported("deliberate test failure"))
    }
}

/// A failing producer poisons its dependents — transitively — with
/// `UpstreamFailed`, while unrelated stages complete normally.
#[test]
fn failing_producer_poisons_only_its_dependents() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let mut session = engine.session_with(SessionOptions::default().with_far_end(fast_far_opts()));

    let bad = session
        .submit(
            line_stage(&cell, "bad")
                .input_slew(ps(100.0))
                .backend(BackendChoice::Custom(Arc::new(Failing)))
                .build()
                .unwrap(),
        )
        .unwrap();
    let child = session
        .submit(line_stage(&cell, "child").input_from(bad).build().unwrap())
        .unwrap();
    let grandchild = session
        .submit(
            line_stage(&cell, "grandchild")
                .input_from(child)
                .build()
                .unwrap(),
        )
        .unwrap();
    let independent = session
        .submit(
            line_stage(&cell, "independent")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();

    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    assert!(matches!(
        results[&bad],
        Err(EngineError::Unsupported { .. })
    ));
    match &results[&child] {
        Err(EngineError::UpstreamFailed { label, upstream }) => {
            assert_eq!(label, "child");
            assert_eq!(upstream, "bad");
        }
        other => panic!("expected UpstreamFailed, got {other:?}"),
    }
    match &results[&grandchild] {
        Err(EngineError::UpstreamFailed { upstream, .. }) => assert_eq!(upstream, "child"),
        other => panic!("expected transitive UpstreamFailed, got {other:?}"),
    }
    assert!(
        results[&independent].is_ok(),
        "unrelated stages are untouched"
    );
}

/// A backend that signals when it starts and blocks until released.
#[derive(Debug)]
struct Gate {
    started: Arc<(Mutex<bool>, Condvar)>,
    release: Arc<(Mutex<bool>, Condvar)>,
}

impl AnalysisBackend for Gate {
    fn name(&self) -> &'static str {
        "gate"
    }
    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        {
            let (lock, cv) = &*self.started;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let (lock, cv) = &*self.release;
        let mut released = lock.lock().unwrap();
        while !*released {
            let (guard, timeout) = cv.wait_timeout(released, Duration::from_secs(10)).unwrap();
            released = guard;
            if timeout.timed_out() {
                return Err(EngineError::unsupported("gate never released"));
            }
        }
        drop(released);
        AnalyticBackend.analyze(stage, config)
    }
}

/// Mid-session cancellation: the running stage finishes and reports, queued
/// stages fail with `Cancelled`, and post-cancel submissions fail instantly.
#[test]
fn cancellation_aborts_pending_stages_only() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = TimingEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::fast_for_tests()
    });
    let started = Arc::new((Mutex::new(false), Condvar::new()));
    let release = Arc::new((Mutex::new(false), Condvar::new()));

    let mut session = engine.session();
    let running = session
        .submit(
            Stage::builder_shared(
                cell.clone(),
                Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap()),
            )
            .label("running")
            .input_slew(ps(100.0))
            .backend(BackendChoice::Custom(Arc::new(Gate {
                started: started.clone(),
                release: release.clone(),
            })))
            .build()
            .unwrap(),
        )
        .unwrap();
    let queued = session
        .submit(
            line_stage(&cell, "queued")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let dependent = session
        .submit(
            line_stage(&cell, "dependent")
                .input_from(queued)
                .build()
                .unwrap(),
        )
        .unwrap();

    // Wait until the single worker is inside the first stage, then cancel.
    {
        let (lock, cv) = &*started;
        let mut begun = lock.lock().unwrap();
        while !*begun {
            begun = cv.wait_timeout(begun, Duration::from_secs(10)).unwrap().0;
        }
    }
    session.cancel();
    session.cancel(); // idempotent
    {
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    let late = session
        .submit(
            line_stage(&cell, "late")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();

    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    assert!(results[&running].is_ok(), "the in-flight stage completes");
    assert!(matches!(
        results[&queued],
        Err(EngineError::Cancelled { .. })
    ));
    assert!(matches!(
        results[&dependent],
        Err(EngineError::Cancelled { .. })
    ));
    assert!(matches!(results[&late], Err(EngineError::Cancelled { .. })));
}

/// Deadlines: stages that have not started when the deadline passes fail
/// with `DeadlineExceeded`; an already-running stage finishes normally.
#[test]
fn deadline_fails_stages_that_never_started() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));

    // An already-expired deadline fails every submission.
    let engine = fast_engine();
    let mut session = engine.session_with(SessionOptions::default().with_deadline(Duration::ZERO));
    let h = session
        .submit(
            line_stage(&cell, "too-late")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    assert!(matches!(
        results[&h],
        Err(EngineError::DeadlineExceeded { .. })
    ));

    // A single worker holds the first stage past the deadline: the first
    // completes, the queued second fails.
    let engine = TimingEngine::new(EngineConfig {
        threads: 1,
        ..EngineConfig::fast_for_tests()
    });
    let started = Arc::new((Mutex::new(false), Condvar::new()));
    let release = Arc::new((Mutex::new(false), Condvar::new()));
    let mut session =
        engine.session_with(SessionOptions::default().with_deadline(Duration::from_millis(100)));
    let first = session
        .submit(
            Stage::builder_shared(
                cell.clone(),
                Arc::new(LumpedCapLoad::new(ff(200.0)).unwrap()),
            )
            .label("first")
            .input_slew(ps(100.0))
            .backend(BackendChoice::Custom(Arc::new(Gate {
                started: started.clone(),
                release: release.clone(),
            })))
            .build()
            .unwrap(),
        )
        .unwrap();
    let second = session
        .submit(
            line_stage(&cell, "second")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    {
        let (lock, cv) = &*started;
        let mut begun = lock.lock().unwrap();
        while !*begun {
            begun = cv.wait_timeout(begun, Duration::from_secs(10)).unwrap().0;
        }
    }
    // Let the deadline lapse while the first stage is still on the worker.
    std::thread::sleep(Duration::from_millis(150));
    // A post-deadline submission fails immediately AND must abort the
    // already-queued second stage — the submit path, not just the workers,
    // fires the deadline sweep.
    let third = session
        .submit(
            line_stage(&cell, "third")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    {
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    assert!(results[&first].is_ok(), "running stages finish");
    assert!(matches!(
        results[&second],
        Err(EngineError::DeadlineExceeded { .. })
    ));
    assert!(matches!(
        results[&third],
        Err(EngineError::DeadlineExceeded { .. })
    ));
}

/// A backend that only succeeds if `width` invocations overlap in time:
/// proves independent stages really run concurrently.
#[derive(Debug)]
struct Rendezvous {
    arrived: Arc<AtomicUsize>,
    width: usize,
}

impl AnalysisBackend for Rendezvous {
    fn name(&self) -> &'static str {
        "rendezvous"
    }
    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        self.arrived.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.arrived.load(Ordering::SeqCst) < self.width {
            if Instant::now() > deadline {
                return Err(EngineError::unsupported(
                    "stages were serialized; concurrency rendezvous timed out",
                ));
            }
            std::thread::yield_now();
        }
        AnalyticBackend.analyze(stage, config)
    }
}

/// Independent stages provably run concurrently: each blocks until both are
/// inside their analysis, which can only happen with parallel workers.
#[test]
fn independent_stages_run_concurrently() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = TimingEngine::new(EngineConfig {
        threads: 2,
        ..EngineConfig::fast_for_tests()
    });
    let arrived = Arc::new(AtomicUsize::new(0));
    let backend = || {
        BackendChoice::Custom(Arc::new(Rendezvous {
            arrived: arrived.clone(),
            width: 2,
        }))
    };
    let mut session = engine.session();
    let handles = session
        .submit_all(["left", "right"].map(|label| {
            line_stage(&cell, label)
                .input_slew(ps(100.0))
                .backend(backend())
                .build()
                .unwrap()
        }))
        .unwrap();
    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    for handle in handles {
        assert!(
            results[&handle].is_ok(),
            "both rendezvous stages must overlap: {:?}",
            results[&handle]
        );
    }
}

/// Streaming: results arrive in completion order (producers strictly before
/// their dependents), `next_report` drains to `None`, and a later submission
/// re-arms the stream. `wait_all` then replays everything in submission
/// order.
#[test]
fn results_stream_in_completion_order() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let mut session = engine.session_with(SessionOptions::default().with_far_end(fast_far_opts()));
    let producer = session
        .submit(
            line_stage(&cell, "producer")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let consumer = session
        .submit(
            line_stage(&cell, "consumer")
                .input_from(producer)
                .build()
                .unwrap(),
        )
        .unwrap();

    let streamed: Vec<_> = session.reports().collect();
    assert_eq!(streamed.len(), 2);
    assert_eq!(streamed[0].0, producer, "producers complete first");
    assert_eq!(streamed[1].0, consumer);
    assert!(streamed.iter().all(|(_, r)| r.is_ok()));
    assert!(session.next_report().is_none(), "stream is drained");

    // A later submission re-arms the stream.
    let extra = session
        .submit(
            line_stage(&cell, "extra")
                .input_slew(ps(80.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let (handle, outcome) = session.next_report().expect("stream re-armed");
    assert_eq!(handle, extra);
    assert!(outcome.is_ok());

    // wait_all replays everything, in submission order.
    let all = session.wait_all();
    assert_eq!(all.len(), 3);
    assert_eq!(all[0].0, producer);
    assert_eq!(all[1].0, consumer);
    assert_eq!(all[2].0, extra);
    // The consumer's input starts after the producer's far-end transition
    // began: its input t50 is strictly later than the producer's.
    let producer_report = all[0].1.as_ref().unwrap();
    let consumer_report = all[1].1.as_ref().unwrap();
    assert!(consumer_report.input_t50 > producer_report.input_t50);
}

/// Duplicate edges to the same producer (`input_from(a)` + `after(a)`)
/// collapse to one dependency: the dependent runs (or is poisoned) exactly
/// once and the result stream stays consistent.
#[test]
fn duplicate_dependency_edges_are_deduplicated() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();

    // Success path: the dependent unblocks despite the redundant edge.
    let mut session = engine.session_with(SessionOptions::default().with_far_end(fast_far_opts()));
    let a = session
        .submit(
            line_stage(&cell, "a")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let b = session
        .submit(
            line_stage(&cell, "b")
                .input_from(a)
                .after(a)
                .after(a)
                .build()
                .unwrap(),
        )
        .unwrap();
    let results = session.wait_all();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|(_, r)| r.is_ok()));
    let _ = b;

    // Failure path: the dependent is poisoned exactly once — the streamed
    // outcome count matches the submission count.
    let mut session = engine.session();
    let bad = session
        .submit(
            line_stage(&cell, "bad")
                .input_slew(ps(100.0))
                .backend(BackendChoice::Custom(Arc::new(Failing)))
                .build()
                .unwrap(),
        )
        .unwrap();
    session
        .submit(
            line_stage(&cell, "poisoned-once")
                .input_from(bad)
                .after(bad)
                .build()
                .unwrap(),
        )
        .unwrap();
    let tail = session
        .submit(
            line_stage(&cell, "tail")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let streamed: Vec<_> = session.reports().collect();
    assert_eq!(
        streamed.len(),
        3,
        "one outcome per submission, no duplicates"
    );
    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    assert!(matches!(
        results[&bad],
        Err(EngineError::Unsupported { .. })
    ));
    assert!(results[&tail].is_ok());
}

/// The engine's stage convention is a rising driver output; chaining off a
/// sink that completes a *falling* transition (an opposite-switching bus
/// aggressor) must be a typed error, not a silently wrong-polarity handoff.
#[test]
fn falling_sink_handoff_is_rejected() {
    use rlc_ceff_suite::interconnect::CoupledBus;
    use rlc_ceff_suite::{AggressorSpec, AggressorSwitching, CoupledBusLoad};

    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let bus = CoupledBus::symmetric(paper_line(), pf(0.3), nh(1.0), ff(10.0));
    let mut session = engine.session_with(SessionOptions::default().with_far_end(fast_far_opts()));
    let producer = session
        .submit(
            Stage::builder_shared(
                cell.clone(),
                Arc::new(
                    CoupledBusLoad::new(
                        bus,
                        AggressorSpec::new(
                            AggressorSwitching::OppositeDirection,
                            ps(100.0),
                            ps(20.0),
                            1.8,
                        )
                        .unwrap(),
                    )
                    .unwrap(),
                ),
            )
            .label("bus")
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();
    // The victim rises — chaining off it is fine; the aggressor falls.
    let from_victim = session
        .submit(
            line_stage(&cell, "after-victim")
                .input_from_sink(producer, "victim")
                .build()
                .unwrap(),
        )
        .unwrap();
    let from_aggressor = session
        .submit(
            line_stage(&cell, "after-aggressor")
                .input_from_sink(producer, "aggressor")
                .build()
                .unwrap(),
        )
        .unwrap();
    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    assert!(results[&producer].is_ok());
    assert!(results[&from_victim].is_ok());
    match &results[&from_aggressor] {
        Err(EngineError::Unsupported { what }) => {
            assert!(what.contains("falling"), "{what}")
        }
        other => panic!("expected a falling-transition rejection, got {other:?}"),
    }
}

/// A load that counts how many times its netlist is attached — i.e. how
/// many handoff propagation simulations the producer ran.
#[derive(Debug)]
struct CountingLoad {
    inner: DistributedRlcLoad,
    attaches: Arc<AtomicUsize>,
}

impl LoadModel for CountingLoad {
    fn reduce(&self) -> Result<rlc_ceff_suite::ceff::flow::ReducedLoad, EngineError> {
        self.inner.reduce()
    }
    fn total_capacitance(&self) -> f64 {
        self.inner.total_capacitance()
    }
    fn wave(&self) -> Option<rlc_ceff_suite::ceff::flow::WaveParameters> {
        self.inner.wave()
    }
    fn settle_horizon(&self) -> f64 {
        self.inner.settle_horizon()
    }
    fn attach(
        &self,
        ckt: &mut rlc_ceff_suite::spice::circuit::Circuit,
        near: rlc_ceff_suite::spice::circuit::NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<rlc_ceff_suite::spice::circuit::NodeId, EngineError> {
        self.attaches.fetch_add(1, Ordering::SeqCst);
        self.inner.attach(ckt, near, v_initial, segments)
    }
    fn describe(&self) -> String {
        self.inner.describe()
    }
}

/// Wide fan-out off one producer runs the producer's far-end propagation
/// once: the per-slot handoff gate serializes simultaneous resolvers onto a
/// single cached simulation.
#[test]
fn fan_out_propagates_the_producer_once() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = TimingEngine::new(EngineConfig {
        threads: 4,
        ..EngineConfig::fast_for_tests()
    });
    let attaches = Arc::new(AtomicUsize::new(0));
    let mut session = engine.session_with(SessionOptions::default().with_far_end(fast_far_opts()));
    let producer = session
        .submit(
            Stage::builder_shared(
                cell.clone(),
                Arc::new(CountingLoad {
                    inner: DistributedRlcLoad::new(paper_line(), ff(10.0)).unwrap(),
                    attaches: attaches.clone(),
                }),
            )
            .label("producer")
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();
    // Four dependents unblock simultaneously when the producer completes.
    for i in 0..4 {
        session
            .submit(
                line_stage(&cell, &format!("consumer-{i}"))
                    .input_from(producer)
                    .build()
                    .unwrap(),
            )
            .unwrap();
    }
    let results = session.wait_all();
    assert!(results.iter().all(|(_, r)| r.is_ok()));
    // The analytic producer never attaches its netlist to simulate. Exactly
    // two attaches happen: the submit-time static audit synthesizes the
    // netlist once (and the worker reuses those findings instead of
    // auditing again), and the four dependents share one cached handoff
    // propagation.
    assert_eq!(
        attaches.load(Ordering::SeqCst),
        2,
        "one audit synthesis + one shared propagation simulation"
    );
}

/// A reservation that is never filled fails at `wait_all`, poisoning its
/// dependents but nothing else.
#[test]
fn unfilled_reservations_fail_at_wait_all() {
    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let mut session = engine.session();
    let hole = session.reserve();
    let dependent = session
        .submit(
            line_stage(&cell, "dependent")
                .input_from(hole)
                .build()
                .unwrap(),
        )
        .unwrap();
    let fine = session
        .submit(
            line_stage(&cell, "fine")
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
    assert!(matches!(
        results[&hole],
        Err(EngineError::InvalidDependency { .. })
    ));
    assert!(matches!(
        results[&dependent],
        Err(EngineError::UpstreamFailed { .. })
    ));
    assert!(results[&fine].is_ok());
}

/// Sampled-waveform handoff: a SPICE consumer negotiates the full upstream
/// waveform through `BackendCaps::sampled_input`, and both handoff modes
/// produce consistent timing.
#[test]
fn sampled_handoff_negotiates_with_backend_caps() {
    use rlc_ceff_suite::BackendCaps;

    // Capability report: SPICE consumes sampled inputs, the analytic flow
    // and default custom backends do not.
    assert!(rlc_ceff_suite::SpiceBackend.caps().sampled_input);
    assert!(rlc_ceff_suite::SpiceBackend.caps().simulates_far_end);
    assert_eq!(AnalyticBackend.caps(), BackendCaps::default());

    let cell = Arc::new(synthetic_cell(75.0, 70.0));
    let engine = fast_engine();
    let far_opts = fast_far_opts();

    let run = |sampled: bool| {
        let mut session = engine.session_with(
            SessionOptions::default()
                .with_far_end(far_opts)
                .with_sampled_handoff(sampled),
        );
        let producer = session
            .submit(
                Stage::builder_shared(
                    cell.clone(),
                    Arc::new(DistributedRlcLoad::new(paper_line(), ff(10.0)).unwrap()),
                )
                .label("producer")
                .input_slew(ps(100.0))
                .backend(BackendChoice::Spice)
                .build()
                .unwrap(),
            )
            .unwrap();
        let consumer = session
            .submit(
                Stage::builder_shared(
                    cell.clone(),
                    Arc::new(LumpedCapLoad::new(ff(300.0)).unwrap()),
                )
                .label("consumer")
                .input_from(producer)
                .backend(BackendChoice::Spice)
                .build()
                .unwrap(),
            )
            .unwrap();
        let results: std::collections::HashMap<_, _> = session.wait_all().into_iter().collect();
        results[&consumer]
            .as_ref()
            .expect("spice chain succeeds")
            .clone()
    };

    let with_waveform = run(true);
    let with_ramp = run(false);
    assert!(with_waveform.delay > 0.0 && with_ramp.delay > 0.0);
    // The two handoff modes describe the same physical event: same input
    // crossing to within a picosecond-scale measurement difference, and
    // delays in the same regime.
    assert!((with_waveform.input_t50 - with_ramp.input_t50).abs() < ps(20.0));
    let rel = (with_waveform.delay - with_ramp.delay).abs() / with_ramp.delay;
    assert!(
        rel < 0.5,
        "sampled vs ramp handoff delays diverged: {:.3e} vs {:.3e}",
        with_waveform.delay,
        with_ramp.delay
    );
}
