//! Incremental re-analysis proof: editing one stage of a dependent path
//! re-simulates exactly that stage plus its downstream dependency cone —
//! nothing upstream, nothing on sibling branches — and the mixed
//! replayed/re-simulated result is bit-identical to a cold full re-analysis
//! of the edited design.

use std::fs;
use std::path::{Path, PathBuf};

use rlc_ceff_suite::fixtures::synthetic_cell_75x;
use rlc_ceff_suite::interconnect::prelude::*;
use rlc_ceff_suite::{DistributedRlcLoad, EngineConfig, Stage, StageReport, TimingEngine};

const CHAIN: usize = 16;
const EDITED: usize = 8;
const SIBLING_TAP: usize = 4;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlc-eco-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Analyzes the 16-stage chain plus a sibling branch tapped off stage 4.
/// `edit` changes stage 8's receiver cap. Returns the 17 reports in
/// submission order plus (simulated, hits).
fn analyze(dir: &Path, edit: bool) -> (Vec<StageReport>, u64, u64) {
    let engine = TimingEngine::new(EngineConfig::builder().result_cache_dir(dir).build());
    let cell = synthetic_cell_75x();
    let extractor = EmpiricalExtractor::cmos018();
    let load = |i: usize, c_load: f64| {
        let line = extractor.extract(&WireGeometry::new(mm(0.5 + 0.1 * i as f64), um(0.8)));
        DistributedRlcLoad::new(line, c_load).unwrap()
    };

    let mut session = engine.session();
    let mut handles = Vec::with_capacity(CHAIN + 1);
    for i in 0..CHAIN {
        let c_load = if edit && i == EDITED {
            ff(2.0 * (10.0 + i as f64))
        } else {
            ff(10.0 + i as f64)
        };
        let builder = Stage::builder(cell.clone(), load(i, c_load)).label(format!("stage{i:02}"));
        let builder = match handles.last() {
            None => builder.input_slew(ps(100.0)),
            Some(&h) => builder.input_from(h),
        };
        handles.push(session.submit(builder.build().unwrap()).unwrap());
    }
    // The sibling taps the chain *upstream* of the edit: it must stay warm.
    session
        .submit(
            Stage::builder(cell, load(20, ff(55.0)))
                .label("sibling")
                .input_from(handles[SIBLING_TAP])
                .build()
                .unwrap(),
        )
        .unwrap();

    let reports = session
        .wait_all()
        .into_iter()
        .map(|(_, outcome)| outcome.unwrap())
        .collect();
    (
        reports,
        session.stages_simulated(),
        session.result_cache_hits(),
    )
}

fn assert_same_numbers(a: &StageReport, b: &StageReport) {
    assert_eq!(a.label, b.label);
    assert_eq!(
        a.delay.to_bits(),
        b.delay.to_bits(),
        "{}: delay must be bit-identical",
        a.label
    );
    assert_eq!(a.slew.to_bits(), b.slew.to_bits(), "{}", a.label);
    assert_eq!(a.input_t50.to_bits(), b.input_t50.to_bits(), "{}", a.label);
    assert_eq!(a.used_two_ramp, b.used_two_ramp);
}

#[test]
fn an_edit_re_simulates_exactly_the_dependency_cone() {
    let dir = tmp_dir("cone");

    // Cold: everything simulates.
    let (cold, simulated, hits) = analyze(&dir, false);
    assert_eq!((simulated, hits), (CHAIN as u64 + 1, 0));
    assert!(cold.iter().all(|r| !r.cache_hit));

    // Edit stage 8: only stages 8..16 (the downstream cone) re-simulate;
    // stages 0..8 and the sibling branch replay from the cache.
    let (edited, simulated, hits) = analyze(&dir, true);
    assert_eq!(
        simulated,
        (CHAIN - EDITED) as u64,
        "exactly the edited stage and its downstream cone re-simulate"
    );
    assert_eq!(hits, EDITED as u64 + 1, "upstream + sibling replay");
    for (i, report) in edited.iter().enumerate() {
        let expect_hit = i < EDITED || i == CHAIN; // upstream chain + sibling
        assert_eq!(
            report.cache_hit, expect_hit,
            "stage {i} ({}) hit={} but the cone says {}",
            report.label, report.cache_hit, expect_hit
        );
    }
    // Upstream numbers are untouched by the edit; the cone's changed.
    for i in 0..EDITED {
        assert_same_numbers(&cold[i], &edited[i]);
    }
    assert_ne!(cold[EDITED].delay.to_bits(), edited[EDITED].delay.to_bits());

    // The mixed replayed/re-simulated analysis is bit-identical to a cold
    // full re-analysis of the edited design in a fresh cache directory.
    let fresh_dir = tmp_dir("cone-fresh");
    let (fresh, simulated, hits) = analyze(&fresh_dir, true);
    assert_eq!((simulated, hits), (CHAIN as u64 + 1, 0));
    for (mixed, full) in edited.iter().zip(&fresh) {
        assert_same_numbers(mixed, full);
    }

    // Fully warm re-analysis of the edited design: zero simulations.
    let (warm, simulated, hits) = analyze(&dir, true);
    assert_eq!((simulated, hits), (0, CHAIN as u64 + 1));
    assert!(warm.iter().all(|r| r.cache_hit));
    for (mixed, replayed) in edited.iter().zip(&warm) {
        assert_same_numbers(mixed, replayed);
    }

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&fresh_dir);
}
