//! Integration tests of the static-audit gate: sessions reject
//! Error-severity netlists at submit time **before any backend work**, a
//! `Warn` lint level attaches the findings to the report instead, the
//! explicit [`TimingEngine::lint`] audit ignores the level entirely, and a
//! silent sparse-to-dense kernel degrade during a dependency handoff
//! surfaces as the `L030` Info lint on the consumer's report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::ceff::flow::{ReducedLoad, WaveParameters};
use rlc_ceff_suite::interconnect::RlcLine;
use rlc_ceff_suite::numeric::units::{ff, ps};
use rlc_ceff_suite::spice::circuit::Circuit;
use rlc_ceff_suite::spice::NodeId;
use rlc_ceff_suite::{
    AnalysisBackend, AnalyticBackend, BackendChoice, DistributedRlcLoad, EngineConfig, EngineError,
    LintLevel, LoadModel, LumpedCapLoad, SessionOptions, Severity, Stage, StageReport,
    TimingEngine,
};

mod common;
use common::{paper_line, synthetic_cell};

/// A load whose netlist carries a deliberate defect: it delegates every
/// electrical question to a clean lumped cap, but `attach` additionally
/// creates a node no element ever touches — the canonical `L001` Error.
#[derive(Debug)]
struct StrandedNodeLoad {
    inner: LumpedCapLoad,
}

impl StrandedNodeLoad {
    fn new() -> StrandedNodeLoad {
        StrandedNodeLoad {
            inner: LumpedCapLoad::new(ff(50.0)).unwrap(),
        }
    }
}

impl LoadModel for StrandedNodeLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        self.inner.reduce()
    }
    fn total_capacitance(&self) -> f64 {
        self.inner.total_capacitance()
    }
    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError> {
        let far = self.inner.attach(ckt, near, v_initial, segments)?;
        let _stranded = ckt.node("adrift");
        Ok(far)
    }
    fn describe(&self) -> String {
        format!("{} + one stranded node", self.inner.describe())
    }
}

/// A backend that counts invocations, then delegates to the analytic flow:
/// the proof that a rejected submission never reached any solver.
#[derive(Debug)]
struct Counting {
    calls: Arc<AtomicUsize>,
}

impl AnalysisBackend for Counting {
    fn name(&self) -> &'static str {
        "counting"
    }
    fn analyze(&self, stage: &Stage, config: &EngineConfig) -> Result<StageReport, EngineError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        AnalyticBackend.analyze(stage, config)
    }
}

fn defective_stage(calls: &Arc<AtomicUsize>, label: &str) -> Stage {
    Stage::builder(synthetic_cell(75.0, 70.0), StrandedNodeLoad::new())
        .label(label)
        .input_slew(ps(100.0))
        .backend(BackendChoice::Custom(Arc::new(Counting {
            calls: calls.clone(),
        })))
        .build()
        .unwrap()
}

/// Under the default `Deny` level, submit itself returns the typed
/// `EngineError::Lint` carrying the findings, and the backend-invocation
/// counter proves no factorization (or any analysis at all) ever ran.
#[test]
fn deny_level_rejects_at_submit_time_before_any_backend_work() {
    let engine = TimingEngine::new(EngineConfig::fast_for_tests());
    assert_eq!(engine.config().lint_level, LintLevel::Deny);

    let calls = Arc::new(AtomicUsize::new(0));
    let mut session = engine.session();
    let err = session
        .submit(defective_stage(&calls, "gated"))
        .expect_err("a stranded node is an Error-severity lint");
    match err {
        EngineError::Lint { label, diagnostics } => {
            assert_eq!(label, "gated");
            let hit = diagnostics
                .iter()
                .find(|d| d.code == "L001")
                .expect("the stranded node is reported");
            assert_eq!(hit.severity, Severity::Error);
            assert_eq!(hit.locus, "adrift");
        }
        other => panic!("expected EngineError::Lint, got {other:?}"),
    }
    assert_eq!(
        calls.load(Ordering::SeqCst),
        0,
        "rejection must happen before the backend is ever invoked"
    );
    assert!(session.wait_all().is_empty(), "nothing was accepted");

    // The one-shot `analyze` path enforces the same gate.
    let err = engine
        .analyze(&defective_stage(&calls, "direct"))
        .unwrap_err();
    assert!(matches!(err, EngineError::Lint { .. }));
    assert_eq!(calls.load(Ordering::SeqCst), 0);
}

/// `Warn` downgrades enforcement to observation: the stage analyzes
/// normally and the findings ride along in `StageReport::lints`. `Off`
/// silences the audit entirely — but the explicit [`TimingEngine::lint`]
/// entry point still reports, because it exists precisely to audit without
/// enforcing.
#[test]
fn warn_level_attaches_findings_and_off_silences_them() {
    let calls = Arc::new(AtomicUsize::new(0));

    let mut config = EngineConfig::fast_for_tests();
    config.lint_level = LintLevel::Warn;
    let engine = TimingEngine::new(config);
    let report = engine.analyze(&defective_stage(&calls, "warned")).unwrap();
    assert_eq!(calls.load(Ordering::SeqCst), 1, "Warn still analyzes");
    let hit = report
        .lints
        .iter()
        .find(|d| d.code == "L001")
        .expect("Warn mode surfaces the finding in the report");
    assert_eq!(hit.locus, "adrift");

    let mut config = EngineConfig::fast_for_tests();
    config.lint_level = LintLevel::Off;
    let engine = TimingEngine::new(config);
    let report = engine
        .analyze(&defective_stage(&calls, "silenced"))
        .unwrap();
    assert!(report.lints.is_empty(), "Off suppresses the audit");
    let audit = engine.lint(&defective_stage(&calls, "audited"));
    assert!(
        audit.iter().any(|d| d.code == "L001"),
        "the explicit audit ignores the configured level: {audit:?}"
    );
}

/// A big load that delegates to a distributed line but (a) forces enough
/// segments that the propagation's MNA system crosses the sparse-kernel
/// threshold and (b) strands a node so the sparse factorization goes
/// near-singular and silently degrades to the dense path — exactly the
/// condition `L030` exists to surface.
#[derive(Debug)]
struct DegradingLineLoad {
    inner: DistributedRlcLoad,
}

impl DegradingLineLoad {
    fn new(line: RlcLine) -> DegradingLineLoad {
        DegradingLineLoad {
            inner: DistributedRlcLoad::new(line, ff(10.0)).unwrap(),
        }
    }
}

impl LoadModel for DegradingLineLoad {
    fn reduce(&self) -> Result<ReducedLoad, EngineError> {
        self.inner.reduce()
    }
    fn total_capacitance(&self) -> f64 {
        self.inner.total_capacitance()
    }
    fn wave(&self) -> Option<WaveParameters> {
        self.inner.wave()
    }
    fn settle_horizon(&self) -> f64 {
        self.inner.settle_horizon()
    }
    fn attach(
        &self,
        ckt: &mut Circuit,
        near: NodeId,
        v_initial: f64,
        segments: usize,
    ) -> Result<NodeId, EngineError> {
        // ≥ 80 segments puts the ladder's node + branch-current count well
        // past the 128-unknown sparse-auto threshold.
        let far = self.inner.attach(ckt, near, v_initial, segments.max(80))?;
        let _stranded = ckt.node("adrift");
        Ok(far)
    }
    fn describe(&self) -> String {
        format!("{} + one stranded node", self.inner.describe())
    }
}

/// A producer whose far-end propagation silently degrades from the sparse
/// kernel to dense hands its consumer a report carrying the `L030` Info
/// lint naming the producer — the degrade is observable, not silent.
#[test]
fn sparse_degrade_during_handoff_surfaces_as_info_lint_on_the_consumer() {
    let mut config = EngineConfig::fast_for_tests();
    // The stranded node is also an L001 Error; observe instead of reject so
    // the analysis proceeds to the handoff under test.
    config.lint_level = LintLevel::Warn;
    let engine = TimingEngine::new(config);

    let far_opts = FarEndOptions {
        segments: 80,
        time_step: ps(1.0),
        ..FarEndOptions::default()
    };
    let mut session = engine.session_with(SessionOptions::default().with_far_end(far_opts));
    let producer = session
        .submit(
            Stage::builder(
                synthetic_cell(75.0, 70.0),
                DegradingLineLoad::new(paper_line()),
            )
            .label("big-producer")
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();
    session
        .submit(
            Stage::builder(
                synthetic_cell(75.0, 70.0),
                LumpedCapLoad::new(ff(50.0)).unwrap(),
            )
            .label("consumer")
            .input_from(producer)
            .build()
            .unwrap(),
        )
        .unwrap();

    let results = session.wait_all();
    assert_eq!(results.len(), 2);
    let consumer = results[1]
        .1
        .as_ref()
        .expect("the degraded propagation still completes");
    let degrade = consumer
        .lints
        .iter()
        .find(|d| d.code == "L030")
        .expect("the silent degrade must surface on the consumer");
    assert_eq!(degrade.severity, Severity::Info);
    assert!(
        degrade.locus.contains("big-producer"),
        "the lint names the producer whose propagation degraded: {degrade}"
    );
}
