//! Degenerate-parity tests of the net-topology generalization, in the style
//! of `crates/spice/tests/kernel_parity.rs`:
//!
//! * a one-branch `RlcTreeLoad` must reproduce `DistributedRlcLoad` — and
//!   the pre-refactor `add_rlc_ladder` testbench path — within 1e-9 V;
//! * a zero-coupling `CoupledBusLoad` must reproduce two fully independent
//!   lines within 1e-9 V;
//! * a genuinely coupled bus must report a *nonzero* victim crosstalk delta
//!   through the `TimingEngine` facade.

use rlc_ceff_suite::ceff::far_end::FarEndOptions;
use rlc_ceff_suite::charlib::{DriverCell, TimingTable};
use rlc_ceff_suite::interconnect::{CoupledBus, RlcLine, RlcTree};
use rlc_ceff_suite::numeric::units::{ff, mm, nh, pf, ps};
use rlc_ceff_suite::spice::circuit::Circuit;
use rlc_ceff_suite::spice::testbench::{pwl_source_with_rlc_line, InverterSpec};
use rlc_ceff_suite::spice::transient::{TransientAnalysis, TransientOptions};
use rlc_ceff_suite::spice::{SourceWaveform, Waveform};
use rlc_ceff_suite::{
    AggressorSpec, AggressorSwitching, CoupledBusLoad, DistributedRlcLoad, EngineConfig, LoadModel,
    RlcTreeLoad, Stage, TimingEngine,
};

const PARITY_TOLERANCE_V: f64 = 1e-9;

fn paper_line() -> RlcLine {
    RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
}

fn victim_source() -> SourceWaveform {
    SourceWaveform::rising_ramp(1.8, ps(20.0), ps(100.0))
}

fn run(ckt: &Circuit) -> rlc_ceff_suite::spice::transient::TransientResult {
    TransientAnalysis::new(TransientOptions::try_new(ps(1.0), ps(1000.0)).unwrap())
        .run(ckt)
        .unwrap()
}

fn assert_waveforms_match(label: &str, a: &Waveform, b: &Waveform) {
    assert_eq!(a.len(), b.len(), "{label}: time grids differ");
    let mut max_dev: f64 = 0.0;
    for (x, y) in a.values().iter().zip(b.values()) {
        max_dev = max_dev.max((x - y).abs());
    }
    assert!(
        max_dev < PARITY_TOLERANCE_V,
        "{label}: waveforms deviate by {max_dev:.3e} V"
    );
}

/// Builds a circuit of the victim PWL source plus an attached load, runs it
/// and returns the primary far-end waveform.
fn far_waveform_of(load: &dyn LoadModel, segments: usize) -> Waveform {
    let mut ckt = Circuit::new();
    let near = ckt.node("out");
    ckt.add_vsource("VDRV", near, Circuit::GROUND, victim_source());
    ckt.set_initial_condition(near, 0.0);
    let far = load.attach(&mut ckt, near, 0.0, segments).unwrap();
    run(&ckt).waveform(far)
}

/// A one-branch tree, the single-line load and the pre-refactor
/// `add_rlc_ladder` testbench must produce the same far-end voltage.
#[test]
fn one_branch_tree_matches_distributed_line() {
    let line = paper_line();
    let c_load = ff(10.0);
    let segments = 16;

    // Pre-refactor reference path: the testbench ladder builder.
    let (ref_ckt, ref_nodes) = pwl_source_with_rlc_line(
        victim_source(),
        0.0,
        line.resistance(),
        line.inductance(),
        line.capacitance(),
        segments,
        c_load,
    );
    let reference = run(&ref_ckt).waveform(ref_nodes.far_end);

    let via_line = far_waveform_of(&DistributedRlcLoad::new(line, c_load).unwrap(), segments);
    let via_tree = far_waveform_of(
        &RlcTreeLoad::new(RlcTree::single_line(line, c_load)).unwrap(),
        segments,
    );

    assert_waveforms_match("line vs ladder reference", &via_line, &reference);
    assert_waveforms_match("one-branch tree vs ladder reference", &via_tree, &reference);
    assert_waveforms_match("one-branch tree vs line load", &via_tree, &via_line);
}

/// With zero coupling capacitance and zero mutual inductance, the bus is two
/// electrically independent lines: the victim must match the lone victim
/// line and the aggressor must match a standalone falling-ramp line.
#[test]
fn zero_coupling_bus_matches_independent_lines() {
    let line = paper_line();
    let c_load = ff(10.0);
    let segments = 16;
    let aggressor = AggressorSpec::new(
        AggressorSwitching::OppositeDirection,
        ps(100.0),
        ps(20.0),
        1.8,
    )
    .unwrap();
    let bus_load =
        CoupledBusLoad::new(CoupledBus::symmetric(line, 0.0, 0.0, c_load), aggressor).unwrap();

    // The coupled (but zero-coupling) system.
    let mut ckt = Circuit::new();
    let near = ckt.node("out");
    ckt.add_vsource("VDRV", near, Circuit::GROUND, victim_source());
    ckt.set_initial_condition(near, 0.0);
    let net = bus_load.attach_net(&mut ckt, near, 0.0, segments).unwrap();
    let result = run(&ckt);
    let victim = result.waveform(net.sinks[0].1);
    let aggressor_far = result.waveform(net.sinks[1].1);

    // Independent victim reference.
    let via_line = far_waveform_of(&DistributedRlcLoad::new(line, c_load).unwrap(), segments);
    assert_waveforms_match(
        "zero-coupling victim vs independent line",
        &victim,
        &via_line,
    );

    // Independent aggressor reference: a falling ramp into its own line.
    let (agg_ckt, agg_nodes) = pwl_source_with_rlc_line(
        SourceWaveform::falling_ramp(1.8, ps(20.0), ps(100.0)),
        1.8,
        line.resistance(),
        line.inductance(),
        line.capacitance(),
        segments,
        c_load,
    );
    let agg_reference = run(&agg_ckt).waveform(agg_nodes.far_end);
    assert_waveforms_match(
        "zero-coupling aggressor vs independent line",
        &aggressor_far,
        &agg_reference,
    );
}

fn synthetic_cell_75x() -> DriverCell {
    let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
    let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
    let transition: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(160.0))
                .collect()
        })
        .collect();
    let delay: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(53.0))
                .collect()
        })
        .collect();
    DriverCell::from_parts(
        InverterSpec::sized_018(75.0),
        TimingTable::new(slews, loads, delay, transition),
        70.0,
    )
}

/// The analytic stage reports of the degenerate topologies must agree with
/// the single-line load exactly (same reduction, same flow).
#[test]
fn degenerate_topologies_report_identical_analytic_timing() {
    let line = paper_line();
    let c_load = ff(10.0);
    let engine = TimingEngine::new(EngineConfig::fast_for_tests());

    let line_report = engine
        .analyze(
            &Stage::builder(
                synthetic_cell_75x(),
                DistributedRlcLoad::new(line, c_load).unwrap(),
            )
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();
    let tree_report = engine
        .analyze(
            &Stage::builder(
                synthetic_cell_75x(),
                RlcTreeLoad::new(RlcTree::single_line(line, c_load)).unwrap(),
            )
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();
    let bus_report = engine
        .analyze(
            &Stage::builder(
                synthetic_cell_75x(),
                CoupledBusLoad::new(
                    CoupledBus::symmetric(line, 0.0, 0.0, c_load),
                    AggressorSpec::new(AggressorSwitching::SameDirection, ps(100.0), ps(20.0), 1.8)
                        .unwrap(),
                )
                .unwrap(),
            )
            .input_slew(ps(100.0))
            .build()
            .unwrap(),
        )
        .unwrap();

    assert_eq!(line_report.delay, tree_report.delay);
    assert_eq!(line_report.slew, tree_report.slew);
    assert_eq!(line_report.delay, bus_report.delay);
    assert_eq!(line_report.slew, bus_report.slew);
    assert_eq!(line_report.used_two_ramp, tree_report.used_two_ramp);
}

/// A genuinely coupled bus must show the aggressor in the victim's far-end
/// timing through the facade: opposite-direction switching pushes the victim
/// out relative to same-direction switching, and a quiet aggressor couples
/// visible noise.
#[test]
fn coupled_bus_reports_nonzero_crosstalk_delta() {
    let line = paper_line();
    let c_load = ff(10.0);
    let bus = CoupledBus::symmetric(line, pf(0.5), nh(1.0), c_load);
    let engine = TimingEngine::new(EngineConfig::fast_for_tests());
    let far_opts = FarEndOptions {
        segments: 12,
        time_step: ps(1.0),
        ..FarEndOptions::default()
    };

    let analyze = |switching| {
        let load = CoupledBusLoad::new(
            bus,
            AggressorSpec::new(switching, ps(100.0), ps(20.0), 1.8).unwrap(),
        )
        .unwrap();
        let report = engine
            .analyze(
                &Stage::builder(synthetic_cell_75x(), load.clone())
                    .input_slew(ps(100.0))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        (report, load)
    };

    let (same_report, same_load) = analyze(AggressorSwitching::SameDirection);
    let (opp_report, opp_load) = analyze(AggressorSwitching::OppositeDirection);

    // Analytic Miller reduction already separates the scenarios...
    assert!(opp_report.delay > same_report.delay);

    // ...and the fully coupled far-end simulation shows a real victim delta.
    let same_far = same_report.far_end(&same_load, &far_opts).unwrap();
    let opp_far = opp_report.far_end(&opp_load, &far_opts).unwrap();
    let delta = opp_far.delay_from_input - same_far.delay_from_input;
    assert!(
        delta > ps(5.0),
        "victim push-out {:.1} ps should exceed 5 ps",
        delta * 1e12
    );

    // A quiet aggressor does not switch but picks up coupled noise.
    let (quiet_report, quiet_load) = analyze(AggressorSwitching::Quiet);
    let sinks = quiet_report.far_end_sinks(&quiet_load, &far_opts).unwrap();
    let victim = sinks.iter().find(|s| s.sink == "victim").unwrap();
    let aggressor = sinks.iter().find(|s| s.sink == "aggressor").unwrap();
    assert!(victim.delay_from_input.is_some());
    assert!(aggressor.delay_from_input.is_none());
    assert!(aggressor.peak_noise > 0.01);
}

/// The propagation window must cover the load's own horizon: a late,
/// below-supply aggressor event still gets simulated and measured (against
/// its own swing), and a deep tree's summed flight time is not dropped just
/// because a branching tree has no single wave parameter.
#[test]
fn far_end_window_covers_late_aggressors_and_deep_trees() {
    let engine = TimingEngine::new(EngineConfig::fast_for_tests());
    let far_opts = FarEndOptions {
        segments: 10,
        time_step: ps(1.0),
        ..FarEndOptions::default()
    };

    // Aggressor fires 1.2 ns after t = 0 with a 1.2 V swing (below the
    // 1.8 V supply): it must still be captured and report its own 50% / 10-90%.
    let line = paper_line();
    let bus = CoupledBus::symmetric(line, pf(0.5), nh(1.0), ff(10.0));
    let load = CoupledBusLoad::new(
        bus,
        AggressorSpec::new(
            AggressorSwitching::OppositeDirection,
            ps(100.0),
            ps(1200.0),
            1.2,
        )
        .unwrap(),
    )
    .unwrap();
    let report = engine
        .analyze(
            &Stage::builder(synthetic_cell_75x(), load.clone())
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let sinks = report.far_end_sinks(&load, &far_opts).unwrap();
    let aggressor = sinks.iter().find(|s| s.sink == "aggressor").unwrap();
    let agg_delay = aggressor
        .delay_from_input
        .expect("late aggressor transition must be inside the window");
    assert!(agg_delay > ps(1000.0), "aggressor switches late");
    assert!(aggressor.slew.is_some());
    // The late opposite-direction event kicks the settled victim around.
    let victim = sinks.iter().find(|s| s.sink == "victim").unwrap();
    assert!(victim.delay_from_input.is_some());

    // A chain of three line segments: wave() is None (branching trees have
    // no single Z0), but the summed flight time must still size the window.
    let mut tree = RlcTree::new();
    let a = tree.add_branch(None, line);
    let b = tree.add_branch(Some(a), line);
    let c = tree.add_branch(Some(b), line);
    tree.set_sink(c, "rx", ff(10.0));
    let tree_load = RlcTreeLoad::new(tree).unwrap();
    let tree_report = engine
        .analyze(
            &Stage::builder(synthetic_cell_75x(), tree_load.clone())
                .input_slew(ps(100.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    let rx = &tree_report.far_end_sinks(&tree_load, &far_opts).unwrap()[0];
    assert!(
        rx.delay_from_input.is_some(),
        "deep tree sink must complete"
    );
}
