//! Cross-crate consistency tests between the substrates: the admittance
//! moments must describe the same load the simulator integrates, the
//! extraction must reproduce the paper's published parasitics, and the
//! characterized tables must behave like timing-library tables.

use rlc_charlib::prelude::*;
use rlc_interconnect::prelude::*;
use rlc_moments::prelude::*;
use rlc_spice::prelude::*;
use rlc_spice::testbench::pwl_source_with_rlc_line;

/// The first admittance moment is the total capacitance; charging the same
/// line through an ideal slow ramp in the transient simulator must deliver
/// exactly that charge (current integral) — moments and MNA agree about the
/// load they describe.
#[test]
fn moment_m1_matches_simulated_charge() {
    let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
    let c_load = ff(40.0);
    let moments = distributed_admittance_moments(&line, c_load, 5);
    let vdd = 1.8;

    // Drive the line with a slow ramp so every capacitor ends fully charged.
    let ramp = SourceWaveform::rising_ramp(vdd, 0.0, 2e-9);
    let (ckt, _) = pwl_source_with_rlc_line(
        ramp,
        0.0,
        line.resistance(),
        line.inductance(),
        line.capacitance(),
        24,
        c_load,
    );
    let result = TransientAnalysis::new(TransientOptions::try_new(ps(2.0), 6e-9).unwrap())
        .run(&ckt)
        .unwrap();
    // The source current (SPICE convention: into the + terminal) integrates
    // to -Q where Q is the charge delivered to the line.
    let i = result.vsource_current("VDRV").unwrap();
    let delivered = -i.integral();
    let expected = moments[0] * vdd;
    assert!(
        (delivered - expected).abs() / expected < 0.02,
        "delivered {delivered:.3e} C vs m1*VDD {expected:.3e} C"
    );
}

/// The empirical extractor reproduces every parasitic value published in the
/// paper to within 6 %.
#[test]
fn extraction_matches_every_published_case() {
    let extractor = EmpiricalExtractor::cmos018();
    for case in paper_cases::all_published_parasitics() {
        let line = extractor.extract(&WireGeometry::new(mm(case.length_mm), um(case.width_um)));
        assert!(
            (line.resistance() - case.r_ohms).abs() / case.r_ohms < 0.06,
            "{}",
            case.label
        );
        assert!(
            (line.inductance() - case.l_nh * 1e-9).abs() / (case.l_nh * 1e-9) < 0.06,
            "{}",
            case.label
        );
        assert!(
            (line.capacitance() - case.c_pf * 1e-12).abs() / (case.c_pf * 1e-12) < 0.06,
            "{}",
            case.label
        );
    }
}

/// The pi-model baseline exists for RC-dominated loads but fails (by design)
/// for the paper's inductive lines, while the rational fit handles both.
#[test]
fn pi_model_fails_exactly_where_the_paper_says() {
    let rc_line = RlcLine::new(400.0, nh(0.2), pf(1.5), mm(6.0));
    let rlc_line = RlcLine::new(43.5, nh(3.1), pf(0.66), mm(3.0)); // table 1 row 3

    let rc_moments = distributed_admittance_moments(&rc_line, ff(10.0), 5);
    let rlc_moments = distributed_admittance_moments(&rlc_line, ff(10.0), 5);

    assert!(PiModel::from_moments(&rc_moments).is_ok());
    assert!(PiModel::from_moments(&rlc_moments).is_err());
    assert!(RationalAdmittance::from_moments(&rc_moments).is_ok());
    assert!(RationalAdmittance::from_moments(&rlc_moments).is_ok());
}

/// A characterized table behaves like a timing-library table: delay and
/// transition grow monotonically with load, and the interpolated values are
/// bracketed by the characterized grid points.
#[test]
fn characterized_table_is_monotone_and_interpolates() {
    let cell = DriverCell::characterize(50.0, &CharacterizationGrid::coarse_for_tests()).unwrap();
    let table = cell.table();
    let slew = ps(100.0);
    let loads = table.load_axis().to_vec();
    let mut previous = 0.0;
    for &load in &loads {
        let d = table.delay(slew, load);
        assert!(d > previous, "delay must grow with load");
        previous = d;
    }
    // Interpolated point between two grid loads lies between their values.
    let mid = 0.5 * (loads[0] + loads[1]);
    let d_mid = table.delay(slew, mid);
    assert!(d_mid > table.delay(slew, loads[0]) && d_mid < table.delay(slew, loads[1]));
}

/// Driver strength scaling: on-resistance falls roughly inversely with size,
/// which is what makes wide wires inductive only for large drivers.
#[test]
fn driver_resistance_scales_with_size() {
    let grid = CharacterizationGrid::coarse_for_tests();
    let small = DriverCell::characterize(25.0, &grid).unwrap();
    let large = DriverCell::characterize(100.0, &grid).unwrap();
    let ratio = small.on_resistance() / large.on_resistance();
    assert!(
        ratio > 2.5 && ratio < 6.5,
        "Rs(25X)/Rs(100X) = {ratio:.2} is outside the expected ~4x window"
    );
}
