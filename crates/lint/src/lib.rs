//! # rlc-lint
//!
//! A static circuit-audit pass: graph, structural-rank and numeric lints
//! over [`Circuit`]s and [`NetTopology`]s, run **before** any transient
//! solve. A floating node, a structurally singular MNA stamp or a
//! non-passive element value today surfaces as a cryptic pivot failure, a
//! silent degrade-to-dense or wrong waveforms deep inside a session; the
//! lint pass proves the preconditions the effective-capacitance flow
//! assumes (a well-formed passive RLC load) or rejects the netlist with a
//! typed, located diagnostic instead.
//!
//! Three analysis classes, all purely structural/arithmetic (no
//! factorization, no time stepping):
//!
//! * **Graph checks** over the element list: floating nodes ([`codes::FLOATING_NODE`]),
//!   ground-unreachable components ([`codes::GROUND_UNREACHABLE`]), dangling
//!   two-terminal elements ([`codes::DANGLING_ELEMENT`]), duplicate shorts
//!   ([`codes::DUPLICATE_SHORT`]) and mutual-inductance references to
//!   missing inductors ([`codes::MUTUAL_MISSING_INDUCTOR`]).
//! * **Structural rank** of the DC MNA sparsity pattern via maximum
//!   bipartite matching ([`codes::STRUCTURALLY_SINGULAR`]): a system whose
//!   pattern admits no zero-free diagonal fails *every* factorization, so
//!   it is rejected here with the deficient rows named instead of a runtime
//!   "singular matrix at t = …".
//! * **Numeric sanity**: non-passive values ([`codes::NON_PASSIVE_ELEMENT`]),
//!   overcoupled mutuals ([`codes::OVERCOUPLED_MUTUAL`]), companion-matrix
//!   conditioning vs. the configured time step ([`codes::CONDITIONING_SPREAD`]),
//!   degenerate near-zero elements ([`codes::DEGENERATE_ELEMENT`]) and
//!   sinks shadowed by voltage sources ([`codes::SINK_SHADOWED`]).
//!
//! Every finding is a [`Diagnostic`] with a stable `L0xx` code, a
//! [`Severity`] and a node/element locus. [`LintLevel`] tells enforcement
//! layers (the facade's `AnalysisSession`, the service front-end) what to
//! do with the findings.
//!
//! ```
//! use rlc_lint::{lint_circuit, LintOptions};
//! use rlc_spice::Circuit;
//!
//! let mut ckt = Circuit::new();
//! let stranded = ckt.node("stranded"); // created, never used
//! let _ = stranded;
//! let findings = lint_circuit(&ckt, &LintOptions::default());
//! assert_eq!(findings[0].code, "L001");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};

use rlc_interconnect::NetTopology;
use rlc_numeric::matching::structural_rank;
use rlc_spice::mna::MnaSystem;
use rlc_spice::{Circuit, Element, NodeId};

pub use rlc_numeric::diag::{worst_severity, Diagnostic, Severity};

/// Stable lint codes. Codes are append-only: once shipped, a code keeps its
/// meaning forever (they are part of the service wire contract).
pub mod codes {
    /// `L001` (Error): a node was created but no element touches it. The
    /// solve only succeeds through the `gmin` floor pivot, which also
    /// poisons the sparse kernel's pivot-health gate.
    pub const FLOATING_NODE: &str = "L001";
    /// `L002` (Error): a node (and its connected component) has no element
    /// path to ground — its potential is arbitrary.
    pub const GROUND_UNREACHABLE: &str = "L002";
    /// `L003` (Warning): a resistor/inductor endpoint touches nothing else,
    /// so no current can flow through the element — it is dead weight and
    /// usually a mis-wired net.
    pub const DANGLING_ELEMENT: &str = "L003";
    /// `L004` (Error): two or more voltage sources across the same node
    /// pair — contradictory (or numerically singular, even when the
    /// waveforms agree) branch constraints.
    pub const DUPLICATE_SHORT: &str = "L004";
    /// `L005` (Error): a mutual inductance references a missing inductor
    /// name, or couples an inductor to itself.
    pub const MUTUAL_MISSING_INDUCTOR: &str = "L005";
    /// `L006` (Warning): a topology with no sinks — nothing to measure.
    pub const NO_SINKS: &str = "L006";
    /// `L010` (Error): the DC MNA stamp is structurally singular — no
    /// permutation gives a zero-free diagonal, so every factorization hits
    /// an exactly zero pivot. The locus names the deficient row.
    pub const STRUCTURALLY_SINGULAR: &str = "L010";
    /// `L020` (Error): a non-passive element value (R/L/C not finite and
    /// positive).
    pub const NON_PASSIVE_ELEMENT: &str = "L020";
    /// `L021` (Error): a mutual inductance implying a coupling coefficient
    /// `k >= 1` — the inductance matrix loses positive definiteness.
    pub const OVERCOUPLED_MUTUAL: &str = "L021";
    /// `L022` (Warning): the companion-matrix conductance spread at the
    /// configured time step exceeds `1e12` — the transient factorization
    /// will be poorly conditioned at that step size.
    pub const CONDITIONING_SPREAD: &str = "L022";
    /// `L023` (Warning): a degenerate near-zero element value (below the
    /// physical floors `1e-6 Ω` / `1e-18 H` / `1e-21 F`), usually a unit
    /// mistake or a zero-length segment.
    pub const DEGENERATE_ELEMENT: &str = "L023";
    /// `L024` (Warning): a sink node is a terminal of a voltage source —
    /// its waveform is pinned by the source, so measuring there is
    /// meaningless.
    pub const SINK_SHADOWED: &str = "L024";
    /// `L030` (Info): the sparse transient kernel's pivot-health gate
    /// rejected the factorization and the run silently degraded to the
    /// dense factor-once kernel. Emitted by the facade, not the static
    /// pass.
    pub const SPARSE_DEGRADED: &str = "L030";
    /// `L040` (Error): a variation-spec scale field is not finite/positive
    /// (emitted by `rlc_spice::sweep::VariationSpec::diagnostics`).
    pub const VARIATION_FIELD: &str = "L040";
    /// `L041` (Error): a variation corner's scale factors pushed a compiled
    /// element table value non-passive (emitted per matrix group by
    /// `VariationSweep`).
    pub const VARIATION_NON_PASSIVE: &str = "L041";

    /// Every shipped code with its fixed severity label and one-line
    /// meaning, in code order — the source of truth for the README table
    /// and the service's code listing.
    pub const ALL: &[(&str, &str, &str)] = &[
        (FLOATING_NODE, "error", "node has no incident elements"),
        (GROUND_UNREACHABLE, "error", "no element path to ground"),
        (
            DANGLING_ELEMENT,
            "warning",
            "R/L endpoint touches nothing else",
        ),
        (
            DUPLICATE_SHORT,
            "error",
            "parallel voltage sources across one node pair",
        ),
        (
            MUTUAL_MISSING_INDUCTOR,
            "error",
            "mutual inductance references a missing/self inductor",
        ),
        (NO_SINKS, "warning", "topology has no sinks to measure"),
        (
            STRUCTURALLY_SINGULAR,
            "error",
            "DC MNA stamp is structurally singular",
        ),
        (
            NON_PASSIVE_ELEMENT,
            "error",
            "R/L/C value not finite and positive",
        ),
        (
            OVERCOUPLED_MUTUAL,
            "error",
            "mutual coupling coefficient k >= 1",
        ),
        (
            CONDITIONING_SPREAD,
            "warning",
            "companion conductance spread > 1e12 at the configured step",
        ),
        (
            DEGENERATE_ELEMENT,
            "warning",
            "element value below physical floor",
        ),
        (
            SINK_SHADOWED,
            "warning",
            "sink node pinned by a voltage source",
        ),
        (
            SPARSE_DEGRADED,
            "info",
            "sparse kernel degraded to dense factor-once",
        ),
        (
            VARIATION_FIELD,
            "error",
            "variation scale field not finite/positive",
        ),
        (
            VARIATION_NON_PASSIVE,
            "error",
            "variation corner pushed an element non-passive",
        ),
    ];
}

/// What an enforcement layer should do with lint findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// Do not run the lint pass at all.
    Off,
    /// Run the pass and attach findings to reports, but never reject work.
    Warn,
    /// Run the pass, attach findings, and reject work that carries any
    /// Error-severity finding (the default).
    #[default]
    Deny,
}

impl LintLevel {
    /// `true` when the pass should run at all.
    pub fn enabled(self) -> bool {
        self != LintLevel::Off
    }

    /// `true` when `diagnostics` should cause the work to be rejected under
    /// this level: only `Deny` rejects, and only on Error severity.
    pub fn rejects(self, diagnostics: &[Diagnostic]) -> bool {
        self == LintLevel::Deny && worst_severity(diagnostics) == Some(Severity::Error)
    }
}

/// Conductance-spread threshold for [`codes::CONDITIONING_SPREAD`].
pub const CONDITIONING_SPREAD_LIMIT: f64 = 1e12;

/// Physical floors for [`codes::DEGENERATE_ELEMENT`]: values strictly below
/// these are almost certainly unit mistakes or zero-length segments.
pub const MIN_RESISTANCE: f64 = 1e-6;
/// Inductance floor (henries); see [`MIN_RESISTANCE`].
pub const MIN_INDUCTANCE: f64 = 1e-18;
/// Capacitance floor (farads); see [`MIN_RESISTANCE`].
pub const MIN_CAPACITANCE: f64 = 1e-21;

/// Context for a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// The transient step the circuit will be simulated with; enables the
    /// companion-conditioning check ([`codes::CONDITIONING_SPREAD`]).
    pub time_step: Option<f64>,
    /// Named measurement (sink) nodes; enables the shadowed-sink check
    /// ([`codes::SINK_SHADOWED`]).
    pub sinks: Vec<(String, NodeId)>,
}

impl LintOptions {
    /// Empty context: graph, structural and value checks only.
    pub fn new() -> Self {
        LintOptions::default()
    }

    /// Sets the intended transient time step (builder style).
    pub fn with_time_step(mut self, h: f64) -> Self {
        self.time_step = Some(h);
        self
    }

    /// Sets the measurement sinks (builder style).
    pub fn with_sinks(mut self, sinks: Vec<(String, NodeId)>) -> Self {
        self.sinks = sinks;
        self
    }
}

/// Runs the full static audit over a circuit. Findings come out in a
/// deterministic order (graph checks, then structural rank, then numeric
/// sanity), each with a stable code from [`codes`] and a node/element
/// locus. An empty result is a clean bill of health.
pub fn lint_circuit(circuit: &Circuit, options: &LintOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    graph_checks(circuit, &mut out);
    let mutuals_ok = !out.iter().any(|d| d.code == codes::MUTUAL_MISSING_INDUCTOR);
    if mutuals_ok {
        // `MnaSystem::compile` resolves mutual references by name and
        // cannot proceed past a dangling one, so the structural pass only
        // runs once L005 is clean.
        structural_checks(circuit, &mut out);
    }
    numeric_checks(circuit, options, &mut out);
    out
}

/// Lints a net topology by synthesizing it into a circuit (the same
/// synthesis path the simulation backends use) and auditing that, plus
/// topology-level checks ([`codes::NO_SINKS`]). `time_step` feeds the
/// conditioning check; sink nodes are taken from the synthesis.
pub fn lint_topology(topology: &NetTopology, time_step: Option<f64>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if topology.num_sinks() == 0 {
        out.push(Diagnostic::warning(
            codes::NO_SINKS,
            "",
            "topology has no sinks: nothing to measure at the far end",
        ));
    }
    let mut ckt = Circuit::new();
    let mut sinks = Vec::new();
    match topology {
        NetTopology::Tree(tree) => {
            if tree.num_branches() == 0 {
                // An empty tree cannot be synthesized; the NO_SINKS warning
                // above already covers it.
                return out;
            }
            let near = ckt.node("near");
            for sink in tree.add_to_circuit(&mut ckt, near, 8, 0.0, "net") {
                sinks.push((sink.name, sink.node));
            }
        }
        NetTopology::CoupledBus(bus) => {
            let v_near = ckt.node("v_near");
            let a_near = ckt.node("a_near");
            let (v_far, a_far) = bus.add_to_circuit(&mut ckt, v_near, a_near, 8, 0.0, 0.0, "bus");
            sinks.push(("victim_far".to_string(), v_far));
            sinks.push(("aggressor_far".to_string(), a_far));
        }
    }
    let mut opts = LintOptions::new().with_sinks(sinks);
    opts.time_step = time_step;
    out.extend(lint_circuit(&ckt, &opts));
    out
}

/// Graph checks: L001–L005.
fn graph_checks(circuit: &Circuit, out: &mut Vec<Diagnostic>) {
    let n = circuit.num_nodes();
    // Per-node incident element count and adjacency (over every element
    // kind: for connectivity purposes a capacitor conducts — the companion
    // model does — and a MOSFET joins all three terminals).
    let mut degree = vec![0usize; n];
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in circuit.elements() {
        let nodes = e.nodes();
        for &a in &nodes {
            degree[a.index()] += 1;
        }
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                adjacency[a.index()].push(b.index());
                adjacency[b.index()].push(a.index());
            }
        }
    }

    // L001: created-but-unused nodes.
    for (k, &deg) in degree.iter().enumerate().take(n).skip(1) {
        if deg == 0 {
            out.push(Diagnostic::error(
                codes::FLOATING_NODE,
                circuit.node_name(NodeId::from_index(k)),
                "node has no incident elements; only the gmin floor keeps its pivot nonzero",
            ));
        }
    }

    // L002: components (of nodes that *do* carry elements) disconnected
    // from ground.
    let mut reached = vec![false; n];
    let mut stack = vec![0usize];
    reached[0] = true;
    while let Some(k) = stack.pop() {
        for &other in &adjacency[k] {
            if !reached[other] {
                reached[other] = true;
                stack.push(other);
            }
        }
    }
    for k in 1..n {
        if degree[k] > 0 && !reached[k] {
            out.push(Diagnostic::error(
                codes::GROUND_UNREACHABLE,
                circuit.node_name(NodeId::from_index(k)),
                "no element path connects this node's component to ground",
            ));
        }
    }

    // L003: R/L endpoints of degree 1 (the element's own contribution) —
    // no closed loop, so no current can ever flow through the element.
    for e in circuit.elements() {
        if let Element::Resistor { name, a, b, .. } | Element::Inductor { name, a, b, .. } = e {
            for &end in &[*a, *b] {
                if !end.is_ground() && degree[end.index()] == 1 {
                    out.push(Diagnostic::warning(
                        codes::DANGLING_ELEMENT,
                        name.clone(),
                        format!(
                            "endpoint `{}` touches nothing else: no current can flow",
                            circuit.node_name(end)
                        ),
                    ));
                }
            }
        }
    }

    // L004: parallel voltage sources across one (unordered) node pair.
    let mut shorts: HashMap<(usize, usize), Vec<&str>> = HashMap::new();
    for e in circuit.elements() {
        if let Element::VoltageSource { name, pos, neg, .. } = e {
            let key = (pos.index().min(neg.index()), pos.index().max(neg.index()));
            shorts.entry(key).or_default().push(name);
        }
    }
    let mut dup: Vec<_> = shorts
        .into_iter()
        .filter(|(_, names)| names.len() > 1)
        .collect();
    dup.sort_unstable_by_key(|(key, _)| *key);
    for ((a, b), names) in dup {
        out.push(Diagnostic::error(
            codes::DUPLICATE_SHORT,
            names.join(", "),
            format!(
                "{} voltage sources in parallel between `{}` and `{}`: \
                 redundant branch constraints make the system singular",
                names.len(),
                circuit.node_name(NodeId::from_index(a)),
                circuit.node_name(NodeId::from_index(b)),
            ),
        ));
    }

    // L005: mutual inductances referencing missing (or self) inductors.
    let inductor_names: HashSet<&str> = circuit
        .elements()
        .iter()
        .filter_map(|e| match e {
            Element::Inductor { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    for e in circuit.elements() {
        if let Element::MutualInductance {
            name,
            inductor_a,
            inductor_b,
            ..
        } = e
        {
            for wanted in [inductor_a, inductor_b] {
                if !inductor_names.contains(wanted.as_str()) {
                    out.push(Diagnostic::error(
                        codes::MUTUAL_MISSING_INDUCTOR,
                        name.clone(),
                        format!("references inductor `{wanted}`, which does not exist"),
                    ));
                }
            }
            if inductor_a == inductor_b {
                out.push(Diagnostic::error(
                    codes::MUTUAL_MISSING_INDUCTOR,
                    name.clone(),
                    format!("couples inductor `{inductor_a}` to itself"),
                ));
            }
        }
    }
}

/// Structural-rank checks: L010.
fn structural_checks(circuit: &Circuit, out: &mut Vec<Diagnostic>) {
    // Pre-pass: a branch element (vsource/inductor) with both terminals on
    // one node stamps a branch row whose entries cancel to zero — the
    // sparsity pattern still shows a nonzero there, so the matching below
    // cannot see it. Catch it directly.
    let mut degenerate_branches: HashSet<&str> = HashSet::new();
    for e in circuit.elements() {
        if e.needs_branch_current() {
            if let [a, b] = e.nodes()[..] {
                if a == b {
                    degenerate_branches.insert(e.name());
                    out.push(Diagnostic::error(
                        codes::STRUCTURALLY_SINGULAR,
                        e.name(),
                        format!(
                            "both terminals on `{}`: the branch constraint row is identically \
                             zero, so the DC system is singular",
                            circuit.node_name(a)
                        ),
                    ));
                }
            }
        }
    }

    let system = MnaSystem::compile(circuit);
    let n = system.num_unknowns();
    if n == 0 {
        return;
    }
    let rank = structural_rank(n, &system.dc_stamp_pattern());
    for &row in &rank.unmatched_rows {
        let label = circuit.unknown_label(row);
        // Skip rows the degenerate-branch pre-pass already reported.
        if degenerate_branches
            .iter()
            .any(|name| label == format!("branch current of `{name}`"))
        {
            continue;
        }
        out.push(Diagnostic::error(
            codes::STRUCTURALLY_SINGULAR,
            label,
            format!(
                "MNA row unmatched in the maximum bipartite matching (structural rank {} of {}): \
                 every factorization of this system hits a zero pivot",
                rank.rank, rank.dim
            ),
        ));
    }
}

/// Numeric sanity checks: L020–L024.
fn numeric_checks(circuit: &Circuit, options: &LintOptions, out: &mut Vec<Diagnostic>) {
    let mut inductances: HashMap<&str, f64> = HashMap::new();
    for e in circuit.elements() {
        if let Element::Inductor { name, henries, .. } = e {
            inductances.insert(name, *henries);
        }
    }

    // Conductance scales present in the companion stamp, for L022.
    let mut scales: Vec<(f64, String)> = Vec::new();

    for e in circuit.elements() {
        match e {
            Element::Resistor { name, ohms, .. } => {
                if !(ohms.is_finite() && *ohms > 0.0) {
                    out.push(non_passive(name, "resistance", *ohms, "Ω"));
                } else {
                    if *ohms < MIN_RESISTANCE {
                        out.push(degenerate(name, "resistance", *ohms, MIN_RESISTANCE, "Ω"));
                    }
                    scales.push((1.0 / ohms, format!("1/R of `{name}`")));
                }
            }
            Element::Capacitor { name, farads, .. } => {
                if !(farads.is_finite() && *farads > 0.0) {
                    out.push(non_passive(name, "capacitance", *farads, "F"));
                } else {
                    if *farads < MIN_CAPACITANCE {
                        out.push(degenerate(
                            name,
                            "capacitance",
                            *farads,
                            MIN_CAPACITANCE,
                            "F",
                        ));
                    }
                    if let Some(h) = options.time_step {
                        scales.push((farads / h, format!("C/h of `{name}`")));
                    }
                }
            }
            Element::Inductor { name, henries, .. } => {
                if !(henries.is_finite() && *henries > 0.0) {
                    out.push(non_passive(name, "inductance", *henries, "H"));
                } else {
                    if *henries < MIN_INDUCTANCE {
                        out.push(degenerate(
                            name,
                            "inductance",
                            *henries,
                            MIN_INDUCTANCE,
                            "H",
                        ));
                    }
                    if let Some(h) = options.time_step {
                        scales.push((henries / h, format!("L/h of `{name}`")));
                    }
                }
            }
            Element::MutualInductance {
                name,
                inductor_a,
                inductor_b,
                henries,
            } => {
                let (la, lb) = (
                    inductances.get(inductor_a.as_str()).copied(),
                    inductances.get(inductor_b.as_str()).copied(),
                );
                if let (Some(la), Some(lb)) = (la, lb) {
                    if la > 0.0 && lb > 0.0 && inductor_a != inductor_b {
                        let k2 = henries * henries / (la * lb);
                        if !k2.is_finite() || k2 >= 1.0 {
                            out.push(Diagnostic::error(
                                codes::OVERCOUPLED_MUTUAL,
                                name.clone(),
                                format!(
                                    "coupling coefficient k = {:.4} >= 1 between `{inductor_a}` \
                                     and `{inductor_b}`: the inductance matrix is not positive \
                                     definite",
                                    k2.sqrt()
                                ),
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // L022: companion conductance spread at the configured step. Branch
    // voltage rows contribute unit entries, so anchor the spread at 1.
    if options.time_step.is_some() && scales.len() > 1 {
        scales.push((1.0, "branch constraint unit entries".to_string()));
        let (min_g, min_who) = scales
            .iter()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(g, w)| (*g, w.clone()))
            .expect("non-empty");
        let (max_g, max_who) = scales
            .iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(g, w)| (*g, w.clone()))
            .expect("non-empty");
        if max_g / min_g > CONDITIONING_SPREAD_LIMIT {
            out.push(Diagnostic::warning(
                codes::CONDITIONING_SPREAD,
                "",
                format!(
                    "companion conductance spread {:.1e} at the configured step ({max_who} = \
                     {max_g:.3e} S vs {min_who} = {min_g:.3e} S): the transient factorization \
                     will be poorly conditioned; adjust the time step or element values",
                    max_g / min_g
                ),
            ));
        }
    }

    // L024: sinks pinned by voltage sources.
    for (sink_name, sink_node) in &options.sinks {
        for e in circuit.elements() {
            if let Element::VoltageSource { name, pos, neg, .. } = e {
                if pos == sink_node || neg == sink_node {
                    out.push(Diagnostic::warning(
                        codes::SINK_SHADOWED,
                        sink_name.clone(),
                        format!(
                            "sink node `{}` is a terminal of voltage source `{name}`: its \
                             waveform is pinned by the source, not the net",
                            circuit.node_name(*sink_node)
                        ),
                    ));
                }
            }
        }
    }
}

fn non_passive(name: &str, kind: &str, value: f64, unit: &str) -> Diagnostic {
    Diagnostic::error(
        codes::NON_PASSIVE_ELEMENT,
        name,
        format!("{kind} must be finite and positive, got {value:e} {unit}"),
    )
}

fn degenerate(name: &str, kind: &str, value: f64, floor: f64, unit: &str) -> Diagnostic {
    Diagnostic::warning(
        codes::DEGENERATE_ELEMENT,
        name,
        format!(
            "{kind} {value:e} {unit} is below the physical floor {floor:e} {unit}: \
             likely a unit mistake or a zero-length segment"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_spice::SourceWaveform;

    #[test]
    fn clean_rc_stage_lints_clean() {
        let mut ckt = Circuit::new();
        let near = ckt.node("near");
        let far = ckt.node("far");
        ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", near, far, 100.0);
        ckt.add_capacitor("C1", far, Circuit::GROUND, 1e-13);
        let opts = LintOptions::new()
            .with_time_step(1e-12)
            .with_sinks(vec![("far".to_string(), far)]);
        assert!(lint_circuit(&ckt, &opts).is_empty());
    }

    #[test]
    fn lint_level_rejects_only_errors_under_deny() {
        let warn_only = vec![Diagnostic::warning(codes::DANGLING_ELEMENT, "R1", "x")];
        let with_error = vec![Diagnostic::error(codes::FLOATING_NODE, "n", "y")];
        assert!(!LintLevel::Deny.rejects(&warn_only));
        assert!(LintLevel::Deny.rejects(&with_error));
        assert!(!LintLevel::Warn.rejects(&with_error));
        assert!(!LintLevel::Off.enabled());
    }

    #[test]
    fn codes_table_is_consistent() {
        let codes: Vec<&str> = codes::ALL.iter().map(|(c, _, _)| *c).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "duplicate lint codes");
        assert!(codes.len() >= 10);
    }
}
