//! Seeded-defect suite: one deliberately broken circuit per lint code,
//! pinning the code **and** the locus each defect is reported at, plus a
//! clean-bill pass over every shipped example topology and every published
//! paper case. Codes are wire-stable; if one of these tests breaks, a code's
//! meaning changed — which the append-only contract forbids.

use rlc_interconnect::paper_cases;
use rlc_interconnect::{CoupledBus, NetTopology, RlcLine, RlcTree};
use rlc_lint::{codes, lint_circuit, lint_topology, LintOptions, Severity};
use rlc_spice::{
    Circuit, Element, NodeId, SourceWaveform, TransientOptions, VariationSpec, VariationSweep,
};

/// A minimal clean driven RC stage: V1 -> R1 -> C1. Every defect below is
/// seeded on top of this (or replaces parts of it), so each test isolates
/// exactly one broken construct.
fn clean_stage() -> (Circuit, NodeId, NodeId) {
    let mut ckt = Circuit::new();
    let near = ckt.node("near");
    let far = ckt.node("far");
    ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(1.0));
    ckt.add_resistor("R1", near, far, 100.0);
    ckt.add_capacitor("C1", far, Circuit::GROUND, 1e-13);
    (ckt, near, far)
}

fn codes_of(findings: &[rlc_lint::Diagnostic]) -> Vec<&str> {
    findings.iter().map(|d| d.code.as_str()).collect()
}

/// The one finding with the given code; panics (with the full list) when the
/// code is absent or ambiguous where the test expects exactly one.
fn only<'a>(findings: &'a [rlc_lint::Diagnostic], code: &str) -> &'a rlc_lint::Diagnostic {
    let hits: Vec<_> = findings.iter().filter(|d| d.code == code).collect();
    assert_eq!(hits.len(), 1, "expected exactly one {code} in {findings:?}");
    hits[0]
}

#[test]
fn l001_floating_node_names_the_stranded_node() {
    let (mut ckt, _, _) = clean_stage();
    let _stranded = ckt.node("stranded");
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let d = only(&findings, codes::FLOATING_NODE);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.locus, "stranded");
}

#[test]
fn l002_ground_unreachable_island_is_located() {
    let (mut ckt, _, _) = clean_stage();
    // An RC island: carries elements, but no path of any kind to ground.
    let a = ckt.node("isl_a");
    let b = ckt.node("isl_b");
    ckt.add_resistor("R_isl", a, b, 50.0);
    ckt.add_capacitor("C_isl", a, b, 1e-14);
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let hits: Vec<_> = findings
        .iter()
        .filter(|d| d.code == codes::GROUND_UNREACHABLE)
        .collect();
    assert_eq!(hits.len(), 2, "both island nodes are unreachable");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
    let loci: Vec<&str> = hits.iter().map(|d| d.locus.as_str()).collect();
    assert!(loci.contains(&"isl_a") && loci.contains(&"isl_b"));
}

#[test]
fn l003_dangling_resistor_endpoint_names_the_element() {
    let (mut ckt, _, far) = clean_stage();
    let stub = ckt.node("stub");
    ckt.add_resistor("R_stub", far, stub, 25.0);
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let d = only(&findings, codes::DANGLING_ELEMENT);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.locus, "R_stub");
    assert!(d.message.contains("stub"));
}

#[test]
fn l004_parallel_vsources_name_both_sources() {
    let (mut ckt, near, _) = clean_stage();
    // Same unordered node pair, even with identical waveforms: the two
    // branch constraints are redundant and the system is singular.
    ckt.add_vsource("V2", Circuit::GROUND, near, SourceWaveform::dc(-1.0));
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let d = only(&findings, codes::DUPLICATE_SHORT);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.locus, "V1, V2");
    assert!(d.message.contains("near"));
}

#[test]
fn l005_mutual_referencing_missing_or_self_inductor() {
    let (mut ckt, near, far) = clean_stage();
    ckt.add_inductor("L1", near, far, 1e-9);
    ckt.add_mutual_inductance("K_missing", "L1", "L_ghost", 1e-10);
    ckt.add_mutual_inductance("K_self", "L1", "L1", 1e-10);
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let hits: Vec<_> = findings
        .iter()
        .filter(|d| d.code == codes::MUTUAL_MISSING_INDUCTOR)
        .collect();
    assert_eq!(hits.len(), 2);
    assert!(hits
        .iter()
        .any(|d| d.locus == "K_missing" && d.message.contains("L_ghost")));
    assert!(hits
        .iter()
        .any(|d| d.locus == "K_self" && d.message.contains("itself")));
    // The structural pass is gated off (MnaSystem::compile cannot resolve
    // the dangling reference), so no spurious L010 rides along.
    assert!(!codes_of(&findings).contains(&codes::STRUCTURALLY_SINGULAR));
}

#[test]
fn l006_topology_without_sinks_warns() {
    let topology = NetTopology::Tree(RlcTree::new());
    let findings = lint_topology(&topology, Some(1e-12));
    let d = only(&findings, codes::NO_SINKS);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.locus, "");
}

#[test]
fn l010_degenerate_branch_row_is_structurally_singular() {
    let (mut ckt, _, far) = clean_stage();
    // Both terminals on one node: the branch constraint row cancels to
    // exactly zero even though its sparsity pattern looks populated.
    ckt.add_vsource("V_loop", far, far, SourceWaveform::dc(0.0));
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let d = only(&findings, codes::STRUCTURALLY_SINGULAR);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.locus, "V_loop");
    assert!(d.message.contains("far"));
}

#[test]
fn l010_unmatched_mna_row_names_the_unknown() {
    let (mut ckt, near, _) = clean_stage();
    // A second source in parallel leaves one branch row unmatched in the
    // maximum bipartite matching over the DC stamp pattern.
    ckt.add_vsource("V2", near, Circuit::GROUND, SourceWaveform::dc(1.0));
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let hits: Vec<_> = findings
        .iter()
        .filter(|d| d.code == codes::STRUCTURALLY_SINGULAR)
        .collect();
    assert!(!hits.is_empty(), "no L010 in {findings:?}");
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
    assert!(hits[0].locus.contains("branch current"));
    assert!(hits[0].message.contains("structural rank"));
}

#[test]
fn l020_non_passive_element_value() {
    let (mut ckt, near, far) = clean_stage();
    // add_resistor asserts on non-positive values, which is exactly the
    // hole the lint covers for circuits assembled element by element.
    ckt.add_element(Element::Resistor {
        name: "R_neg".to_string(),
        a: near,
        b: far,
        ohms: -10.0,
    });
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let d = only(&findings, codes::NON_PASSIVE_ELEMENT);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.locus, "R_neg");
    assert!(d.message.contains("resistance"));
}

#[test]
fn l021_overcoupled_mutual_reports_k() {
    let (mut ckt, near, far) = clean_stage();
    let mid = ckt.node("mid");
    ckt.add_inductor("L1", near, mid, 1e-9);
    ckt.add_inductor("L2", mid, far, 1e-9);
    // M^2 >= L1 * L2  =>  k >= 1.
    ckt.add_mutual_inductance("K1", "L1", "L2", 2e-9);
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let d = only(&findings, codes::OVERCOUPLED_MUTUAL);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.locus, "K1");
    assert!(d.message.contains(">= 1"));
}

#[test]
fn l022_conditioning_spread_fires_only_with_a_time_step() {
    let mut ckt = Circuit::new();
    let near = ckt.node("near");
    let far = ckt.node("far");
    ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(1.0));
    // 1/R = 1e-9 S vs C/h = 1e6 S: fifteen decades of conductance spread.
    ckt.add_resistor("R_huge", near, far, 1e9);
    ckt.add_capacitor("C_big", far, Circuit::GROUND, 1e-6);
    let with_step = lint_circuit(&ckt, &LintOptions::new().with_time_step(1e-12));
    let d = only(&with_step, codes::CONDITIONING_SPREAD);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.locus, "");
    assert!(d.message.contains("C/h of `C_big`") && d.message.contains("1/R of `R_huge`"));
    // Without a declared step the check cannot run.
    assert!(lint_circuit(&ckt, &LintOptions::new()).is_empty());
}

#[test]
fn l023_degenerate_value_below_physical_floor() {
    let (mut ckt, near, far) = clean_stage();
    ckt.add_resistor("R_zero", near, far, 1e-9);
    ckt.add_capacitor("C_zero", far, Circuit::GROUND, 1e-22);
    let findings = lint_circuit(&ckt, &LintOptions::new());
    let hits: Vec<_> = findings
        .iter()
        .filter(|d| d.code == codes::DEGENERATE_ELEMENT)
        .collect();
    assert_eq!(hits.len(), 2);
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
    assert!(hits
        .iter()
        .any(|d| d.locus == "R_zero" && d.message.contains("floor")));
    assert!(hits.iter().any(|d| d.locus == "C_zero"));
}

#[test]
fn l024_sink_pinned_by_voltage_source() {
    let (ckt, near, far) = clean_stage();
    let options = LintOptions::new().with_sinks(vec![
        ("drv_out".to_string(), near), // pinned by V1
        ("rx".to_string(), far),       // a real measurement point
    ]);
    let findings = lint_circuit(&ckt, &options);
    let d = only(&findings, codes::SINK_SHADOWED);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.locus, "drv_out");
    assert!(d.message.contains("V1"));
}

#[test]
fn l040_variation_spec_reports_every_bad_field_at_once() {
    let spec = VariationSpec::nominal()
        .with_r_scale(-1.0)
        .with_c_scale(f64::NAN);
    let findings = spec.diagnostics();
    // One violation per bad field, collected — not first-failure-wins. The
    // negative r_scale also poisons the derived effective_r_scale.
    assert!(
        findings.len() >= 3,
        "collected list too short: {findings:?}"
    );
    assert!(findings
        .iter()
        .all(|d| d.code == codes::VARIATION_FIELD && d.severity == Severity::Error));
    let loci: Vec<&str> = findings.iter().map(|d| d.locus.as_str()).collect();
    assert!(loci.contains(&"r_scale"));
    assert!(loci.contains(&"c_scale"));
    assert!(loci.contains(&"effective_r_scale"));
}

#[test]
fn l041_corner_that_underflows_a_conductance_is_rejected_per_group() {
    let mut ckt = Circuit::new();
    let near = ckt.node("near");
    let far = ckt.node("far");
    ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(1.0));
    ckt.add_resistor("R1", near, far, 1e20);
    ckt.add_capacitor("C1", far, Circuit::GROUND, 1e-13);
    // 1/R = 1e-20 S divided by an r_scale of 1e308 underflows to exactly
    // zero: the corner's compiled table is non-passive although the spec
    // itself validates.
    let bad = VariationSpec::nominal().with_r_scale(1e308);
    assert!(bad.diagnostics().is_empty(), "the spec itself is valid");
    let options = TransientOptions::try_new(1e-12, 1e-11).unwrap();
    let err = VariationSweep::new(options)
        .run(&ckt, &[far], &[bad])
        .unwrap_err();
    let message = err.to_string();
    assert!(message.contains(codes::VARIATION_NON_PASSIVE), "{message}");
    assert!(message.contains("matrix group 0"), "{message}");
}

#[test]
fn clean_bill_for_every_published_paper_case() {
    for parasitics in paper_cases::all_published_parasitics() {
        let line = RlcLine::new(
            parasitics.r_ohms,
            parasitics.l_nh * 1e-9,
            parasitics.c_pf * 1e-12,
            parasitics.length_mm * 1e-3,
        );
        let topology = NetTopology::single_line(line, 10e-15);
        let findings = lint_topology(&topology, Some(1e-12));
        assert!(
            findings.is_empty(),
            "{} should lint clean, got {findings:?}",
            parasitics.label
        );
    }
}

#[test]
fn clean_bill_for_the_shipped_example_topologies() {
    // The flagship 5 mm line of the quickstart/far-end examples.
    let line = RlcLine::new(72.44, 5.14e-9, 1.10e-12, 5e-3);

    // A three-sink routing tree like `path_timing.rs` builds.
    let mut tree = RlcTree::new();
    let trunk = tree.add_branch(None, line);
    let short = RlcLine::new(20.0, 1e-9, 0.3e-12, 1e-3);
    for (k, name) in ["rx0", "rx1", "rx2"].iter().enumerate() {
        let b = tree.add_branch(Some(trunk), short);
        tree.set_sink(b, name, 10e-15 + k as f64 * 5e-15);
    }
    let findings = lint_topology(&NetTopology::Tree(tree), Some(1e-12));
    assert!(findings.is_empty(), "tree should lint clean: {findings:?}");

    // The crosstalk bus of `crosstalk_bus.rs`: k = 0.2, well below 1.
    let bus = CoupledBus::symmetric(line, 0.4e-12, 1.028e-9, 10e-15);
    let findings = lint_topology(&NetTopology::CoupledBus(bus), Some(1e-12));
    assert!(findings.is_empty(), "bus should lint clean: {findings:?}");
}

#[test]
fn every_shipped_code_has_a_fixed_severity_and_class() {
    // The table is the README's source of truth; keep it exhaustive and
    // keep each class represented.
    let codes: Vec<&str> = codes::ALL.iter().map(|(c, _, _)| *c).collect();
    assert!(codes.len() >= 10);
    let graph = ["L001", "L002", "L003", "L004", "L005", "L006"];
    let structural = ["L010"];
    let numeric = ["L020", "L021", "L022", "L023", "L024"];
    for class in [&graph[..], &structural[..], &numeric[..]] {
        for code in class {
            assert!(codes.contains(code), "{code} missing from codes::ALL");
        }
    }
}
