//! Sparse-kernel parity tests: the min-degree sparse LU fast path must
//! reproduce the dense kernels within 1e-9 V on every probed node, for both
//! integration methods, on the large linear workloads it exists for — a long
//! RLC ladder, a 3-sink RLC tree, and a capacitively/inductively coupled
//! two-line bus — and it must degrade to dense LU (not to a wrong answer)
//! when the stamp is ill-conditioned.

use rlc_numeric::units::{ff, nh, pf, ps};
use rlc_spice::prelude::*;
use rlc_spice::source::SourceWaveform;

const PARITY_TOLERANCE_V: f64 = 1e-9;

/// Runs `ckt` under the legacy dense kernel and the explicit sparse kernel,
/// checks the sparse run really executed sparsely, and asserts every listed
/// node waveform matches within the parity tolerance for both methods.
fn assert_sparse_parity(label: &str, ckt: &Circuit, nodes: &[&str], time_step: f64, stop: f64) {
    for method in [
        IntegrationMethod::Trapezoidal,
        IntegrationMethod::BackwardEuler,
    ] {
        let dense = TransientAnalysis::new(
            TransientOptions::try_new(time_step, stop)
                .unwrap()
                .with_method(method)
                .with_strategy(KernelStrategy::LegacyFull),
        )
        .run(ckt)
        .unwrap();
        let sparse = TransientAnalysis::new(
            TransientOptions::try_new(time_step, stop)
                .unwrap()
                .with_method(method)
                .with_strategy(KernelStrategy::Sparse),
        )
        .run(ckt)
        .unwrap();
        assert_eq!(
            sparse.strategy(),
            KernelStrategy::Sparse,
            "{label}: sparse run fell back"
        );
        assert_eq!(dense.num_points(), sparse.num_points());
        for node in nodes {
            let a = dense.waveform_by_name(node).unwrap();
            let b = sparse.waveform_by_name(node).unwrap();
            let mut max_dev: f64 = 0.0;
            for (x, y) in a.values().iter().zip(b.values()) {
                max_dev = max_dev.max((x - y).abs());
            }
            assert!(
                max_dev < PARITY_TOLERANCE_V,
                "{label} ({method:?}): node {node} deviates by {max_dev:.3e} V"
            );
        }
    }
}

/// Appends an RLC ladder of `segments` sections after `from`, naming nodes
/// `{prefix}_n{k}`, and returns the far-end node.
#[allow(clippy::too_many_arguments)]
fn stamp_ladder(
    ckt: &mut Circuit,
    from: NodeId,
    r_total: f64,
    l_total: f64,
    c_total: f64,
    segments: usize,
    c_load: f64,
    prefix: &str,
) -> NodeId {
    let n = segments as f64;
    let mut prev = from;
    let mut far = from;
    for k in 0..segments {
        let mid = ckt.node(&format!("{prefix}_m{k}"));
        let node = ckt.node(&format!("{prefix}_n{k}"));
        ckt.add_resistor(&format!("R_{prefix}_{k}"), prev, mid, r_total / n);
        ckt.add_inductor(&format!("L_{prefix}_{k}"), mid, node, l_total / n);
        ckt.add_capacitor(
            &format!("C_{prefix}_{k}"),
            node,
            Circuit::GROUND,
            c_total / n,
        );
        prev = node;
        far = node;
    }
    if c_load > 0.0 {
        ckt.add_capacitor(&format!("CL_{prefix}"), far, Circuit::GROUND, c_load);
    }
    far
}

/// The paper's flagship 5 mm line at 64 segments: 194 MNA unknowns, beyond
/// the auto-sparse threshold, with a stiff RLC companion matrix.
#[test]
fn sparse_ladder_matches_dense() {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    ckt.add_vsource(
        "V1",
        src,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
    );
    stamp_ladder(
        &mut ckt,
        src,
        72.44,
        nh(5.14),
        pf(1.10),
        64,
        ff(10.0),
        "line",
    );
    ckt.set_initial_condition(src, 0.0);
    assert_sparse_parity(
        "ladder-64seg",
        &ckt,
        &["line_n31", "line_n63"],
        ps(2.0),
        ps(600.0),
    );
}

/// A 3-sink RLC routing tree — trunk then an asymmetric double split — so the
/// sparse fill-reducing ordering sees genuine branching structure rather
/// than a pure chain.
#[test]
fn sparse_three_sink_tree_matches_dense() {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    ckt.add_vsource(
        "V1",
        src,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
    );
    let trunk = stamp_ladder(&mut ckt, src, 40.0, nh(2.0), pf(0.5), 8, 0.0, "trunk");
    let split = stamp_ladder(&mut ckt, trunk, 60.0, nh(1.5), pf(0.3), 8, 0.0, "mid");
    stamp_ladder(
        &mut ckt,
        trunk,
        80.0,
        nh(1.0),
        pf(0.25),
        8,
        ff(20.0),
        "sink0",
    );
    stamp_ladder(
        &mut ckt,
        split,
        90.0,
        nh(0.8),
        pf(0.2),
        8,
        ff(12.0),
        "sink1",
    );
    stamp_ladder(
        &mut ckt,
        split,
        90.0,
        nh(0.8),
        pf(0.2),
        8,
        ff(18.0),
        "sink2",
    );
    ckt.set_initial_condition(src, 0.0);
    assert_sparse_parity(
        "tree-3sink",
        &ckt,
        &["sink0_n7", "sink1_n7", "sink2_n7"],
        ps(2.0),
        ps(600.0),
    );
}

/// Victim/aggressor bus: two 24-segment RLC lines tied together by
/// per-segment coupling capacitors and mutual inductances. The off-diagonal
/// coupling stamps break the tridiagonal-ish structure the other fixtures
/// have, which is exactly where a bad ordering or symbolic-reuse bug in the
/// sparse LU would show up.
#[test]
fn sparse_coupled_bus_matches_dense() {
    let mut ckt = Circuit::new();
    let drv_v = ckt.node("drv_v");
    let drv_a = ckt.node("drv_a");
    ckt.add_vsource(
        "VV",
        drv_v,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
    );
    ckt.add_vsource(
        "VA",
        drv_a,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, ps(40.0), ps(80.0)),
    );
    let segments = 24usize;
    stamp_ladder(
        &mut ckt,
        drv_v,
        72.44,
        nh(5.14),
        pf(1.10),
        segments,
        ff(10.0),
        "vic",
    );
    stamp_ladder(
        &mut ckt,
        drv_a,
        72.44,
        nh(5.14),
        pf(1.10),
        segments,
        ff(10.0),
        "agg",
    );
    let cc_total = pf(0.4);
    let m_per_seg = nh(5.14) * 0.3 / segments as f64;
    for k in 0..segments {
        let v = ckt.node(&format!("vic_n{k}"));
        let a = ckt.node(&format!("agg_n{k}"));
        ckt.add_capacitor(&format!("CC{k}"), v, a, cc_total / segments as f64);
        ckt.add_mutual_inductance(
            &format!("K{k}"),
            &format!("L_vic_{k}"),
            &format!("L_agg_{k}"),
            m_per_seg,
        );
    }
    ckt.set_initial_condition(drv_v, 0.0);
    ckt.set_initial_condition(drv_a, 0.0);
    assert_sparse_parity(
        "coupled-bus",
        &ckt,
        &["vic_n23", "agg_n23"],
        ps(2.0),
        ps(600.0),
    );
}

/// An ill-conditioned stamp (floating node carrying only the gmin pivot)
/// must make the explicit sparse request degrade to the dense factor-once
/// kernel — recorded as such — while still producing the dense answer.
#[test]
fn ill_conditioned_stamp_degrades_to_dense() {
    let mut ckt = Circuit::new();
    let src = ckt.node("src");
    ckt.add_vsource(
        "V1",
        src,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
    );
    stamp_ladder(
        &mut ckt,
        src,
        72.44,
        nh(5.14),
        pf(1.10),
        40,
        ff(10.0),
        "line",
    );
    ckt.set_initial_condition(src, 0.0);
    let _floating = ckt.node("floating");

    let opts = TransientOptions::try_new(ps(1.0), ps(400.0))
        .unwrap()
        .with_strategy(KernelStrategy::Sparse);
    let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
    assert_eq!(res.strategy(), KernelStrategy::FactorOnce);
    assert!(
        res.degraded_to_dense(),
        "the silent degrade must be observable (it feeds the L030 lint)"
    );

    let reference = TransientAnalysis::new(
        TransientOptions::try_new(ps(1.0), ps(400.0))
            .unwrap()
            .with_strategy(KernelStrategy::LegacyFull),
    )
    .run(&ckt)
    .unwrap();
    let a = res.waveform_by_name("line_n39").unwrap();
    let b = reference.waveform_by_name("line_n39").unwrap();
    for (x, y) in a.values().iter().zip(b.values()) {
        assert!((x - y).abs() < PARITY_TOLERANCE_V);
    }
}
