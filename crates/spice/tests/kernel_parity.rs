//! Waveform-parity tests: the factor-once LTI fast path and the split-stamp
//! Newton kernels must reproduce the legacy full-reassembly kernel within
//! 1e-9 V on every node, for both integration methods, on the workloads the
//! paper's flow actually runs: an RLC ladder, a pi-load, and a MOSFET driver
//! stage.

use rlc_numeric::units::{ff, nh, pf, ps};
use rlc_spice::prelude::*;
use rlc_spice::source::SourceWaveform;
use rlc_spice::testbench::{
    add_rlc_ladder, inverter_with_cap_load, inverter_with_rlc_line, pwl_source_with_rlc_line,
    InverterSpec, OutputTransition,
};

const PARITY_TOLERANCE_V: f64 = 1e-9;

/// Runs `ckt` under the legacy kernel and the automatic fast path and
/// asserts every listed node waveform matches within the parity tolerance.
fn assert_parity(label: &str, ckt: &Circuit, nodes: &[&str], time_step: f64, stop: f64) {
    for method in [
        IntegrationMethod::Trapezoidal,
        IntegrationMethod::BackwardEuler,
    ] {
        let legacy = TransientAnalysis::new(
            TransientOptions::try_new(time_step, stop)
                .unwrap()
                .with_method(method)
                .with_strategy(KernelStrategy::LegacyFull),
        )
        .run(ckt)
        .unwrap();
        let fast = TransientAnalysis::new(
            TransientOptions::try_new(time_step, stop)
                .unwrap()
                .with_method(method),
        )
        .run(ckt)
        .unwrap();
        assert_eq!(legacy.num_points(), fast.num_points());
        for node in nodes {
            let a = legacy.waveform_by_name(node).unwrap();
            let b = fast.waveform_by_name(node).unwrap();
            let mut max_dev: f64 = 0.0;
            for (x, y) in a.values().iter().zip(b.values()) {
                max_dev = max_dev.max((x - y).abs());
            }
            assert!(
                max_dev < PARITY_TOLERANCE_V,
                "{label} ({method:?}): node {node} deviates by {max_dev:.3e} V"
            );
        }
    }
}

/// Fig4-style RLC ladder driven by an ideal ramp: exercises the factor-once
/// LTI kernel (matrix factorized once, RHS-only per step).
#[test]
fn lti_ladder_matches_legacy() {
    let (ckt, _) = pwl_source_with_rlc_line(
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
        0.0,
        72.44,
        nh(5.14),
        pf(1.10),
        20,
        ff(10.0),
    );
    assert_parity(
        "rlc-ladder",
        &ckt,
        &["out", "line_m10", "line_n19"],
        ps(0.5),
        ps(900.0),
    );
}

/// Pi-load (C1 — R — C2) driven by a ramp source: a second LTI topology with
/// a different matrix structure (no inductor branches).
#[test]
fn pi_load_matches_legacy() {
    let mut ckt = Circuit::new();
    let near = ckt.node("near");
    let far = ckt.node("far");
    ckt.add_vsource(
        "VDRV",
        near,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, ps(10.0), ps(120.0)),
    );
    ckt.add_capacitor("C1", near, Circuit::GROUND, ff(350.0));
    ckt.add_resistor("R1", near, far, 72.44);
    ckt.add_capacitor("C2", far, Circuit::GROUND, ff(350.0));
    ckt.set_initial_condition(near, 0.0);
    ckt.set_initial_condition(far, 0.0);
    assert_parity("pi-load", &ckt, &["near", "far"], ps(0.5), ps(800.0));
}

/// MOSFET driver stage (75X inverter into the paper's 5 mm line): exercises
/// the split-stamp Newton kernel with the Woodbury rank update.
#[test]
fn mosfet_driver_stage_matches_legacy() {
    let spec = InverterSpec::sized_018(75.0);
    let (ckt, _) = inverter_with_rlc_line(
        &spec,
        ps(100.0),
        ps(20.0),
        72.44,
        nh(5.14),
        pf(1.10),
        12,
        ff(10.0),
        OutputTransition::Rising,
    );
    assert_parity(
        "driver-stage",
        &ckt,
        &["in", "out", "vdd", "line_n11"],
        ps(0.5),
        ps(900.0),
    );
}

/// Characterization testbench (inverter into a lumped cap), including the
/// long settled tail where the predictor and eval caches do the most work.
#[test]
fn characterization_point_matches_legacy() {
    let spec = InverterSpec::sized_018(75.0);
    let (ckt, _) = inverter_with_cap_load(
        &spec,
        ps(100.0),
        ps(20.0),
        pf(2.0),
        OutputTransition::Rising,
    );
    assert_parity("char-point", &ckt, &["in", "out", "vdd"], ps(1.0), 2.2e-9);
}

/// A MOSFET-only interior node (no capacitors, gmin-floor diagonal) fails
/// the rank-update conditioning gate, so this exercises the refactorizing
/// split-stamp fallback against the legacy kernel.
#[test]
fn gmin_floor_stack_matches_legacy_via_refactor_fallback() {
    let mut params = rlc_spice::MosfetParams::nmos_018();
    params.c_gate_per_width = 0.0;
    params.c_junction_per_width = 0.0;

    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let d = ckt.node("d");
    let m = ckt.node("m");
    let g = ckt.node("g");
    ckt.add_vsource("VDD", a, Circuit::GROUND, SourceWaveform::dc(1.8));
    ckt.add_vsource(
        "VG",
        g,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, ps(20.0), ps(100.0)),
    );
    ckt.add_resistor("R1", a, d, 500.0);
    ckt.add_capacitor("C1", d, Circuit::GROUND, ff(100.0));
    // Two stacked zero-parasitic NMOS devices: the middle node "m" touches
    // only MOSFETs, so the static matrix has a gmin-only pivot there.
    ckt.add_mosfet("M1", d, g, m, params, 10e-6);
    ckt.add_mosfet("M2", m, g, Circuit::GROUND, params, 10e-6);
    ckt.set_initial_condition(a, 1.8);
    ckt.set_initial_condition(d, 1.8);
    assert_parity("gmin-stack", &ckt, &["d", "m"], ps(1.0), ps(400.0));
}

/// The explicit strategies agree with Auto resolution on their own turf.
#[test]
fn explicit_strategies_match_auto() {
    let (lti, _) = pwl_source_with_rlc_line(
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
        0.0,
        72.44,
        nh(5.14),
        pf(1.10),
        8,
        ff(10.0),
    );
    let auto = TransientAnalysis::new(TransientOptions::try_new(ps(1.0), ps(400.0)).unwrap())
        .run(&lti)
        .unwrap()
        .waveform_by_name("out")
        .unwrap();
    let forced = TransientAnalysis::new(
        TransientOptions::try_new(ps(1.0), ps(400.0))
            .unwrap()
            .with_strategy(KernelStrategy::FactorOnce),
    )
    .run(&lti)
    .unwrap()
    .waveform_by_name("out")
    .unwrap();
    assert_eq!(auto.values(), forced.values());

    let spec = InverterSpec::sized_018(25.0);
    let (stage, _) = inverter_with_cap_load(
        &spec,
        ps(100.0),
        ps(20.0),
        ff(200.0),
        OutputTransition::Rising,
    );
    let auto = TransientAnalysis::new(TransientOptions::try_new(ps(1.0), ps(400.0)).unwrap())
        .run(&stage)
        .unwrap()
        .waveform_by_name("out")
        .unwrap();
    let forced = TransientAnalysis::new(
        TransientOptions::try_new(ps(1.0), ps(400.0))
            .unwrap()
            .with_strategy(KernelStrategy::SplitStamp),
    )
    .run(&stage)
    .unwrap()
    .waveform_by_name("out")
    .unwrap();
    assert_eq!(auto.values(), forced.values());
}

/// `add_rlc_ladder` convenience smoke check for the parity harness itself:
/// the ladder names used above must exist.
#[test]
fn ladder_node_names_are_stable() {
    let mut ckt = Circuit::new();
    let near = ckt.node("out");
    ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(0.0));
    let far = add_rlc_ladder(
        &mut ckt,
        near,
        10.0,
        nh(1.0),
        pf(0.1),
        3,
        ff(1.0),
        0.0,
        "line",
    );
    assert_eq!(ckt.node_name(far), "line_n2");
}
