//! Independent source waveforms.

/// Time-dependent value of an independent voltage or current source.
///
/// ```
/// use rlc_spice::SourceWaveform;
/// let ramp = SourceWaveform::rising_ramp(1.8, 10e-12, 100e-12);
/// assert_eq!(ramp.value_at(0.0), 0.0);
/// assert!((ramp.value_at(60e-12) - 0.9).abs() < 1e-12);
/// assert_eq!(ramp.value_at(1e-9), 1.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Piecewise-linear waveform: `(time, value)` pairs sorted by time.
    /// Before the first point the first value holds; after the last point the
    /// last value holds.
    Pwl(Vec<(f64, f64)>),
    /// Periodic pulse: `initial`, `pulsed`, `delay`, `rise`, `fall`, `width`, `period`.
    Pulse {
        /// Value before the pulse and between pulses.
        initial: f64,
        /// Value during the pulse.
        pulsed: f64,
        /// Delay before the first pulse edge.
        delay: f64,
        /// Rise time of the leading edge.
        rise: f64,
        /// Fall time of the trailing edge.
        fall: f64,
        /// Pulse width (time at the pulsed value).
        width: f64,
        /// Repetition period.
        period: f64,
    },
}

impl SourceWaveform {
    /// A DC source.
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// A saturated rising ramp from 0 to `vdd`, starting at `delay` and taking
    /// `transition` seconds (0 % to 100 %).
    pub fn rising_ramp(vdd: f64, delay: f64, transition: f64) -> Self {
        SourceWaveform::Pwl(vec![(0.0, 0.0), (delay, 0.0), (delay + transition, vdd)])
    }

    /// A saturated falling ramp from `vdd` to 0, starting at `delay` and taking
    /// `transition` seconds (100 % to 0 %).
    pub fn falling_ramp(vdd: f64, delay: f64, transition: f64) -> Self {
        SourceWaveform::Pwl(vec![(0.0, vdd), (delay, vdd), (delay + transition, 0.0)])
    }

    /// A piecewise-linear source from `(time, value)` points.
    ///
    /// # Panics
    /// Panics if fewer than one point is given or the times are not
    /// non-decreasing.
    pub fn pwl(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "PWL source needs at least one point");
        for w in points.windows(2) {
            assert!(w[1].0 >= w[0].0, "PWL times must be non-decreasing");
        }
        SourceWaveform::Pwl(points)
    }

    /// Value of the source at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pwl(points) => {
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    // Strict upper bound: at a vertical step (two points with
                    // the same time) the later value wins.
                    if t < t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().unwrap().1
            }
            SourceWaveform::Pulse {
                initial,
                pulsed,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *initial;
                }
                let tp = (t - delay) % period.max(f64::MIN_POSITIVE);
                if tp < *rise {
                    initial + (pulsed - initial) * tp / rise.max(f64::MIN_POSITIVE)
                } else if tp < rise + width {
                    *pulsed
                } else if tp < rise + width + fall {
                    pulsed + (initial - pulsed) * (tp - rise - width) / fall.max(f64::MIN_POSITIVE)
                } else {
                    *initial
                }
            }
        }
    }

    /// Value at `t = 0`, used for DC operating points and initial conditions.
    pub fn initial_value(&self) -> f64 {
        self.value_at(0.0)
    }

    /// The latest time at which the waveform still changes (end of the last
    /// PWL segment, end of one pulse period, or 0 for DC). Useful for picking
    /// a default simulation window.
    pub fn last_event_time(&self) -> f64 {
        match self {
            SourceWaveform::Dc(_) => 0.0,
            SourceWaveform::Pwl(points) => points.last().map(|p| p.0).unwrap_or(0.0),
            SourceWaveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => delay + period.max(rise + width + fall),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = SourceWaveform::dc(1.8);
        assert_eq!(s.value_at(0.0), 1.8);
        assert_eq!(s.value_at(1.0), 1.8);
        assert_eq!(s.last_event_time(), 0.0);
    }

    #[test]
    fn rising_ramp_shape() {
        let s = SourceWaveform::rising_ramp(1.8, 50e-12, 100e-12);
        assert_eq!(s.value_at(0.0), 0.0);
        assert_eq!(s.value_at(50e-12), 0.0);
        assert!((s.value_at(100e-12) - 0.9).abs() < 1e-12);
        assert_eq!(s.value_at(150e-12), 1.8);
        assert_eq!(s.value_at(1.0), 1.8);
        assert_eq!(s.last_event_time(), 150e-12);
    }

    #[test]
    fn falling_ramp_shape() {
        let s = SourceWaveform::falling_ramp(1.8, 0.0, 100e-12);
        assert_eq!(s.value_at(0.0), 1.8);
        assert!((s.value_at(50e-12) - 0.9).abs() < 1e-12);
        assert_eq!(s.value_at(200e-12), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let s = SourceWaveform::pwl(vec![(1e-9, 0.0), (2e-9, 1.0), (3e-9, -1.0)]);
        assert_eq!(s.value_at(0.0), 0.0);
        assert!((s.value_at(1.5e-9) - 0.5).abs() < 1e-12);
        assert!((s.value_at(2.5e-9) - 0.0).abs() < 1e-12);
        assert_eq!(s.value_at(10e-9), -1.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn pwl_rejects_unsorted_times() {
        let _ = SourceWaveform::pwl(vec![(1e-9, 0.0), (0.5e-9, 1.0)]);
    }

    #[test]
    fn pwl_with_vertical_step_uses_new_value() {
        let s = SourceWaveform::pwl(vec![(0.0, 0.0), (1e-9, 0.0), (1e-9, 1.0), (2e-9, 1.0)]);
        assert_eq!(s.value_at(1e-9), 1.0);
        assert_eq!(s.value_at(0.5e-9), 0.0);
    }

    #[test]
    fn pulse_waveform_cycles() {
        let s = SourceWaveform::Pulse {
            initial: 0.0,
            pulsed: 1.0,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.8e-9,
            period: 2e-9,
        };
        assert_eq!(s.value_at(0.5e-9), 0.0);
        assert!((s.value_at(1.05e-9) - 0.5).abs() < 1e-9);
        assert_eq!(s.value_at(1.5e-9), 1.0);
        assert_eq!(s.value_at(3.5e-9), 1.0); // second period
        assert!(s.last_event_time() >= 3e-9);
    }

    #[test]
    fn initial_value_matches_t0() {
        let s = SourceWaveform::falling_ramp(1.8, 10e-12, 50e-12);
        assert_eq!(s.initial_value(), 1.8);
    }
}
