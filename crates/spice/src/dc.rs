//! DC operating-point analysis (Newton–Raphson with gmin and step limiting).
//!
//! The Newton loop uses the split-stamp scheme: the state-independent stamps
//! (gmin, resistors, sources, inductor shorts) are assembled once into a
//! cached matrix/RHS pair, and each iteration copies the cache and adds only
//! the MOSFET linearizations before refactorizing — the inner loop performs
//! no allocation.

use rlc_numeric::{CscMatrix, DenseMatrix, LuFactors, SparseLu};

use crate::circuit::Circuit;
use crate::mna::MnaSystem;
use crate::transient::SPARSE_AUTO_THRESHOLD;
use crate::SpiceError;

/// Options controlling the DC Newton loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Maximum Newton iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on node-voltage updates (volts).
    pub voltage_tolerance: f64,
    /// Largest allowed voltage change per iteration (volts); larger updates
    /// are clamped, which keeps the alpha-power MOSFET linearization inside
    /// its region of validity.
    pub step_limit: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iterations: 200,
            voltage_tolerance: 1e-9,
            step_limit: 0.5,
        }
    }
}

/// Solution of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    system: MnaSystem,
    x: Vec<f64>,
    /// Newton iterations used.
    pub iterations: usize,
}

impl DcSolution {
    /// Voltage of a node in the solution.
    pub fn voltage(&self, node: crate::circuit::NodeId) -> f64 {
        self.system.node_voltage(&self.x, node.index())
    }

    /// Branch current of a named voltage source (SPICE convention: the
    /// current flowing *into* the positive terminal, so a source delivering
    /// power reports a negative value).
    pub fn vsource_current(&self, name: &str) -> Option<f64> {
        self.system.vsource_branch(name).map(|b| self.x[b])
    }

    /// Raw solution vector (node voltages then branch currents).
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Computes the DC operating point of a circuit.
///
/// # Errors
/// Returns [`SpiceError::NonConvergence`] if Newton fails, or
/// [`SpiceError::SingularMatrix`] / [`SpiceError::InvalidCircuit`] for
/// structural problems.
pub fn dc_operating_point(circuit: &Circuit, options: DcOptions) -> Result<DcSolution, SpiceError> {
    circuit.validate()?;
    let system = MnaSystem::compile(circuit);
    let (x, iterations) = dc_solve_compiled(&system, circuit, options)?;
    Ok(DcSolution {
        system,
        x,
        iterations,
    })
}

/// Runs the DC Newton loop on an already compiled system (so transient
/// analysis can reuse its compilation). Returns the solution vector and the
/// iteration count.
pub(crate) fn dc_solve_compiled(
    system: &MnaSystem,
    circuit: &Circuit,
    options: DcOptions,
) -> Result<(Vec<f64>, usize), SpiceError> {
    let n = system.num_unknowns();
    let n_voltages = system.num_nodes() - 1;

    // Initial guess: user-provided initial conditions when present, zero
    // otherwise.
    let mut x = vec![0.0; n];
    for (&node, &v) in circuit.initial_conditions() {
        if let Some(idx) = system.voltage_unknown(node) {
            x[idx] = v;
        }
    }

    // Linear circuits have no Newton iteration to run — the first solve is
    // exact — and large ones (the DC start of a big transient run) use the
    // sparse factorization; an unhealthy sparse factorization falls through
    // to the dense Newton loop below.
    if system.is_linear() && n >= SPARSE_AUTO_THRESHOLD {
        let mut triplets = Vec::new();
        system.dc_triplets(&mut triplets);
        let csc = CscMatrix::from_triplets(n, &triplets);
        let mut sparse = SparseLu::empty();
        if sparse.factor(&csc).is_ok() && sparse.pivot_extremes().0 >= 1e-9 * csc.max_abs() {
            let mut rhs = vec![0.0; n];
            system.stamp_dc_rhs(&mut rhs);
            sparse.solve_into(&rhs, &mut x);
            return Ok((x, 1));
        }
    }

    // Split-stamp cache: everything except the MOSFET linearizations.
    let mut static_matrix = DenseMatrix::zeros(n, n);
    let mut static_rhs = vec![0.0; n];
    system.stamp_dc_static(&mut static_matrix, &mut static_rhs);
    let mut m = DenseMatrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    let mut lu = LuFactors::empty();
    let mut x_new = vec![0.0; n];

    let mut last_delta = f64::INFINITY;
    for it in 0..options.max_iterations {
        m.copy_from(&static_matrix);
        rhs.copy_from_slice(&static_rhs);
        system.stamp_mosfets(&mut m, &mut rhs, &x);
        m.factor_into(&mut lu)
            .map_err(|_| SpiceError::SingularMatrix { time: None })?;
        lu.solve_into(&rhs, &mut x_new);

        let mut max_delta: f64 = 0.0;
        for k in 0..n_voltages {
            let delta = (x_new[k] - x[k]).clamp(-options.step_limit, options.step_limit);
            max_delta = max_delta.max(delta.abs());
            x[k] += delta;
        }
        // Branch currents follow the voltage solution directly once voltages
        // have settled; take them unclamped.
        x[n_voltages..n].copy_from_slice(&x_new[n_voltages..n]);

        last_delta = max_delta;
        if max_delta < options.voltage_tolerance {
            return Ok((x, it + 1));
        }
    }

    Err(SpiceError::NonConvergence {
        time: None,
        iterations: options.max_iterations,
        max_delta: last_delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::mosfet::MosfetParams;
    use crate::source::SourceWaveform;
    use rlc_numeric::approx_eq;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_resistor("R1", a, b, 3000.0);
        ckt.add_resistor("R2", b, Circuit::GROUND, 1000.0);
        let sol = dc_operating_point(&ckt, DcOptions::default()).unwrap();
        assert!(approx_eq(sol.voltage(b), 0.45, 1e-6));
        assert!(approx_eq(sol.voltage(a), 1.8, 1e-9));
        // delivered current = 1.8 / 4k = 0.45 mA, reported as -0.45 mA
        assert!(approx_eq(
            sol.vsource_current("V1").unwrap(),
            -0.45e-3,
            1e-6
        ));
    }

    #[test]
    fn inverter_output_low_when_input_high() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_vsource("VIN", vin, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_mosfet("MP", vout, vin, vdd, MosfetParams::pmos_018(), 54e-6);
        ckt.add_mosfet(
            "MN",
            vout,
            vin,
            Circuit::GROUND,
            MosfetParams::nmos_018(),
            27e-6,
        );
        ckt.add_capacitor("CL", vout, Circuit::GROUND, 10e-15);
        let sol = dc_operating_point(&ckt, DcOptions::default()).unwrap();
        assert!(sol.voltage(vout) < 0.05, "out = {}", sol.voltage(vout));
    }

    #[test]
    fn inverter_output_high_when_input_low() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource("VDD", vdd, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_vsource("VIN", vin, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_mosfet("MP", vout, vin, vdd, MosfetParams::pmos_018(), 54e-6);
        ckt.add_mosfet(
            "MN",
            vout,
            vin,
            Circuit::GROUND,
            MosfetParams::nmos_018(),
            27e-6,
        );
        ckt.add_capacitor("CL", vout, Circuit::GROUND, 10e-15);
        let sol = dc_operating_point(&ckt, DcOptions::default()).unwrap();
        assert!(sol.voltage(vout) > 1.75, "out = {}", sol.voltage(vout));
    }

    #[test]
    fn invalid_circuit_is_rejected() {
        let ckt = Circuit::new();
        assert!(dc_operating_point(&ckt, DcOptions::default()).is_err());
    }

    #[test]
    fn large_linear_dc_uses_sparse_path_and_matches_analytic() {
        // A chain of 151 equal resistors is a uniform divider: the voltage
        // after k resistors is V * (151 - k) / 151. The system has 152
        // unknowns, above the sparse threshold, so this exercises the
        // sparse linear DC solve (one factor + solve, no Newton loop).
        let n_res = 151usize;
        let v = 1.8;
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        ckt.add_vsource("V1", src, Circuit::GROUND, SourceWaveform::dc(v));
        let mut prev = src;
        let mut nodes = Vec::new();
        for k in 0..n_res - 1 {
            let n = ckt.node(&format!("n{k}"));
            ckt.add_resistor(&format!("R{k}"), prev, n, 10.0);
            nodes.push(n);
            prev = n;
        }
        ckt.add_resistor("Rend", prev, Circuit::GROUND, 10.0);
        let sol = dc_operating_point(&ckt, DcOptions::default()).unwrap();
        assert_eq!(sol.iterations, 1);
        for (k, &node) in nodes.iter().enumerate() {
            // The gmin stamps load every node with 1e-12 S, shifting the
            // ideal divider by a few nV across 150 nodes.
            let expected = v * (n_res - 1 - k) as f64 / n_res as f64;
            assert!(
                (sol.voltage(node) - expected).abs() < 1e-6,
                "node {k}: {} vs {expected}",
                sol.voltage(node)
            );
        }
        assert!(approx_eq(
            sol.vsource_current("V1").unwrap(),
            -v / (10.0 * n_res as f64),
            1e-6
        ));
    }
}
