//! Alpha-power-law MOSFET model (Sakurai–Newton).
//!
//! The paper's experiments use a commercial 1.8 V, 0.18 µm CMOS technology.
//! We replace it with the alpha-power-law model, the standard analytic model
//! for velocity-saturated short-channel devices in timing literature. The
//! default parameters are calibrated so that inverter drive strengths (25X …
//! 125X, where `X` is a multiple of the minimum NMOS width, W = X · 2·Lmin =
//! X · 0.36 µm, PMOS twice as wide) produce effective output resistances
//! comparable to the characteristic impedances of the paper's lines
//! (≈ 40–80 Ω for 75X–125X drivers), which is what controls the inductive
//! behaviour being studied.

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosfetType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Alpha-power-law model parameters for one polarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Device polarity.
    pub mos_type: MosfetType,
    /// Threshold voltage magnitude (V). Positive for both polarities.
    pub vth: f64,
    /// Velocity-saturation index `alpha` (2.0 = classic square law, ~1.2–1.4
    /// for short-channel devices).
    pub alpha: f64,
    /// Drain-current coefficient `k_sat` (A per metre of width at
    /// `(Vgs - Vth) = 1 V`): `Id_sat = k_sat · W · (Vgs - Vth)^alpha`.
    pub k_sat: f64,
    /// Saturation-voltage coefficient `k_v` (V at `(Vgs - Vth) = 1 V`):
    /// `Vd_sat = k_v · (Vgs - Vth)^(alpha/2)`.
    pub k_v: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Gate capacitance per metre of width (F/m), lumped as Cgs and Cgd.
    pub c_gate_per_width: f64,
    /// Drain junction capacitance per metre of width (F/m).
    pub c_junction_per_width: f64,
}

impl MosfetParams {
    /// Default NMOS parameters for the calibrated 0.18 µm technology.
    ///
    /// Calibration targets (see `rlc-charlib` tests): a 75X inverter
    /// (W_N = 27 µm, W_P = 54 µm) drives with an effective resistance of
    /// roughly 55–75 Ω, and saturation current density is ≈ 0.6 mA/µm at
    /// Vgs = 1.8 V.
    pub fn nmos_018() -> Self {
        MosfetParams {
            mos_type: MosfetType::Nmos,
            vth: 0.43,
            alpha: 1.3,
            // Idsat(Vgs=1.8) = k_sat * (1.37)^1.3 ~= k_sat * 1.506; target 600 A/m
            k_sat: 400.0,
            k_v: 0.95,
            lambda: 0.05,
            // ~1 fF/um of gate width split between Cgs and Cgd
            c_gate_per_width: 1.0e-9,
            c_junction_per_width: 0.8e-9,
        }
    }

    /// Default PMOS parameters for the calibrated 0.18 µm technology.
    pub fn pmos_018() -> Self {
        MosfetParams {
            mos_type: MosfetType::Pmos,
            vth: 0.43,
            alpha: 1.35,
            // PMOS current density roughly half of NMOS
            k_sat: 200.0,
            k_v: 1.05,
            lambda: 0.05,
            c_gate_per_width: 1.0e-9,
            c_junction_per_width: 0.8e-9,
        }
    }

    /// Saturation drain current (A) for a device of width `w` metres at gate
    /// overdrive `vgst = |Vgs| - Vth` (V). Zero when the device is off.
    pub fn idsat(&self, w: f64, vgst: f64) -> f64 {
        if vgst <= 0.0 {
            0.0
        } else {
            self.k_sat * w * vgst.powf(self.alpha)
        }
    }

    /// Saturation voltage (V) at gate overdrive `vgst`.
    pub fn vdsat(&self, vgst: f64) -> f64 {
        if vgst <= 0.0 {
            0.0
        } else {
            self.k_v * vgst.powf(self.alpha / 2.0)
        }
    }
}

/// Operating-point evaluation of the drain current and its derivatives, in
/// the *device frame* (NMOS conventions: `vgs`, `vds` ≥ 0 in normal forward
/// operation; drain current flows drain → source).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosfetEval {
    /// Drain current (A), positive into the drain terminal.
    pub id: f64,
    /// Transconductance dId/dVgs (S).
    pub gm: f64,
    /// Output conductance dId/dVds (S).
    pub gds: f64,
}

/// Cached gate-overdrive-dependent quantities of the alpha-power model.
///
/// The four `powf` evaluations behind `Idsat`, `Vdsat` and their `Vgs`
/// derivatives depend only on the gate overdrive, which in a transient run
/// is bit-identical from step to step whenever the gate waveform is flat
/// (DC supplies, finished ramps — i.e. most of every simulation window).
/// Keying the cache on the exact `vgst` bits therefore skips the `powf`
/// calls on the hot path while reproducing the uncached results exactly.
#[derive(Debug, Clone, Copy)]
pub struct MosfetEvalCache {
    vgst: f64,
    idsat: f64,
    vdsat: f64,
    didsat_dvgs: f64,
    dvdsat_dvgs: f64,
}

impl Default for MosfetEvalCache {
    fn default() -> Self {
        MosfetEvalCache {
            vgst: f64::NAN,
            idsat: 0.0,
            vdsat: 0.0,
            didsat_dvgs: 0.0,
            dvdsat_dvgs: 0.0,
        }
    }
}

/// Evaluates the alpha-power-law equations for a device of width `w` (m) at
/// the given device-frame bias. Handles cutoff, the "linear" (triode) region
/// and saturation with channel-length modulation; the current and its first
/// derivatives are continuous across the region boundaries (the triode
/// expression equals the saturation expression and has zero `dId/dVds` slope
/// mismatch at `Vds = Vdsat` when `lambda = 0`; with `lambda > 0` the small
/// discontinuity in `gds` is handled by the Newton damping).
pub fn eval_alpha_power(params: &MosfetParams, w: f64, vgs: f64, vds: f64) -> MosfetEval {
    debug_assert!(vds >= 0.0, "device-frame vds must be non-negative");
    let vgst = vgs - params.vth;
    if vgst <= 0.0 {
        // Cutoff: tiny leakage conductance keeps the Jacobian non-singular.
        let gleak = 1e-12;
        return MosfetEval {
            id: gleak * vds,
            gm: 0.0,
            gds: gleak,
        };
    }
    let idsat = params.idsat(w, vgst);
    let vdsat = params.vdsat(vgst);
    let didsat_dvgs = params.alpha * params.k_sat * w * vgst.powf(params.alpha - 1.0);
    let dvdsat_dvgs = 0.5 * params.alpha * params.k_v * vgst.powf(params.alpha / 2.0 - 1.0);
    eval_regions(params, vds, idsat, vdsat, didsat_dvgs, dvdsat_dvgs)
}

/// [`eval_alpha_power`] with a caller-held overdrive cache for the hot
/// simulation loops. On a cache miss the overdrive terms are computed with a
/// single `powf` (`vgst^(α/2) = √(vgst^α)`, derivatives as ratios
/// `α·Idsat/vgst` and `½α·Vdsat/vgst`); hits skip even that. The results
/// agree with [`eval_alpha_power`] to floating-point reassociation accuracy
/// (≈1 ulp), which only perturbs the Newton trajectory — the converged
/// operating point satisfies the same device equations.
pub fn eval_alpha_power_cached(
    params: &MosfetParams,
    w: f64,
    vgs: f64,
    vds: f64,
    cache: &mut MosfetEvalCache,
) -> MosfetEval {
    debug_assert!(vds >= 0.0, "device-frame vds must be non-negative");
    let vgst = vgs - params.vth;
    if vgst <= 0.0 {
        // Cutoff: tiny leakage conductance keeps the Jacobian non-singular.
        let gleak = 1e-12;
        return MosfetEval {
            id: gleak * vds,
            gm: 0.0,
            gds: gleak,
        };
    }
    if cache.vgst.to_bits() != vgst.to_bits() {
        let pow_alpha = vgst.powf(params.alpha);
        let idsat = params.k_sat * w * pow_alpha;
        let vdsat = params.k_v * pow_alpha.sqrt();
        *cache = MosfetEvalCache {
            vgst,
            idsat,
            vdsat,
            didsat_dvgs: params.alpha * idsat / vgst,
            dvdsat_dvgs: 0.5 * params.alpha * vdsat / vgst,
        };
    }
    eval_regions(
        params,
        vds,
        cache.idsat,
        cache.vdsat,
        cache.didsat_dvgs,
        cache.dvdsat_dvgs,
    )
}

/// Region logic shared by the exact and cached evaluations: saturation with
/// channel-length modulation above `Vdsat`, the quadratic triode shape below.
#[inline]
fn eval_regions(
    params: &MosfetParams,
    vds: f64,
    idsat: f64,
    vdsat: f64,
    didsat_dvgs: f64,
    dvdsat_dvgs: f64,
) -> MosfetEval {
    if vds >= vdsat {
        // Saturation with channel-length modulation.
        let clm = 1.0 + params.lambda * (vds - vdsat);
        let id = idsat * clm;
        let gds = idsat * params.lambda + 1e-12;
        let gm = didsat_dvgs * clm - idsat * params.lambda * dvdsat_dvgs;
        MosfetEval { id, gm, gds }
    } else {
        // Triode: Id = Idsat * (2 - x) * x with x = Vds/Vdsat.
        let x = vds / vdsat;
        let shape = (2.0 - x) * x;
        let id = idsat * shape;
        let dshape_dx = 2.0 - 2.0 * x;
        let gds = idsat * dshape_dx / vdsat + 1e-12;
        // d/dVgs at constant Vds: dIdsat/dVgs * shape + Idsat * dshape/dx * dx/dVgs,
        // with dx/dVgs = -Vds/Vdsat^2 * dVdsat/dVgs.
        let dx_dvgs = -vds / (vdsat * vdsat) * dvdsat_dvgs;
        let gm = didsat_dvgs * shape + idsat * dshape_dx * dx_dvgs;
        MosfetEval {
            id,
            gm: gm.max(0.0),
            gds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> MosfetParams {
        MosfetParams::nmos_018()
    }

    #[test]
    fn cutoff_has_negligible_current() {
        let e = eval_alpha_power(&nmos(), 27e-6, 0.2, 1.0);
        assert!(e.id.abs() < 1e-9);
        assert_eq!(e.gm, 0.0);
    }

    #[test]
    fn saturation_current_density_is_realistic() {
        // 1 um wide NMOS at full gate drive should carry roughly 0.5-0.7 mA.
        let e = eval_alpha_power(&nmos(), 1e-6, 1.8, 1.8);
        assert!(e.id > 4e-4 && e.id < 8e-4, "Idsat/um = {}", e.id);
    }

    #[test]
    fn current_is_continuous_at_vdsat() {
        let p = nmos();
        let w = 27e-6;
        let vgs = 1.8;
        let vdsat = p.vdsat(vgs - p.vth);
        let below = eval_alpha_power(&p, w, vgs, vdsat * (1.0 - 1e-9));
        let above = eval_alpha_power(&p, w, vgs, vdsat * (1.0 + 1e-9));
        assert!((below.id - above.id).abs() / above.id < 1e-6);
    }

    #[test]
    fn triode_current_increases_with_vds() {
        let p = nmos();
        let w = 27e-6;
        let i1 = eval_alpha_power(&p, w, 1.8, 0.05).id;
        let i2 = eval_alpha_power(&p, w, 1.8, 0.10).id;
        assert!(i2 > i1);
    }

    #[test]
    fn gm_and_gds_match_finite_differences() {
        let p = nmos();
        let w = 10e-6;
        for &(vgs, vds) in &[(1.0, 0.1), (1.2, 0.3), (1.8, 0.2), (1.8, 1.5), (0.9, 1.0)] {
            let e = eval_alpha_power(&p, w, vgs, vds);
            let h = 1e-7;
            let d_gm = (eval_alpha_power(&p, w, vgs + h, vds).id
                - eval_alpha_power(&p, w, vgs - h, vds).id)
                / (2.0 * h);
            let d_gds = (eval_alpha_power(&p, w, vgs, vds + h).id
                - eval_alpha_power(&p, w, vgs, vds - h).id)
                / (2.0 * h);
            assert!(
                (e.gm - d_gm).abs() <= 1e-3 * d_gm.abs().max(1e-6),
                "gm mismatch at ({vgs},{vds}): {} vs {}",
                e.gm,
                d_gm
            );
            assert!(
                (e.gds - d_gds).abs() <= 2e-3 * d_gds.abs().max(1e-6),
                "gds mismatch at ({vgs},{vds}): {} vs {}",
                e.gds,
                d_gds
            );
        }
    }

    #[test]
    fn effective_resistance_of_75x_pullup_is_near_line_impedance() {
        // A crude switch-resistance estimate: R_eff ~ 0.75 * VDD / Idsat(VDD).
        // For the 75X inverter the PMOS is 54 um wide.
        let p = MosfetParams::pmos_018();
        let idsat = p.idsat(54e-6, 1.8 - p.vth);
        let reff = 0.75 * 1.8 / idsat;
        assert!(
            reff > 30.0 && reff < 120.0,
            "75X pull-up effective resistance {reff:.1} ohms is outside the expected window"
        );
    }

    #[test]
    fn pmos_is_weaker_than_nmos_per_width() {
        let n = MosfetParams::nmos_018();
        let p = MosfetParams::pmos_018();
        assert!(n.idsat(1e-6, 1.37) > p.idsat(1e-6, 1.37));
    }

    #[test]
    fn idsat_and_vdsat_are_zero_when_off() {
        let p = nmos();
        assert_eq!(p.idsat(1e-6, -0.1), 0.0);
        assert_eq!(p.vdsat(-0.1), 0.0);
    }

    #[test]
    fn cached_eval_matches_uncached_to_rounding() {
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1e-30);
        for p in [nmos(), MosfetParams::pmos_018()] {
            let w = 27e-6;
            let mut cache = MosfetEvalCache::default();
            // Sweep vgs and vds including repeats (cache hits) and cutoff.
            for &vgs in &[1.8, 1.8, 0.9, 0.9, 0.2, 1.234567, 1.234567] {
                for &vds in &[0.0, 0.05, 0.4, 1.0, 1.8] {
                    let plain = eval_alpha_power(&p, w, vgs, vds);
                    let cached = eval_alpha_power_cached(&p, w, vgs, vds, &mut cache);
                    assert!(
                        close(plain.id, cached.id),
                        "id {} vs {}",
                        plain.id,
                        cached.id
                    );
                    assert!(
                        close(plain.gm, cached.gm),
                        "gm {} vs {}",
                        plain.gm,
                        cached.gm
                    );
                    assert!(
                        close(plain.gds, cached.gds),
                        "gds {} vs {}",
                        plain.gds,
                        cached.gds
                    );
                }
            }
        }
    }
}
