//! Circuit container and construction API.

use std::collections::HashMap;

use crate::elements::Element;
use crate::mosfet::MosfetParams;
use crate::source::SourceWaveform;
use crate::SpiceError;

/// Identifier of a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Reconstructs a node id from its raw index. Node indices are stable
    /// for the lifetime of a circuit (0 is ground, allocation order after
    /// that); intended for diagnostics that walk raw index arrays — passing
    /// an index the circuit never allocated panics on the next name lookup.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }

    /// Raw index of the node (ground is 0).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this node is the ground reference.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// A circuit: a set of named nodes plus a list of elements.
///
/// ```
/// use rlc_spice::prelude::*;
///
/// let mut ckt = Circuit::new();
/// let n1 = ckt.node("n1");
/// ckt.add_vsource("V1", n1, Circuit::GROUND, SourceWaveform::dc(1.0));
/// ckt.add_resistor("R1", n1, Circuit::GROUND, 50.0);
/// assert_eq!(ckt.num_nodes(), 2); // ground + n1
/// assert_eq!(ckt.elements().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    elements: Vec<Element>,
    initial_conditions: HashMap<NodeId, f64>,
}

impl Circuit {
    /// The ground node (node 0).
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            name_to_node: HashMap::new(),
            elements: Vec::new(),
            initial_conditions: HashMap::new(),
        };
        c.name_to_node.insert("0".to_string(), Self::GROUND);
        c
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"`, `"gnd"` and `"GND"` refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Some(Self::GROUND);
        }
        self.name_to_node.get(name).copied()
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of non-ground nodes — the node-voltage unknown count of the
    /// MNA system (branch currents add on top; see
    /// [`crate::MnaSystem::num_unknowns`]). This is the size measure the
    /// transient kernel's Auto strategy compares against its sparse
    /// threshold.
    pub fn node_count(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Number of *unique* matrix positions the transient MNA stamp touches —
    /// the structural nonzero count of the system matrix. Together with
    /// [`Circuit::node_count`] this makes sparsity observable:
    /// `stamp_nnz() / n²` is the fill fraction that decides whether the
    /// sparse kernel pays off. Compiles the circuit; intended for
    /// diagnostics, not hot loops.
    pub fn stamp_nnz(&self) -> usize {
        crate::mna::MnaSystem::compile(self).stamp_nnz()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Human-readable label of MNA unknown `index`, mirroring the compile
    /// order of [`crate::MnaSystem`]: unknowns `0..num_nodes()-1` are the
    /// non-ground node voltages (unknown `k` is node `k + 1`), and branch
    /// currents follow in element insertion order (inductors and voltage
    /// sources). A diagnostics hook: lets structural analyses name the rows
    /// of the stamp pattern without reaching into the compiled system.
    pub fn unknown_label(&self, index: usize) -> String {
        let node_unknowns = self.num_nodes() - 1;
        if index < node_unknowns {
            return format!("node `{}`", self.node_name(NodeId(index + 1)));
        }
        let mut branch = node_unknowns;
        for e in &self.elements {
            if e.needs_branch_current() {
                if branch == index {
                    return format!("branch current of `{}`", e.name());
                }
                branch += 1;
            }
        }
        format!("unknown #{index}")
    }

    /// Adds a pre-built element.
    pub fn add_element(&mut self, element: Element) {
        self.elements.push(element);
    }

    /// Adds a resistor.
    ///
    /// # Panics
    /// Panics if `ohms <= 0`.
    pub fn add_resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) {
        assert!(ohms > 0.0, "resistor {name} must have positive resistance");
        self.elements.push(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            ohms,
        });
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    /// Panics if `farads <= 0`.
    pub fn add_capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) {
        assert!(
            farads > 0.0,
            "capacitor {name} must have positive capacitance"
        );
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            farads,
        });
    }

    /// Adds an inductor.
    ///
    /// # Panics
    /// Panics if `henries <= 0`.
    pub fn add_inductor(&mut self, name: &str, a: NodeId, b: NodeId, henries: f64) {
        assert!(
            henries > 0.0,
            "inductor {name} must have positive inductance"
        );
        self.elements.push(Element::Inductor {
            name: name.to_string(),
            a,
            b,
            henries,
        });
    }

    /// Adds a mutual inductance `M` coupling two inductors already (or later)
    /// added by name. Validated by [`Circuit::validate`]: both inductors must
    /// exist, be distinct, and satisfy `M^2 < L_a * L_b` (coupling
    /// coefficient below 1).
    ///
    /// # Panics
    /// Panics if `henries` is zero or not finite.
    pub fn add_mutual_inductance(
        &mut self,
        name: &str,
        inductor_a: &str,
        inductor_b: &str,
        henries: f64,
    ) {
        assert!(
            henries != 0.0 && henries.is_finite(),
            "mutual inductance {name} must be non-zero and finite"
        );
        self.elements.push(Element::MutualInductance {
            name: name.to_string(),
            inductor_a: inductor_a.to_string(),
            inductor_b: inductor_b.to_string(),
            henries,
        });
    }

    /// Adds an independent voltage source (positive terminal `pos`).
    pub fn add_vsource(&mut self, name: &str, pos: NodeId, neg: NodeId, waveform: SourceWaveform) {
        self.elements.push(Element::VoltageSource {
            name: name.to_string(),
            pos,
            neg,
            waveform,
        });
    }

    /// Adds an independent current source driving current from `from` to `to`
    /// through the external circuit.
    pub fn add_isource(&mut self, name: &str, from: NodeId, to: NodeId, waveform: SourceWaveform) {
        self.elements.push(Element::CurrentSource {
            name: name.to_string(),
            from,
            to,
            waveform,
        });
    }

    /// Adds a MOSFET (drain, gate, source; bulk tied to source).
    ///
    /// # Panics
    /// Panics if `width <= 0`.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        params: MosfetParams,
        width: f64,
    ) {
        assert!(width > 0.0, "mosfet {name} must have positive width");
        self.elements.push(Element::Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            params,
            width,
        });
    }

    /// Sets the initial voltage of a node for transient analysis started with
    /// "use initial conditions" (the default when any IC is present).
    pub fn set_initial_condition(&mut self, node: NodeId, volts: f64) {
        self.initial_conditions.insert(node, volts);
    }

    /// All user-specified initial conditions.
    pub fn initial_conditions(&self) -> &HashMap<NodeId, f64> {
        &self.initial_conditions
    }

    /// Inductance of the named inductor element, if present.
    fn inductance_of(&self, inductor: &str) -> Option<f64> {
        self.elements.iter().find_map(|e| match e {
            Element::Inductor { name, henries, .. } if name == inductor => Some(*henries),
            _ => None,
        })
    }

    /// Basic sanity checks run before any analysis.
    ///
    /// # Errors
    /// Returns [`SpiceError::InvalidCircuit`] when the circuit is empty, has
    /// no element connected to ground, an element references a node that
    /// does not exist, or a mutual inductance names a missing/duplicate
    /// inductor or exceeds the unity coupling coefficient.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.elements.is_empty() {
            return Err(SpiceError::InvalidCircuit("circuit has no elements".into()));
        }
        let mut touches_ground = false;
        for e in &self.elements {
            for n in e.nodes() {
                if n.0 >= self.node_names.len() {
                    return Err(SpiceError::InvalidCircuit(format!(
                        "element {} references unknown node {}",
                        e.name(),
                        n.0
                    )));
                }
                if n.is_ground() {
                    touches_ground = true;
                }
            }
            if let Element::MutualInductance {
                name,
                inductor_a,
                inductor_b,
                henries,
            } = e
            {
                if inductor_a == inductor_b {
                    return Err(SpiceError::InvalidCircuit(format!(
                        "mutual inductance {name} couples inductor {inductor_a} to itself"
                    )));
                }
                let (la, lb) = match (
                    self.inductance_of(inductor_a),
                    self.inductance_of(inductor_b),
                ) {
                    (Some(la), Some(lb)) => (la, lb),
                    _ => {
                        return Err(SpiceError::InvalidCircuit(format!(
                            "mutual inductance {name} references unknown inductor \
                             ({inductor_a} and/or {inductor_b})"
                        )));
                    }
                };
                if henries * henries >= la * lb {
                    return Err(SpiceError::InvalidCircuit(format!(
                        "mutual inductance {name}: M = {henries:e} implies a coupling \
                         coefficient >= 1 for L = {la:e} and {lb:e}"
                    )));
                }
            }
        }
        if !touches_ground {
            return Err(SpiceError::InvalidCircuit(
                "no element is connected to ground".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_creation_and_lookup() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.node("gnd"), Circuit::GROUND);
        assert_eq!(ckt.node("0"), Circuit::GROUND);
        assert_eq!(ckt.num_nodes(), 2);
        assert_eq!(ckt.node_name(a), "a");
        assert_eq!(ckt.find_node("a"), Some(a));
        assert_eq!(ckt.find_node("zzz"), None);
    }

    #[test]
    fn validate_rejects_empty_circuit() {
        let ckt = Circuit::new();
        assert!(matches!(ckt.validate(), Err(SpiceError::InvalidCircuit(_))));
    }

    #[test]
    fn validate_requires_ground_connection() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 1.0);
        assert!(matches!(ckt.validate(), Err(SpiceError::InvalidCircuit(_))));
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-15);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "positive resistance")]
    fn negative_resistor_panics() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R1", a, Circuit::GROUND, -1.0);
    }

    #[test]
    fn validate_checks_mutual_inductances() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_inductor("L1", a, Circuit::GROUND, 1e-9);
        ckt.add_inductor("L2", b, Circuit::GROUND, 4e-9);

        // Unknown partner inductor.
        let mut bad = ckt.clone();
        bad.add_mutual_inductance("K1", "L1", "Lmissing", 0.5e-9);
        assert!(matches!(bad.validate(), Err(SpiceError::InvalidCircuit(_))));

        // Self-coupling.
        let mut bad = ckt.clone();
        bad.add_mutual_inductance("K1", "L1", "L1", 0.5e-9);
        assert!(matches!(bad.validate(), Err(SpiceError::InvalidCircuit(_))));

        // Coupling coefficient >= 1: sqrt(1n * 4n) = 2n.
        let mut bad = ckt.clone();
        bad.add_mutual_inductance("K1", "L1", "L2", 2e-9);
        assert!(matches!(bad.validate(), Err(SpiceError::InvalidCircuit(_))));

        // A physical coupling (negative M allowed) passes.
        ckt.add_mutual_inductance("K1", "L1", "L2", -1.9e-9);
        assert!(ckt.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "non-zero and finite")]
    fn zero_mutual_inductance_panics() {
        let mut ckt = Circuit::new();
        ckt.add_mutual_inductance("K1", "L1", "L2", 0.0);
    }

    #[test]
    fn initial_conditions_are_stored() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.set_initial_condition(a, 1.8);
        assert_eq!(ckt.initial_conditions().get(&a), Some(&1.8));
    }
}
