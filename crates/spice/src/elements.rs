//! Circuit element descriptions.

use crate::circuit::NodeId;
use crate::mosfet::MosfetParams;
use crate::source::SourceWaveform;

/// One circuit element.
///
/// Elements are plain data; all analysis behaviour (companion models, Newton
/// linearization) lives in [`crate::mna`].
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name (used in error messages).
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be > 0).
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be > 0).
        farads: f64,
    },
    /// Linear inductor between `a` and `b`. Its branch current is an extra
    /// MNA unknown (flowing from `a` to `b` through the inductor).
    Inductor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries (must be > 0).
        henries: f64,
    },
    /// Independent voltage source; `pos` is the positive terminal. Its branch
    /// current (flowing out of `pos` through the external circuit) is an
    /// extra MNA unknown.
    VoltageSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source value over time.
        waveform: SourceWaveform,
    },
    /// Independent current source pushing current out of `from` and into `to`
    /// (i.e. conventional current flows `from → to` through the external
    /// circuit when the value is positive).
    CurrentSource {
        /// Instance name.
        name: String,
        /// Terminal the current leaves (through the external circuit).
        from: NodeId,
        /// Terminal the current enters.
        to: NodeId,
        /// Source value over time (amperes).
        waveform: SourceWaveform,
    },
    /// Mutual inductive coupling between two named [`Element::Inductor`]s (a
    /// SPICE `K` element expressed directly as the mutual inductance `M`
    /// rather than the coupling coefficient). The coupled branch equations
    /// become `V_a = L_a dI_a/dt + M dI_b/dt` (and symmetrically for `b`), so
    /// the element touches no circuit nodes of its own — it only couples the
    /// two existing inductor branch currents.
    MutualInductance {
        /// Instance name.
        name: String,
        /// Instance name of the first coupled inductor.
        inductor_a: String,
        /// Instance name of the second coupled inductor.
        inductor_b: String,
        /// Mutual inductance in henries. May be negative (anti-series
        /// coupling); `M^2` must stay below `L_a * L_b` so the inductance
        /// matrix remains positive definite.
        henries: f64,
    },
    /// Alpha-power-law MOSFET. Drain/gate/source terminals; the bulk is
    /// implicitly tied to the source (body effect is not modelled).
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal.
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Device model parameters.
        params: MosfetParams,
        /// Drawn width in metres.
        width: f64,
    },
}

impl Element {
    /// Instance name of the element.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Inductor { name, .. }
            | Element::VoltageSource { name, .. }
            | Element::CurrentSource { name, .. }
            | Element::MutualInductance { name, .. }
            | Element::Mosfet { name, .. } => name,
        }
    }

    /// Nodes this element touches.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor { a, b, .. }
            | Element::Capacitor { a, b, .. }
            | Element::Inductor { a, b, .. } => vec![*a, *b],
            Element::VoltageSource { pos, neg, .. } => vec![*pos, *neg],
            Element::CurrentSource { from, to, .. } => vec![*from, *to],
            // A mutual inductance couples two inductor *branches*; it has no
            // terminals of its own.
            Element::MutualInductance { .. } => vec![],
            Element::Mosfet {
                drain,
                gate,
                source,
                ..
            } => vec![*drain, *gate, *source],
        }
    }

    /// Whether the element contributes an extra branch-current unknown to the
    /// MNA system (voltage sources and inductors do).
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self,
            Element::VoltageSource { .. } | Element::Inductor { .. }
        )
    }

    /// Whether the element is nonlinear (requires Newton iterations).
    pub fn is_nonlinear(&self) -> bool {
        matches!(self, Element::Mosfet { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn element_metadata() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let r = Element::Resistor {
            name: "R1".into(),
            a,
            b,
            ohms: 10.0,
        };
        assert_eq!(r.name(), "R1");
        assert_eq!(r.nodes(), vec![a, b]);
        assert!(!r.needs_branch_current());
        assert!(!r.is_nonlinear());

        let l = Element::Inductor {
            name: "L1".into(),
            a,
            b,
            henries: 1e-9,
        };
        assert!(l.needs_branch_current());

        let v = Element::VoltageSource {
            name: "V1".into(),
            pos: a,
            neg: Circuit::GROUND,
            waveform: SourceWaveform::dc(1.0),
        };
        assert!(v.needs_branch_current());

        let k = Element::MutualInductance {
            name: "K1".into(),
            inductor_a: "L1".into(),
            inductor_b: "L2".into(),
            henries: 0.5e-9,
        };
        assert_eq!(k.name(), "K1");
        assert!(k.nodes().is_empty());
        assert!(!k.needs_branch_current());
        assert!(!k.is_nonlinear());

        let m = Element::Mosfet {
            name: "M1".into(),
            drain: a,
            gate: b,
            source: Circuit::GROUND,
            params: MosfetParams::nmos_018(),
            width: 1e-6,
        };
        assert!(m.is_nonlinear());
        assert_eq!(m.nodes().len(), 3);
    }
}
