//! Ready-made testbench circuits: a CMOS inverter driver, lumped capacitive
//! loads, and segmented RLC transmission-line ladders.
//!
//! These builders are the simulator-side counterparts of the paper's
//! experimental setups: "an RLC line driven by a 75X inverter" with a ramp
//! input of a given transition time.

use crate::circuit::{Circuit, NodeId};
use crate::mosfet::MosfetParams;
use crate::source::SourceWaveform;

/// Description of a CMOS inverter used as a line driver.
///
/// The paper sizes drivers as `kX` where the NMOS width is `k` times the
/// minimum width (2·Lmin = 0.36 µm for the 0.18 µm process) and the PMOS is
/// twice the NMOS width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InverterSpec {
    /// NMOS width in metres.
    pub nmos_width: f64,
    /// PMOS width in metres.
    pub pmos_width: f64,
    /// NMOS model parameters.
    pub nmos: MosfetParams,
    /// PMOS model parameters.
    pub pmos: MosfetParams,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl InverterSpec {
    /// Minimum NMOS width for the 0.18 µm technology (2 × Lmin = 0.36 µm), as
    /// defined in the paper's footnote.
    pub const MIN_NMOS_WIDTH: f64 = 0.36e-6;

    /// Creates the paper's `sizeX` inverter: NMOS width = `size` × 0.36 µm,
    /// PMOS twice as wide, 1.8 V supply, calibrated 0.18 µm devices.
    ///
    /// # Panics
    /// Panics if `size <= 0`.
    pub fn sized_018(size: f64) -> Self {
        assert!(size > 0.0, "driver size must be positive");
        let wn = size * Self::MIN_NMOS_WIDTH;
        InverterSpec {
            nmos_width: wn,
            pmos_width: 2.0 * wn,
            nmos: MosfetParams::nmos_018(),
            pmos: MosfetParams::pmos_018(),
            vdd: 1.8,
        }
    }

    /// The drive-strength multiple relative to the minimum inverter.
    pub fn size(&self) -> f64 {
        self.nmos_width / Self::MIN_NMOS_WIDTH
    }

    /// Input (gate) capacitance of the inverter, used as the fan-out load of
    /// an upstream stage and in the paper's `CL << C·l` criterion.
    pub fn input_capacitance(&self) -> f64 {
        self.nmos.c_gate_per_width * self.nmos_width + self.pmos.c_gate_per_width * self.pmos_width
    }
}

/// Node handles of an inverter testbench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriverTestbenchNodes {
    /// Supply node.
    pub vdd: NodeId,
    /// Inverter input.
    pub input: NodeId,
    /// Inverter output (driving point / near end of the line).
    pub output: NodeId,
    /// Far end of the line (equals `output` for lumped capacitive loads).
    pub far_end: NodeId,
}

/// Direction of the output transition being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputTransition {
    /// Output rises 0 → VDD (input falls). This is the polarity used for all
    /// the paper's figures.
    #[default]
    Rising,
    /// Output falls VDD → 0 (input rises).
    Falling,
}

/// Adds an inverter (with its supply) to a circuit, driven by a saturated
/// ramp on its input, and returns the node handles. Initial conditions are
/// set consistently with the chosen output transition.
pub fn add_inverter_driver(
    ckt: &mut Circuit,
    spec: &InverterSpec,
    input_transition_time: f64,
    input_delay: f64,
    transition: OutputTransition,
) -> DriverTestbenchNodes {
    let input_wave = match transition {
        OutputTransition::Rising => {
            SourceWaveform::falling_ramp(spec.vdd, input_delay, input_transition_time)
        }
        OutputTransition::Falling => {
            SourceWaveform::rising_ramp(spec.vdd, input_delay, input_transition_time)
        }
    };
    add_inverter_driver_with_input(ckt, spec, input_wave, transition)
}

/// Like [`add_inverter_driver`], but drives the inverter input with an
/// arbitrary source waveform (e.g. a measured upstream far-end waveform
/// mirrored for the inverting stage) instead of an ideal saturated ramp.
/// The input node's initial condition is taken from the waveform at `t = 0`.
pub fn add_inverter_driver_with_input(
    ckt: &mut Circuit,
    spec: &InverterSpec,
    input: SourceWaveform,
    transition: OutputTransition,
) -> DriverTestbenchNodes {
    let vdd_node = ckt.node("vdd");
    let in_node = ckt.node("in");
    let out_node = ckt.node("out");

    ckt.add_vsource(
        "VDD",
        vdd_node,
        Circuit::GROUND,
        SourceWaveform::dc(spec.vdd),
    );
    let vin0 = input.value_at(0.0);
    ckt.add_vsource("VIN", in_node, Circuit::GROUND, input);
    ckt.add_mosfet(
        "MP",
        out_node,
        in_node,
        vdd_node,
        spec.pmos,
        spec.pmos_width,
    );
    ckt.add_mosfet(
        "MN",
        out_node,
        in_node,
        Circuit::GROUND,
        spec.nmos,
        spec.nmos_width,
    );

    let vout0 = match transition {
        OutputTransition::Rising => 0.0,
        OutputTransition::Falling => spec.vdd,
    };
    ckt.set_initial_condition(vdd_node, spec.vdd);
    ckt.set_initial_condition(in_node, vin0);
    ckt.set_initial_condition(out_node, vout0);

    DriverTestbenchNodes {
        vdd: vdd_node,
        input: in_node,
        output: out_node,
        far_end: out_node,
    }
}

/// Appends a segmented RLC ladder between `near` and a newly created far-end
/// node, returning the far-end node. The total `r`, `l`, `c` are split over
/// `segments` identical sections with the shunt capacitance distributed as
/// half-sections at both ends (an overall pi discretization); `c_load` is
/// added at the far end. All created line nodes start at `v_initial`.
///
/// # Panics
/// Panics if `segments == 0` or any parasitic is negative.
#[allow(clippy::too_many_arguments)]
pub fn add_rlc_ladder(
    ckt: &mut Circuit,
    near: NodeId,
    r: f64,
    l: f64,
    c: f64,
    segments: usize,
    c_load: f64,
    v_initial: f64,
    name_prefix: &str,
) -> NodeId {
    assert!(segments > 0, "need at least one ladder segment");
    assert!(r >= 0.0 && l >= 0.0 && c >= 0.0 && c_load >= 0.0);
    let rs = r / segments as f64;
    let ls = l / segments as f64;
    let cs = c / segments as f64;

    // Near-end half capacitor.
    if cs > 0.0 {
        ckt.add_capacitor(
            &format!("{name_prefix}_C0"),
            near,
            Circuit::GROUND,
            0.5 * cs,
        );
    }
    let mut prev = near;
    for k in 0..segments {
        let mid = ckt.node(&format!("{name_prefix}_m{k}"));
        let next = ckt.node(&format!("{name_prefix}_n{k}"));
        if rs > 0.0 {
            ckt.add_resistor(&format!("{name_prefix}_R{k}"), prev, mid, rs);
        } else {
            ckt.add_resistor(&format!("{name_prefix}_R{k}"), prev, mid, 1e-6);
        }
        if ls > 0.0 {
            ckt.add_inductor(&format!("{name_prefix}_L{k}"), mid, next, ls);
        } else {
            ckt.add_resistor(&format!("{name_prefix}_Lr{k}"), mid, next, 1e-6);
        }
        // Interior nodes carry a full section capacitance, the far end a half.
        let shunt = if k + 1 == segments { 0.5 * cs } else { cs };
        if shunt > 0.0 {
            ckt.add_capacitor(
                &format!("{name_prefix}_C{}", k + 1),
                next,
                Circuit::GROUND,
                shunt,
            );
        }
        ckt.set_initial_condition(mid, v_initial);
        ckt.set_initial_condition(next, v_initial);
        prev = next;
    }
    if c_load > 0.0 {
        ckt.add_capacitor(&format!("{name_prefix}_CL"), prev, Circuit::GROUND, c_load);
    }
    prev
}

/// Builds the paper's characterization testbench: an inverter driving a
/// lumped capacitive load.
pub fn inverter_with_cap_load(
    spec: &InverterSpec,
    input_transition_time: f64,
    input_delay: f64,
    c_load: f64,
    transition: OutputTransition,
) -> (Circuit, DriverTestbenchNodes) {
    let mut ckt = Circuit::new();
    let nodes = add_inverter_driver(
        &mut ckt,
        spec,
        input_transition_time,
        input_delay,
        transition,
    );
    if c_load > 0.0 {
        ckt.add_capacitor("CLOAD", nodes.output, Circuit::GROUND, c_load);
    }
    (ckt, nodes)
}

/// Builds the paper's main testbench: an inverter driving a segmented RLC
/// line terminated by a load capacitance.
#[allow(clippy::too_many_arguments)]
pub fn inverter_with_rlc_line(
    spec: &InverterSpec,
    input_transition_time: f64,
    input_delay: f64,
    r: f64,
    l: f64,
    c: f64,
    segments: usize,
    c_load: f64,
    transition: OutputTransition,
) -> (Circuit, DriverTestbenchNodes) {
    let mut ckt = Circuit::new();
    let mut nodes = add_inverter_driver(
        &mut ckt,
        spec,
        input_transition_time,
        input_delay,
        transition,
    );
    let v_init = match transition {
        OutputTransition::Rising => 0.0,
        OutputTransition::Falling => spec.vdd,
    };
    let far = add_rlc_ladder(
        &mut ckt,
        nodes.output,
        r,
        l,
        c,
        segments,
        c_load,
        v_init,
        "line",
    );
    nodes.far_end = far;
    (ckt, nodes)
}

/// Builds a testbench where an ideal PWL voltage source (for example the
/// paper's two-ramp driver model) drives the RLC line directly; used to
/// compute far-end responses from a modeled driving-point waveform.
#[allow(clippy::too_many_arguments)]
pub fn pwl_source_with_rlc_line(
    source: SourceWaveform,
    v_initial: f64,
    r: f64,
    l: f64,
    c: f64,
    segments: usize,
    c_load: f64,
) -> (Circuit, DriverTestbenchNodes) {
    let mut ckt = Circuit::new();
    let near = ckt.node("out");
    ckt.add_vsource("VDRV", near, Circuit::GROUND, source);
    ckt.set_initial_condition(near, v_initial);
    let far = add_rlc_ladder(&mut ckt, near, r, l, c, segments, c_load, v_initial, "line");
    (
        ckt,
        DriverTestbenchNodes {
            vdd: near,
            input: near,
            output: near,
            far_end: far,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{TransientAnalysis, TransientOptions};
    use rlc_numeric::units::{ff, nh, pf, ps};

    #[test]
    fn inverter_spec_sizes_match_paper_footnote() {
        let spec = InverterSpec::sized_018(75.0);
        assert!((spec.nmos_width - 27e-6).abs() < 1e-12);
        assert!((spec.pmos_width - 54e-6).abs() < 1e-12);
        assert!((spec.size() - 75.0).abs() < 1e-9);
        assert!(spec.input_capacitance() > 0.0);
    }

    #[test]
    fn cap_load_testbench_swings_rail_to_rail() {
        let spec = InverterSpec::sized_018(25.0);
        let (ckt, nodes) = inverter_with_cap_load(
            &spec,
            ps(100.0),
            ps(20.0),
            ff(200.0),
            OutputTransition::Rising,
        );
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(0.5), ps(800.0)).unwrap())
            .run(&ckt)
            .unwrap();
        let out = res.waveform(nodes.output);
        assert!(out.value_at(0.0) < 0.2);
        assert!(out.last_value() > 0.98 * spec.vdd);
    }

    #[test]
    fn falling_transition_testbench_discharges_output() {
        let spec = InverterSpec::sized_018(25.0);
        let (ckt, nodes) = inverter_with_cap_load(
            &spec,
            ps(100.0),
            ps(20.0),
            ff(200.0),
            OutputTransition::Falling,
        );
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(0.5), ps(800.0)).unwrap())
            .run(&ckt)
            .unwrap();
        let out = res.waveform(nodes.output);
        assert!(out.value_at(0.0) > 0.9 * spec.vdd);
        assert!(out.last_value() < 0.05 * spec.vdd);
    }

    #[test]
    fn rlc_line_far_end_lags_near_end() {
        // 5 mm / 1.6 um paper line: R = 72.44, L = 5.14 nH, C = 1.10 pF.
        let spec = InverterSpec::sized_018(75.0);
        let (ckt, nodes) = inverter_with_rlc_line(
            &spec,
            ps(100.0),
            ps(20.0),
            72.44,
            nh(5.14),
            pf(1.10),
            20,
            ff(10.0),
            OutputTransition::Rising,
        );
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(0.5), ps(1200.0)).unwrap())
            .run(&ckt)
            .unwrap();
        let near = res.waveform(nodes.output);
        let far = res.waveform(nodes.far_end);
        assert!(near.last_value() > 0.95 * spec.vdd);
        assert!(far.last_value() > 0.95 * spec.vdd);
        let t_near = near.crossing_fraction(0.5, spec.vdd, true).unwrap();
        let t_far = far.crossing_fraction(0.5, spec.vdd, true).unwrap();
        assert!(
            t_far > t_near,
            "far end must switch later than the near end"
        );
        // The far-end lag must be at least in the vicinity of the time of
        // flight sqrt(LC) ~ 75 ps.
        assert!(t_far - t_near > ps(40.0));
    }

    #[test]
    fn ladder_node_count_scales_with_segments() {
        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        ckt.add_vsource("V1", near, Circuit::GROUND, SourceWaveform::dc(0.0));
        let far = add_rlc_ladder(&mut ckt, near, 100.0, nh(5.0), pf(1.0), 4, 0.0, 0.0, "ln");
        assert_ne!(near, far);
        // 1 near node + 2 nodes per segment
        assert_eq!(ckt.num_nodes(), 1 + 1 + 8);
    }

    #[test]
    fn pwl_testbench_propagates_to_far_end() {
        let src = SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0));
        let (ckt, nodes) =
            pwl_source_with_rlc_line(src, 0.0, 72.44, nh(5.14), pf(1.10), 16, ff(10.0));
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(0.5), ps(1000.0)).unwrap())
            .run(&ckt)
            .unwrap();
        let far = res.waveform(nodes.far_end);
        assert!(far.last_value() > 1.7);
        // An ideal ramp into a low-loss line overshoots at the far end.
        assert!(far.max_value() > 1.8);
    }

    #[test]
    #[should_panic(expected = "at least one ladder segment")]
    fn zero_segments_rejected() {
        let mut ckt = Circuit::new();
        let near = ckt.node("out");
        let _ = add_rlc_ladder(&mut ckt, near, 1.0, 1e-9, 1e-12, 0, 0.0, 0.0, "x");
    }
}
