//! Modified nodal analysis: compilation of a [`Circuit`] into flat element
//! tables and assembly of the (linearized) MNA system for DC and transient
//! analysis.
//!
//! Unknown ordering: node voltages for every non-ground node (node `k` maps
//! to unknown `k - 1`), followed by one branch current per voltage source and
//! per inductor, in element order.

use rlc_numeric::DenseMatrix;

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::mosfet::{eval_alpha_power, MosfetParams, MosfetType};
use crate::source::SourceWaveform;

/// Minimum conductance added from every node to ground for numerical
/// robustness (floating nodes, capacitor-only nodes in DC).
pub const GMIN: f64 = 1e-12;

/// Integration scheme used to turn capacitors and inductors into resistive
/// companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompanionMethod {
    /// Backward Euler: L-stable, slightly dissipative (damps LC ringing).
    BackwardEuler,
    /// Trapezoidal: energy-preserving, the default for waveform accuracy.
    Trapezoidal,
}

/// A compiled resistor.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledResistor {
    pub a: usize,
    pub b: usize,
    pub conductance: f64,
}

/// A compiled capacitor (explicit element or MOSFET parasitic).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledCapacitor {
    pub a: usize,
    pub b: usize,
    pub farads: f64,
}

/// A compiled inductor with its branch-current unknown.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledInductor {
    pub a: usize,
    pub b: usize,
    pub henries: f64,
    pub branch: usize,
}

/// A compiled voltage source with its branch-current unknown.
#[derive(Debug, Clone)]
pub(crate) struct CompiledVsource {
    pub name: String,
    pub pos: usize,
    pub neg: usize,
    pub waveform: SourceWaveform,
    pub branch: usize,
}

/// A compiled current source.
#[derive(Debug, Clone)]
pub(crate) struct CompiledIsource {
    pub from: usize,
    pub to: usize,
    pub waveform: SourceWaveform,
}

/// A compiled MOSFET.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledMosfet {
    pub drain: usize,
    pub gate: usize,
    pub source: usize,
    pub params: MosfetParams,
    pub width: f64,
}

/// The compiled MNA view of a circuit.
///
/// Node index 0 is ground; unknown `k` is the voltage of node `k + 1` for
/// `k < num_nodes - 1`, and a branch current otherwise.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    num_nodes: usize,
    num_unknowns: usize,
    pub(crate) resistors: Vec<CompiledResistor>,
    pub(crate) capacitors: Vec<CompiledCapacitor>,
    pub(crate) inductors: Vec<CompiledInductor>,
    pub(crate) vsources: Vec<CompiledVsource>,
    pub(crate) isources: Vec<CompiledIsource>,
    pub(crate) mosfets: Vec<CompiledMosfet>,
}

impl MnaSystem {
    /// Compiles a circuit into flat element tables.
    pub fn compile(circuit: &Circuit) -> Self {
        let num_nodes = circuit.num_nodes();
        let mut next_branch = num_nodes - 1;
        let mut resistors = Vec::new();
        let mut capacitors = Vec::new();
        let mut inductors = Vec::new();
        let mut vsources = Vec::new();
        let mut isources = Vec::new();
        let mut mosfets = Vec::new();

        for e in circuit.elements() {
            match e {
                Element::Resistor { a, b, ohms, .. } => resistors.push(CompiledResistor {
                    a: a.index(),
                    b: b.index(),
                    conductance: 1.0 / ohms,
                }),
                Element::Capacitor { a, b, farads, .. } => capacitors.push(CompiledCapacitor {
                    a: a.index(),
                    b: b.index(),
                    farads: *farads,
                }),
                Element::Inductor { a, b, henries, .. } => {
                    inductors.push(CompiledInductor {
                        a: a.index(),
                        b: b.index(),
                        henries: *henries,
                        branch: next_branch,
                    });
                    next_branch += 1;
                }
                Element::VoltageSource {
                    name,
                    pos,
                    neg,
                    waveform,
                } => {
                    vsources.push(CompiledVsource {
                        name: name.clone(),
                        pos: pos.index(),
                        neg: neg.index(),
                        waveform: waveform.clone(),
                        branch: next_branch,
                    });
                    next_branch += 1;
                }
                Element::CurrentSource {
                    from, to, waveform, ..
                } => isources.push(CompiledIsource {
                    from: from.index(),
                    to: to.index(),
                    waveform: waveform.clone(),
                }),
                Element::Mosfet {
                    drain,
                    gate,
                    source,
                    params,
                    width,
                    ..
                } => {
                    mosfets.push(CompiledMosfet {
                        drain: drain.index(),
                        gate: gate.index(),
                        source: source.index(),
                        params: *params,
                        width: *width,
                    });
                    // Lumped parasitic capacitances: half the gate cap to the
                    // source, half to the drain (Miller), plus the drain
                    // junction cap to the source terminal (which is the local
                    // supply rail for inverter-style connections).
                    let cg = params.c_gate_per_width * width;
                    let cj = params.c_junction_per_width * width;
                    if cg > 0.0 {
                        capacitors.push(CompiledCapacitor {
                            a: gate.index(),
                            b: source.index(),
                            farads: 0.5 * cg,
                        });
                        capacitors.push(CompiledCapacitor {
                            a: gate.index(),
                            b: drain.index(),
                            farads: 0.5 * cg,
                        });
                    }
                    if cj > 0.0 {
                        capacitors.push(CompiledCapacitor {
                            a: drain.index(),
                            b: source.index(),
                            farads: cj,
                        });
                    }
                }
            }
        }

        MnaSystem {
            num_nodes,
            num_unknowns: next_branch,
            resistors,
            capacitors,
            inductors,
            vsources,
            isources,
            mosfets,
        }
    }

    /// Total number of MNA unknowns (node voltages + branch currents).
    pub fn num_unknowns(&self) -> usize {
        self.num_unknowns
    }

    /// Number of circuit nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of compiled capacitors (explicit plus MOSFET parasitics); the
    /// dynamic state vector for transient analysis has this many entries.
    pub fn num_capacitors(&self) -> usize {
        self.capacitors.len()
    }

    /// Index of the unknown holding the voltage of `node`, or `None` for
    /// ground.
    pub fn voltage_unknown(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Branch-current unknown of the named voltage source, if any.
    pub fn vsource_branch(&self, name: &str) -> Option<usize> {
        self.vsources
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.branch)
    }

    /// Voltage of `node` taken from a solution vector.
    pub fn node_voltage(&self, x: &[f64], node: usize) -> f64 {
        if node == 0 {
            0.0
        } else {
            x[node - 1]
        }
    }

    fn stamp_conductance(&self, m: &mut DenseMatrix, a: usize, b: usize, g: f64) {
        if a != 0 {
            m.add_at(a - 1, a - 1, g);
        }
        if b != 0 {
            m.add_at(b - 1, b - 1, g);
        }
        if a != 0 && b != 0 {
            m.add_at(a - 1, b - 1, -g);
            m.add_at(b - 1, a - 1, -g);
        }
    }

    fn stamp_current_injection(&self, rhs: &mut [f64], into: usize, out_of: usize, amps: f64) {
        if into != 0 {
            rhs[into - 1] += amps;
        }
        if out_of != 0 {
            rhs[out_of - 1] -= amps;
        }
    }

    /// Assembles the DC operating-point system linearized about `x_guess`.
    ///
    /// Capacitors are open circuits; inductors become 0 V constraints through
    /// their branch equations; sources take their `t = 0` values.
    pub fn assemble_dc(&self, x_guess: &[f64]) -> (DenseMatrix, Vec<f64>) {
        let n = self.num_unknowns;
        let mut m = DenseMatrix::zeros(n, n);
        let mut rhs = vec![0.0; n];

        for k in 0..(self.num_nodes - 1) {
            m.add_at(k, k, GMIN);
        }
        for r in &self.resistors {
            self.stamp_conductance(&mut m, r.a, r.b, r.conductance);
        }
        for l in &self.inductors {
            // Branch row: Va - Vb = 0; KCL: branch current leaves a, enters b.
            self.stamp_branch_voltage_rows(&mut m, l.a, l.b, l.branch);
        }
        for v in &self.vsources {
            self.stamp_branch_voltage_rows(&mut m, v.pos, v.neg, v.branch);
            rhs[v.branch] = v.waveform.initial_value();
        }
        for i in &self.isources {
            self.stamp_current_injection(&mut rhs, i.to, i.from, i.waveform.initial_value());
        }
        for f in &self.mosfets {
            self.stamp_mosfet(&mut m, &mut rhs, f, x_guess);
        }
        (m, rhs)
    }

    /// Assembles the transient system at time `t` for step size `h`,
    /// linearized about `x_guess`, given the previous accepted solution
    /// `prev_x` and the previous capacitor currents `prev_cap_currents`
    /// (one per compiled capacitor, flowing `a → b`).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_transient(
        &self,
        t: f64,
        h: f64,
        method: CompanionMethod,
        x_guess: &[f64],
        prev_x: &[f64],
        prev_cap_currents: &[f64],
    ) -> (DenseMatrix, Vec<f64>) {
        let n = self.num_unknowns;
        let mut m = DenseMatrix::zeros(n, n);
        let mut rhs = vec![0.0; n];

        for k in 0..(self.num_nodes - 1) {
            m.add_at(k, k, GMIN);
        }
        for r in &self.resistors {
            self.stamp_conductance(&mut m, r.a, r.b, r.conductance);
        }
        for (idx, c) in self.capacitors.iter().enumerate() {
            let v_prev = self.node_voltage(prev_x, c.a) - self.node_voltage(prev_x, c.b);
            let (g, ieq) = match method {
                CompanionMethod::BackwardEuler => {
                    let g = c.farads / h;
                    (g, g * v_prev)
                }
                CompanionMethod::Trapezoidal => {
                    let g = 2.0 * c.farads / h;
                    (g, g * v_prev + prev_cap_currents[idx])
                }
            };
            self.stamp_conductance(&mut m, c.a, c.b, g);
            // Companion current source injects ieq into node a (out of b):
            // i_cap = g * v - ieq, so the "-ieq" term is a current entering a.
            self.stamp_current_injection(&mut rhs, c.a, c.b, ieq);
        }
        for l in &self.inductors {
            let i_prev = prev_x[l.branch];
            let v_prev = self.node_voltage(prev_x, l.a) - self.node_voltage(prev_x, l.b);
            let (z, rhs_val) = match method {
                CompanionMethod::BackwardEuler => {
                    let z = l.henries / h;
                    (z, -z * i_prev)
                }
                CompanionMethod::Trapezoidal => {
                    let z = 2.0 * l.henries / h;
                    (z, -z * i_prev - v_prev)
                }
            };
            // KCL columns and branch voltage row.
            self.stamp_branch_voltage_rows(&mut m, l.a, l.b, l.branch);
            // Branch equation: Va - Vb - z * i = rhs_val.
            m.add_at(l.branch, l.branch, -z);
            rhs[l.branch] = rhs_val;
        }
        for v in &self.vsources {
            self.stamp_branch_voltage_rows(&mut m, v.pos, v.neg, v.branch);
            rhs[v.branch] = v.waveform.value_at(t);
        }
        for i in &self.isources {
            self.stamp_current_injection(&mut rhs, i.to, i.from, i.waveform.value_at(t));
        }
        for f in &self.mosfets {
            self.stamp_mosfet(&mut m, &mut rhs, f, x_guess);
        }
        (m, rhs)
    }

    /// Stamps the `+1/-1` pattern shared by ideal voltage sources, DC
    /// inductor shorts and the voltage part of inductor branch equations.
    fn stamp_branch_voltage_rows(
        &self,
        m: &mut DenseMatrix,
        pos: usize,
        neg: usize,
        branch: usize,
    ) {
        if pos != 0 {
            m.add_at(pos - 1, branch, 1.0);
            m.add_at(branch, pos - 1, 1.0);
        }
        if neg != 0 {
            m.add_at(neg - 1, branch, -1.0);
            m.add_at(branch, neg - 1, -1.0);
        }
    }

    /// Stamps a MOSFET linearized about the guess voltages.
    fn stamp_mosfet(
        &self,
        m: &mut DenseMatrix,
        rhs: &mut [f64],
        f: &CompiledMosfet,
        x_guess: &[f64],
    ) {
        let vd = self.node_voltage(x_guess, f.drain);
        let vg = self.node_voltage(x_guess, f.gate);
        let vs = self.node_voltage(x_guess, f.source);

        // Pick the device-frame (high, low) channel terminals so the
        // device-frame Vds is always non-negative; the MOSFET is symmetric in
        // drain/source for this model.
        let (hi_node, lo_node, v_hi, v_lo) = match f.params.mos_type {
            MosfetType::Nmos => {
                if vd >= vs {
                    (f.drain, f.source, vd, vs)
                } else {
                    (f.source, f.drain, vs, vd)
                }
            }
            MosfetType::Pmos => {
                // For PMOS the "source" in device frame is the higher terminal.
                if vs >= vd {
                    (f.source, f.drain, vs, vd)
                } else {
                    (f.drain, f.source, vd, vs)
                }
            }
        };

        match f.params.mos_type {
            MosfetType::Nmos => {
                // Device frame: drain = hi, source = lo.
                let vgs = vg - v_lo;
                let vds = v_hi - v_lo;
                let e = eval_alpha_power(&f.params, f.width, vgs, vds);
                // Current leaves hi (drain) node, enters lo (source) node:
                // I = id0 + gm*(Vg - Vlo - vgs) + gds*(Vhi - Vlo - vds)
                let const_term = e.id - e.gm * vgs - e.gds * vds;
                self.stamp_vccs(m, hi_node, lo_node, f.gate, lo_node, e.gm);
                self.stamp_conductance_directed(m, hi_node, lo_node, hi_node, lo_node, e.gds);
                self.stamp_current_injection(rhs, lo_node, hi_node, const_term);
            }
            MosfetType::Pmos => {
                // Device frame: source = hi, drain = lo.
                let vsg = v_hi - vg;
                let vsd = v_hi - v_lo;
                let e = eval_alpha_power(&f.params, f.width, vsg, vsd);
                // Current leaves hi (source) node, enters lo (drain) node:
                // I = id0 + gm*(Vhi - Vg - vsg) + gds*(Vhi - Vlo - vsd)
                let const_term = e.id - e.gm * vsg - e.gds * vsd;
                self.stamp_vccs(m, hi_node, lo_node, hi_node, f.gate, e.gm);
                self.stamp_conductance_directed(m, hi_node, lo_node, hi_node, lo_node, e.gds);
                self.stamp_current_injection(rhs, lo_node, hi_node, const_term);
            }
        }
    }

    /// Stamps a voltage-controlled current source: a current `g * (V_cp - V_cn)`
    /// leaves node `out_of` and enters node `into`.
    fn stamp_vccs(
        &self,
        m: &mut DenseMatrix,
        out_of: usize,
        into: usize,
        cp: usize,
        cn: usize,
        g: f64,
    ) {
        for (node, sign) in [(out_of, 1.0), (into, -1.0)] {
            if node == 0 {
                continue;
            }
            if cp != 0 {
                m.add_at(node - 1, cp - 1, sign * g);
            }
            if cn != 0 {
                m.add_at(node - 1, cn - 1, -sign * g);
            }
        }
    }

    /// Stamps a conductance whose current `g * (V_cp - V_cn)` leaves `out_of`
    /// and enters `into` (used for the MOSFET output conductance where the
    /// controlling and conducting node pairs coincide).
    fn stamp_conductance_directed(
        &self,
        m: &mut DenseMatrix,
        out_of: usize,
        into: usize,
        cp: usize,
        cn: usize,
        g: f64,
    ) {
        self.stamp_vccs(m, out_of, into, cp, cn, g);
    }

    /// Updates the per-capacitor branch currents after a converged transient
    /// step (needed by the trapezoidal companion at the next step).
    pub fn update_capacitor_currents(
        &self,
        h: f64,
        method: CompanionMethod,
        x_new: &[f64],
        prev_x: &[f64],
        prev_cap_currents: &mut [f64],
    ) {
        for (idx, c) in self.capacitors.iter().enumerate() {
            let v_new = self.node_voltage(x_new, c.a) - self.node_voltage(x_new, c.b);
            let v_prev = self.node_voltage(prev_x, c.a) - self.node_voltage(prev_x, c.b);
            prev_cap_currents[idx] = match method {
                CompanionMethod::BackwardEuler => c.farads / h * (v_new - v_prev),
                CompanionMethod::Trapezoidal => {
                    2.0 * c.farads / h * (v_new - v_prev) - prev_cap_currents[idx]
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::source::SourceWaveform;

    #[test]
    fn compile_counts_unknowns() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, b, 10.0);
        ckt.add_inductor("L1", b, Circuit::GROUND, 1e-9);
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12);
        let sys = MnaSystem::compile(&ckt);
        // 2 node voltages + 1 vsource branch + 1 inductor branch
        assert_eq!(sys.num_unknowns(), 4);
        assert_eq!(sys.num_capacitors(), 1);
        // Branch unknowns are assigned in element order: V1 was added first.
        assert_eq!(sys.vsource_branch("V1"), Some(2));
        assert_eq!(sys.vsource_branch("nope"), None);
    }

    #[test]
    fn mosfet_adds_parasitic_capacitors() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            crate::mosfet::MosfetParams::nmos_018(),
            10e-6,
        );
        let sys = MnaSystem::compile(&ckt);
        assert_eq!(sys.num_capacitors(), 3); // Cgs, Cgd, Cdb
    }

    #[test]
    fn dc_voltage_divider_assembles_correctly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(2.0));
        ckt.add_resistor("R1", a, b, 1000.0);
        ckt.add_resistor("R2", b, Circuit::GROUND, 1000.0);
        let sys = MnaSystem::compile(&ckt);
        let x0 = vec![0.0; sys.num_unknowns()];
        let (m, rhs) = sys.assemble_dc(&x0);
        let x = m.solve(&rhs).unwrap();
        let vb = sys.node_voltage(&x, b.index());
        assert!((vb - 1.0).abs() < 1e-6);
        // Source branch current: current into the + terminal is -I(delivered) = -1 mA.
        let i = x[sys.vsource_branch("V1").unwrap()];
        assert!((i + 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn dc_inductor_acts_as_short() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_inductor("L1", a, b, 1e-9);
        ckt.add_resistor("R1", b, Circuit::GROUND, 100.0);
        let sys = MnaSystem::compile(&ckt);
        let x0 = vec![0.0; sys.num_unknowns()];
        let (m, rhs) = sys.assemble_dc(&x0);
        let x = m.solve(&rhs).unwrap();
        assert!((sys.node_voltage(&x, b.index()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_injects_into_to_node() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, SourceWaveform::dc(1e-3));
        ckt.add_resistor("R1", a, Circuit::GROUND, 1000.0);
        let sys = MnaSystem::compile(&ckt);
        let x0 = vec![0.0; sys.num_unknowns()];
        let (m, rhs) = sys.assemble_dc(&x0);
        let x = m.solve(&rhs).unwrap();
        assert!((sys.node_voltage(&x, a.index()) - 1.0).abs() < 1e-6);
    }
}
