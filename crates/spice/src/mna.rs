//! Modified nodal analysis: compilation of a [`Circuit`] into flat element
//! tables and assembly of the (linearized) MNA system for DC and transient
//! analysis.
//!
//! Unknown ordering: node voltages for every non-ground node (node `k` maps
//! to unknown `k - 1`), followed by one branch current per voltage source and
//! per inductor, in element order.

use rlc_numeric::DenseMatrix;

use crate::circuit::{Circuit, NodeId};
use crate::elements::Element;
use crate::mosfet::{
    eval_alpha_power, eval_alpha_power_cached, MosfetEvalCache, MosfetParams, MosfetType,
};
use crate::source::SourceWaveform;

/// Minimum conductance added from every node to ground for numerical
/// robustness (floating nodes, capacitor-only nodes in DC).
pub const GMIN: f64 = 1e-12;

/// Integration scheme used to turn capacitors and inductors into resistive
/// companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompanionMethod {
    /// Backward Euler: L-stable, slightly dissipative (damps LC ringing).
    BackwardEuler,
    /// Trapezoidal: energy-preserving, the default for waveform accuracy.
    Trapezoidal,
}

/// A compiled resistor.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledResistor {
    pub a: usize,
    pub b: usize,
    pub conductance: f64,
}

/// A compiled capacitor (explicit element or MOSFET parasitic).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledCapacitor {
    pub a: usize,
    pub b: usize,
    pub farads: f64,
}

/// A compiled inductor with its branch-current unknown.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledInductor {
    pub a: usize,
    pub b: usize,
    pub henries: f64,
    pub branch: usize,
}

/// A compiled mutual inductance coupling two inductor branch currents.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledMutual {
    pub branch_a: usize,
    pub branch_b: usize,
    pub henries: f64,
}

/// A compiled voltage source with its branch-current unknown.
#[derive(Debug, Clone)]
pub(crate) struct CompiledVsource {
    pub name: String,
    pub pos: usize,
    pub neg: usize,
    pub waveform: SourceWaveform,
    pub branch: usize,
}

/// A compiled current source.
#[derive(Debug, Clone)]
pub(crate) struct CompiledIsource {
    pub from: usize,
    pub to: usize,
    pub waveform: SourceWaveform,
}

/// A compiled MOSFET.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledMosfet {
    pub drain: usize,
    pub gate: usize,
    pub source: usize,
    pub params: MosfetParams,
    pub width: f64,
}

/// The compiled MNA view of a circuit.
///
/// Node index 0 is ground; unknown `k` is the voltage of node `k + 1` for
/// `k < num_nodes - 1`, and a branch current otherwise.
#[derive(Debug, Clone)]
pub struct MnaSystem {
    num_nodes: usize,
    num_unknowns: usize,
    pub(crate) resistors: Vec<CompiledResistor>,
    pub(crate) capacitors: Vec<CompiledCapacitor>,
    pub(crate) inductors: Vec<CompiledInductor>,
    pub(crate) mutuals: Vec<CompiledMutual>,
    pub(crate) vsources: Vec<CompiledVsource>,
    pub(crate) isources: Vec<CompiledIsource>,
    pub(crate) mosfets: Vec<CompiledMosfet>,
}

impl MnaSystem {
    /// Compiles a circuit into flat element tables.
    pub fn compile(circuit: &Circuit) -> Self {
        let num_nodes = circuit.num_nodes();
        let mut next_branch = num_nodes - 1;
        let mut resistors = Vec::new();
        let mut capacitors = Vec::new();
        let mut inductors = Vec::new();
        let mut inductor_names: Vec<&str> = Vec::new();
        let mut mutual_elements: Vec<(&str, &str, &str, f64)> = Vec::new();
        let mut vsources = Vec::new();
        let mut isources = Vec::new();
        let mut mosfets = Vec::new();

        for e in circuit.elements() {
            match e {
                Element::Resistor { a, b, ohms, .. } => resistors.push(CompiledResistor {
                    a: a.index(),
                    b: b.index(),
                    conductance: 1.0 / ohms,
                }),
                Element::Capacitor { a, b, farads, .. } => capacitors.push(CompiledCapacitor {
                    a: a.index(),
                    b: b.index(),
                    farads: *farads,
                }),
                Element::Inductor {
                    name,
                    a,
                    b,
                    henries,
                    ..
                } => {
                    inductor_names.push(name);
                    inductors.push(CompiledInductor {
                        a: a.index(),
                        b: b.index(),
                        henries: *henries,
                        branch: next_branch,
                    });
                    next_branch += 1;
                }
                Element::MutualInductance {
                    name,
                    inductor_a,
                    inductor_b,
                    henries,
                } => mutual_elements.push((name, inductor_a, inductor_b, *henries)),
                Element::VoltageSource {
                    name,
                    pos,
                    neg,
                    waveform,
                } => {
                    vsources.push(CompiledVsource {
                        name: name.clone(),
                        pos: pos.index(),
                        neg: neg.index(),
                        waveform: waveform.clone(),
                        branch: next_branch,
                    });
                    next_branch += 1;
                }
                Element::CurrentSource {
                    from, to, waveform, ..
                } => isources.push(CompiledIsource {
                    from: from.index(),
                    to: to.index(),
                    waveform: waveform.clone(),
                }),
                Element::Mosfet {
                    drain,
                    gate,
                    source,
                    params,
                    width,
                    ..
                } => {
                    mosfets.push(CompiledMosfet {
                        drain: drain.index(),
                        gate: gate.index(),
                        source: source.index(),
                        params: *params,
                        width: *width,
                    });
                    // Lumped parasitic capacitances: half the gate cap to the
                    // source, half to the drain (Miller), plus the drain
                    // junction cap to the source terminal (which is the local
                    // supply rail for inverter-style connections).
                    let cg = params.c_gate_per_width * width;
                    let cj = params.c_junction_per_width * width;
                    if cg > 0.0 {
                        capacitors.push(CompiledCapacitor {
                            a: gate.index(),
                            b: source.index(),
                            farads: 0.5 * cg,
                        });
                        capacitors.push(CompiledCapacitor {
                            a: gate.index(),
                            b: drain.index(),
                            farads: 0.5 * cg,
                        });
                    }
                    if cj > 0.0 {
                        capacitors.push(CompiledCapacitor {
                            a: drain.index(),
                            b: source.index(),
                            farads: cj,
                        });
                    }
                }
            }
        }

        // Mutual inductances are resolved after the element pass so they may
        // be declared in any order relative to the inductors they couple;
        // `Circuit::validate` reports missing names as a proper error first.
        let mutuals = mutual_elements
            .into_iter()
            .map(|(name, la, lb, henries)| {
                let branch_of = |wanted: &str| {
                    inductor_names
                        .iter()
                        .position(|n| *n == wanted)
                        .map(|i| inductors[i].branch)
                        .unwrap_or_else(|| {
                            panic!("mutual inductance {name} references unknown inductor {wanted}")
                        })
                };
                CompiledMutual {
                    branch_a: branch_of(la),
                    branch_b: branch_of(lb),
                    henries,
                }
            })
            .collect();

        MnaSystem {
            num_nodes,
            num_unknowns: next_branch,
            resistors,
            capacitors,
            inductors,
            mutuals,
            vsources,
            isources,
            mosfets,
        }
    }

    /// Total number of MNA unknowns (node voltages + branch currents).
    pub fn num_unknowns(&self) -> usize {
        self.num_unknowns
    }

    /// Number of circuit nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of compiled capacitors (explicit plus MOSFET parasitics); the
    /// dynamic state vector for transient analysis has this many entries.
    pub fn num_capacitors(&self) -> usize {
        self.capacitors.len()
    }

    /// Index of the unknown holding the voltage of `node`, or `None` for
    /// ground.
    pub fn voltage_unknown(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Branch-current unknown of the named voltage source, if any.
    pub fn vsource_branch(&self, name: &str) -> Option<usize> {
        self.vsources
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.branch)
    }

    /// Voltage of `node` taken from a solution vector.
    pub fn node_voltage(&self, x: &[f64], node: usize) -> f64 {
        if node == 0 {
            0.0
        } else {
            x[node - 1]
        }
    }

    fn stamp_conductance_with<AM: FnMut(usize, usize, f64)>(
        &self,
        add_m: &mut AM,
        a: usize,
        b: usize,
        g: f64,
    ) {
        if a != 0 {
            add_m(a - 1, a - 1, g);
        }
        if b != 0 {
            add_m(b - 1, b - 1, g);
        }
        if a != 0 && b != 0 {
            add_m(a - 1, b - 1, -g);
            add_m(b - 1, a - 1, -g);
        }
    }

    fn stamp_current_injection(&self, rhs: &mut [f64], into: usize, out_of: usize, amps: f64) {
        if into != 0 {
            rhs[into - 1] += amps;
        }
        if out_of != 0 {
            rhs[out_of - 1] -= amps;
        }
    }

    /// Whether the circuit is linear and time-invariant under a fixed step:
    /// only R, L, C and independent sources (no MOSFETs). LTI systems get the
    /// factor-once transient fast path.
    pub fn is_linear(&self) -> bool {
        self.mosfets.is_empty()
    }

    /// Stamps the state-independent part of the DC system: gmin, resistors,
    /// inductor shorts, voltage-source constraints and current-source
    /// injections. Everything except the MOSFET linearizations, which are the
    /// only stamps that change across Newton iterations. Mutual inductances
    /// contribute nothing at DC (`di/dt = 0`; the coupled inductors are
    /// already shorts).
    pub(crate) fn stamp_dc_static(&self, m: &mut DenseMatrix, rhs: &mut [f64]) {
        self.stamp_dc_matrix_core(&mut |i, j, v| m.add_at(i, j, v));
        self.stamp_dc_rhs(rhs);
    }

    /// The matrix half of [`MnaSystem::stamp_dc_static`], generic over the
    /// stamp sink so the same element walk fills dense matrices and sparse
    /// triplet buffers.
    pub(crate) fn stamp_dc_matrix_core<AM: FnMut(usize, usize, f64)>(&self, add_m: &mut AM) {
        for k in 0..(self.num_nodes - 1) {
            add_m(k, k, GMIN);
        }
        for r in &self.resistors {
            self.stamp_conductance_with(add_m, r.a, r.b, r.conductance);
        }
        for l in &self.inductors {
            // Branch row: Va - Vb = 0; KCL: branch current leaves a, enters b.
            self.stamp_branch_voltage_rows_with(add_m, l.a, l.b, l.branch);
        }
        for v in &self.vsources {
            self.stamp_branch_voltage_rows_with(add_m, v.pos, v.neg, v.branch);
        }
    }

    /// The RHS half of [`MnaSystem::stamp_dc_static`]: source `t = 0` values.
    pub(crate) fn stamp_dc_rhs(&self, rhs: &mut [f64]) {
        for v in &self.vsources {
            rhs[v.branch] = v.waveform.initial_value();
        }
        for i in &self.isources {
            self.stamp_current_injection(rhs, i.to, i.from, i.waveform.initial_value());
        }
    }

    /// Stamps every MOSFET linearized about `x_guess` — the per-iteration
    /// stamps of the split-stamp Newton scheme.
    pub(crate) fn stamp_mosfets(&self, m: &mut DenseMatrix, rhs: &mut [f64], x_guess: &[f64]) {
        for f in &self.mosfets {
            self.stamp_mosfet_core(
                f,
                x_guess,
                None,
                &mut |i, j, v| m.add_at(i, j, v),
                &mut |i, v| rhs[i] += v,
            );
        }
    }

    /// [`MnaSystem::stamp_mosfets`] with persistent per-device overdrive
    /// caches (one entry per compiled MOSFET), so repeated stamps at an
    /// unchanged gate voltage skip the `powf` evaluations.
    pub(crate) fn stamp_mosfets_cached(
        &self,
        m: &mut DenseMatrix,
        rhs: &mut [f64],
        x_guess: &[f64],
        caches: &mut [MosfetEvalCache],
    ) {
        for (f, cache) in self.mosfets.iter().zip(caches) {
            self.stamp_mosfet_core(
                f,
                x_guess,
                Some(cache),
                &mut |i, j, v| m.add_at(i, j, v),
                &mut |i, v| rhs[i] += v,
            );
        }
    }

    /// Stamps every MOSFET as a *low-rank row update*: matrix entries land in
    /// `delta` (one row per entry of [`MnaSystem::mosfet_rows`], addressed
    /// through `row_map`) and RHS entries in `delta_rhs`. This is the `V`/`Δb`
    /// of the Sherman–Morrison–Woodbury solve in the transient fast path.
    pub(crate) fn stamp_mosfets_delta(
        &self,
        delta: &mut DenseMatrix,
        delta_rhs: &mut [f64],
        x_guess: &[f64],
        row_map: &[usize],
        caches: &mut [MosfetEvalCache],
    ) {
        for (f, cache) in self.mosfets.iter().zip(caches) {
            self.stamp_mosfet_core(
                f,
                x_guess,
                Some(cache),
                &mut |i, j, v| delta.add_at(row_map[i], j, v),
                &mut |i, v| delta_rhs[row_map[i]] += v,
            );
        }
    }

    /// The matrix rows a MOSFET stamp can touch: the voltage unknowns of
    /// every non-ground drain/source terminal (gates only contribute
    /// columns). Sorted and deduplicated; its length is the rank of the
    /// per-iteration update in the Woodbury transient kernel.
    pub(crate) fn mosfet_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .mosfets
            .iter()
            .flat_map(|f| [f.drain, f.source])
            .filter(|&node| node != 0)
            .map(|node| node - 1)
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Assembles the DC operating-point system linearized about `x_guess`.
    ///
    /// Capacitors are open circuits; inductors become 0 V constraints through
    /// their branch equations; sources take their `t = 0` values.
    pub fn assemble_dc(&self, x_guess: &[f64]) -> (DenseMatrix, Vec<f64>) {
        let n = self.num_unknowns;
        let mut m = DenseMatrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        self.stamp_dc_static(&mut m, &mut rhs);
        self.stamp_mosfets(&mut m, &mut rhs, x_guess);
        (m, rhs)
    }

    /// Assembles the transient system at time `t` for step size `h`,
    /// linearized about `x_guess`, given the previous accepted solution
    /// `prev_x` and the previous capacitor currents `prev_cap_currents`
    /// (one per compiled capacitor, flowing `a → b`).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_transient(
        &self,
        t: f64,
        h: f64,
        method: CompanionMethod,
        x_guess: &[f64],
        prev_x: &[f64],
        prev_cap_currents: &[f64],
    ) -> (DenseMatrix, Vec<f64>) {
        let n = self.num_unknowns;
        let mut m = DenseMatrix::zeros(n, n);
        let mut rhs = vec![0.0; n];
        self.stamp_transient_static(&mut m, h, method);
        self.transient_rhs_into(t, h, method, prev_x, prev_cap_currents, &mut rhs);
        self.stamp_mosfets(&mut m, &mut rhs, x_guess);
        (m, rhs)
    }

    /// Stamps the time-invariant part of the transient matrix for a fixed
    /// step `h`: gmin, resistors, the capacitor/inductor companion
    /// conductances and the source/inductor branch constraint rows. Under a
    /// fixed step this matrix never changes, so LTI circuits factor it once
    /// per run and nonlinear circuits cache it and add only the MOSFET
    /// stamps per Newton iteration.
    pub(crate) fn stamp_transient_static(
        &self,
        m: &mut DenseMatrix,
        h: f64,
        method: CompanionMethod,
    ) {
        self.stamp_transient_matrix_core(h, method, &mut |i, j, v| m.add_at(i, j, v));
    }

    /// The element walk behind [`MnaSystem::stamp_transient_static`], generic
    /// over the stamp sink: the dense kernels pass `DenseMatrix::add_at`, the
    /// sparse kernel collects (row, col, value) triplets for
    /// [`rlc_numeric::CscMatrix::from_triplets`].
    pub(crate) fn stamp_transient_matrix_core<AM: FnMut(usize, usize, f64)>(
        &self,
        h: f64,
        method: CompanionMethod,
        add_m: &mut AM,
    ) {
        for k in 0..(self.num_nodes - 1) {
            add_m(k, k, GMIN);
        }
        for r in &self.resistors {
            self.stamp_conductance_with(add_m, r.a, r.b, r.conductance);
        }
        for c in &self.capacitors {
            let g = match method {
                CompanionMethod::BackwardEuler => c.farads / h,
                CompanionMethod::Trapezoidal => 2.0 * c.farads / h,
            };
            self.stamp_conductance_with(add_m, c.a, c.b, g);
        }
        for l in &self.inductors {
            let z = match method {
                CompanionMethod::BackwardEuler => l.henries / h,
                CompanionMethod::Trapezoidal => 2.0 * l.henries / h,
            };
            // KCL columns and branch voltage row.
            self.stamp_branch_voltage_rows_with(add_m, l.a, l.b, l.branch);
            // Branch equation: Va - Vb - z * i = rhs_val.
            add_m(l.branch, l.branch, -z);
        }
        for k in &self.mutuals {
            // Coupled branch equations gain the off-diagonal companion
            // impedance: Va - Vb - z*i - z_m*i_other = rhs_val.
            let z_m = match method {
                CompanionMethod::BackwardEuler => k.henries / h,
                CompanionMethod::Trapezoidal => 2.0 * k.henries / h,
            };
            add_m(k.branch_a, k.branch_b, -z_m);
            add_m(k.branch_b, k.branch_a, -z_m);
        }
        for v in &self.vsources {
            self.stamp_branch_voltage_rows_with(add_m, v.pos, v.neg, v.branch);
        }
    }

    /// Collects the transient static stamps as (row, col, value) triplets
    /// into `out` (cleared first) — the sparse kernel's assembly input.
    pub(crate) fn transient_triplets(
        &self,
        h: f64,
        method: CompanionMethod,
        out: &mut Vec<(usize, usize, f64)>,
    ) {
        out.clear();
        self.stamp_transient_matrix_core(h, method, &mut |i, j, v| out.push((i, j, v)));
    }

    /// Collects the DC static matrix stamps as triplets into `out` (cleared
    /// first) — the sparse linear DC path's assembly input.
    pub(crate) fn dc_triplets(&self, out: &mut Vec<(usize, usize, f64)>) {
        out.clear();
        self.stamp_dc_matrix_core(&mut |i, j, v| out.push((i, j, v)));
    }

    /// Number of *unique* matrix positions the transient static stamp
    /// touches — the structural nonzero count of the MNA matrix. A sizing
    /// diagnostic: compare against `num_unknowns²` to see how sparse a
    /// circuit's system really is (and why the sparse kernel wins on large
    /// nets). Independent of step size and integration method.
    pub fn stamp_nnz(&self) -> usize {
        let mut positions: Vec<(usize, usize)> = Vec::new();
        // h = 1.0 is arbitrary: only the stamp *pattern* matters here.
        self.stamp_transient_matrix_core(1.0, CompanionMethod::BackwardEuler, &mut |i, j, _| {
            positions.push((i, j))
        });
        positions.sort_unstable();
        positions.dedup();
        positions.len()
    }

    /// The unique `(row, col)` positions the transient companion stamp
    /// touches — independent of step size and integration method. A static
    /// analysis hook: this is the sparsity pattern every transient
    /// factorization operates on.
    pub fn transient_stamp_pattern(&self) -> Vec<(usize, usize)> {
        let mut positions: Vec<(usize, usize)> = Vec::new();
        // h = 1.0 is arbitrary: only the stamp *pattern* matters here.
        self.stamp_transient_matrix_core(1.0, CompanionMethod::BackwardEuler, &mut |i, j, _| {
            positions.push((i, j))
        });
        positions.sort_unstable();
        positions.dedup();
        positions
    }

    /// The unique `(row, col)` positions the DC stamp touches. This is the
    /// *discriminating* pattern for structural-rank analysis: inductor branch
    /// rows carry no companion diagonal at DC, so a branch constraint that is
    /// structurally deficient here (an empty row, or duplicate constraint
    /// rows competing for the same columns) makes the DC operating-point
    /// solve — the first thing every transient run performs — structurally
    /// singular, with no pivoting able to rescue it.
    pub fn dc_stamp_pattern(&self) -> Vec<(usize, usize)> {
        let mut positions: Vec<(usize, usize)> = Vec::new();
        self.stamp_dc_matrix_core(&mut |i, j, _| positions.push((i, j)));
        positions.sort_unstable();
        positions.dedup();
        positions
    }

    /// Fills `rhs` with the transient right-hand side at time `t`: source
    /// waveform values and the capacitor/inductor companion history terms.
    /// This is the only part of an LTI system that changes per time step, and
    /// it is identical across the Newton iterations of a nonlinear step.
    pub(crate) fn transient_rhs_into(
        &self,
        t: f64,
        h: f64,
        method: CompanionMethod,
        prev_x: &[f64],
        prev_cap_currents: &[f64],
        rhs: &mut [f64],
    ) {
        rhs.iter_mut().for_each(|v| *v = 0.0);
        for (idx, c) in self.capacitors.iter().enumerate() {
            let v_prev = self.node_voltage(prev_x, c.a) - self.node_voltage(prev_x, c.b);
            let ieq = match method {
                CompanionMethod::BackwardEuler => c.farads / h * v_prev,
                CompanionMethod::Trapezoidal => {
                    2.0 * c.farads / h * v_prev + prev_cap_currents[idx]
                }
            };
            // Companion current source injects ieq into node a (out of b):
            // i_cap = g * v - ieq, so the "-ieq" term is a current entering a.
            self.stamp_current_injection(rhs, c.a, c.b, ieq);
        }
        self.rhs_sources_and_inductors(t, h, method, prev_x, rhs);
    }

    /// Initializes the per-capacitor companion-source state for the fused RHS
    /// pass: `ieq_0 = g·v_0` (the capacitor starts current-free, so the step-1
    /// trapezoidal source `g·v_0 + i_0` reduces to the same value).
    pub(crate) fn init_cap_ieq(
        &self,
        h: f64,
        method: CompanionMethod,
        x0: &[f64],
        cap_ieq: &mut [f64],
    ) {
        for (state, c) in cap_ieq.iter_mut().zip(&self.capacitors) {
            let g = match method {
                CompanionMethod::BackwardEuler => c.farads / h,
                CompanionMethod::Trapezoidal => 2.0 * c.farads / h,
            };
            let v0 = self.node_voltage(x0, c.a) - self.node_voltage(x0, c.b);
            *state = g * v0;
        }
    }

    /// Fused variant of [`MnaSystem::transient_rhs_into`] used by the fast
    /// kernels: folds the post-step capacitor-current update into the RHS
    /// pass by keeping the companion source itself as state. For the
    /// trapezoidal rule, `ieq_{k+1} = g·v_k + i_k` with
    /// `i_k = g·v_k − ieq_k` gives the one-multiply recurrence
    /// `ieq_{k+1} = 2·g·v_k − ieq_k`; backward Euler has no current memory.
    /// One pass per step instead of two (assemble + update).
    pub(crate) fn transient_rhs_fused(
        &self,
        t: f64,
        h: f64,
        method: CompanionMethod,
        prev_x: &[f64],
        cap_ieq: &mut [f64],
        rhs: &mut [f64],
    ) {
        rhs.iter_mut().for_each(|v| *v = 0.0);
        match method {
            CompanionMethod::BackwardEuler => {
                for c in &self.capacitors {
                    let v_prev = self.node_voltage(prev_x, c.a) - self.node_voltage(prev_x, c.b);
                    let ieq = c.farads / h * v_prev;
                    self.stamp_current_injection(rhs, c.a, c.b, ieq);
                }
            }
            CompanionMethod::Trapezoidal => {
                for (state, c) in cap_ieq.iter_mut().zip(&self.capacitors) {
                    let g2 = 2.0 * (2.0 * c.farads / h);
                    let v_prev = self.node_voltage(prev_x, c.a) - self.node_voltage(prev_x, c.b);
                    let ieq = g2 * v_prev - *state;
                    *state = ieq;
                    self.stamp_current_injection(rhs, c.a, c.b, ieq);
                }
            }
        }
        self.rhs_sources_and_inductors(t, h, method, prev_x, rhs);
    }

    /// Inductor companion terms and source values of the transient RHS
    /// (shared by the plain and fused assembly passes).
    fn rhs_sources_and_inductors(
        &self,
        t: f64,
        h: f64,
        method: CompanionMethod,
        prev_x: &[f64],
        rhs: &mut [f64],
    ) {
        for l in &self.inductors {
            let i_prev = prev_x[l.branch];
            let v_prev = self.node_voltage(prev_x, l.a) - self.node_voltage(prev_x, l.b);
            rhs[l.branch] = match method {
                CompanionMethod::BackwardEuler => -(l.henries / h) * i_prev,
                CompanionMethod::Trapezoidal => -(2.0 * l.henries / h) * i_prev - v_prev,
            };
        }
        for k in &self.mutuals {
            // History of the coupled branch current (the v_prev part of the
            // trapezoidal companion is already carried by the self terms).
            let z_m = match method {
                CompanionMethod::BackwardEuler => k.henries / h,
                CompanionMethod::Trapezoidal => 2.0 * k.henries / h,
            };
            rhs[k.branch_a] -= z_m * prev_x[k.branch_b];
            rhs[k.branch_b] -= z_m * prev_x[k.branch_a];
        }
        for v in &self.vsources {
            rhs[v.branch] = v.waveform.value_at(t);
        }
        for i in &self.isources {
            self.stamp_current_injection(rhs, i.to, i.from, i.waveform.value_at(t));
        }
    }

    /// Stamps the `+1/-1` pattern shared by ideal voltage sources, DC
    /// inductor shorts and the voltage part of inductor branch equations.
    fn stamp_branch_voltage_rows_with<AM: FnMut(usize, usize, f64)>(
        &self,
        add_m: &mut AM,
        pos: usize,
        neg: usize,
        branch: usize,
    ) {
        if pos != 0 {
            add_m(pos - 1, branch, 1.0);
            add_m(branch, pos - 1, 1.0);
        }
        if neg != 0 {
            add_m(neg - 1, branch, -1.0);
            add_m(branch, neg - 1, -1.0);
        }
    }

    /// Stamps a MOSFET linearized about the guess voltages. The matrix and
    /// RHS sinks receive *unknown indices* (ground already skipped), so the
    /// same stamping logic serves the dense matrices of the full-assembly
    /// kernels and the low-rank delta rows of the Woodbury kernel.
    fn stamp_mosfet_core<AM: FnMut(usize, usize, f64), AR: FnMut(usize, f64)>(
        &self,
        f: &CompiledMosfet,
        x_guess: &[f64],
        cache: Option<&mut MosfetEvalCache>,
        add_m: &mut AM,
        add_rhs: &mut AR,
    ) {
        let vd = self.node_voltage(x_guess, f.drain);
        let vg = self.node_voltage(x_guess, f.gate);
        let vs = self.node_voltage(x_guess, f.source);

        // Pick the device-frame (high, low) channel terminals so the
        // device-frame Vds is always non-negative; the MOSFET is symmetric in
        // drain/source for this model.
        let (hi_node, lo_node, v_hi, v_lo) = match f.params.mos_type {
            MosfetType::Nmos => {
                if vd >= vs {
                    (f.drain, f.source, vd, vs)
                } else {
                    (f.source, f.drain, vs, vd)
                }
            }
            MosfetType::Pmos => {
                // For PMOS the "source" in device frame is the higher terminal.
                if vs >= vd {
                    (f.source, f.drain, vs, vd)
                } else {
                    (f.drain, f.source, vd, vs)
                }
            }
        };

        match f.params.mos_type {
            MosfetType::Nmos => {
                // Device frame: drain = hi, source = lo.
                let vgs = vg - v_lo;
                let vds = v_hi - v_lo;
                let e = match cache {
                    Some(c) => eval_alpha_power_cached(&f.params, f.width, vgs, vds, c),
                    None => eval_alpha_power(&f.params, f.width, vgs, vds),
                };
                // Current leaves hi (drain) node, enters lo (source) node:
                // I = id0 + gm*(Vg - Vlo - vgs) + gds*(Vhi - Vlo - vds)
                let const_term = e.id - e.gm * vgs - e.gds * vds;
                stamp_vccs_with(add_m, hi_node, lo_node, f.gate, lo_node, e.gm);
                stamp_vccs_with(add_m, hi_node, lo_node, hi_node, lo_node, e.gds);
                stamp_injection_with(add_rhs, lo_node, hi_node, const_term);
            }
            MosfetType::Pmos => {
                // Device frame: source = hi, drain = lo.
                let vsg = v_hi - vg;
                let vsd = v_hi - v_lo;
                let e = match cache {
                    Some(c) => eval_alpha_power_cached(&f.params, f.width, vsg, vsd, c),
                    None => eval_alpha_power(&f.params, f.width, vsg, vsd),
                };
                // Current leaves hi (source) node, enters lo (drain) node:
                // I = id0 + gm*(Vhi - Vg - vsg) + gds*(Vhi - Vlo - vsd)
                let const_term = e.id - e.gm * vsg - e.gds * vsd;
                stamp_vccs_with(add_m, hi_node, lo_node, hi_node, f.gate, e.gm);
                stamp_vccs_with(add_m, hi_node, lo_node, hi_node, lo_node, e.gds);
                stamp_injection_with(add_rhs, lo_node, hi_node, const_term);
            }
        }
    }

    /// Number of compiled MOSFETs (the length expected of the eval-cache
    /// slice handed to the cached stamp paths).
    pub(crate) fn num_mosfets(&self) -> usize {
        self.mosfets.len()
    }

    /// Updates the per-capacitor branch currents after a converged transient
    /// step (needed by the trapezoidal companion at the next step).
    pub fn update_capacitor_currents(
        &self,
        h: f64,
        method: CompanionMethod,
        x_new: &[f64],
        prev_x: &[f64],
        prev_cap_currents: &mut [f64],
    ) {
        for (idx, c) in self.capacitors.iter().enumerate() {
            let v_new = self.node_voltage(x_new, c.a) - self.node_voltage(x_new, c.b);
            let v_prev = self.node_voltage(prev_x, c.a) - self.node_voltage(prev_x, c.b);
            prev_cap_currents[idx] = match method {
                CompanionMethod::BackwardEuler => c.farads / h * (v_new - v_prev),
                CompanionMethod::Trapezoidal => {
                    2.0 * c.farads / h * (v_new - v_prev) - prev_cap_currents[idx]
                }
            };
        }
    }
}

/// Stamps a voltage-controlled current source into an arbitrary matrix sink:
/// a current `g * (V_cp - V_cn)` leaves node `out_of` and enters node `into`.
/// Node arguments are circuit node indices (0 = ground, skipped); the sink
/// receives unknown indices. Also serves the MOSFET output conductance,
/// where the controlling and conducting node pairs coincide.
fn stamp_vccs_with<AM: FnMut(usize, usize, f64)>(
    add_m: &mut AM,
    out_of: usize,
    into: usize,
    cp: usize,
    cn: usize,
    g: f64,
) {
    for (node, sign) in [(out_of, 1.0), (into, -1.0)] {
        if node == 0 {
            continue;
        }
        if cp != 0 {
            add_m(node - 1, cp - 1, sign * g);
        }
        if cn != 0 {
            add_m(node - 1, cn - 1, -sign * g);
        }
    }
}

/// Stamps a current injection of `amps` into node `into` (out of `out_of`)
/// into an arbitrary RHS sink; ground rows are skipped.
fn stamp_injection_with<AR: FnMut(usize, f64)>(
    add_rhs: &mut AR,
    into: usize,
    out_of: usize,
    amps: f64,
) {
    if into != 0 {
        add_rhs(into - 1, amps);
    }
    if out_of != 0 {
        add_rhs(out_of - 1, -amps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::source::SourceWaveform;

    #[test]
    fn compile_counts_unknowns() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, b, 10.0);
        ckt.add_inductor("L1", b, Circuit::GROUND, 1e-9);
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12);
        let sys = MnaSystem::compile(&ckt);
        // 2 node voltages + 1 vsource branch + 1 inductor branch
        assert_eq!(sys.num_unknowns(), 4);
        assert_eq!(sys.num_capacitors(), 1);
        // Branch unknowns are assigned in element order: V1 was added first.
        assert_eq!(sys.vsource_branch("V1"), Some(2));
        assert_eq!(sys.vsource_branch("nope"), None);
    }

    #[test]
    fn stamp_nnz_counts_unique_positions() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, b, 10.0);
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12);
        let sys = MnaSystem::compile(&ckt);
        // Unknowns: va, vb, iV1. Positions: gmin+R+C diagonals (a,a) (b,b),
        // R off-diagonals (a,b) (b,a), vsource rows (a,branch) (branch,a).
        assert_eq!(sys.stamp_nnz(), 6);
        assert_eq!(ckt.node_count(), 2);
        assert_eq!(ckt.stamp_nnz(), 6);
        // Triplets cover the same positions (with duplicates pre-merge).
        let mut triplets = Vec::new();
        sys.transient_triplets(1e-12, CompanionMethod::Trapezoidal, &mut triplets);
        let mut positions: Vec<(usize, usize)> = triplets.iter().map(|&(i, j, _)| (i, j)).collect();
        positions.sort_unstable();
        positions.dedup();
        assert_eq!(positions.len(), 6);
    }

    #[test]
    fn triplet_assembly_matches_dense_stamp() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::rising_ramp(0.0, 1e-10, 1.0),
        );
        ckt.add_resistor("R1", a, b, 10.0);
        ckt.add_inductor("L1", b, c, 1e-9);
        ckt.add_capacitor("C1", c, Circuit::GROUND, 1e-12);
        let sys = MnaSystem::compile(&ckt);
        let n = sys.num_unknowns();
        for method in [CompanionMethod::BackwardEuler, CompanionMethod::Trapezoidal] {
            let h = 5e-13;
            let mut dense = DenseMatrix::zeros(n, n);
            sys.stamp_transient_static(&mut dense, h, method);
            let mut triplets = Vec::new();
            sys.transient_triplets(h, method, &mut triplets);
            let csc = rlc_numeric::CscMatrix::from_triplets(n, &triplets);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (dense.get(i, j) - csc.get(i, j)).abs() < 1e-15,
                        "mismatch at ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn mosfet_adds_parasitic_capacitors() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_mosfet(
            "M1",
            d,
            g,
            Circuit::GROUND,
            crate::mosfet::MosfetParams::nmos_018(),
            10e-6,
        );
        let sys = MnaSystem::compile(&ckt);
        assert_eq!(sys.num_capacitors(), 3); // Cgs, Cgd, Cdb
    }

    #[test]
    fn dc_voltage_divider_assembles_correctly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(2.0));
        ckt.add_resistor("R1", a, b, 1000.0);
        ckt.add_resistor("R2", b, Circuit::GROUND, 1000.0);
        let sys = MnaSystem::compile(&ckt);
        let x0 = vec![0.0; sys.num_unknowns()];
        let (m, rhs) = sys.assemble_dc(&x0);
        let x = m.solve(&rhs).unwrap();
        let vb = sys.node_voltage(&x, b.index());
        assert!((vb - 1.0).abs() < 1e-6);
        // Source branch current: current into the + terminal is -I(delivered) = -1 mA.
        let i = x[sys.vsource_branch("V1").unwrap()];
        assert!((i + 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn dc_inductor_acts_as_short() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_inductor("L1", a, b, 1e-9);
        ckt.add_resistor("R1", b, Circuit::GROUND, 100.0);
        let sys = MnaSystem::compile(&ckt);
        let x0 = vec![0.0; sys.num_unknowns()];
        let (m, rhs) = sys.assemble_dc(&x0);
        let x = m.solve(&rhs).unwrap();
        assert!((sys.node_voltage(&x, b.index()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_injects_into_to_node() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", Circuit::GROUND, a, SourceWaveform::dc(1e-3));
        ckt.add_resistor("R1", a, Circuit::GROUND, 1000.0);
        let sys = MnaSystem::compile(&ckt);
        let x0 = vec![0.0; sys.num_unknowns()];
        let (m, rhs) = sys.assemble_dc(&x0);
        let x = m.solve(&rhs).unwrap();
        assert!((sys.node_voltage(&x, a.index()) - 1.0).abs() < 1e-6);
    }
}
