//! Batched variation sweeps: many corner / Monte-Carlo samples of one
//! topology through shared factorizations and panelized solves.
//!
//! A variation sample changes element *values* (R/L/C scale factors, supply
//! level, a temperature-like resistance drift) but never the topology, so
//! across a sweep the MNA sparsity pattern is fixed. This module exploits
//! that three ways:
//!
//! 1. **One compile, one symbolic analysis.** The circuit is compiled to an
//!    [`MnaSystem`] once; per matrix-distinct sample group the compiled
//!    element tables are re-scaled in place and the companion matrix is
//!    refreshed on the fixed sparsity pattern
//!    ([`CscMatrix::revalue_from_triplets`] + [`SparseLu::refactor`]), so the
//!    fill-reducing ordering and reachability analysis are paid once for the
//!    whole sweep.
//! 2. **One factorization per matrix group.** Samples that share the same
//!    effective R/L/C scales (e.g. a supply-only Monte-Carlo, or repeated
//!    draws of one process corner) differ only in their right-hand sides.
//!    They are batched into a panel and pushed through the stored LU with
//!    [`SparseLu::solve_many_prepivoted`] / [`LuFactors::solve_many_into`] —
//!    each factor entry is loaded once per time step for the whole batch,
//!    and on the sparse path the RHS panel is assembled directly in pivotal
//!    row order so the solve performs no permutation passes at all.
//! 3. **Panelized history state.** The capacitor companion-source recurrence
//!    and inductor history are carried lane-major (`state[element * k +
//!    lane]`), so the per-step RHS assembly walks each element table once
//!    with a contiguous inner lane loop.
//!
//! Only probe waveforms are recorded (a full solution history for hundreds
//! of samples would dwarf the simulation cost in memory traffic).

use rlc_numeric::{CscMatrix, DenseMatrix, Diagnostic, LuFactors, SparseLu};

use crate::circuit::{Circuit, NodeId};
use crate::dc::{dc_solve_compiled, DcOptions};
use crate::mna::{CompanionMethod, MnaSystem};
use crate::transient::{InitialState, TransientOptions, SPARSE_AUTO_THRESHOLD};
use crate::waveform::Waveform;
use crate::SpiceError;

/// Upper bound on the number of sample lanes solved in one panel. Chunking
/// keeps the three working panels (previous solution, RHS, next solution)
/// cache-resident for large circuits; the factorization is still shared by
/// every chunk of the group.
const MAX_PANEL_LANES: usize = 64;

/// Default per-degree relative resistance drift used to fold
/// [`VariationSpec::temperature_delta`] into the effective resistance scale
/// (a typical interconnect copper coefficient).
pub const DEFAULT_R_TEMP_COEFF: f64 = 0.004;

/// One variation sample: per-element-class scale factors applied to a base
/// circuit.
///
/// All factors are multiplicative and default to the nominal `1.0` (and a
/// `temperature_delta` of zero). The temperature acts on resistances through
/// a linear coefficient: the effective resistance scale is
/// `r_scale * (1 + r_temp_coeff * temperature_delta)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// Resistance scale factor (every resistor's ohms multiply by this).
    pub r_scale: f64,
    /// Inductance scale factor (self and mutual inductances).
    pub l_scale: f64,
    /// Capacitance scale factor.
    pub c_scale: f64,
    /// Source scale factor: every voltage/current source value (and any
    /// supply-referenced initial condition) multiplies by this — the Vdd
    /// knob.
    pub source_scale: f64,
    /// Temperature excursion from nominal, in degrees.
    pub temperature_delta: f64,
    /// Per-degree relative resistance drift folded into the effective
    /// resistance scale.
    pub r_temp_coeff: f64,
}

impl Default for VariationSpec {
    fn default() -> Self {
        VariationSpec::nominal()
    }
}

impl VariationSpec {
    /// The nominal sample: all scales `1.0`, no temperature excursion.
    pub fn nominal() -> Self {
        VariationSpec {
            r_scale: 1.0,
            l_scale: 1.0,
            c_scale: 1.0,
            source_scale: 1.0,
            temperature_delta: 0.0,
            r_temp_coeff: DEFAULT_R_TEMP_COEFF,
        }
    }

    /// Sets the resistance scale (builder style).
    pub fn with_r_scale(mut self, s: f64) -> Self {
        self.r_scale = s;
        self
    }

    /// Sets the inductance scale (builder style).
    pub fn with_l_scale(mut self, s: f64) -> Self {
        self.l_scale = s;
        self
    }

    /// Sets the capacitance scale (builder style).
    pub fn with_c_scale(mut self, s: f64) -> Self {
        self.c_scale = s;
        self
    }

    /// Sets the source (Vdd) scale (builder style).
    pub fn with_source_scale(mut self, s: f64) -> Self {
        self.source_scale = s;
        self
    }

    /// Sets the temperature excursion in degrees (builder style).
    pub fn with_temperature_delta(mut self, dt: f64) -> Self {
        self.temperature_delta = dt;
        self
    }

    /// Effective resistance scale after folding in the temperature drift.
    pub fn effective_r_scale(&self) -> f64 {
        self.r_scale * (1.0 + self.r_temp_coeff * self.temperature_delta)
    }

    /// Collects every violation in the sample as a lint-style
    /// [`Diagnostic`] (code `L040`, Error severity, locus = the offending
    /// field). An empty list means the sample is valid. Unlike
    /// [`VariationSpec::validate`] this never stops at the first bad field,
    /// so a caller fixing a spec sees the complete damage report at once.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let positive = [
            ("r_scale", self.r_scale),
            ("l_scale", self.l_scale),
            ("c_scale", self.c_scale),
            ("effective_r_scale", self.effective_r_scale()),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                out.push(Diagnostic::error(
                    "L040",
                    name,
                    format!("variation {name} must be finite and positive, got {v:e}"),
                ));
            }
        }
        if !(self.source_scale.is_finite() && self.source_scale >= 0.0) {
            out.push(Diagnostic::error(
                "L040",
                "source_scale",
                format!(
                    "variation source_scale must be finite and non-negative, got {:e}",
                    self.source_scale
                ),
            ));
        }
        out
    }

    /// Validates the sample: every scale (including the effective,
    /// temperature-adjusted resistance scale) must be finite and positive,
    /// and the source scale finite and non-negative.
    ///
    /// # Errors
    /// Returns [`SpiceError::InvalidOptions`] listing **every** offending
    /// field (not just the first), built from
    /// [`VariationSpec::diagnostics`].
    pub fn validate(&self) -> Result<(), SpiceError> {
        let diags = self.diagnostics();
        if diags.is_empty() {
            return Ok(());
        }
        let list: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        Err(SpiceError::InvalidOptions(format!(
            "invalid variation sample ({} violation{}): {}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            list.join("; ")
        )))
    }

    /// Grouping key: samples with bit-identical effective R/L/C scales share
    /// one companion matrix (and therefore one factorization); they differ
    /// only in their right-hand sides.
    fn matrix_key(&self) -> (u64, u64, u64) {
        (
            self.effective_r_scale().to_bits(),
            self.l_scale.to_bits(),
            self.c_scale.to_bits(),
        )
    }
}

/// Result of a variation sweep: the shared time axis plus, per sample and
/// probe node, the recorded voltage waveform.
#[derive(Debug, Clone)]
pub struct SweepResult {
    times: Vec<f64>,
    num_samples: usize,
    probe_names: Vec<String>,
    /// `values[sample * probes + probe]` is the waveform of that probe.
    values: Vec<Vec<f64>>,
    matrix_groups: usize,
}

impl SweepResult {
    /// Simulated time points (shared by every sample).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of variation samples simulated.
    pub fn num_samples(&self) -> usize {
        self.num_samples
    }

    /// Names of the probed nodes, in probe order.
    pub fn probe_names(&self) -> &[String] {
        &self.probe_names
    }

    /// Number of distinct companion matrices the sweep factorized — the
    /// batching diagnostic (a supply-only sweep reports `1`).
    pub fn matrix_groups(&self) -> usize {
        self.matrix_groups
    }

    /// Raw recorded voltages of one (sample, probe) pair, one value per time
    /// point.
    ///
    /// # Panics
    /// Panics if `sample` or `probe` is out of range.
    pub fn samples(&self, sample: usize, probe: usize) -> &[f64] {
        assert!(sample < self.num_samples, "sample out of range");
        assert!(probe < self.probe_names.len(), "probe out of range");
        &self.values[sample * self.probe_names.len() + probe]
    }

    /// Waveform of one (sample, probe) pair.
    ///
    /// # Panics
    /// Panics if `sample` or `probe` is out of range.
    pub fn waveform(&self, sample: usize, probe: usize) -> Waveform {
        Waveform::new(self.times.clone(), self.samples(sample, probe).to_vec())
    }
}

/// Runner for batched variation sweeps over one linear circuit.
///
/// ```
/// use rlc_spice::prelude::*;
/// use rlc_spice::sweep::{VariationSpec, VariationSweep};
///
/// let mut ckt = Circuit::new();
/// let inp = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add_vsource("V1", inp, Circuit::GROUND, SourceWaveform::rising_ramp(1.0, 0.0, 1e-11));
/// ckt.add_resistor("R1", inp, out, 100.0);
/// ckt.add_capacitor("C1", out, Circuit::GROUND, 1e-13);
/// ckt.set_initial_condition(inp, 0.0);
///
/// let opts = TransientOptions::try_new(1e-12, 1e-10).unwrap();
/// let specs = [
///     VariationSpec::nominal(),
///     VariationSpec::nominal().with_r_scale(1.2).with_source_scale(0.9),
/// ];
/// let result = VariationSweep::new(opts).run(&ckt, &[out], &specs).unwrap();
/// assert_eq!(result.num_samples(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct VariationSweep {
    options: TransientOptions,
}

impl VariationSweep {
    /// Creates a sweep runner with the given transient options (the time
    /// axis, integration method and initial-state policy apply to every
    /// sample).
    pub fn new(options: TransientOptions) -> Self {
        VariationSweep { options }
    }

    /// Simulates every sample of `specs` on `circuit`, recording the voltage
    /// waveforms of `probes`.
    ///
    /// Samples sharing the same effective R/L/C scales are batched through a
    /// single factorization as a multi-RHS panel; distinct matrices refresh
    /// the values on the fixed sparsity pattern and replay the stored
    /// symbolic analysis. Results are ordered exactly like `specs`.
    ///
    /// # Errors
    /// Returns [`SpiceError::InvalidOptions`] for nonlinear circuits (the
    /// batched kernel requires LTI samples) or invalid specs, and any
    /// validation/DC/singular-matrix error the underlying analysis produces.
    pub fn run(
        &self,
        circuit: &Circuit,
        probes: &[NodeId],
        specs: &[VariationSpec],
    ) -> Result<SweepResult, SpiceError> {
        circuit.validate()?;
        for spec in specs {
            spec.validate()?;
        }
        let base = MnaSystem::compile(circuit);
        if !base.is_linear() {
            return Err(SpiceError::InvalidOptions(
                "variation sweeps require a linear circuit (no MOSFETs): the batched \
                 kernel shares one factorization across the sample panel"
                    .to_string(),
            ));
        }
        let opts = &self.options;
        let n = base.num_unknowns();
        let h = opts.time_step;
        let method = opts.method.companion();
        let n_steps = (opts.stop_time / opts.time_step).round() as usize;
        let num_probes = probes.len();

        let probe_names: Vec<String> = probes
            .iter()
            .map(|&p| circuit.node_name(p).to_string())
            .collect();
        let probe_rows: Vec<Option<usize>> =
            probes.iter().map(|&p| base.voltage_unknown(p)).collect();

        let mut values: Vec<Vec<f64>> = (0..specs.len() * num_probes)
            .map(|_| Vec::with_capacity(n_steps + 1))
            .collect();
        let mut times = Vec::with_capacity(n_steps + 1);
        times.push(0.0);
        for step in 1..=n_steps {
            times.push(step as f64 * h);
        }

        let use_ics = match opts.initial_state {
            InitialState::Auto => !circuit.initial_conditions().is_empty(),
            InitialState::DcOperatingPoint => false,
            InitialState::UseInitialConditions => true,
        };

        // Group sample lanes by companion-matrix identity, preserving
        // first-appearance order so results are deterministic.
        let mut groups: Vec<((u64, u64, u64), Vec<usize>)> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let key = spec.matrix_key();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, lanes)) => lanes.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        let matrix_groups = groups.len();

        // Assembly state shared by every group: the triplet buffer, the CSC
        // matrix and its triplet->slot map (pattern fixed across the sweep),
        // and the sparse factorization whose symbolic analysis is reused via
        // refactor. Small circuits use the dense factor-once path instead.
        let use_sparse = n >= SPARSE_AUTO_THRESHOLD;
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut csc = CscMatrix::default();
        let mut slot_map: Vec<usize> = Vec::new();
        let mut sparse = SparseLu::empty();
        let mut pattern_ready = false;
        let mut dense = DenseMatrix::default();
        let mut dense_lu = LuFactors::empty();

        // Panel working state, reused across chunks and groups, and the
        // topology-only RHS assembly plan shared by the whole sweep.
        let mut panel = PanelState::default();
        let sched = build_rhs_schedule(&base, n);

        for (group, (_, lanes)) in groups.iter().enumerate() {
            let spec0 = &specs[lanes[0]];
            let mut sys = base.clone();
            scale_system(&mut sys, spec0);
            let lints = lint_scaled_tables(&sys, group);
            if !lints.is_empty() {
                let list: Vec<String> = lints.iter().map(|d| d.to_string()).collect();
                return Err(SpiceError::InvalidOptions(format!(
                    "variation corner produced a non-physical element table: {}",
                    list.join("; ")
                )));
            }

            // Starting state at nominal source scale; each lane scales it by
            // its own source factor (valid by linearity: the DC solution and
            // any supply-referenced initial condition are homogeneous in the
            // source vector).
            let x0 = if use_ics {
                let mut x0 = vec![0.0; n];
                for (&node, &v) in circuit.initial_conditions() {
                    if let Some(idx) = sys.voltage_unknown(node) {
                        x0[idx] = v;
                    }
                }
                x0
            } else {
                dc_solve_compiled(&sys, circuit, DcOptions::default())?.0
            };

            // Factor this group's companion matrix, preferring the sparse
            // symbolic-reuse path and degrading to dense LU on pivot-health
            // failures (mirroring the transient kernel's gate).
            let mut sparse_ok = false;
            if use_sparse {
                sys.transient_triplets(h, method, &mut triplets);
                let factored = if pattern_ready {
                    csc.revalue_from_triplets(&slot_map, &triplets);
                    sparse.refactor(&csc).is_ok() || sparse.factor(&csc).is_ok()
                } else {
                    csc = CscMatrix::from_triplets(n, &triplets);
                    slot_map = csc.triplet_map(&triplets);
                    pattern_ready = true;
                    sparse.factor(&csc).is_ok()
                };
                sparse_ok = factored && sparse.pivot_extremes().0 >= 1e-9 * csc.max_abs();
            }
            if !sparse_ok {
                dense.resize_zeroed(n, n);
                sys.stamp_transient_static(&mut dense, h, method);
                dense
                    .factor_into(&mut dense_lu)
                    .map_err(|_| SpiceError::SingularMatrix { time: Some(h) })?;
            }

            // Sparse groups assemble the RHS panel directly in pivotal row
            // order so the solve never permutes; dense groups use the
            // identity map. Cloned per group: a refactor fallback to a full
            // factorization may re-pivot.
            let row_map: Vec<usize> = if sparse_ok {
                sparse.row_permutation().to_vec()
            } else {
                (0..n).collect()
            };

            for chunk in lanes.chunks(MAX_PANEL_LANES) {
                let k = chunk.len();
                let scales: Vec<f64> = chunk.iter().map(|&i| specs[i].source_scale).collect();
                panel.prepare(n, sys.num_capacitors(), k);

                // Seed the panel: lane j starts at x0 * its source scale.
                for (row, &base_v) in x0.iter().enumerate().take(n) {
                    for (lane, &s) in scales.iter().enumerate() {
                        panel.prev[row * k + lane] = base_v * s;
                    }
                }
                record_panel(&mut values, &panel.prev, chunk, &probe_rows, num_probes, k);
                init_cap_ieq_panel(&sys, h, method, &panel.prev, &mut panel.cap_ieq, k);

                for step in 1..=n_steps {
                    let t = step as f64 * h;
                    rhs_panel(&sys, t, h, method, &scales, &mut panel, &sched, &row_map);
                    if sparse_ok {
                        // The RHS panel is rebuilt from scratch next step
                        // (in pivotal row order), so the solve consumes it
                        // as its working buffer with no permutation pass.
                        sparse.solve_many_prepivoted(&mut panel.rhs, &mut panel.next, k);
                    } else {
                        dense_lu.solve_many_into(&panel.rhs, &mut panel.next, k);
                    }
                    record_panel(&mut values, &panel.next, chunk, &probe_rows, num_probes, k);
                    std::mem::swap(&mut panel.prev, &mut panel.next);
                }
            }
        }

        Ok(SweepResult {
            times,
            num_samples: specs.len(),
            probe_names,
            values,
            matrix_groups,
        })
    }
}

/// Lints the scaled compiled element tables of one matrix group: every
/// conductance, capacitance and (self) inductance must still be finite and
/// positive after the corner's scale factors applied — a huge `r_scale` can
/// underflow a conductance to zero, an overflowing product goes infinite.
/// Emitted as code `L041` so a corner cannot push a value non-passive
/// unnoticed; runs once per matrix group, not per sample.
fn lint_scaled_tables(sys: &MnaSystem, group: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let locus = format!("matrix group {group}");
    let mut check = |kind: &str, index: usize, value: f64| {
        if !(value.is_finite() && value > 0.0) {
            out.push(Diagnostic::error(
                "L041",
                locus.clone(),
                format!("scaled {kind} #{index} became non-passive: {value:e}"),
            ));
        }
    };
    for (i, r) in sys.resistors.iter().enumerate() {
        check("resistor conductance", i, r.conductance);
    }
    for (i, c) in sys.capacitors.iter().enumerate() {
        check("capacitance", i, c.farads);
    }
    for (i, l) in sys.inductors.iter().enumerate() {
        check("inductance", i, l.henries);
    }
    for (i, m) in sys.mutuals.iter().enumerate() {
        let v = m.henries;
        if !(v.is_finite() && v != 0.0) {
            out.push(Diagnostic::error(
                "L041",
                locus.clone(),
                format!("scaled mutual inductance #{i} became degenerate: {v:e}"),
            ));
        }
    }
    out
}

/// Scales the compiled element tables of `sys` in place according to `spec`.
/// Resistor tables store conductance, so the resistance scale divides.
fn scale_system(sys: &mut MnaSystem, spec: &VariationSpec) {
    let r = spec.effective_r_scale();
    for res in sys.resistors.iter_mut() {
        res.conductance /= r;
    }
    for c in sys.capacitors.iter_mut() {
        c.farads *= spec.c_scale;
    }
    for l in sys.inductors.iter_mut() {
        l.henries *= spec.l_scale;
    }
    for m in sys.mutuals.iter_mut() {
        m.henries *= spec.l_scale;
    }
}

/// Lane-major panel state for the batched time loop.
#[derive(Debug, Default)]
struct PanelState {
    /// Previous solution, `n * k`.
    prev: Vec<f64>,
    /// Next solution, `n * k`.
    next: Vec<f64>,
    /// Right-hand sides, `n * k`.
    rhs: Vec<f64>,
    /// Capacitor companion-source state, `num_capacitors * k`.
    cap_ieq: Vec<f64>,
    /// Per-element lane scratch, `k`.
    scratch: Vec<f64>,
}

impl PanelState {
    fn prepare(&mut self, n: usize, num_capacitors: usize, k: usize) {
        self.prev.clear();
        self.prev.resize(n * k, 0.0);
        self.next.clear();
        self.next.resize(n * k, 0.0);
        self.rhs.clear();
        self.rhs.resize(n * k, 0.0);
        self.cap_ieq.clear();
        self.cap_ieq.resize(num_capacitors * k, 0.0);
        self.scratch.clear();
        self.scratch.resize(k, 0.0);
    }
}

/// Writes the panel voltage difference `v(a) - v(b)` of every lane into
/// `out`. Node index 0 is ground.
fn panel_vdiff(x: &[f64], a: usize, b: usize, k: usize, out: &mut [f64]) {
    match (a, b) {
        (0, 0) => out.fill(0.0),
        (a, 0) => out.copy_from_slice(&x[(a - 1) * k..a * k]),
        (0, b) => {
            for (o, &v) in out.iter_mut().zip(&x[(b - 1) * k..b * k]) {
                *o = -v;
            }
        }
        (a, b) => {
            let (ra, rb) = (&x[(a - 1) * k..a * k], &x[(b - 1) * k..b * k]);
            for ((o, &va), &vb) in out.iter_mut().zip(ra).zip(rb) {
                *o = va - vb;
            }
        }
    }
}

/// Adds the lane currents of `amps` into node `into` and out of node
/// `out_of` (ground rows are dropped), lane by lane. `first` flags mark
/// rows this element writes *first* in assembly order: those lanes are
/// overwritten instead of accumulated, which lets [`rhs_panel`] skip
/// zero-filling the whole panel every step.
fn panel_inject(
    rhs: &mut [f64],
    into: usize,
    out_of: usize,
    k: usize,
    amps: &[f64],
    first: (bool, bool),
    row_map: &[usize],
) {
    if into != 0 {
        let r = row_map[into - 1] * k;
        let row = &mut rhs[r..r + k];
        if first.0 {
            for (r, &a) in row.iter_mut().zip(amps) {
                *r = a;
            }
        } else {
            for (r, &a) in row.iter_mut().zip(amps) {
                *r += a;
            }
        }
    }
    if out_of != 0 {
        let r = row_map[out_of - 1] * k;
        let row = &mut rhs[r..r + k];
        if first.1 {
            for (r, &a) in row.iter_mut().zip(amps) {
                *r = -a;
            }
        } else {
            for (r, &a) in row.iter_mut().zip(amps) {
                *r -= a;
            }
        }
    }
}

/// Precomputed assembly plan for [`rhs_panel`]: per capacitor / current
/// source, whether it is the *first* writer of its two RHS rows (and may
/// overwrite instead of accumulate), plus the rows no element ever writes
/// (which must be re-zeroed each step because the in-place panel solve
/// consumes the RHS buffer as scratch). Node rows are fed only by
/// capacitor and current-source injections; branch rows only by the
/// inductor / mutual / voltage-source loops, which already overwrite.
/// The plan depends only on the compiled topology, so one serves every
/// group and chunk of a sweep.
struct RhsSchedule {
    cap_first: Vec<(bool, bool)>,
    isrc_first: Vec<(bool, bool)>,
    zero_rows: Vec<usize>,
}

fn build_rhs_schedule(sys: &MnaSystem, n: usize) -> RhsSchedule {
    let mut written = vec![false; n];
    fn claim(written: &mut [bool], node: usize) -> bool {
        if node == 0 {
            return false;
        }
        let first = !written[node - 1];
        written[node - 1] = true;
        first
    }
    let cap_first = sys
        .capacitors
        .iter()
        .map(|c| (claim(&mut written, c.a), claim(&mut written, c.b)))
        .collect();
    for l in sys.inductors.iter() {
        written[l.branch] = true;
    }
    for v in sys.vsources.iter() {
        written[v.branch] = true;
    }
    let isrc_first = sys
        .isources
        .iter()
        .map(|i| (claim(&mut written, i.to), claim(&mut written, i.from)))
        .collect();
    let zero_rows = (0..n).filter(|&r| !written[r]).collect();
    RhsSchedule {
        cap_first,
        isrc_first,
        zero_rows,
    }
}

/// Panelized [`MnaSystem::init_cap_ieq`]: `ieq_0 = g * v_0` per capacitor
/// and lane.
fn init_cap_ieq_panel(
    sys: &MnaSystem,
    h: f64,
    method: CompanionMethod,
    x0: &[f64],
    cap_ieq: &mut [f64],
    k: usize,
) {
    for (idx, c) in sys.capacitors.iter().enumerate() {
        let g = match method {
            CompanionMethod::BackwardEuler => c.farads / h,
            CompanionMethod::Trapezoidal => 2.0 * c.farads / h,
        };
        let state = &mut cap_ieq[idx * k..(idx + 1) * k];
        panel_vdiff(x0, c.a, c.b, k, state);
        for s in state.iter_mut() {
            *s *= g;
        }
    }
}

/// Panelized [`MnaSystem::transient_rhs_fused`]: one pass over the element
/// tables builds the RHS of every lane, carrying the capacitor
/// companion-source recurrence as lane-major state and scaling source values
/// by each lane's source factor.
#[allow(clippy::too_many_arguments)]
fn rhs_panel(
    sys: &MnaSystem,
    t: f64,
    h: f64,
    method: CompanionMethod,
    source_scales: &[f64],
    panel: &mut PanelState,
    sched: &RhsSchedule,
    row_map: &[usize],
) {
    let k = source_scales.len();
    let prev = &panel.prev;
    let rhs = &mut panel.rhs;
    let cap_state = &mut panel.cap_ieq;
    let ieq = &mut panel.scratch;
    for &row in sched.zero_rows.iter() {
        let r = row_map[row] * k;
        rhs[r..r + k].fill(0.0);
    }

    for (idx, c) in sys.capacitors.iter().enumerate() {
        // Fast path for the dominant extracted-netlist shape — a grounded
        // capacitor that writes its node row first: recurrence and
        // injection fuse into one pass with no staging lane.
        if matches!(method, CompanionMethod::Trapezoidal)
            && c.a != 0
            && c.b == 0
            && sched.cap_first[idx].0
        {
            let g2 = 2.0 * (2.0 * c.farads / h);
            let state = &mut cap_state[idx * k..(idx + 1) * k];
            let pa = &prev[(c.a - 1) * k..c.a * k];
            let r = row_map[c.a - 1] * k;
            let out = &mut rhs[r..r + k];
            for ((s, &v), o) in state.iter_mut().zip(pa).zip(out.iter_mut()) {
                let next = g2 * v - *s;
                *s = next;
                *o = next;
            }
            continue;
        }
        panel_vdiff(prev, c.a, c.b, k, ieq);
        match method {
            CompanionMethod::BackwardEuler => {
                let g = c.farads / h;
                for v in ieq.iter_mut() {
                    *v *= g;
                }
            }
            CompanionMethod::Trapezoidal => {
                // ieq_{k+1} = 2*g*v_k - ieq_k with g = 2C/h.
                let g2 = 2.0 * (2.0 * c.farads / h);
                let state = &mut cap_state[idx * k..(idx + 1) * k];
                for (v, s) in ieq.iter_mut().zip(state.iter_mut()) {
                    let next = g2 * *v - *s;
                    *s = next;
                    *v = next;
                }
            }
        }
        panel_inject(rhs, c.a, c.b, k, ieq, sched.cap_first[idx], row_map);
    }

    for l in sys.inductors.iter() {
        let i_prev = &prev[l.branch * k..(l.branch + 1) * k];
        let out_row = row_map[l.branch] * k;
        let out = &mut rhs[out_row..out_row + k];
        match method {
            CompanionMethod::BackwardEuler => {
                let z = l.henries / h;
                for (o, &i) in out.iter_mut().zip(i_prev) {
                    *o = -z * i;
                }
            }
            CompanionMethod::Trapezoidal => {
                // `out = -z*i_prev - (v(a) - v(b))`, with the voltage
                // difference read straight from `prev` (no staging lane).
                let z = 2.0 * l.henries / h;
                match (l.a, l.b) {
                    (0, 0) => {
                        for (o, &i) in out.iter_mut().zip(i_prev) {
                            *o = -z * i;
                        }
                    }
                    (a, 0) => {
                        let pa = &prev[(a - 1) * k..a * k];
                        for ((o, &i), &va) in out.iter_mut().zip(i_prev).zip(pa) {
                            *o = -z * i - va;
                        }
                    }
                    (0, b) => {
                        let pb = &prev[(b - 1) * k..b * k];
                        for ((o, &i), &vb) in out.iter_mut().zip(i_prev).zip(pb) {
                            *o = -z * i + vb;
                        }
                    }
                    (a, b) => {
                        let pa = &prev[(a - 1) * k..a * k];
                        let pb = &prev[(b - 1) * k..b * k];
                        for (((o, &i), &va), &vb) in out.iter_mut().zip(i_prev).zip(pa).zip(pb) {
                            *o = -z * i - (va - vb);
                        }
                    }
                }
            }
        }
    }
    for m in sys.mutuals.iter() {
        let z_m = match method {
            CompanionMethod::BackwardEuler => m.henries / h,
            CompanionMethod::Trapezoidal => 2.0 * m.henries / h,
        };
        // Each branch row picks up the *other* branch's previous current;
        // RHS rows go through `row_map`, `prev` stays in original order.
        let (ra, rb) = (row_map[m.branch_a], row_map[m.branch_b]);
        let (lo, hi, lo_other, hi_other) = if ra < rb {
            (ra, rb, m.branch_b, m.branch_a)
        } else {
            (rb, ra, m.branch_a, m.branch_b)
        };
        let (head, tail) = rhs.split_at_mut(hi * k);
        let row_lo = &mut head[lo * k..(lo + 1) * k];
        let row_hi = &mut tail[..k];
        let prev_for_lo = &prev[lo_other * k..(lo_other + 1) * k];
        let prev_for_hi = &prev[hi_other * k..(hi_other + 1) * k];
        for ((r, &p_lo), (r2, &p_hi)) in row_lo
            .iter_mut()
            .zip(prev_for_lo)
            .zip(row_hi.iter_mut().zip(prev_for_hi))
        {
            *r -= z_m * p_lo;
            *r2 -= z_m * p_hi;
        }
    }
    for v in sys.vsources.iter() {
        let value = v.waveform.value_at(t);
        let out_row = row_map[v.branch] * k;
        let out = &mut rhs[out_row..out_row + k];
        for (o, &s) in out.iter_mut().zip(source_scales) {
            *o = value * s;
        }
    }
    for (idx, i) in sys.isources.iter().enumerate() {
        let value = i.waveform.value_at(t);
        let amps = &mut ieq[..k];
        for (a, &s) in amps.iter_mut().zip(source_scales) {
            *a = value * s;
        }
        panel_inject(rhs, i.to, i.from, k, amps, sched.isrc_first[idx], row_map);
    }
}

/// Appends the probed lane values of the current panel solution to the
/// per-(sample, probe) output vectors.
fn record_panel(
    values: &mut [Vec<f64>],
    x: &[f64],
    chunk: &[usize],
    probe_rows: &[Option<usize>],
    num_probes: usize,
    k: usize,
) {
    for (probe, row) in probe_rows.iter().enumerate() {
        match row {
            Some(idx) => {
                for (lane, &sample) in chunk.iter().enumerate() {
                    values[sample * num_probes + probe].push(x[idx * k + lane]);
                }
            }
            None => {
                for &sample in chunk {
                    values[sample * num_probes + probe].push(0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;
    use crate::transient::{IntegrationMethod, TransientAnalysis};

    /// An RLC ladder whose element values (and source amplitude) are already
    /// scaled — the hand-rolled reference a sweep sample must match.
    fn scaled_ladder(segments: usize, spec: &VariationSpec) -> Circuit {
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        ckt.add_vsource(
            "V1",
            src,
            Circuit::GROUND,
            SourceWaveform::rising_ramp(1.0 * spec.source_scale, 0.0, 5e-11),
        );
        let r_per = 72.44 / segments as f64 * 5.0 * spec.effective_r_scale();
        let l_per = 5e-12 / segments as f64 * spec.l_scale;
        let c_per = 1.1e-12 / segments as f64 * spec.c_scale;
        let mut prev = src;
        for i in 0..segments {
            let mid = ckt.node(&format!("m{i}"));
            let node = ckt.node(&format!("n{i}"));
            ckt.add_resistor(&format!("R{i}"), prev, mid, r_per);
            ckt.add_inductor(&format!("L{i}"), mid, node, l_per);
            ckt.add_capacitor(&format!("C{i}"), node, Circuit::GROUND, c_per);
            prev = node;
        }
        ckt.set_initial_condition(src, 0.0);
        ckt
    }

    fn far_node(ckt: &Circuit, segments: usize) -> NodeId {
        ckt.find_node(&format!("n{}", segments - 1)).unwrap()
    }

    fn test_specs() -> Vec<VariationSpec> {
        let mut specs = Vec::new();
        for i in 0..16 {
            let corner = i % 4;
            let (r, c) = match corner {
                0 => (1.0, 1.0),
                1 => (1.15, 0.9),
                2 => (0.85, 1.1),
                _ => (1.1, 1.12),
            };
            specs.push(
                VariationSpec::nominal()
                    .with_r_scale(r)
                    .with_c_scale(c)
                    .with_source_scale(0.9 + 0.02 * (i / 4) as f64)
                    .with_temperature_delta(if corner == 3 { 25.0 } else { 0.0 }),
            );
        }
        specs
    }

    fn options() -> TransientOptions {
        TransientOptions::try_new(1e-12, 4e-10).unwrap()
    }

    /// Sweep lanes must match hand-rolled independent runs of pre-scaled
    /// circuits within 1e-9 V — the dense-path (small circuit) case.
    #[test]
    fn sweep_matches_independent_runs_dense() {
        sweep_parity_case(12);
    }

    /// The sparse-path (>= SPARSE_AUTO_THRESHOLD unknowns) case, which also
    /// exercises the revalue + refactor symbolic reuse across matrix groups.
    #[test]
    fn sweep_matches_independent_runs_sparse() {
        sweep_parity_case(64);
    }

    fn sweep_parity_case(segments: usize) {
        let specs = test_specs();
        let base = scaled_ladder(segments, &VariationSpec::nominal());
        let probe = far_node(&base, segments);
        let result = VariationSweep::new(options())
            .run(&base, &[probe], &specs)
            .unwrap();
        assert_eq!(result.num_samples(), specs.len());
        assert_eq!(result.matrix_groups(), 4);

        for (i, spec) in specs.iter().enumerate() {
            let ckt = scaled_ladder(segments, spec);
            let reference = TransientAnalysis::new(options()).run(&ckt).unwrap();
            let want = reference.waveform(far_node(&ckt, segments));
            let got = result.samples(i, 0);
            assert_eq!(got.len(), want.values().len());
            for (step, (&g, &w)) in got.iter().zip(want.values()).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-9,
                    "segments={segments} sample {i} step {step}: {g} vs {w}"
                );
            }
        }
    }

    /// Backward Euler goes through the other companion/recurrence branch.
    #[test]
    fn sweep_parity_backward_euler() {
        let specs = test_specs()[..6].to_vec();
        let opts = TransientOptions::try_new(1e-12, 2e-10)
            .unwrap()
            .with_method(IntegrationMethod::BackwardEuler);
        let base = scaled_ladder(10, &VariationSpec::nominal());
        let probe = far_node(&base, 10);
        let result = VariationSweep::new(opts.clone())
            .run(&base, &[probe], &specs)
            .unwrap();
        for (i, spec) in specs.iter().enumerate() {
            let ckt = scaled_ladder(10, spec);
            let reference = TransientAnalysis::new(opts.clone()).run(&ckt).unwrap();
            let want = reference.waveform(far_node(&ckt, 10));
            for (step, (&g, &w)) in result.samples(i, 0).iter().zip(want.values()).enumerate() {
                assert!((g - w).abs() <= 1e-9, "sample {i} step {step}: {g} vs {w}");
            }
        }
    }

    /// A supply-only sweep shares one matrix: the whole batch goes through a
    /// single factorization.
    #[test]
    fn supply_only_sweep_uses_one_matrix_group() {
        let base = scaled_ladder(8, &VariationSpec::nominal());
        let probe = far_node(&base, 8);
        let specs: Vec<VariationSpec> = (0..9)
            .map(|i| VariationSpec::nominal().with_source_scale(0.8 + 0.05 * i as f64))
            .collect();
        let result = VariationSweep::new(options())
            .run(&base, &[probe], &specs)
            .unwrap();
        assert_eq!(result.matrix_groups(), 1);
        // By linearity, each lane is the nominal waveform times its scale.
        let nominal = result.samples(4, 0).to_vec();
        for (i, spec) in specs.iter().enumerate() {
            for (step, &v) in result.samples(i, 0).iter().enumerate() {
                let want = nominal[step] / specs[4].source_scale * spec.source_scale;
                assert!(
                    (v - want).abs() <= 1e-9,
                    "lane {i} step {step}: {v} vs {want}"
                );
            }
        }
    }

    /// Chunking must not change results: more lanes than MAX_PANEL_LANES in
    /// one group still match the per-sample references.
    #[test]
    fn chunked_panels_match_references() {
        let base = scaled_ladder(6, &VariationSpec::nominal());
        let probe = far_node(&base, 6);
        let specs: Vec<VariationSpec> = (0..MAX_PANEL_LANES + 7)
            .map(|i| VariationSpec::nominal().with_source_scale(0.5 + 0.005 * i as f64))
            .collect();
        let opts = TransientOptions::try_new(1e-12, 1e-10).unwrap();
        let result = VariationSweep::new(opts.clone())
            .run(&base, &[probe], &specs)
            .unwrap();
        for i in [0, MAX_PANEL_LANES - 1, MAX_PANEL_LANES, specs.len() - 1] {
            let ckt = scaled_ladder(6, &specs[i]);
            let reference = TransientAnalysis::new(opts.clone()).run(&ckt).unwrap();
            let want = reference.waveform(far_node(&ckt, 6));
            for (step, (&g, &w)) in result.samples(i, 0).iter().zip(want.values()).enumerate() {
                assert!((g - w).abs() <= 1e-9, "lane {i} step {step}");
            }
        }
    }

    #[test]
    fn nonlinear_circuits_are_rejected() {
        use crate::mosfet::MosfetParams;
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_vsource("V1", g, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", d, Circuit::GROUND, 1e3);
        ckt.add_mosfet("M1", d, g, Circuit::GROUND, MosfetParams::nmos_018(), 1.0);
        let err = VariationSweep::new(options())
            .run(&ckt, &[d], &[VariationSpec::nominal()])
            .unwrap_err();
        assert!(matches!(err, SpiceError::InvalidOptions(_)));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let base = scaled_ladder(4, &VariationSpec::nominal());
        let bad = VariationSpec::nominal().with_r_scale(-1.0);
        assert!(bad.validate().is_err());
        let err = VariationSweep::new(options())
            .run(&base, &[], &[bad])
            .unwrap_err();
        assert!(matches!(err, SpiceError::InvalidOptions(_)));
        // Temperature drift that drives the effective resistance negative.
        let frozen = VariationSpec::nominal().with_temperature_delta(-1e6);
        assert!(frozen.validate().is_err());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let base = scaled_ladder(4, &VariationSpec::nominal());
        let probe = far_node(&base, 4);
        let result = VariationSweep::new(options())
            .run(&base, &[probe], &[])
            .unwrap();
        assert_eq!(result.num_samples(), 0);
        assert_eq!(result.matrix_groups(), 0);
    }

    #[test]
    fn ground_probe_records_zeros() {
        let base = scaled_ladder(4, &VariationSpec::nominal());
        let result = VariationSweep::new(options())
            .run(&base, &[Circuit::GROUND], &[VariationSpec::nominal()])
            .unwrap();
        assert!(result.samples(0, 0).iter().all(|&v| v == 0.0));
        assert_eq!(result.probe_names()[0], "0");
    }
}
