//! # rlc-spice
//!
//! A small modified-nodal-analysis (MNA) circuit simulator that serves as the
//! golden reference engine for the RLC effective-capacitance reproduction —
//! the role HSPICE plays in the original paper.
//!
//! Supported elements: resistors, capacitors, inductors, independent voltage
//! and current sources (DC, ramp, PWL, pulse), and an alpha-power-law MOSFET
//! (Sakurai–Newton) that captures the velocity-saturated drive of deep
//! submicron devices. Analyses: DC operating point (Newton–Raphson with gmin)
//! and fixed-step transient analysis with backward-Euler or trapezoidal
//! companion models.
//!
//! The simulator is deliberately simple — dense LU, fixed time step — because
//! the circuits in this workspace are small (a gate plus a segmented RLC
//! line) and reproducibility matters more than raw speed.
//!
//! ## Example: RC charging through a resistor
//!
//! ```
//! use rlc_spice::prelude::*;
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.add_vsource("V1", vin, Circuit::GROUND, SourceWaveform::dc(1.0));
//! ckt.add_resistor("R1", vin, vout, 1e3);
//! ckt.add_capacitor("C1", vout, Circuit::GROUND, 1e-12);
//!
//! let opts = TransientOptions::try_new(10e-12, 10e-9)?;
//! let result = TransientAnalysis::new(opts).run(&ckt)?;
//! let wave = result.waveform(vout);
//! // After 10 time constants the capacitor is fully charged.
//! assert!((wave.last_value() - 1.0).abs() < 1e-3);
//! # Ok::<(), rlc_spice::SpiceError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod circuit;
pub mod dc;
pub mod elements;
pub mod mna;
pub mod mosfet;
pub mod source;
pub mod sweep;
pub mod testbench;
pub mod transient;
pub mod waveform;

pub use circuit::{Circuit, NodeId};
pub use dc::{dc_operating_point, DcOptions};
pub use elements::Element;
pub use mosfet::{MosfetParams, MosfetType};
pub use source::SourceWaveform;
pub use sweep::{SweepResult, VariationSpec, VariationSweep};
pub use transient::{
    IntegrationMethod, KernelStrategy, TransientAnalysis, TransientOptions, TransientResult,
    TransientWorkspace, SPARSE_AUTO_THRESHOLD,
};
pub use waveform::Waveform;

/// Convenient glob import for users of the simulator.
pub mod prelude {
    pub use crate::circuit::{Circuit, NodeId};
    pub use crate::dc::{dc_operating_point, DcOptions};
    pub use crate::mosfet::{MosfetParams, MosfetType};
    pub use crate::source::SourceWaveform;
    pub use crate::sweep::{SweepResult, VariationSpec, VariationSweep};
    pub use crate::transient::{
        IntegrationMethod, KernelStrategy, TransientAnalysis, TransientOptions, TransientResult,
        TransientWorkspace, SPARSE_AUTO_THRESHOLD,
    };
    pub use crate::waveform::Waveform;
    pub use crate::SpiceError;
}

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// The Newton–Raphson loop failed to converge.
    NonConvergence {
        /// Simulation time at which convergence failed (seconds); `None` for DC.
        time: Option<f64>,
        /// Number of iterations attempted.
        iterations: usize,
        /// Worst voltage update in the final iteration.
        max_delta: f64,
    },
    /// The MNA matrix was singular (typically a floating node or a loop of
    /// ideal voltage sources).
    SingularMatrix {
        /// Simulation time at which the solve failed; `None` for DC.
        time: Option<f64>,
    },
    /// The circuit failed a sanity check before analysis.
    InvalidCircuit(String),
    /// Analysis options failed validation (non-positive times, a stop time
    /// shorter than one step, or an impossible kernel strategy).
    InvalidOptions(String),
}

impl std::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpiceError::NonConvergence {
                time,
                iterations,
                max_delta,
            } => match time {
                Some(t) => write!(
                    f,
                    "newton failed to converge at t = {t:.3e} s after {iterations} iterations (max delta {max_delta:.3e})"
                ),
                None => write!(
                    f,
                    "newton failed to converge in DC analysis after {iterations} iterations (max delta {max_delta:.3e})"
                ),
            },
            SpiceError::SingularMatrix { time } => match time {
                Some(t) => write!(f, "singular MNA matrix at t = {t:.3e} s"),
                None => write!(f, "singular MNA matrix in DC analysis"),
            },
            SpiceError::InvalidCircuit(msg) => write!(f, "invalid circuit: {msg}"),
            SpiceError::InvalidOptions(msg) => write!(f, "invalid analysis options: {msg}"),
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = SpiceError::NonConvergence {
            time: Some(1e-9),
            iterations: 50,
            max_delta: 0.1,
        };
        let s = e.to_string();
        assert!(s.contains("newton"));
        assert!(s.contains("50"));

        let e = SpiceError::SingularMatrix { time: None };
        assert!(e.to_string().contains("DC"));

        let e = SpiceError::InvalidCircuit("no ground".into());
        assert!(e.to_string().contains("no ground"));
    }
}
