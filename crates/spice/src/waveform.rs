//! Sampled waveforms and the timing measurements used throughout the
//! workspace (50 % delay, 10–90 % transition time, crossings, overshoot).

use rlc_numeric::interp::{first_crossing, interp1};
use rlc_numeric::quadrature::trapezoid_sampled;

/// A sampled waveform: strictly increasing time points and the corresponding
/// values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from samples.
    ///
    /// # Panics
    /// Panics if the lengths differ, fewer than two samples are given, or the
    /// times are not strictly increasing.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "time/value length mismatch");
        assert!(times.len() >= 2, "waveform needs at least two samples");
        for w in times.windows(2) {
            assert!(w[1] > w[0], "times must be strictly increasing");
        }
        Self { times, values }
    }

    /// Builds a waveform by sampling a closure on a uniform grid from 0 to
    /// `t_stop` with `n` intervals.
    ///
    /// # Panics
    /// Panics if `n < 1` or `t_stop <= 0`.
    pub fn from_fn<F: Fn(f64) -> f64>(f: F, t_stop: f64, n: usize) -> Self {
        assert!(n >= 1 && t_stop > 0.0);
        let times: Vec<f64> = (0..=n).map(|k| t_stop * k as f64 / n as f64).collect();
        let values = times.iter().map(|&t| f(t)).collect();
        Self::new(times, values)
    }

    /// Time samples.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Value samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Always false (a waveform has at least two samples).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First sampled time.
    pub fn first_time(&self) -> f64 {
        self.times[0]
    }

    /// Last sampled time.
    pub fn last_time(&self) -> f64 {
        *self.times.last().unwrap()
    }

    /// Value at the last sample.
    pub fn last_value(&self) -> f64 {
        *self.values.last().unwrap()
    }

    /// Linearly interpolated value at time `t` (clamped to the sampled range).
    pub fn value_at(&self, t: f64) -> f64 {
        interp1(
            &self.times,
            &self.values,
            t.clamp(self.first_time(), self.last_time()),
        )
    }

    /// Minimum sampled value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sampled value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Time of the first crossing of `level`, searching in the direction
    /// given by `rising`. Returns `None` if the waveform never crosses.
    pub fn crossing_time(&self, level: f64, rising: bool) -> Option<f64> {
        first_crossing(&self.times, &self.values, level, rising)
    }

    /// Time of the first crossing of `fraction * v_ref`, e.g.
    /// `crossing_fraction(0.5, 1.8, true)` for the 50 % point of a 1.8 V
    /// rising transition.
    pub fn crossing_fraction(&self, fraction: f64, v_ref: f64, rising: bool) -> Option<f64> {
        self.crossing_time(fraction * v_ref, rising)
    }

    /// Transition time between `lo_frac * v_ref` and `hi_frac * v_ref`
    /// (e.g. 10 %–90 %). For falling edges pass `rising = false`; the result
    /// is always positive. Returns `None` if either crossing is missing.
    pub fn transition_time(
        &self,
        lo_frac: f64,
        hi_frac: f64,
        v_ref: f64,
        rising: bool,
    ) -> Option<f64> {
        let (first, second) = if rising {
            (
                self.crossing_fraction(lo_frac, v_ref, true)?,
                self.crossing_fraction(hi_frac, v_ref, true)?,
            )
        } else {
            (
                self.crossing_fraction(hi_frac, v_ref, false)?,
                self.crossing_fraction(lo_frac, v_ref, false)?,
            )
        };
        Some((second - first).abs())
    }

    /// 10 %–90 % transition time, the slew metric used in the paper's tables.
    pub fn slew_10_90(&self, v_ref: f64, rising: bool) -> Option<f64> {
        self.transition_time(0.1, 0.9, v_ref, rising)
    }

    /// 50 % delay of this waveform relative to a reference waveform (both
    /// referenced to `v_ref`): `t50(self) - t50(reference)`.
    pub fn delay_50_from(
        &self,
        reference: &Waveform,
        v_ref: f64,
        self_rising: bool,
        ref_rising: bool,
    ) -> Option<f64> {
        let t_self = self.crossing_fraction(0.5, v_ref, self_rising)?;
        let t_ref = reference.crossing_fraction(0.5, v_ref, ref_rising)?;
        Some(t_self - t_ref)
    }

    /// Overshoot above `v_ref` (0 if none).
    pub fn overshoot(&self, v_ref: f64) -> f64 {
        (self.max_value() - v_ref).max(0.0)
    }

    /// Undershoot below 0 (0 if none).
    pub fn undershoot(&self) -> f64 {
        (-self.min_value()).max(0.0)
    }

    /// Integral of the waveform over its whole sampled range (trapezoidal).
    pub fn integral(&self) -> f64 {
        trapezoid_sampled(&self.times, &self.values)
    }

    /// Integral of the waveform between `t0` and `t1` (clamped to the sampled
    /// range), using trapezoidal integration on the existing samples plus the
    /// interpolated end points.
    pub fn integral_between(&self, t0: f64, t1: f64) -> f64 {
        let t0 = t0.clamp(self.first_time(), self.last_time());
        let t1 = t1.clamp(self.first_time(), self.last_time());
        if t1 <= t0 {
            return 0.0;
        }
        let mut ts = vec![t0];
        let mut vs = vec![self.value_at(t0)];
        for (&t, &v) in self.times.iter().zip(&self.values) {
            if t > t0 && t < t1 {
                ts.push(t);
                vs.push(v);
            }
        }
        ts.push(t1);
        vs.push(self.value_at(t1));
        trapezoid_sampled(&ts, &vs)
    }

    /// Resamples the waveform onto a uniform grid with `n` intervals spanning
    /// the original range.
    pub fn resample(&self, n: usize) -> Waveform {
        assert!(n >= 1);
        let t0 = self.first_time();
        let t1 = self.last_time();
        let times: Vec<f64> = (0..=n)
            .map(|k| t0 + (t1 - t0) * k as f64 / n as f64)
            .collect();
        let values = times.iter().map(|&t| self.value_at(t)).collect();
        Waveform::new(times, values)
    }

    /// Returns a new waveform with every value scaled by `k`.
    pub fn scaled(&self, k: f64) -> Waveform {
        Waveform {
            times: self.times.clone(),
            values: self.values.iter().map(|v| v * k).collect(),
        }
    }

    /// Root-mean-square difference against another waveform, evaluated on
    /// this waveform's time grid.
    pub fn rms_difference(&self, other: &Waveform) -> f64 {
        let acc: f64 = self
            .times
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| {
                let d = v - other.value_at(t);
                d * d
            })
            .sum();
        (acc / self.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;

    fn ramp_wave() -> Waveform {
        // 0 -> 1.8 V linear ramp over 100 ps, then flat to 300 ps
        Waveform::new(vec![0.0, 100e-12, 300e-12], vec![0.0, 1.8, 1.8])
    }

    #[test]
    fn crossings_on_a_ramp() {
        let w = ramp_wave();
        let t50 = w.crossing_fraction(0.5, 1.8, true).unwrap();
        assert!(approx_eq(t50, 50e-12, 1e-9));
        let slew = w.slew_10_90(1.8, true).unwrap();
        assert!(approx_eq(slew, 80e-12, 1e-9));
        assert!(w.crossing_time(2.0, true).is_none());
    }

    #[test]
    fn falling_transition_time() {
        let w = Waveform::new(vec![0.0, 100e-12], vec![1.8, 0.0]);
        let slew = w.slew_10_90(1.8, false).unwrap();
        assert!(approx_eq(slew, 80e-12, 1e-9));
        let t50 = w.crossing_fraction(0.5, 1.8, false).unwrap();
        assert!(approx_eq(t50, 50e-12, 1e-9));
    }

    #[test]
    fn delay_between_waveforms() {
        let input = Waveform::new(vec![0.0, 100e-12], vec![1.8, 0.0]); // falling input
        let output = Waveform::new(vec![0.0, 60e-12, 160e-12], vec![0.0, 0.0, 1.8]); // rising out
        let d = output.delay_50_from(&input, 1.8, true, false).unwrap();
        assert!(approx_eq(d, (110.0 - 50.0) * 1e-12, 1e-9));
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let w = ramp_wave();
        assert!(approx_eq(w.value_at(50e-12), 0.9, 1e-12));
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(1.0), 1.8);
    }

    #[test]
    fn integral_between_matches_geometry() {
        let w = ramp_wave();
        // area under the ramp from 0 to 100 ps = 0.5 * 1.8 * 100 ps
        assert!(approx_eq(
            w.integral_between(0.0, 100e-12),
            0.9 * 100e-12,
            1e-9
        ));
        // full integral adds the flat region
        assert!(approx_eq(w.integral(), 0.9 * 100e-12 + 1.8 * 200e-12, 1e-9));
        assert_eq!(w.integral_between(50e-12, 50e-12), 0.0);
    }

    #[test]
    fn overshoot_and_undershoot() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, -0.1]);
        assert!(approx_eq(w.overshoot(1.8), 0.2, 1e-12));
        assert!(approx_eq(w.undershoot(), 0.1, 1e-12));
        assert_eq!(ramp_wave().overshoot(1.8), 0.0);
    }

    #[test]
    fn resample_preserves_shape() {
        let w = ramp_wave();
        let r = w.resample(300);
        assert_eq!(r.len(), 301);
        assert!(approx_eq(r.value_at(50e-12), 0.9, 1e-6));
        assert!(approx_eq(
            r.crossing_fraction(0.5, 1.8, true).unwrap(),
            50e-12,
            1e-6
        ));
    }

    #[test]
    fn from_fn_samples_uniformly() {
        let w = Waveform::from_fn(|t| 2.0 * t, 1.0, 10);
        assert_eq!(w.len(), 11);
        assert!(approx_eq(w.value_at(0.5), 1.0, 1e-12));
    }

    #[test]
    fn rms_difference_of_identical_is_zero() {
        let w = ramp_wave();
        assert!(w.rms_difference(&w) < 1e-15);
        let shifted = w.scaled(1.1);
        assert!(shifted.rms_difference(&w) > 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotonic_times() {
        let _ = Waveform::new(vec![0.0, 1.0, 1.0], vec![0.0, 1.0, 2.0]);
    }
}
