//! Fixed-step transient analysis with Newton–Raphson at every time point.
//!
//! # Kernel strategies
//!
//! Under a fixed step the companion-model MNA matrix of a linear (no-MOSFET)
//! circuit is time-invariant, so the default kernel LU-factorizes it **once
//! per run** and per time step only rebuilds the right-hand side from the
//! source waveforms and the capacitor/inductor history before
//! back-substituting — O(n³) + O(n²)·steps instead of the legacy
//! O(n³)·steps. Nonlinear circuits use a split-stamp Newton loop: the static
//! (R/L/C/source) stamps are cached once and each iteration copies the cache
//! and adds only the MOSFET linearizations. Both kernels run out of a
//! reusable [`TransientWorkspace`], so the inner loop performs no heap
//! allocation; the legacy full-reassembly kernel is kept as
//! [`KernelStrategy::LegacyFull`] for cross-checking and benchmarking.

use std::collections::HashMap;

use rlc_numeric::{CscMatrix, DenseMatrix, LuFactors, SparseLu};

use crate::circuit::{Circuit, NodeId};
use crate::dc::{dc_solve_compiled, DcOptions};
use crate::mna::{CompanionMethod, MnaSystem};
use crate::mosfet::MosfetEvalCache;
use crate::waveform::Waveform;
use crate::SpiceError;

/// Integration method for the transient companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Trapezoidal rule (default): second-order accurate, preserves the
    /// LC ringing that produces the transmission-line kinks being studied.
    #[default]
    Trapezoidal,
    /// Backward Euler: first-order, numerically damped; useful as a
    /// cross-check and for stiff start-up transients.
    BackwardEuler,
}

impl IntegrationMethod {
    pub(crate) fn companion(self) -> CompanionMethod {
        match self {
            IntegrationMethod::Trapezoidal => CompanionMethod::Trapezoidal,
            IntegrationMethod::BackwardEuler => CompanionMethod::BackwardEuler,
        }
    }
}

/// How the transient analysis obtains its starting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialState {
    /// Run a DC operating point first unless the circuit carries explicit
    /// initial conditions (the SPICE "UIC when ICs are present" behaviour).
    #[default]
    Auto,
    /// Always run a DC operating point.
    DcOperatingPoint,
    /// Use the circuit's initial conditions (unspecified nodes start at 0 V).
    UseInitialConditions,
}

/// MNA unknown count at and above which [`KernelStrategy::Auto`] switches a
/// linear circuit from the dense factor-once kernel to the sparse one. Below
/// this size the dense factorization fits in cache and its tighter inner
/// loop wins; above it the O(n³) dense factor and O(n²) back-substitution
/// lose to the near-linear sparse path (a ladder row touches ≤ 4 neighbours,
/// so factor fill stays banded).
pub const SPARSE_AUTO_THRESHOLD: usize = 128;

/// Which simulation kernel executes the time loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelStrategy {
    /// Pick automatically: [`KernelStrategy::Sparse`] for linear circuits
    /// with at least [`SPARSE_AUTO_THRESHOLD`] unknowns,
    /// [`KernelStrategy::FactorOnce`] for smaller linear circuits,
    /// [`KernelStrategy::SplitStamp`] otherwise. The default.
    #[default]
    Auto,
    /// Factor-once LTI fast path: assemble and LU-factorize the companion
    /// matrix once, then only rebuild the RHS and back-substitute per step.
    /// Requires a linear circuit (no MOSFETs).
    FactorOnce,
    /// Sparse factor-once LTI path: assemble the companion matrix in
    /// compressed-sparse-column form and factorize it once with the
    /// fill-reducing sparse LU ([`rlc_numeric::SparseLu`]); per step only
    /// the RHS is rebuilt and the triangular solves run over the factor
    /// nonzeros. Requires a linear circuit; near-singular stamps degrade to
    /// the dense [`KernelStrategy::FactorOnce`] path automatically (the
    /// executed kernel is recorded in [`TransientResult::strategy`]).
    Sparse,
    /// Split-stamp Newton: cache the static (R/L/C/source) stamps once, and
    /// per Newton iteration copy the cache and stamp only the MOSFET
    /// linearizations. Allocation-free; valid for any circuit.
    SplitStamp,
    /// The legacy kernel: rebuild and factorize the full matrix from scratch
    /// at every Newton iteration of every time point. Kept as the reference
    /// for parity tests and before/after benchmarking.
    LegacyFull,
}

/// Options for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step (seconds).
    pub time_step: f64,
    /// Stop time (seconds).
    pub stop_time: f64,
    /// Integration method.
    pub method: IntegrationMethod,
    /// Starting-state policy.
    pub initial_state: InitialState,
    /// Simulation kernel selection.
    pub strategy: KernelStrategy,
    /// Maximum Newton iterations per time point.
    pub max_newton_iterations: usize,
    /// Convergence tolerance on voltage updates (volts).
    pub voltage_tolerance: f64,
    /// Largest allowed voltage change per Newton iteration (volts).
    pub step_limit: f64,
}

impl TransientOptions {
    /// Creates options with the given step and stop time and default
    /// tolerances.
    ///
    /// # Errors
    /// Returns [`SpiceError::InvalidOptions`] if `time_step <= 0`,
    /// `stop_time <= 0` (including NaN), or `stop_time < time_step`.
    pub fn try_new(time_step: f64, stop_time: f64) -> Result<Self, SpiceError> {
        if !(time_step > 0.0 && stop_time > 0.0) {
            return Err(SpiceError::InvalidOptions(format!(
                "times must be positive: time_step = {time_step:e}, stop_time = {stop_time:e}"
            )));
        }
        if stop_time < time_step {
            return Err(SpiceError::InvalidOptions(format!(
                "stop time shorter than one step: stop_time = {stop_time:e}, time_step = {time_step:e}"
            )));
        }
        Ok(TransientOptions {
            time_step,
            stop_time,
            method: IntegrationMethod::default(),
            initial_state: InitialState::default(),
            strategy: KernelStrategy::default(),
            max_newton_iterations: 100,
            voltage_tolerance: 1e-6,
            step_limit: 1.0,
        })
    }

    /// Creates options with the given step and stop time and default
    /// tolerances.
    ///
    /// # Panics
    /// Panics if `time_step <= 0`, `stop_time <= 0`, or
    /// `stop_time < time_step`.
    #[deprecated(since = "0.2.0", note = "use `TransientOptions::try_new` instead")]
    pub fn new(time_step: f64, stop_time: f64) -> Self {
        match Self::try_new(time_step, stop_time) {
            Ok(options) => options,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the integration method (builder style).
    pub fn with_method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the starting-state policy (builder style).
    pub fn with_initial_state(mut self, initial_state: InitialState) -> Self {
        self.initial_state = initial_state;
        self
    }

    /// Sets the kernel strategy (builder style).
    pub fn with_strategy(mut self, strategy: KernelStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Reusable buffers for the transient kernels: the work and cached-static
/// matrices, the stored LU factorization, the RHS/solution/history vectors.
///
/// Creating a workspace is cheap; its value is reuse. Repeated runs — a
/// characterization grid, the batches issued by an analysis backend — hand
/// the same workspace to [`TransientAnalysis::run_with`] so every run after
/// the first performs no kernel allocation at all.
#[derive(Debug, Clone, Default)]
pub struct TransientWorkspace {
    matrix: DenseMatrix,
    static_matrix: DenseMatrix,
    lu: LuFactors,
    rhs: Vec<f64>,
    rhs_base: Vec<f64>,
    x_new: Vec<f64>,
    prev_x: Vec<f64>,
    prev2_x: Vec<f64>,
    guess: Vec<f64>,
    cap_currents: Vec<f64>,
    cap_ieq: Vec<f64>,
    // Sparse-kernel state: the triplet assembly buffer, the assembled CSC
    // matrix of the previous run (kept for the same-pattern refactor reuse)
    // and the sparse factorization.
    triplets: Vec<(usize, usize, f64)>,
    csc: CscMatrix,
    sparse_lu: SparseLu,
    // Per-device overdrive caches for the MOSFET evaluations.
    eval_caches: Vec<MosfetEvalCache>,
    // Woodbury rank-update state: W = A0^{-1} U (one row per update row),
    // the per-iteration update rows V / Δb, the unknown→update-row map and
    // the small capacitance-equation system S = I + V W^T.
    w_rows: DenseMatrix,
    y_base: Vec<f64>,
    delta: DenseMatrix,
    delta_rhs: Vec<f64>,
    row_map: Vec<usize>,
    s: DenseMatrix,
    s_lu: LuFactors,
    s_rhs: Vec<f64>,
    s_sol: Vec<f64>,
}

impl TransientWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n: usize, num_capacitors: usize, num_mosfets: usize) {
        self.matrix.resize_zeroed(n, n);
        self.static_matrix.resize_zeroed(n, n);
        self.rhs.clear();
        self.rhs.resize(n, 0.0);
        self.rhs_base.clear();
        self.rhs_base.resize(n, 0.0);
        self.x_new.clear();
        self.x_new.resize(n, 0.0);
        self.prev_x.clear();
        self.prev_x.resize(n, 0.0);
        self.prev2_x.clear();
        self.prev2_x.resize(n, 0.0);
        self.guess.clear();
        self.guess.resize(n, 0.0);
        self.cap_currents.clear();
        self.cap_currents.resize(num_capacitors, 0.0);
        self.cap_ieq.clear();
        self.cap_ieq.resize(num_capacitors, 0.0);
        self.eval_caches.clear();
        self.eval_caches
            .resize_with(num_mosfets, MosfetEvalCache::default);
    }

    fn prepare_rank_update(&mut self, n: usize, rows: &[usize]) {
        let r = rows.len();
        self.w_rows.resize_zeroed(r, n);
        self.y_base.clear();
        self.y_base.resize(n, 0.0);
        self.delta.resize_zeroed(r, n);
        self.delta_rhs.clear();
        self.delta_rhs.resize(r, 0.0);
        self.row_map.clear();
        self.row_map.resize(n, usize::MAX);
        for (j, &row) in rows.iter().enumerate() {
            self.row_map[row] = j;
        }
        self.s.resize_zeroed(r, r);
        self.s_rhs.clear();
        self.s_rhs.resize(r, 0.0);
        self.s_sol.clear();
        self.s_sol.resize(r, 0.0);
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// A transient analysis runner.
#[derive(Debug, Clone)]
pub struct TransientAnalysis {
    options: TransientOptions,
}

/// Result of a transient run: the full solution history (stored as one flat
/// row-major block, one row of `num_unknowns` values per time point).
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    solutions: Vec<f64>,
    stride: usize,
    system: MnaSystem,
    node_names: HashMap<String, NodeId>,
    strategy: KernelStrategy,
    degraded_to_dense: bool,
}

impl TransientResult {
    /// Simulated time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The kernel that actually executed the run — `Auto` resolved to a
    /// concrete kernel, and any health-gated degradation (sparse falling
    /// back to dense LU on a near-singular stamp) already applied. Makes the
    /// automatic strategy selection observable instead of silent.
    pub fn strategy(&self) -> KernelStrategy {
        self.strategy
    }

    /// `true` when the sparse kernel was selected (explicitly or by `Auto`)
    /// but its pivot-health gate rejected the factorization and the run fell
    /// back to the dense factor-once kernel. Surfaces the silent degrade so
    /// callers can report *why* the fast path was abandoned.
    pub fn degraded_to_dense(&self) -> bool {
        self.degraded_to_dense
    }

    /// Number of accepted time points.
    pub fn num_points(&self) -> usize {
        self.times.len()
    }

    fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.solutions.chunks_exact(self.stride)
    }

    /// Waveform of a node voltage.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        let values = self
            .rows()
            .map(|x| self.system.node_voltage(x, node.index()))
            .collect();
        Waveform::new(self.times.clone(), values)
    }

    /// Waveform of a node voltage looked up by name. Returns `None` when the
    /// node does not exist.
    pub fn waveform_by_name(&self, name: &str) -> Option<Waveform> {
        self.node_names.get(name).map(|&n| self.waveform(n))
    }

    /// Branch current of a named voltage source over time (SPICE convention:
    /// current into the positive terminal). Returns `None` for unknown names.
    pub fn vsource_current(&self, name: &str) -> Option<Waveform> {
        let branch = self.system.vsource_branch(name)?;
        let values = self.rows().map(|x| x[branch]).collect();
        Some(Waveform::new(self.times.clone(), values))
    }
}

impl TransientAnalysis {
    /// Creates a transient analysis with the given options.
    pub fn new(options: TransientOptions) -> Self {
        TransientAnalysis { options }
    }

    /// Runs the analysis on a circuit with a throwaway workspace.
    ///
    /// # Errors
    /// Returns a [`SpiceError`] if the circuit is invalid, the Newton loop
    /// fails to converge at some time point, or the MNA matrix is singular.
    pub fn run(&self, circuit: &Circuit) -> Result<TransientResult, SpiceError> {
        let mut workspace = TransientWorkspace::new();
        self.run_with(circuit, &mut workspace)
    }

    /// Runs the analysis reusing a caller-owned [`TransientWorkspace`], so
    /// repeated runs (characterization grids, backend batches) perform no
    /// kernel allocation after the first run.
    ///
    /// # Errors
    /// Returns a [`SpiceError`] if the circuit is invalid, the requested
    /// kernel cannot run it (`FactorOnce` on a nonlinear circuit), the
    /// Newton loop fails to converge, or the MNA matrix is singular.
    pub fn run_with(
        &self,
        circuit: &Circuit,
        ws: &mut TransientWorkspace,
    ) -> Result<TransientResult, SpiceError> {
        circuit.validate()?;
        let system = MnaSystem::compile(circuit);
        let n = system.num_unknowns();
        let opts = &self.options;

        let strategy = match opts.strategy {
            KernelStrategy::Auto => {
                if !system.is_linear() {
                    KernelStrategy::SplitStamp
                } else if n >= SPARSE_AUTO_THRESHOLD {
                    KernelStrategy::Sparse
                } else {
                    KernelStrategy::FactorOnce
                }
            }
            KernelStrategy::FactorOnce if !system.is_linear() => {
                return Err(SpiceError::InvalidOptions(
                    "the factor-once fast path requires a linear circuit (no MOSFETs); \
                     use Auto or SplitStamp"
                        .to_string(),
                ));
            }
            KernelStrategy::Sparse if !system.is_linear() => {
                return Err(SpiceError::InvalidOptions(
                    "the sparse fast path requires a linear circuit (no MOSFETs); \
                     use Auto or SplitStamp"
                        .to_string(),
                ));
            }
            explicit => explicit,
        };

        // Starting state.
        let use_ics = match opts.initial_state {
            InitialState::Auto => !circuit.initial_conditions().is_empty(),
            InitialState::DcOperatingPoint => false,
            InitialState::UseInitialConditions => true,
        };
        let x0 = if use_ics {
            let mut x0 = vec![0.0; n];
            for (&node, &v) in circuit.initial_conditions() {
                if let Some(idx) = system.voltage_unknown(node) {
                    x0[idx] = v;
                }
            }
            x0
        } else {
            dc_solve_compiled(&system, circuit, DcOptions::default())?.0
        };

        ws.prepare(n, system.num_capacitors(), system.num_mosfets());
        ws.prev_x.copy_from_slice(&x0);

        let n_steps = (opts.stop_time / opts.time_step).round() as usize;
        let mut times = Vec::with_capacity(n_steps + 1);
        let mut solutions = Vec::with_capacity((n_steps + 1) * n);
        times.push(0.0);
        solutions.extend_from_slice(&x0);

        let executed = match strategy {
            KernelStrategy::FactorOnce => {
                self.run_factor_once(&system, ws, n_steps, &mut times, &mut solutions)?;
                KernelStrategy::FactorOnce
            }
            KernelStrategy::Sparse => {
                self.run_sparse(&system, ws, n_steps, &mut times, &mut solutions)?
            }
            KernelStrategy::SplitStamp => {
                self.run_split_stamp(&system, ws, n_steps, &mut times, &mut solutions)?;
                KernelStrategy::SplitStamp
            }
            KernelStrategy::LegacyFull => {
                self.run_legacy(&system, ws, n_steps, &mut times, &mut solutions)?;
                KernelStrategy::LegacyFull
            }
            KernelStrategy::Auto => unreachable!("Auto was resolved above"),
        };

        let node_names = (0..circuit.num_nodes())
            .map(|k| {
                let id = if k == 0 {
                    Circuit::GROUND
                } else {
                    // Reconstruct NodeId; indices are stable.
                    NodeId(k)
                };
                (circuit.node_name(id).to_string(), id)
            })
            .collect();

        Ok(TransientResult {
            times,
            solutions,
            stride: n,
            system,
            node_names,
            strategy: executed,
            degraded_to_dense: strategy == KernelStrategy::Sparse
                && executed == KernelStrategy::FactorOnce,
        })
    }

    /// The LTI fast path: one factorization, then per step a RHS rebuild and
    /// a back-substitution. Linear circuits need no Newton iteration — the
    /// first solve is exact.
    fn run_factor_once(
        &self,
        system: &MnaSystem,
        ws: &mut TransientWorkspace,
        n_steps: usize,
        times: &mut Vec<f64>,
        solutions: &mut Vec<f64>,
    ) -> Result<(), SpiceError> {
        let opts = &self.options;
        let method = opts.method.companion();
        let h = opts.time_step;

        system.stamp_transient_static(&mut ws.static_matrix, h, method);
        ws.static_matrix
            .factor_into(&mut ws.lu)
            .map_err(|_| SpiceError::SingularMatrix { time: Some(h) })?;
        system.init_cap_ieq(h, method, &ws.prev_x, &mut ws.cap_ieq);

        for step in 1..=n_steps {
            let t = step as f64 * h;
            system.transient_rhs_fused(t, h, method, &ws.prev_x, &mut ws.cap_ieq, &mut ws.rhs);
            ws.lu.solve_into(&ws.rhs, &mut ws.x_new);
            ws.prev_x.copy_from_slice(&ws.x_new);
            times.push(t);
            solutions.extend_from_slice(&ws.x_new);
        }
        Ok(())
    }

    /// The sparse LTI fast path: assemble the companion matrix as CSC, factor
    /// it once with the fill-reducing sparse LU (or replay a values-only
    /// refactorization when the workspace still holds a factorization of the
    /// same pattern — a repeated run of an unchanged topology), then per step
    /// rebuild the RHS and run the triangular solves over the factor
    /// nonzeros.
    ///
    /// Pivot health is gated exactly like the dense Woodbury path gates its
    /// rank update: when the smallest pivot falls below `1e-9 ×` the largest
    /// stamp magnitude (or the factorization fails outright), the run
    /// degrades to the dense [`TransientAnalysis::run_factor_once`] kernel
    /// instead of back-substituting through a near-singular factorization.
    /// Returns the kernel that actually executed.
    fn run_sparse(
        &self,
        system: &MnaSystem,
        ws: &mut TransientWorkspace,
        n_steps: usize,
        times: &mut Vec<f64>,
        solutions: &mut Vec<f64>,
    ) -> Result<KernelStrategy, SpiceError> {
        let opts = &self.options;
        let method = opts.method.companion();
        let h = opts.time_step;
        let n = system.num_unknowns();

        system.transient_triplets(h, method, &mut ws.triplets);
        let csc = CscMatrix::from_triplets(n, &ws.triplets);
        let refactorable = ws.sparse_lu.dim() == n && ws.csc.same_pattern(&csc);
        let factored = if refactorable {
            // Values-only replay; a stale pivot sequence going singular gets
            // one shot at a full re-factorization before falling back.
            ws.sparse_lu.refactor(&csc).is_ok() || ws.sparse_lu.factor(&csc).is_ok()
        } else {
            ws.sparse_lu.factor(&csc).is_ok()
        };
        let healthy = factored && ws.sparse_lu.pivot_extremes().0 >= 1e-9 * csc.max_abs();
        if !healthy {
            // Near-singular (or unfactorable) sparse stamp: degrade to the
            // dense partial-pivoting LU, whose row exchanges on the full
            // matrix handle what the sparsity-constrained pivoting cannot.
            ws.csc = CscMatrix::default();
            self.run_factor_once(system, ws, n_steps, times, solutions)?;
            return Ok(KernelStrategy::FactorOnce);
        }
        ws.csc = csc;

        system.init_cap_ieq(h, method, &ws.prev_x, &mut ws.cap_ieq);
        for step in 1..=n_steps {
            let t = step as f64 * h;
            system.transient_rhs_fused(t, h, method, &ws.prev_x, &mut ws.cap_ieq, &mut ws.rhs);
            ws.sparse_lu.solve_into(&ws.rhs, &mut ws.x_new);
            ws.prev_x.copy_from_slice(&ws.x_new);
            times.push(t);
            solutions.extend_from_slice(&ws.x_new);
        }
        Ok(KernelStrategy::Sparse)
    }

    /// The nonlinear fast kernel. Static (R/L/C/source) stamps are cached
    /// once; per Newton iteration only the MOSFET linearizations change.
    /// When the static matrix is well conditioned and the MOSFETs touch few
    /// rows, the solve uses the Sherman–Morrison–Woodbury identity against
    /// the *once-factorized* static matrix — no per-iteration factorization
    /// at all. Otherwise it copies the cached stamps and refactorizes, which
    /// is still allocation-free.
    fn run_split_stamp(
        &self,
        system: &MnaSystem,
        ws: &mut TransientWorkspace,
        n_steps: usize,
        times: &mut Vec<f64>,
        solutions: &mut Vec<f64>,
    ) -> Result<(), SpiceError> {
        let opts = &self.options;
        let method = opts.method.companion();
        let h = opts.time_step;
        let n = system.num_unknowns();

        system.stamp_transient_static(&mut ws.static_matrix, h, method);

        // The Woodbury path pays O(r·n²) once and O(r·n) per iteration, but
        // multiplies by the inverse of the static factors, so it is gated on
        // the update being genuinely low-rank and on the static pivots being
        // far from the gmin floor (a mosfet-only node would make A0⁻¹ huge
        // and the update numerically useless).
        let rows = system.mosfet_rows();
        let use_rank_update = !rows.is_empty()
            && 2 * rows.len() <= n
            && ws.static_matrix.factor_into(&mut ws.lu).is_ok()
            && ws.lu.pivot_extremes().0 >= 1e-9 * ws.static_matrix.max_abs();
        if use_rank_update {
            self.run_rank_update(system, ws, &rows, n_steps, times, solutions)
        } else {
            self.run_split_refactor(system, ws, n_steps, times, solutions)
        }
    }

    /// Woodbury variant of the split-stamp kernel: with `A = A0 + U V`
    /// (`U` selecting the MOSFET rows), each iteration solves
    /// `x = y − Wᵀ (I + V Wᵀ)⁻¹ V y` with `y = A0⁻¹ b` assembled from the
    /// once-per-step base solve plus the low-rank RHS correction, and
    /// `Wᵀ = A0⁻¹ U` computed once per run.
    fn run_rank_update(
        &self,
        system: &MnaSystem,
        ws: &mut TransientWorkspace,
        rows: &[usize],
        n_steps: usize,
        times: &mut Vec<f64>,
        solutions: &mut Vec<f64>,
    ) -> Result<(), SpiceError> {
        let opts = &self.options;
        let method = opts.method.companion();
        let h = opts.time_step;
        let n = system.num_unknowns();
        let n_voltages = system.num_nodes() - 1;
        let r = rows.len();

        ws.prepare_rank_update(n, rows);
        // W rows: A0⁻¹ e_i for every MOSFET row i.
        for (j, &row) in rows.iter().enumerate() {
            ws.rhs.iter_mut().for_each(|v| *v = 0.0);
            ws.rhs[row] = 1.0;
            ws.lu.solve_into(&ws.rhs, &mut ws.x_new);
            ws.w_rows.row_mut(j).copy_from_slice(&ws.x_new);
        }
        system.init_cap_ieq(h, method, &ws.prev_x, &mut ws.cap_ieq);
        ws.prev2_x.copy_from_slice(&ws.prev_x);

        for step in 1..=n_steps {
            let t = step as f64 * h;
            // Companion/source RHS and its static solve are shared by every
            // Newton iteration of this step.
            system.transient_rhs_fused(t, h, method, &ws.prev_x, &mut ws.cap_ieq, &mut ws.rhs_base);
            ws.lu.solve_into(&ws.rhs_base, &mut ws.y_base);
            // Predictor: start Newton from the linear extrapolation of the
            // two previous solutions, which lands within the convergence
            // tolerance on smooth stretches and saves the confirmation
            // iteration that a previous-solution start needs.
            for ((g, &p), &p2) in ws.guess.iter_mut().zip(&ws.prev_x).zip(&ws.prev2_x) {
                *g = 2.0 * p - p2;
            }
            let mut converged = false;
            let mut last_delta = f64::INFINITY;
            for _ in 0..opts.max_newton_iterations {
                ws.delta.clear();
                ws.delta_rhs.iter_mut().for_each(|v| *v = 0.0);
                system.stamp_mosfets_delta(
                    &mut ws.delta,
                    &mut ws.delta_rhs,
                    &ws.guess,
                    &ws.row_map,
                    &mut ws.eval_caches,
                );
                // S = I + V Wᵀ, and the projected RHS c = V y folded from
                // c = V·(y_base + Σ b_j W_j) = V y_base + (S − I) b.
                for j in 0..r {
                    let dj = ws.delta.row(j);
                    let mut c_j = dot(dj, &ws.y_base);
                    for k in 0..r {
                        let v = dot(dj, ws.w_rows.row(k));
                        ws.s.set(j, k, if j == k { 1.0 + v } else { v });
                        c_j += v * ws.delta_rhs[k];
                    }
                    ws.s_rhs[j] = c_j;
                }
                // det(A) = det(A0)·det(S): a singular S is a genuinely
                // singular iteration matrix, exactly as in the dense kernels.
                // The r ≤ 2 systems of single-gate stages are solved closed
                // form; larger panels go through the general factorization.
                match r {
                    1 => {
                        let s00 = ws.s.get(0, 0);
                        if s00.abs() < 1e-300 {
                            return Err(SpiceError::SingularMatrix { time: Some(t) });
                        }
                        ws.s_sol[0] = ws.s_rhs[0] / s00;
                    }
                    2 => {
                        let (a, b) = (ws.s.get(0, 0), ws.s.get(0, 1));
                        let (c, d) = (ws.s.get(1, 0), ws.s.get(1, 1));
                        let det = a * d - b * c;
                        if det.abs() < 1e-300 {
                            return Err(SpiceError::SingularMatrix { time: Some(t) });
                        }
                        ws.s_sol[0] = (d * ws.s_rhs[0] - b * ws.s_rhs[1]) / det;
                        ws.s_sol[1] = (a * ws.s_rhs[1] - c * ws.s_rhs[0]) / det;
                    }
                    _ => {
                        ws.s.factor_into(&mut ws.s_lu)
                            .map_err(|_| SpiceError::SingularMatrix { time: Some(t) })?;
                        ws.s_lu.solve_into(&ws.s_rhs, &mut ws.s_sol);
                    }
                }
                // x = y − W z = y_base + Σ (b_j − z_j) W_j.
                ws.x_new.copy_from_slice(&ws.y_base);
                for j in 0..r {
                    let w = ws.delta_rhs[j] - ws.s_sol[j];
                    if w != 0.0 {
                        axpy(w, ws.w_rows.row(j), &mut ws.x_new);
                    }
                }
                let mut max_delta: f64 = 0.0;
                for k in 0..n {
                    let mut delta = ws.x_new[k] - ws.guess[k];
                    if k < n_voltages {
                        delta = delta.clamp(-opts.step_limit, opts.step_limit);
                        max_delta = max_delta.max(delta.abs());
                        ws.guess[k] += delta;
                    } else {
                        ws.guess[k] = ws.x_new[k];
                    }
                }
                last_delta = max_delta;
                if max_delta < opts.voltage_tolerance {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SpiceError::NonConvergence {
                    time: Some(t),
                    iterations: opts.max_newton_iterations,
                    max_delta: last_delta,
                });
            }
            ws.prev2_x.copy_from_slice(&ws.prev_x);
            ws.prev_x.copy_from_slice(&ws.guess);
            times.push(t);
            solutions.extend_from_slice(&ws.guess);
        }
        Ok(())
    }

    /// Refactorizing variant of the split-stamp kernel: copy the cached
    /// static stamps, add the MOSFET linearizations and refactorize — no
    /// allocation, no re-stamping of the linear elements.
    fn run_split_refactor(
        &self,
        system: &MnaSystem,
        ws: &mut TransientWorkspace,
        n_steps: usize,
        times: &mut Vec<f64>,
        solutions: &mut Vec<f64>,
    ) -> Result<(), SpiceError> {
        let opts = &self.options;
        let method = opts.method.companion();
        let h = opts.time_step;
        let n = system.num_unknowns();
        let n_voltages = system.num_nodes() - 1;

        system.init_cap_ieq(h, method, &ws.prev_x, &mut ws.cap_ieq);
        ws.prev2_x.copy_from_slice(&ws.prev_x);

        for step in 1..=n_steps {
            let t = step as f64 * h;
            // The RHS companion/source terms are shared by every Newton
            // iteration of this step.
            system.transient_rhs_fused(t, h, method, &ws.prev_x, &mut ws.cap_ieq, &mut ws.rhs_base);
            // Predictor start, as in the rank-update kernel.
            for ((g, &p), &p2) in ws.guess.iter_mut().zip(&ws.prev_x).zip(&ws.prev2_x) {
                *g = 2.0 * p - p2;
            }
            let mut converged = false;
            let mut last_delta = f64::INFINITY;
            for _ in 0..opts.max_newton_iterations {
                ws.matrix.copy_from(&ws.static_matrix);
                ws.rhs.copy_from_slice(&ws.rhs_base);
                system.stamp_mosfets_cached(
                    &mut ws.matrix,
                    &mut ws.rhs,
                    &ws.guess,
                    &mut ws.eval_caches,
                );
                ws.matrix
                    .factor_into(&mut ws.lu)
                    .map_err(|_| SpiceError::SingularMatrix { time: Some(t) })?;
                ws.lu.solve_into(&ws.rhs, &mut ws.x_new);
                let mut max_delta: f64 = 0.0;
                for k in 0..n {
                    let mut delta = ws.x_new[k] - ws.guess[k];
                    if k < n_voltages {
                        delta = delta.clamp(-opts.step_limit, opts.step_limit);
                        max_delta = max_delta.max(delta.abs());
                        ws.guess[k] += delta;
                    } else {
                        ws.guess[k] = ws.x_new[k];
                    }
                }
                last_delta = max_delta;
                if max_delta < opts.voltage_tolerance {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SpiceError::NonConvergence {
                    time: Some(t),
                    iterations: opts.max_newton_iterations,
                    max_delta: last_delta,
                });
            }
            ws.prev2_x.copy_from_slice(&ws.prev_x);
            ws.prev_x.copy_from_slice(&ws.guess);
            times.push(t);
            solutions.extend_from_slice(&ws.guess);
        }
        Ok(())
    }

    /// The pre-fast-path kernel: full matrix reassembly and factorization at
    /// every Newton iteration, with per-iteration allocation. Retained so the
    /// optimized kernels can be cross-checked and benchmarked against it.
    fn run_legacy(
        &self,
        system: &MnaSystem,
        ws: &mut TransientWorkspace,
        n_steps: usize,
        times: &mut Vec<f64>,
        solutions: &mut Vec<f64>,
    ) -> Result<(), SpiceError> {
        let opts = &self.options;
        let method = opts.method.companion();
        let h = opts.time_step;
        let n = system.num_unknowns();
        let n_voltages = system.num_nodes() - 1;

        let mut x = ws.prev_x.clone();
        let mut cap_currents = vec![0.0; system.num_capacitors()];

        for step in 1..=n_steps {
            let t = step as f64 * h;
            let prev_x = x.clone();
            let mut guess = prev_x.clone();
            let mut converged = false;
            let mut last_delta = f64::INFINITY;
            for _ in 0..opts.max_newton_iterations {
                let (m, rhs) =
                    system.assemble_transient(t, h, method, &guess, &prev_x, &cap_currents);
                let x_new = m
                    .solve(&rhs)
                    .map_err(|_| SpiceError::SingularMatrix { time: Some(t) })?;
                let mut max_delta: f64 = 0.0;
                for k in 0..n {
                    let mut delta = x_new[k] - guess[k];
                    if k < n_voltages {
                        delta = delta.clamp(-opts.step_limit, opts.step_limit);
                        max_delta = max_delta.max(delta.abs());
                        guess[k] += delta;
                    } else {
                        guess[k] = x_new[k];
                    }
                }
                last_delta = max_delta;
                if max_delta < opts.voltage_tolerance {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SpiceError::NonConvergence {
                    time: Some(t),
                    iterations: opts.max_newton_iterations,
                    max_delta: last_delta,
                });
            }
            system.update_capacitor_currents(h, method, &guess, &prev_x, &mut cap_currents);
            x = guess;
            times.push(t);
            solutions.extend_from_slice(&x);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::mosfet::MosfetParams;
    use crate::source::SourceWaveform;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::{ff, nh, pf, ps};

    /// RC step response: V(t) = V0 (1 - e^{-t/RC}).
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1000.0;
        let c = 100e-15;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, b, r);
        ckt.add_capacitor("C1", b, Circuit::GROUND, c);
        ckt.set_initial_condition(b, 0.0);
        ckt.set_initial_condition(a, 1.0);

        let opts = TransientOptions::try_new(tau / 200.0, 6.0 * tau).unwrap();
        let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
        let w = res.waveform(b);
        for &t in &[0.5 * tau, tau, 2.0 * tau, 4.0 * tau] {
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (w.value_at(t) - expected).abs() < 2e-3,
                "t = {t}: {} vs {expected}",
                w.value_at(t)
            );
        }
    }

    /// Series RLC with an underdamped response must ring at the right
    /// frequency.
    #[test]
    fn rlc_ringing_frequency_is_correct() {
        let r = 5.0;
        let l = nh(5.0);
        let c = pf(1.0);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, m, r);
        ckt.add_inductor("L1", m, b, l);
        ckt.add_capacitor("C1", b, Circuit::GROUND, c);
        ckt.set_initial_condition(a, 1.0);

        let opts = TransientOptions::try_new(ps(0.2), ps(1500.0))
            .unwrap()
            .with_initial_state(InitialState::UseInitialConditions);
        let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
        let w = res.waveform(b);
        // Damped natural period T = 2*pi / sqrt(1/LC - (R/2L)^2)
        let wd = (1.0 / (l * c) - (r / (2.0 * l)).powi(2)).sqrt();
        let period = 2.0 * std::f64::consts::PI / wd;
        // Find the first two upward crossings of the final value 1.0.
        let t1 = w.crossing_time(1.0, true).unwrap();
        let after: Vec<(f64, f64)> = w
            .times()
            .iter()
            .copied()
            .zip(w.values().iter().copied())
            .filter(|&(t, _)| t > t1 + 0.4 * period)
            .collect();
        let wave2 = Waveform::new(
            after.iter().map(|p| p.0).collect(),
            after.iter().map(|p| p.1).collect(),
        );
        let t2 = wave2.crossing_time(1.0, true).unwrap();
        let measured_period = t2 - t1;
        assert!(
            (measured_period - period).abs() / period < 0.03,
            "period {measured_period:.3e} vs analytic {period:.3e}"
        );
        // Peak overshoot of a lightly damped RLC approaches 2x the step.
        assert!(w.max_value() > 1.5);
    }

    /// An inverter driving a capacitor must swing rail to rail with a plausible
    /// delay, and the output must be monotonic for a lumped capacitive load.
    #[test]
    fn inverter_driving_capacitor_switches() {
        let vdd = 1.8;
        let mut ckt = Circuit::new();
        let nvdd = ckt.node("vdd");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add_vsource("VDD", nvdd, Circuit::GROUND, SourceWaveform::dc(vdd));
        ckt.add_vsource(
            "VIN",
            nin,
            Circuit::GROUND,
            SourceWaveform::falling_ramp(vdd, ps(20.0), ps(100.0)),
        );
        ckt.add_mosfet("MP", nout, nin, nvdd, MosfetParams::pmos_018(), 54e-6);
        ckt.add_mosfet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            MosfetParams::nmos_018(),
            27e-6,
        );
        ckt.add_capacitor("CL", nout, Circuit::GROUND, ff(500.0));
        ckt.set_initial_condition(nin, vdd);
        ckt.set_initial_condition(nout, 0.0);
        ckt.set_initial_condition(nvdd, vdd);

        let opts = TransientOptions::try_new(ps(0.5), ps(1000.0)).unwrap();
        let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
        let out = res.waveform(nout);
        assert!(out.last_value() > 0.98 * vdd, "output must reach VDD");
        let t50_out = out.crossing_fraction(0.5, vdd, true).unwrap();
        let t50_in = ps(20.0) + ps(50.0);
        let delay = t50_out - t50_in;
        assert!(delay > ps(1.0) && delay < ps(200.0), "delay = {delay:.3e}");
        let slew = out.slew_10_90(vdd, true).unwrap();
        assert!(slew > ps(5.0) && slew < ps(500.0), "slew = {slew:.3e}");
    }

    /// Backward Euler and trapezoidal must agree on smooth RC waveforms.
    #[test]
    fn integration_methods_agree_on_rc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::rising_ramp(1.0, 0.0, ps(50.0)),
        );
        ckt.add_resistor("R1", a, b, 500.0);
        ckt.add_capacitor("C1", b, Circuit::GROUND, ff(200.0));
        ckt.set_initial_condition(a, 0.0);

        let trap = TransientAnalysis::new(
            TransientOptions::try_new(ps(0.25), ps(600.0))
                .unwrap()
                .with_method(IntegrationMethod::Trapezoidal),
        )
        .run(&ckt)
        .unwrap()
        .waveform(b);
        let be = TransientAnalysis::new(
            TransientOptions::try_new(ps(0.25), ps(600.0))
                .unwrap()
                .with_method(IntegrationMethod::BackwardEuler),
        )
        .run(&ckt)
        .unwrap()
        .waveform(b);
        assert!(trap.rms_difference(&be) < 5e-3);
    }

    #[test]
    fn dc_start_matches_operating_point() {
        // No initial conditions: the run must start from the DC solution
        // (output high for input low), not from zero.
        let vdd = 1.8;
        let mut ckt = Circuit::new();
        let nvdd = ckt.node("vdd");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add_vsource("VDD", nvdd, Circuit::GROUND, SourceWaveform::dc(vdd));
        ckt.add_vsource("VIN", nin, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_mosfet("MP", nout, nin, nvdd, MosfetParams::pmos_018(), 10e-6);
        ckt.add_mosfet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            MosfetParams::nmos_018(),
            5e-6,
        );
        ckt.add_capacitor("CL", nout, Circuit::GROUND, ff(50.0));
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(1.0), ps(50.0)).unwrap())
            .run(&ckt)
            .unwrap();
        let out = res.waveform(nout);
        assert!(out.value_at(0.0) > 1.7);
        assert!(out.last_value() > 1.7);
    }

    #[test]
    fn vsource_current_is_recorded() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, Circuit::GROUND, 100.0);
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(1.0), ps(10.0)).unwrap())
            .run(&ckt)
            .unwrap();
        let i = res.vsource_current("V1").unwrap();
        assert!(approx_eq(i.last_value(), -0.01, 1e-6));
        assert!(res.vsource_current("nope").is_none());
        assert!(res.waveform_by_name("a").is_some());
        assert!(res.waveform_by_name("zzz").is_none());
        assert_eq!(res.num_points(), 11);
    }

    /// Two series-aiding coupled inductors behave as `L1 + L2 + 2M`; with a
    /// negative mutual inductance the coupling opposes and the effective
    /// inductance drops to `L1 + L2 - 2|M|`. The RL step current
    /// `i(t) = (V/R)(1 - e^{-tR/L_eff})` pins both cases analytically.
    #[test]
    fn coupled_inductors_in_series_match_effective_inductance() {
        // Trapezoidal is second order, so a coarser step suffices; backward
        // Euler needs a finer one to meet the same tolerance — and running
        // both pins the method-specific mutual companion stamps against the
        // analytic solution, not just against each other.
        for (method, steps_per_tau) in [
            (IntegrationMethod::Trapezoidal, 300.0),
            (IntegrationMethod::BackwardEuler, 2000.0),
        ] {
            for (m, l_eff) in [(0.5e-9, 3.0e-9), (-0.5e-9, 1.0e-9)] {
                let r = 100.0;
                let mut ckt = Circuit::new();
                let s = ckt.node("s");
                let n1 = ckt.node("n1");
                let n2 = ckt.node("n2");
                ckt.add_vsource("V1", s, Circuit::GROUND, SourceWaveform::dc(1.0));
                ckt.add_resistor("R1", s, n1, r);
                ckt.add_inductor("L1", n1, n2, 1e-9);
                ckt.add_inductor("L2", n2, Circuit::GROUND, 1e-9);
                ckt.add_mutual_inductance("K1", "L1", "L2", m);
                ckt.set_initial_condition(s, 1.0);
                ckt.set_initial_condition(n1, 1.0);
                ckt.set_initial_condition(n2, 1.0);

                let tau = l_eff / r;
                let opts = TransientOptions::try_new(tau / steps_per_tau, 6.0 * tau)
                    .unwrap()
                    .with_method(method)
                    .with_initial_state(InitialState::UseInitialConditions);
                let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
                let i = res.vsource_current("V1").unwrap();
                for &t in &[0.5 * tau, tau, 2.0 * tau, 4.0 * tau] {
                    // SPICE convention: current into the + terminal, so the
                    // delivered current shows up negated.
                    let expected = -(1.0 / r) * (1.0 - (-t / tau).exp());
                    assert!(
                        (i.value_at(t) - expected).abs() < 2e-3 / r,
                        "{method:?}, M = {m:e}, t = {t:e}: {} vs {expected}",
                        i.value_at(t)
                    );
                }
            }
        }
    }

    /// The mutually-coupled companion stamps must agree across every kernel,
    /// for both integration methods (BE and trapezoidal use different
    /// companion impedances and history terms).
    #[test]
    fn coupled_inductor_kernels_agree_with_legacy() {
        let mut ckt = Circuit::new();
        let s = ckt.node("s");
        let v1 = ckt.node("v1");
        let a1 = ckt.node("a1");
        ckt.add_vsource(
            "V1",
            s,
            Circuit::GROUND,
            SourceWaveform::rising_ramp(1.0, 0.0, ps(50.0)),
        );
        ckt.add_resistor("Rv", s, v1, 50.0);
        ckt.add_inductor("Lv", v1, Circuit::GROUND, nh(2.0));
        ckt.add_resistor("Ra", s, a1, 75.0);
        ckt.add_inductor("La", a1, Circuit::GROUND, nh(3.0));
        ckt.add_mutual_inductance("K1", "Lv", "La", nh(1.2));
        ckt.set_initial_condition(s, 0.0);

        for method in [
            IntegrationMethod::Trapezoidal,
            IntegrationMethod::BackwardEuler,
        ] {
            let legacy = TransientAnalysis::new(
                TransientOptions::try_new(ps(0.5), ps(400.0))
                    .unwrap()
                    .with_method(method)
                    .with_strategy(KernelStrategy::LegacyFull),
            )
            .run(&ckt)
            .unwrap()
            .waveform(v1);
            let fast = TransientAnalysis::new(
                TransientOptions::try_new(ps(0.5), ps(400.0))
                    .unwrap()
                    .with_method(method),
            )
            .run(&ckt)
            .unwrap()
            .waveform(v1);
            for (a, b) in legacy.values().iter().zip(fast.values()) {
                assert!((a - b).abs() < 1e-9, "{method:?}");
            }
        }
    }

    #[test]
    fn try_new_rejects_bad_times_without_panicking() {
        assert!(matches!(
            TransientOptions::try_new(-1.0, 1.0),
            Err(SpiceError::InvalidOptions(_))
        ));
        assert!(matches!(
            TransientOptions::try_new(1e-12, f64::NAN),
            Err(SpiceError::InvalidOptions(_))
        ));
        assert!(matches!(
            TransientOptions::try_new(1e-9, 1e-12),
            Err(SpiceError::InvalidOptions(_))
        ));
        let ok = TransientOptions::try_new(1e-12, 1e-9).unwrap();
        assert_eq!(ok.strategy, KernelStrategy::Auto);
    }

    #[test]
    fn factor_once_rejects_nonlinear_circuits() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_vsource("V1", d, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_vsource("VG", g, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_mosfet("M1", d, g, Circuit::GROUND, MosfetParams::nmos_018(), 1e-6);
        let opts = TransientOptions::try_new(ps(1.0), ps(10.0))
            .unwrap()
            .with_strategy(KernelStrategy::FactorOnce);
        match TransientAnalysis::new(opts).run(&ckt) {
            Err(SpiceError::InvalidOptions(msg)) => assert!(msg.contains("linear")),
            other => panic!("expected InvalidOptions, got {other:?}"),
        }
    }

    /// A uniform RC ladder with `segments` sections driven by a ramp — the
    /// scalable linear fixture for the sparse-kernel tests.
    fn rc_ladder(segments: usize) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        ckt.add_vsource(
            "V1",
            src,
            Circuit::GROUND,
            SourceWaveform::rising_ramp(1.0, 0.0, ps(50.0)),
        );
        let mut prev = src;
        let mut far = src;
        for k in 0..segments {
            let n = ckt.node(&format!("n{k}"));
            ckt.add_resistor(&format!("R{k}"), prev, n, 72.44 / segments as f64 * 5.0);
            ckt.add_capacitor(
                &format!("C{k}"),
                n,
                Circuit::GROUND,
                1.1e-12 / segments as f64,
            );
            prev = n;
            far = n;
        }
        ckt.set_initial_condition(src, 0.0);
        (ckt, far)
    }

    #[test]
    fn auto_records_the_executed_strategy() {
        // Small linear circuit: Auto resolves to the dense factor-once path.
        let (small, _) = rc_ladder(10);
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(1.0), ps(20.0)).unwrap())
            .run(&small)
            .unwrap();
        assert_eq!(res.strategy(), KernelStrategy::FactorOnce);
        // Large linear circuit (>= threshold unknowns): Auto goes sparse.
        let (large, far) = rc_ladder(SPARSE_AUTO_THRESHOLD);
        let res = TransientAnalysis::new(TransientOptions::try_new(ps(1.0), ps(20.0)).unwrap())
            .run(&large)
            .unwrap();
        assert_eq!(res.strategy(), KernelStrategy::Sparse);
        // And the sparse solution matches the explicit dense kernel.
        let dense = TransientAnalysis::new(
            TransientOptions::try_new(ps(1.0), ps(20.0))
                .unwrap()
                .with_strategy(KernelStrategy::FactorOnce),
        )
        .run(&large)
        .unwrap();
        assert_eq!(dense.strategy(), KernelStrategy::FactorOnce);
        let (ws, wd) = (res.waveform(far), dense.waveform(far));
        for (a, b) in ws.values().iter().zip(wd.values()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_rejects_nonlinear_circuits() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        ckt.add_vsource("V1", d, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_vsource("VG", g, Circuit::GROUND, SourceWaveform::dc(1.8));
        ckt.add_mosfet("M1", d, g, Circuit::GROUND, MosfetParams::nmos_018(), 1e-6);
        let opts = TransientOptions::try_new(ps(1.0), ps(10.0))
            .unwrap()
            .with_strategy(KernelStrategy::Sparse);
        match TransientAnalysis::new(opts).run(&ckt) {
            Err(SpiceError::InvalidOptions(msg)) => assert!(msg.contains("linear")),
            other => panic!("expected InvalidOptions, got {other:?}"),
        }
    }

    #[test]
    fn unhealthy_sparse_stamp_degrades_to_dense_lu() {
        // A floating node carries only the gmin stamp (1e-12), far below
        // 1e-9 x the resistor conductances — the pivot-health gate must
        // reject the sparse factorization and fall back to dense LU, and
        // the recorded strategy must say so.
        let (mut ckt, far) = rc_ladder(SPARSE_AUTO_THRESHOLD);
        let _floating = ckt.node("floating");
        let opts = TransientOptions::try_new(ps(1.0), ps(20.0))
            .unwrap()
            .with_strategy(KernelStrategy::Sparse);
        let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
        assert_eq!(res.strategy(), KernelStrategy::FactorOnce);
        // The fallback still produces the right answer.
        let reference = TransientAnalysis::new(
            TransientOptions::try_new(ps(1.0), ps(20.0))
                .unwrap()
                .with_strategy(KernelStrategy::LegacyFull),
        )
        .run(&ckt)
        .unwrap()
        .waveform(far);
        let w = res.waveform(far);
        for (a, b) in w.values().iter().zip(reference.values()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_workspace_reuse_refactors_and_matches() {
        let (ckt, far) = rc_ladder(SPARSE_AUTO_THRESHOLD + 10);
        let analysis = TransientAnalysis::new(
            TransientOptions::try_new(ps(1.0), ps(20.0))
                .unwrap()
                .with_strategy(KernelStrategy::Sparse),
        );
        let mut ws = TransientWorkspace::new();
        let first = analysis.run_with(&ckt, &mut ws).unwrap();
        assert_eq!(first.strategy(), KernelStrategy::Sparse);
        // Second run hits the same-pattern refactor path; results identical.
        let second = analysis.run_with(&ckt, &mut ws).unwrap();
        assert_eq!(second.strategy(), KernelStrategy::Sparse);
        assert_eq!(first.waveform(far).values(), second.waveform(far).values());
    }

    #[test]
    fn workspace_reuse_across_runs_is_identical() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::rising_ramp(1.0, 0.0, ps(50.0)),
        );
        ckt.add_resistor("R1", a, b, 500.0);
        ckt.add_capacitor("C1", b, Circuit::GROUND, ff(200.0));
        ckt.set_initial_condition(a, 0.0);

        let analysis =
            TransientAnalysis::new(TransientOptions::try_new(ps(0.5), ps(300.0)).unwrap());
        let fresh = analysis.run(&ckt).unwrap().waveform(b);
        let mut ws = TransientWorkspace::new();
        // Dirty the workspace with a different circuit first.
        let mut other = Circuit::new();
        let p = other.node("p");
        other.add_vsource("V1", p, Circuit::GROUND, SourceWaveform::dc(1.0));
        other.add_resistor("R1", p, Circuit::GROUND, 50.0);
        let _ = analysis.run_with(&other, &mut ws).unwrap();
        let reused = analysis.run_with(&ckt, &mut ws).unwrap().waveform(b);
        assert_eq!(fresh.values(), reused.values());
    }
}
