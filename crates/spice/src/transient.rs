//! Fixed-step transient analysis with Newton–Raphson at every time point.

use std::collections::HashMap;

use crate::circuit::{Circuit, NodeId};
use crate::dc::{dc_operating_point, DcOptions};
use crate::mna::{CompanionMethod, MnaSystem};
use crate::waveform::Waveform;
use crate::SpiceError;

/// Integration method for the transient companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Trapezoidal rule (default): second-order accurate, preserves the
    /// LC ringing that produces the transmission-line kinks being studied.
    #[default]
    Trapezoidal,
    /// Backward Euler: first-order, numerically damped; useful as a
    /// cross-check and for stiff start-up transients.
    BackwardEuler,
}

impl IntegrationMethod {
    fn companion(self) -> CompanionMethod {
        match self {
            IntegrationMethod::Trapezoidal => CompanionMethod::Trapezoidal,
            IntegrationMethod::BackwardEuler => CompanionMethod::BackwardEuler,
        }
    }
}

/// How the transient analysis obtains its starting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialState {
    /// Run a DC operating point first unless the circuit carries explicit
    /// initial conditions (the SPICE "UIC when ICs are present" behaviour).
    #[default]
    Auto,
    /// Always run a DC operating point.
    DcOperatingPoint,
    /// Use the circuit's initial conditions (unspecified nodes start at 0 V).
    UseInitialConditions,
}

/// Options for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step (seconds).
    pub time_step: f64,
    /// Stop time (seconds).
    pub stop_time: f64,
    /// Integration method.
    pub method: IntegrationMethod,
    /// Starting-state policy.
    pub initial_state: InitialState,
    /// Maximum Newton iterations per time point.
    pub max_newton_iterations: usize,
    /// Convergence tolerance on voltage updates (volts).
    pub voltage_tolerance: f64,
    /// Largest allowed voltage change per Newton iteration (volts).
    pub step_limit: f64,
}

impl TransientOptions {
    /// Creates options with the given step and stop time and default
    /// tolerances.
    ///
    /// # Panics
    /// Panics if `time_step <= 0`, `stop_time <= 0`, or
    /// `stop_time < time_step`.
    pub fn new(time_step: f64, stop_time: f64) -> Self {
        assert!(time_step > 0.0 && stop_time > 0.0, "times must be positive");
        assert!(stop_time >= time_step, "stop time shorter than one step");
        TransientOptions {
            time_step,
            stop_time,
            method: IntegrationMethod::default(),
            initial_state: InitialState::default(),
            max_newton_iterations: 100,
            voltage_tolerance: 1e-6,
            step_limit: 1.0,
        }
    }

    /// Sets the integration method (builder style).
    pub fn with_method(mut self, method: IntegrationMethod) -> Self {
        self.method = method;
        self
    }

    /// Sets the starting-state policy (builder style).
    pub fn with_initial_state(mut self, initial_state: InitialState) -> Self {
        self.initial_state = initial_state;
        self
    }
}

/// A transient analysis runner.
#[derive(Debug, Clone)]
pub struct TransientAnalysis {
    options: TransientOptions,
}

/// Result of a transient run: the full solution history.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    solutions: Vec<Vec<f64>>,
    system: MnaSystem,
    node_names: HashMap<String, NodeId>,
}

impl TransientResult {
    /// Simulated time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of accepted time points.
    pub fn num_points(&self) -> usize {
        self.times.len()
    }

    /// Waveform of a node voltage.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        let values = self
            .solutions
            .iter()
            .map(|x| self.system.node_voltage(x, node.index()))
            .collect();
        Waveform::new(self.times.clone(), values)
    }

    /// Waveform of a node voltage looked up by name. Returns `None` when the
    /// node does not exist.
    pub fn waveform_by_name(&self, name: &str) -> Option<Waveform> {
        self.node_names.get(name).map(|&n| self.waveform(n))
    }

    /// Branch current of a named voltage source over time (SPICE convention:
    /// current into the positive terminal). Returns `None` for unknown names.
    pub fn vsource_current(&self, name: &str) -> Option<Waveform> {
        let branch = self.system.vsource_branch(name)?;
        let values = self.solutions.iter().map(|x| x[branch]).collect();
        Some(Waveform::new(self.times.clone(), values))
    }
}

impl TransientAnalysis {
    /// Creates a transient analysis with the given options.
    pub fn new(options: TransientOptions) -> Self {
        TransientAnalysis { options }
    }

    /// Runs the analysis on a circuit.
    ///
    /// # Errors
    /// Returns a [`SpiceError`] if the circuit is invalid, the Newton loop
    /// fails to converge at some time point, or the MNA matrix is singular.
    pub fn run(&self, circuit: &Circuit) -> Result<TransientResult, SpiceError> {
        circuit.validate()?;
        let system = MnaSystem::compile(circuit);
        let n = system.num_unknowns();
        let n_voltages = system.num_nodes() - 1;
        let opts = &self.options;

        // Starting state.
        let use_ics = match opts.initial_state {
            InitialState::Auto => !circuit.initial_conditions().is_empty(),
            InitialState::DcOperatingPoint => false,
            InitialState::UseInitialConditions => true,
        };
        let mut x = if use_ics {
            let mut x0 = vec![0.0; n];
            for (&node, &v) in circuit.initial_conditions() {
                if let Some(idx) = system.voltage_unknown(node) {
                    x0[idx] = v;
                }
            }
            x0
        } else {
            dc_operating_point(circuit, DcOptions::default())?
                .raw()
                .to_vec()
        };

        let mut cap_currents = vec![0.0; system.num_capacitors()];
        let n_steps = (opts.stop_time / opts.time_step).round() as usize;
        let mut times = Vec::with_capacity(n_steps + 1);
        let mut solutions = Vec::with_capacity(n_steps + 1);
        times.push(0.0);
        solutions.push(x.clone());

        let method = opts.method.companion();
        let h = opts.time_step;

        for step in 1..=n_steps {
            let t = step as f64 * h;
            let prev_x = x.clone();
            // Newton iterations about the previous solution as initial guess.
            let mut guess = prev_x.clone();
            let mut converged = false;
            let mut last_delta = f64::INFINITY;
            for _ in 0..opts.max_newton_iterations {
                let (m, rhs) =
                    system.assemble_transient(t, h, method, &guess, &prev_x, &cap_currents);
                let x_new = m
                    .solve(&rhs)
                    .map_err(|_| SpiceError::SingularMatrix { time: Some(t) })?;
                let mut max_delta: f64 = 0.0;
                for k in 0..n {
                    let mut delta = x_new[k] - guess[k];
                    if k < n_voltages {
                        delta = delta.clamp(-opts.step_limit, opts.step_limit);
                        max_delta = max_delta.max(delta.abs());
                        guess[k] += delta;
                    } else {
                        guess[k] = x_new[k];
                    }
                }
                last_delta = max_delta;
                if max_delta < opts.voltage_tolerance {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(SpiceError::NonConvergence {
                    time: Some(t),
                    iterations: opts.max_newton_iterations,
                    max_delta: last_delta,
                });
            }
            system.update_capacitor_currents(h, method, &guess, &prev_x, &mut cap_currents);
            x = guess;
            times.push(t);
            solutions.push(x.clone());
        }

        let node_names = (0..circuit.num_nodes())
            .map(|k| {
                let id = if k == 0 {
                    Circuit::GROUND
                } else {
                    // Reconstruct NodeId; indices are stable.
                    NodeId(k)
                };
                (circuit.node_name(id).to_string(), id)
            })
            .collect();

        Ok(TransientResult {
            times,
            solutions,
            system,
            node_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::mosfet::MosfetParams;
    use crate::source::SourceWaveform;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::{ff, nh, pf, ps};

    /// RC step response: V(t) = V0 (1 - e^{-t/RC}).
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1000.0;
        let c = 100e-15;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, b, r);
        ckt.add_capacitor("C1", b, Circuit::GROUND, c);
        ckt.set_initial_condition(b, 0.0);
        ckt.set_initial_condition(a, 1.0);

        let opts = TransientOptions::new(tau / 200.0, 6.0 * tau);
        let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
        let w = res.waveform(b);
        for &t in &[0.5 * tau, tau, 2.0 * tau, 4.0 * tau] {
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (w.value_at(t) - expected).abs() < 2e-3,
                "t = {t}: {} vs {expected}",
                w.value_at(t)
            );
        }
    }

    /// Series RLC with an underdamped response must ring at the right
    /// frequency.
    #[test]
    fn rlc_ringing_frequency_is_correct() {
        let r = 5.0;
        let l = nh(5.0);
        let c = pf(1.0);
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let m = ckt.node("m");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, m, r);
        ckt.add_inductor("L1", m, b, l);
        ckt.add_capacitor("C1", b, Circuit::GROUND, c);
        ckt.set_initial_condition(a, 1.0);

        let opts = TransientOptions::new(ps(0.2), ps(1500.0))
            .with_initial_state(InitialState::UseInitialConditions);
        let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
        let w = res.waveform(b);
        // Damped natural period T = 2*pi / sqrt(1/LC - (R/2L)^2)
        let wd = (1.0 / (l * c) - (r / (2.0 * l)).powi(2)).sqrt();
        let period = 2.0 * std::f64::consts::PI / wd;
        // Find the first two upward crossings of the final value 1.0.
        let t1 = w.crossing_time(1.0, true).unwrap();
        let after: Vec<(f64, f64)> = w
            .times()
            .iter()
            .copied()
            .zip(w.values().iter().copied())
            .filter(|&(t, _)| t > t1 + 0.4 * period)
            .collect();
        let wave2 = Waveform::new(
            after.iter().map(|p| p.0).collect(),
            after.iter().map(|p| p.1).collect(),
        );
        let t2 = wave2.crossing_time(1.0, true).unwrap();
        let measured_period = t2 - t1;
        assert!(
            (measured_period - period).abs() / period < 0.03,
            "period {measured_period:.3e} vs analytic {period:.3e}"
        );
        // Peak overshoot of a lightly damped RLC approaches 2x the step.
        assert!(w.max_value() > 1.5);
    }

    /// An inverter driving a capacitor must swing rail to rail with a plausible
    /// delay, and the output must be monotonic for a lumped capacitive load.
    #[test]
    fn inverter_driving_capacitor_switches() {
        let vdd = 1.8;
        let mut ckt = Circuit::new();
        let nvdd = ckt.node("vdd");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add_vsource("VDD", nvdd, Circuit::GROUND, SourceWaveform::dc(vdd));
        ckt.add_vsource(
            "VIN",
            nin,
            Circuit::GROUND,
            SourceWaveform::falling_ramp(vdd, ps(20.0), ps(100.0)),
        );
        ckt.add_mosfet("MP", nout, nin, nvdd, MosfetParams::pmos_018(), 54e-6);
        ckt.add_mosfet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            MosfetParams::nmos_018(),
            27e-6,
        );
        ckt.add_capacitor("CL", nout, Circuit::GROUND, ff(500.0));
        ckt.set_initial_condition(nin, vdd);
        ckt.set_initial_condition(nout, 0.0);
        ckt.set_initial_condition(nvdd, vdd);

        let opts = TransientOptions::new(ps(0.5), ps(1000.0));
        let res = TransientAnalysis::new(opts).run(&ckt).unwrap();
        let out = res.waveform(nout);
        assert!(out.last_value() > 0.98 * vdd, "output must reach VDD");
        let t50_out = out.crossing_fraction(0.5, vdd, true).unwrap();
        let t50_in = ps(20.0) + ps(50.0);
        let delay = t50_out - t50_in;
        assert!(delay > ps(1.0) && delay < ps(200.0), "delay = {delay:.3e}");
        let slew = out.slew_10_90(vdd, true).unwrap();
        assert!(slew > ps(5.0) && slew < ps(500.0), "slew = {slew:.3e}");
    }

    /// Backward Euler and trapezoidal must agree on smooth RC waveforms.
    #[test]
    fn integration_methods_agree_on_rc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::rising_ramp(1.0, 0.0, ps(50.0)),
        );
        ckt.add_resistor("R1", a, b, 500.0);
        ckt.add_capacitor("C1", b, Circuit::GROUND, ff(200.0));
        ckt.set_initial_condition(a, 0.0);

        let trap = TransientAnalysis::new(
            TransientOptions::new(ps(0.25), ps(600.0)).with_method(IntegrationMethod::Trapezoidal),
        )
        .run(&ckt)
        .unwrap()
        .waveform(b);
        let be = TransientAnalysis::new(
            TransientOptions::new(ps(0.25), ps(600.0))
                .with_method(IntegrationMethod::BackwardEuler),
        )
        .run(&ckt)
        .unwrap()
        .waveform(b);
        assert!(trap.rms_difference(&be) < 5e-3);
    }

    #[test]
    fn dc_start_matches_operating_point() {
        // No initial conditions: the run must start from the DC solution
        // (output high for input low), not from zero.
        let vdd = 1.8;
        let mut ckt = Circuit::new();
        let nvdd = ckt.node("vdd");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add_vsource("VDD", nvdd, Circuit::GROUND, SourceWaveform::dc(vdd));
        ckt.add_vsource("VIN", nin, Circuit::GROUND, SourceWaveform::dc(0.0));
        ckt.add_mosfet("MP", nout, nin, nvdd, MosfetParams::pmos_018(), 10e-6);
        ckt.add_mosfet(
            "MN",
            nout,
            nin,
            Circuit::GROUND,
            MosfetParams::nmos_018(),
            5e-6,
        );
        ckt.add_capacitor("CL", nout, Circuit::GROUND, ff(50.0));
        let res = TransientAnalysis::new(TransientOptions::new(ps(1.0), ps(50.0)))
            .run(&ckt)
            .unwrap();
        let out = res.waveform(nout);
        assert!(out.value_at(0.0) > 1.7);
        assert!(out.last_value() > 1.7);
    }

    #[test]
    fn vsource_current_is_recorded() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", a, Circuit::GROUND, 100.0);
        let res = TransientAnalysis::new(TransientOptions::new(ps(1.0), ps(10.0)))
            .run(&ckt)
            .unwrap();
        let i = res.vsource_current("V1").unwrap();
        assert!(approx_eq(i.last_value(), -0.01, 1e-6));
        assert!(res.vsource_current("nope").is_none());
        assert!(res.waveform_by_name("a").is_some());
        assert!(res.waveform_by_name("zzz").is_none());
        assert_eq!(res.num_points(), 11);
    }

    #[test]
    #[should_panic(expected = "stop time shorter")]
    fn options_validate_stop_time() {
        let _ = TransientOptions::new(ps(10.0), ps(1.0));
    }
}
