//! Shared setup for the experiment binaries: cached cell characterization,
//! line construction from the paper's published parasitics, and the
//! simulation fidelity presets.

use std::collections::BTreeMap;
use std::sync::Arc;

use rlc_ceff::validation::GoldenOptions;
use rlc_ceff::{far_end::FarEndOptions, IterationSettings, ModelingConfig};
use rlc_charlib::{CharacterizationGrid, DriverCell, Library};
use rlc_interconnect::paper_cases::PublishedParasitics;
use rlc_interconnect::RlcLine;
use rlc_numeric::units::{mm, ps};

/// Golden-simulation fidelity presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFidelity {
    /// High fidelity (40 segments, 0.5 ps step) — used for the waveform
    /// figures and Table 1.
    Reference,
    /// Reduced fidelity (24 segments, 1 ps step) — used for the 100+ case
    /// Figure 7 sweep so the full harness completes in minutes.
    Sweep,
}

impl SimFidelity {
    /// Golden-simulation options for this preset.
    pub fn golden(self) -> GoldenOptions {
        match self {
            SimFidelity::Reference => GoldenOptions {
                segments: 40,
                time_step: ps(0.5),
                max_stop_time: 3e-9,
            },
            SimFidelity::Sweep => GoldenOptions {
                segments: 24,
                time_step: ps(1.0),
                max_stop_time: 3e-9,
            },
        }
    }

    /// Far-end propagation options for this preset.
    pub fn far_end(self) -> FarEndOptions {
        match self {
            SimFidelity::Reference => FarEndOptions {
                segments: 40,
                time_step: ps(0.5),
                settle_time: ps(500.0),
            },
            SimFidelity::Sweep => FarEndOptions {
                segments: 24,
                time_step: ps(1.0),
                settle_time: ps(400.0),
            },
        }
    }
}

/// Builds an [`RlcLine`] from a published parasitic record.
pub fn build_line(parasitics: &PublishedParasitics) -> RlcLine {
    RlcLine::new(
        parasitics.r_ohms,
        parasitics.l_nh * 1e-9,
        parasitics.c_pf * 1e-12,
        mm(parasitics.length_mm),
    )
}

/// Shared, lazily populated experiment context: the characterized library and
/// the modelling configuration used by every experiment.
#[derive(Debug)]
pub struct ExperimentContext {
    library: Library,
    /// Modelling configuration used for all experiments.
    pub config: ModelingConfig,
}

impl ExperimentContext {
    /// Creates the context with the default characterization grid and the
    /// paper's modelling flow configuration.
    pub fn new() -> Self {
        ExperimentContext {
            library: Library::new(CharacterizationGrid::default()),
            config: ModelingConfig {
                iteration: IterationSettings::default(),
                extract_rs_per_case: true,
                ..ModelingConfig::default()
            },
        }
    }

    /// Returns (characterizing on first use) a shared handle to the cell of
    /// a given drive strength.
    ///
    /// # Panics
    /// Panics if characterization fails — the experiment binaries cannot
    /// proceed without the library.
    pub fn cell(&mut self, size: f64) -> Arc<DriverCell> {
        self.library
            .cell_shared(size)
            .unwrap_or_else(|e| panic!("characterization of the {size}X driver failed: {e}"))
    }

    /// Pre-characterizes a set of sizes and returns shared handles keyed by
    /// size (in thousandths, to keep a total order on f64 sizes).
    pub fn cells(&mut self, sizes: &[f64]) -> BTreeMap<u64, Arc<DriverCell>> {
        sizes
            .iter()
            .map(|&s| ((s * 1000.0).round() as u64, self.cell(s)))
            .collect()
    }
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience: characterize a single cell of the given size on the default
/// grid (used by benches that do not need the whole context).
pub fn cell_for(size: f64) -> DriverCell {
    DriverCell::characterize(size, &CharacterizationGrid::default())
        .unwrap_or_else(|e| panic!("characterization of the {size}X driver failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_interconnect::paper_cases;

    #[test]
    fn build_line_matches_published_values() {
        let case = paper_cases::figure1_case();
        let line = build_line(&case.parasitics);
        assert!((line.resistance() - 72.44).abs() < 1e-9);
        assert!((line.inductance() - 5.14e-9).abs() < 1e-18);
        assert!((line.capacitance() - 1.10e-12).abs() < 1e-21);
        assert!((line.length() - 5.0e-3).abs() < 1e-12);
    }

    #[test]
    fn fidelity_presets_differ() {
        let hi = SimFidelity::Reference.golden();
        let lo = SimFidelity::Sweep.golden();
        assert!(hi.segments > lo.segments);
        assert!(hi.time_step < lo.time_step);
        assert!(SimFidelity::Reference.far_end().segments > SimFidelity::Sweep.far_end().segments);
    }
}
