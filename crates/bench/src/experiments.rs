//! Runners for every table and figure in the paper's evaluation section.

use std::sync::Arc;
use std::thread;

use rlc_ceff::flow::{AnalysisCase, DriverOutputModeler};
use rlc_ceff::validation::{CaseComparison, FarEndComparison, GoldenWaveforms};
use rlc_ceff::CeffError;
use rlc_charlib::DriverCell;
use rlc_interconnect::paper_cases::{self, FigureCase, Table1Row};
use rlc_interconnect::{EmpiricalExtractor, Extractor, RlcLine, WireGeometry};
use rlc_numeric::stats::ErrorSummary;
use rlc_numeric::units::{ff, mm, ps, um};
use rlc_spice::Waveform;

use crate::setup::{build_line, ExperimentContext, SimFidelity};

/// A labelled time/voltage series for CSV export.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveformSeries {
    /// Series label (used as the CSV file suffix).
    pub label: String,
    /// Sample times (seconds).
    pub times: Vec<f64>,
    /// Sample values (volts).
    pub values: Vec<f64>,
}

impl WaveformSeries {
    /// Builds a series from a simulator waveform.
    pub fn from_waveform(label: &str, w: &Waveform) -> Self {
        WaveformSeries {
            label: label.to_string(),
            times: w.times().to_vec(),
            values: w.values().to_vec(),
        }
    }

    /// Builds a series by sampling a closure over `[0, t_stop]`.
    pub fn from_fn<F: Fn(f64) -> f64>(label: &str, f: F, t_stop: f64, n: usize) -> Self {
        let w = Waveform::from_fn(f, t_stop, n);
        Self::from_waveform(label, &w)
    }
}

/// Writes a set of waveform series as CSV files named
/// `<prefix>_<label>.csv` in the experiment output directory.
pub fn export_series(paths: &crate::output::OutputPaths, prefix: &str, series: &[WaveformSeries]) {
    for s in series {
        let rows: Vec<Vec<f64>> = s
            .times
            .iter()
            .zip(&s.values)
            .map(|(&t, &v)| vec![t, v])
            .collect();
        crate::output::write_csv(
            &paths.file(&format!("{prefix}_{}.csv", s.label)),
            &["time_s", "voltage_v"],
            &rows,
        );
    }
}

/// The far-end load used for all experiments: the input capacitance of a
/// matching receiver is small compared to the line capacitance, consistent
/// with the paper's `C_L << C·l` assumption. A fixed small value keeps the
/// published parasitics the dominant load.
pub fn receiver_load() -> f64 {
    ff(10.0)
}

fn figure_setup(ctx: &mut ExperimentContext, case: &FigureCase) -> (Arc<DriverCell>, RlcLine) {
    (ctx.cell(case.driver_size), build_line(&case.parasitics))
}

/// Figure 1: the golden driver-output waveform of the 5 mm / 1.6 µm line
/// driven by a 75X inverter, showing the reflection steps and plateaus.
///
/// # Errors
/// Propagates simulation errors.
pub fn run_fig1(ctx: &mut ExperimentContext) -> Result<Vec<WaveformSeries>, CeffError> {
    let case = paper_cases::figure1_case();
    let (cell, line) = figure_setup(ctx, &case);
    let analysis = AnalysisCase::try_new(&cell, &line, receiver_load(), ps(case.input_slew_ps))?;
    let golden = GoldenWaveforms::simulate(&analysis, &SimFidelity::Reference.golden())?;
    Ok(vec![
        WaveformSeries::from_waveform("input", &golden.input),
        WaveformSeries::from_waveform("driver_output", &golden.near),
        WaveformSeries::from_waveform("far_end", &golden.far),
    ])
}

/// Result of the Figure 3 experiment: the actual driver output against the
/// single-Ceff approximations (charge to 100 % and charge to 50 %).
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Waveform series: actual, ceff-100 %, ceff-50 %.
    pub series: Vec<WaveformSeries>,
    /// Effective capacitance from charge matching over the full transition (F).
    pub ceff_full: f64,
    /// Effective capacitance from charge matching to the 50 % point (F).
    pub ceff_to_50: f64,
    /// Total load capacitance (F).
    pub total_capacitance: f64,
}

/// Figure 3: single effective capacitances cannot capture an inductive
/// driver-output waveform.
///
/// # Errors
/// Propagates simulation and fit errors.
pub fn run_fig3(ctx: &mut ExperimentContext) -> Result<Fig3Result, CeffError> {
    use rlc_ceff::iteration::{iterate_ceff1, IterationSettings};
    use rlc_ceff::SingleRampModel;
    use rlc_moments::{distributed_admittance_moments, RationalAdmittance};

    let case = paper_cases::figure3_case();
    let (cell, line) = figure_setup(ctx, &case);
    let c_load = receiver_load();
    let analysis = AnalysisCase::try_new(&cell, &line, c_load, ps(case.input_slew_ps))?;
    let golden = GoldenWaveforms::simulate(&analysis, &SimFidelity::Reference.golden())?;

    let moments = distributed_admittance_moments(&line, c_load, 5);
    let fit = RationalAdmittance::from_moments(&moments)?;
    let settings = IterationSettings::default();
    let full = iterate_ceff1(&cell, &fit, analysis.input_slew, 1.0, &settings)?;
    let half = iterate_ceff1(&cell, &fit, analysis.input_slew, 0.5, &settings)?;

    let t_stop = golden.near.last_time();
    let make_ramp = |it: &rlc_ceff::CeffIteration| {
        SingleRampModel::new(
            cell.vdd(),
            it.ramp_time,
            analysis.input_t50() + it.delay - 0.5 * it.ramp_time,
        )
    };
    let ramp_full = make_ramp(&full);
    let ramp_half = make_ramp(&half);
    Ok(Fig3Result {
        series: vec![
            WaveformSeries::from_waveform("actual_driver_output", &golden.near),
            WaveformSeries::from_fn(
                "ceff_charge_to_100pct",
                |t| ramp_full.value_at(t),
                t_stop,
                1200,
            ),
            WaveformSeries::from_fn(
                "ceff_charge_to_50pct",
                |t| ramp_half.value_at(t),
                t_stop,
                1200,
            ),
        ],
        ceff_full: full.ceff,
        ceff_to_50: half.ceff,
        total_capacitance: fit.total_capacitance(),
    })
}

/// Result of the Figure 4 experiment: the two-ramp construction.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Waveform series: golden, ramp1, ramp2 (uncorrected), two-ramp model.
    pub series: Vec<WaveformSeries>,
    /// Breakpoint fraction `f`.
    pub breakpoint: f64,
    /// First-ramp duration `Tr1` (s).
    pub tr1: f64,
    /// Second-ramp duration before the plateau correction (s).
    pub tr2: f64,
    /// Second-ramp duration after the plateau correction (s).
    pub tr2_new: f64,
    /// Plateau duration `2 tf − Tr1` (s).
    pub plateau: f64,
}

/// Figure 4: construction of the two-ramp model (ramp 1 from `Ceff1`, ramp 2
/// from `Ceff2`, and the plateau-shifted ramp 2).
///
/// # Errors
/// Propagates simulation and fit errors.
pub fn run_fig4(ctx: &mut ExperimentContext) -> Result<Fig4Result, CeffError> {
    let case = paper_cases::figure4_case();
    let (cell, line) = figure_setup(ctx, &case);
    let analysis = AnalysisCase::try_new(&cell, &line, receiver_load(), ps(case.input_slew_ps))?;
    let golden = GoldenWaveforms::simulate(&analysis, &SimFidelity::Reference.golden())?;
    let modeler = DriverOutputModeler::new(ctx.config);
    let model = modeler.model_two_ramp(&analysis)?;

    let two = match model.waveform {
        rlc_ceff::flow::ModelWaveform::TwoRamp(m) => m,
        rlc_ceff::flow::ModelWaveform::SingleRamp(_) => unreachable!("forced two-ramp"),
    };
    let tr2_raw = model.tr2_uncorrected.expect("two-ramp model has tr2");
    let uncorrected = rlc_ceff::TwoRampModel::new(two.vdd, two.f, two.tr1, tr2_raw, two.start_time);
    let ramp1_only = rlc_ceff::SingleRampModel::new(two.vdd, two.tr1, two.start_time);

    let t_stop = golden.near.last_time();
    Ok(Fig4Result {
        series: vec![
            WaveformSeries::from_waveform("actual_waveform", &golden.near),
            WaveformSeries::from_fn("ramp1_ceff1", |t| ramp1_only.value_at(t), t_stop, 1200),
            WaveformSeries::from_fn(
                "ramp2_ceff2_uncorrected",
                |t| uncorrected.value_at(t),
                t_stop,
                1200,
            ),
            WaveformSeries::from_fn("proposed_two_ramp_model", |t| two.value_at(t), t_stop, 1200),
        ],
        breakpoint: model.breakpoint,
        tr1: two.tr1,
        tr2: tr2_raw,
        tr2_new: two.tr2,
        plateau: (2.0 * line.time_of_flight() - two.tr1).max(0.0),
    })
}

/// One near-end waveform comparison (Figures 5 and 6-left).
#[derive(Debug, Clone)]
pub struct WaveformComparison {
    /// Case label.
    pub label: String,
    /// Waveform series: golden and model.
    pub series: Vec<WaveformSeries>,
    /// Delay/slew comparison at the driver output.
    pub comparison: CaseComparison,
}

fn compare_case(
    label: &str,
    cell: &DriverCell,
    line: &RlcLine,
    input_slew: f64,
    ctx: &ExperimentContext,
    fidelity: SimFidelity,
) -> Result<WaveformComparison, CeffError> {
    let analysis = AnalysisCase::try_new(cell, line, receiver_load(), input_slew)?;
    let golden = GoldenWaveforms::simulate(&analysis, &fidelity.golden())?;
    let modeler = DriverOutputModeler::new(ctx.config);
    let model = modeler.model(&analysis)?;
    let t_stop = golden.near.last_time();
    let model_series = WaveformSeries::from_fn("model", |t| model.value_at(t), t_stop, 1500);
    let comparison = CaseComparison::against_golden(&golden, model)?;
    Ok(WaveformComparison {
        label: label.to_string(),
        series: vec![
            WaveformSeries::from_waveform("spice", &golden.near),
            model_series,
        ],
        comparison,
    })
}

/// Figure 5: two-ramp model vs. the golden simulation for the 3 mm / 1.2 µm
/// 75X 75 ps case and the 5 mm / 1.6 µm 100X 100 ps case.
///
/// # Errors
/// Propagates simulation and fit errors.
pub fn run_fig5(ctx: &mut ExperimentContext) -> Result<Vec<WaveformComparison>, CeffError> {
    let cases = [
        paper_cases::figure5_left_case(),
        paper_cases::figure5_right_case(),
    ];
    let mut out = Vec::new();
    for case in cases {
        let (cell, line) = figure_setup(ctx, &case);
        out.push(compare_case(
            case.parasitics.label,
            &cell,
            &line,
            ps(case.input_slew_ps),
            ctx,
            SimFidelity::Reference,
        )?);
    }
    Ok(out)
}

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Left panel: the 25X-driven case where a single ramp suffices.
    pub single_ramp_case: WaveformComparison,
    /// Whether the flow indeed selected the single-ramp model for it.
    pub single_ramp_selected: bool,
    /// Right panel: near- and far-end waveforms (golden and model).
    pub near_far_series: Vec<WaveformSeries>,
    /// Far-end delay/slew comparison for the right panel.
    pub far_end: FarEndComparison,
}

/// Figure 6: (left) one-ramp model when inductance is insignificant;
/// (right) near and far-end responses of the modelled waveform.
///
/// # Errors
/// Propagates simulation and fit errors.
pub fn run_fig6(ctx: &mut ExperimentContext) -> Result<Fig6Result, CeffError> {
    // Left: 4 mm / 1.6 um, 25X, 100 ps.
    let left = paper_cases::figure6_left_case();
    let (cell_l, line_l) = figure_setup(ctx, &left);
    let left_cmp = compare_case(
        left.parasitics.label,
        &cell_l,
        &line_l,
        ps(left.input_slew_ps),
        ctx,
        SimFidelity::Reference,
    )?;
    let single_selected = !left_cmp.comparison.used_two_ramp;

    // Right: 4 mm / 0.8 um, 75X, 50 ps — near and far ends.
    let right = paper_cases::figure6_right_case();
    let (cell_r, line_r) = figure_setup(ctx, &right);
    let analysis =
        AnalysisCase::try_new(&cell_r, &line_r, receiver_load(), ps(right.input_slew_ps))?;
    let golden = GoldenWaveforms::simulate(&analysis, &SimFidelity::Reference.golden())?;
    let modeler = DriverOutputModeler::new(ctx.config);
    let model = modeler.model(&analysis)?;
    let t_stop = golden.near.last_time();
    let model_near = WaveformSeries::from_fn("model_near", |t| model.value_at(t), t_stop, 1500);
    let comparison = CaseComparison::against_golden(&golden, model)?;
    let far = comparison.far_end(
        &golden,
        &line_r,
        receiver_load(),
        &SimFidelity::Reference.far_end(),
    )?;
    let far_model_wave = rlc_ceff::far_end::FarEndResponse::from_model(
        &comparison.model,
        &line_r,
        receiver_load(),
        &SimFidelity::Reference.far_end(),
    )?;
    Ok(Fig6Result {
        single_ramp_case: left_cmp,
        single_ramp_selected: single_selected,
        near_far_series: vec![
            WaveformSeries::from_waveform("spice_near", &golden.near),
            WaveformSeries::from_waveform("spice_far", &golden.far),
            model_near,
            WaveformSeries::from_waveform("model_far", &far_model_wave.far_waveform),
        ],
        far_end: far,
    })
}

/// One case of the Figure 7 sweep.
#[derive(Debug, Clone)]
pub struct SweepCase {
    /// Line length (mm).
    pub length_mm: f64,
    /// Line width (µm).
    pub width_um: f64,
    /// Driver size (X).
    pub driver_size: f64,
    /// Input slew (ps).
    pub input_slew_ps: f64,
    /// Golden near-end delay (s).
    pub sim_delay: f64,
    /// Golden near-end slew (s).
    pub sim_slew: f64,
    /// Model near-end delay (s).
    pub model_delay: f64,
    /// Model near-end slew (s).
    pub model_slew: f64,
    /// Signed relative delay error.
    pub delay_error: f64,
    /// Signed relative slew error.
    pub slew_error: f64,
}

/// Aggregate result of the Figure 7 sweep.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Every inductive case that was evaluated.
    pub cases: Vec<SweepCase>,
    /// Number of sweep points that were screened out as not inductive.
    pub screened_out: usize,
    /// Delay error statistics over the inductive cases.
    pub delay_stats: ErrorSummary,
    /// Slew error statistics over the inductive cases.
    pub slew_stats: ErrorSummary,
}

/// The sweep grid of Section 6: lengths 1–7 mm, widths 0.8–3.5 µm, drivers
/// 25X–125X, input transitions 50–200 ps.
pub fn fig7_grid() -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    (
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        vec![0.8, 1.2, 1.6, 2.0, 2.5, 3.0, 3.5],
        vec![25.0, 50.0, 75.0, 100.0, 125.0],
        vec![50.0, 100.0, 150.0, 200.0],
    )
}

/// Figure 7: sweep the full grid, keep the cases the screening criteria mark
/// as inductive, and compare the two-ramp model against the golden simulation
/// for each. `thread_count` golden simulations run in parallel.
///
/// # Errors
/// Propagates characterization errors; individual case failures are skipped
/// (and counted in `screened_out`) so one pathological corner cannot kill the
/// whole sweep.
pub fn run_fig7(
    ctx: &mut ExperimentContext,
    fidelity: SimFidelity,
    thread_count: usize,
    max_cases: Option<usize>,
) -> Result<Fig7Result, CeffError> {
    let (lengths, widths, drivers, slews) = fig7_grid();
    let cells = ctx.cells(&drivers);
    let extractor = EmpiricalExtractor::cmos018();
    let config = ctx.config;

    // Enumerate the full grid with extracted parasitics.
    struct Point {
        length_mm: f64,
        width_um: f64,
        driver_size: f64,
        input_slew_ps: f64,
        line: RlcLine,
    }
    let mut points = Vec::new();
    for &len in &lengths {
        for &wid in &widths {
            let line = extractor.extract(&WireGeometry::new(mm(len), um(wid)));
            for &drv in &drivers {
                for &slew in &slews {
                    points.push(Point {
                        length_mm: len,
                        width_um: wid,
                        driver_size: drv,
                        input_slew_ps: slew,
                        line,
                    });
                }
            }
        }
    }

    // Screen with the modelling flow itself (cheap: no golden simulation) and
    // keep only the inductive cases.
    let modeler = DriverOutputModeler::new(config);
    let mut inductive: Vec<Point> = Vec::new();
    let mut screened_out = 0usize;
    for p in points {
        let cell = &cells[&((p.driver_size * 1000.0) as u64)];
        let analysis = AnalysisCase::try_new(cell, &p.line, receiver_load(), ps(p.input_slew_ps))?;
        match modeler.model(&analysis) {
            Ok(model) if model.is_two_ramp() => inductive.push(p),
            Ok(_) => screened_out += 1,
            Err(_) => screened_out += 1,
        }
    }
    if let Some(limit) = max_cases {
        inductive.truncate(limit);
    }

    // Golden-simulate the inductive cases in parallel.
    let golden_opts = fidelity.golden();
    let n_threads = thread_count.max(1);
    let results = std::sync::Mutex::new(Vec::<SweepCase>::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if idx >= inductive.len() {
                    break;
                }
                let p = &inductive[idx];
                let cell = &cells[&((p.driver_size * 1000.0) as u64)];
                let Ok(analysis) =
                    AnalysisCase::try_new(cell, &p.line, receiver_load(), ps(p.input_slew_ps))
                else {
                    continue;
                };
                let modeler = DriverOutputModeler::new(config);
                if let Ok(cmp) = CaseComparison::evaluate(&analysis, &modeler, &golden_opts) {
                    let case = SweepCase {
                        length_mm: p.length_mm,
                        width_um: p.width_um,
                        driver_size: p.driver_size,
                        input_slew_ps: p.input_slew_ps,
                        sim_delay: cmp.sim_delay,
                        sim_slew: cmp.sim_slew,
                        model_delay: cmp.model_delay,
                        model_slew: cmp.model_slew,
                        delay_error: cmp.delay_error,
                        slew_error: cmp.slew_error,
                    };
                    results.lock().unwrap().push(case);
                }
            });
        }
    });
    let mut cases = results.into_inner().unwrap();
    cases.sort_by(|a, b| {
        (a.length_mm, a.width_um, a.driver_size, a.input_slew_ps)
            .partial_cmp(&(b.length_mm, b.width_um, b.driver_size, b.input_slew_ps))
            .unwrap()
    });

    let delay_errors: Vec<f64> = cases.iter().map(|c| c.delay_error).collect();
    let slew_errors: Vec<f64> = cases.iter().map(|c| c.slew_error).collect();
    let delay_stats = ErrorSummary::from_errors(&delay_errors).ok_or_else(|| {
        CeffError::Measurement("figure 7 sweep produced no inductive cases".into())
    })?;
    let slew_stats = ErrorSummary::from_errors(&slew_errors).ok_or_else(|| {
        CeffError::Measurement("figure 7 sweep produced no inductive cases".into())
    })?;
    Ok(Fig7Result {
        cases,
        screened_out,
        delay_stats,
        slew_stats,
    })
}

/// One reproduced row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// The published row (geometry, parasitics, paper-reported numbers).
    pub published: Table1Row,
    /// Golden near-end delay from our simulator (s).
    pub sim_delay: f64,
    /// Golden near-end slew (s).
    pub sim_slew: f64,
    /// Two-ramp model delay (s).
    pub two_ramp_delay: f64,
    /// Two-ramp model slew (s).
    pub two_ramp_slew: f64,
    /// One-ramp model delay (s).
    pub one_ramp_delay: f64,
    /// One-ramp model slew (s).
    pub one_ramp_slew: f64,
    /// Signed relative errors of the two-ramp model vs. our golden simulator.
    pub two_ramp_delay_error: f64,
    /// Two-ramp slew error.
    pub two_ramp_slew_error: f64,
    /// One-ramp delay error.
    pub one_ramp_delay_error: f64,
    /// One-ramp slew error.
    pub one_ramp_slew_error: f64,
}

/// Table 1: the 15 published inductive cases, each evaluated with the golden
/// simulator, the two-ramp model and the one-ramp baseline.
///
/// # Errors
/// Propagates simulation and fit errors.
pub fn run_table1(
    ctx: &mut ExperimentContext,
    fidelity: SimFidelity,
    thread_count: usize,
) -> Result<Vec<Table1Result>, CeffError> {
    let rows = paper_cases::table1_rows();
    let sizes: Vec<f64> = {
        let mut s: Vec<f64> = rows.iter().map(|r| r.driver_size).collect();
        s.sort_by(f64::total_cmp);
        s.dedup();
        s
    };
    let cells = ctx.cells(&sizes);
    let config = ctx.config;
    let golden_opts = fidelity.golden();

    let results = std::sync::Mutex::new(Vec::<(usize, Table1Result)>::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let errors = std::sync::Mutex::new(Vec::<CeffError>::new());
    thread::scope(|scope| {
        for _ in 0..thread_count.max(1) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if idx >= rows.len() {
                    break;
                }
                let row = rows[idx];
                let cell = &cells[&((row.driver_size * 1000.0) as u64)];
                let line = build_line(&row.parasitics);
                let Ok(analysis) =
                    AnalysisCase::try_new(cell, &line, receiver_load(), ps(row.input_slew_ps))
                else {
                    continue;
                };
                let modeler = DriverOutputModeler::new(config);
                let outcome = (|| -> Result<Table1Result, CeffError> {
                    let golden = GoldenWaveforms::simulate(&analysis, &golden_opts)?;
                    let two = modeler.model_two_ramp(&analysis)?;
                    let one = modeler.model_single_ramp(&analysis)?;
                    let sim_delay = golden.near_delay()?;
                    let sim_slew = golden.near_slew()?;
                    Ok(Table1Result {
                        published: row,
                        sim_delay,
                        sim_slew,
                        two_ramp_delay: two.delay(),
                        two_ramp_slew: two.slew(),
                        one_ramp_delay: one.delay(),
                        one_ramp_slew: one.slew(),
                        two_ramp_delay_error: rlc_numeric::relative_error(two.delay(), sim_delay),
                        two_ramp_slew_error: rlc_numeric::relative_error(two.slew(), sim_slew),
                        one_ramp_delay_error: rlc_numeric::relative_error(one.delay(), sim_delay),
                        one_ramp_slew_error: rlc_numeric::relative_error(one.slew(), sim_slew),
                    })
                })();
                match outcome {
                    Ok(r) => results.lock().unwrap().push((idx, r)),
                    Err(e) => errors.lock().unwrap().push(e),
                }
            });
        }
    });
    let errs = errors.into_inner().unwrap();
    if let Some(e) = errs.into_iter().next() {
        return Err(e);
    }
    let mut indexed = results.into_inner().unwrap();
    indexed.sort_by_key(|(idx, _)| *idx);
    Ok(indexed.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveform_series_conversion() {
        let w = Waveform::new(vec![0.0, 1e-12, 2e-12], vec![0.0, 0.5, 1.0]);
        let s = WaveformSeries::from_waveform("x", &w);
        assert_eq!(s.label, "x");
        assert_eq!(s.times.len(), 3);
        let f = WaveformSeries::from_fn("y", |t| 2.0 * t, 1.0, 4);
        assert_eq!(f.values.len(), 5);
        assert!((f.values[4] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig7_grid_covers_the_paper_ranges() {
        let (lengths, widths, drivers, slews) = fig7_grid();
        assert_eq!(lengths.first(), Some(&1.0));
        assert_eq!(lengths.last(), Some(&7.0));
        assert_eq!(widths.first(), Some(&0.8));
        assert_eq!(widths.last(), Some(&3.5));
        assert_eq!(drivers.first(), Some(&25.0));
        assert_eq!(drivers.last(), Some(&125.0));
        assert_eq!(slews.first(), Some(&50.0));
        assert_eq!(slews.last(), Some(&200.0));
    }

    #[test]
    fn receiver_load_is_small_compared_to_line_caps() {
        // Every published line capacitance is at least 0.5 pF.
        assert!(receiver_load() < 0.05e-12);
    }
}
