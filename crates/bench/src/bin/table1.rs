//! Regenerates Table 1: the 15 published inductive cases, comparing the
//! golden simulation, the two-ramp model and the one-ramp baseline for delay
//! and slew at the driver output.

use rlc_bench::output::{format_table, write_csv};
use rlc_bench::{run_table1, ExperimentContext, OutputPaths, SimFidelity};
use rlc_numeric::stats::ErrorSummary;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("== Table 1: simulation vs. two-ramp vs. one-ramp (driver output) ==");
    let mut ctx = ExperimentContext::new();
    let rows = run_table1(&mut ctx, SimFidelity::Reference, threads).expect("table 1 run failed");

    let mut table = Vec::new();
    let mut csv = Vec::new();
    for r in &rows {
        let p = &r.published;
        table.push(vec![
            format!("{}/{}", p.parasitics.length_mm, p.parasitics.width_um),
            format!("{:.0}x/{:.0}ps", p.driver_size, p.input_slew_ps),
            format!("{:.1}", r.sim_delay * 1e12),
            format!(
                "{:.1} ({:+.1}%)",
                r.two_ramp_delay * 1e12,
                r.two_ramp_delay_error * 100.0
            ),
            format!(
                "{:.1} ({:+.1}%)",
                r.one_ramp_delay * 1e12,
                r.one_ramp_delay_error * 100.0
            ),
            format!("{:.1}", r.sim_slew * 1e12),
            format!(
                "{:.1} ({:+.1}%)",
                r.two_ramp_slew * 1e12,
                r.two_ramp_slew_error * 100.0
            ),
            format!(
                "{:.1} ({:+.1}%)",
                r.one_ramp_slew * 1e12,
                r.one_ramp_slew_error * 100.0
            ),
        ]);
        csv.push(vec![
            p.parasitics.length_mm,
            p.parasitics.width_um,
            p.driver_size,
            p.input_slew_ps,
            r.sim_delay,
            r.two_ramp_delay,
            r.one_ramp_delay,
            r.sim_slew,
            r.two_ramp_slew,
            r.one_ramp_slew,
            p.hspice_delay_ps * 1e-12,
            p.two_ramp_delay_ps * 1e-12,
            p.one_ramp_delay_ps * 1e-12,
            p.hspice_slew_ps * 1e-12,
            p.two_ramp_slew_ps * 1e-12,
            p.one_ramp_slew_ps * 1e-12,
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "len/wid",
                "drv/slew",
                "sim delay",
                "2-ramp delay",
                "1-ramp delay",
                "sim slew",
                "2-ramp slew",
                "1-ramp slew",
            ],
            &table
        )
    );

    let two_delay: Vec<f64> = rows.iter().map(|r| r.two_ramp_delay_error).collect();
    let one_delay: Vec<f64> = rows.iter().map(|r| r.one_ramp_delay_error).collect();
    let two_slew: Vec<f64> = rows.iter().map(|r| r.two_ramp_slew_error).collect();
    let one_slew: Vec<f64> = rows.iter().map(|r| r.one_ramp_slew_error).collect();
    let summary = |label: &str, e: &[f64]| {
        let s = ErrorSummary::from_errors(e).unwrap();
        println!(
            "{label:<22} avg |err| = {:5.1}%  max |err| = {:5.1}%",
            s.mean_abs * 100.0,
            s.max_abs * 100.0
        );
    };
    summary("two-ramp delay error", &two_delay);
    summary("one-ramp delay error", &one_delay);
    summary("two-ramp slew error", &two_slew);
    summary("one-ramp slew error", &one_slew);
    println!("(paper: two-ramp delay within ~8%, one-ramp delay off by 27-130%;");
    println!(" two-ramp slew within ~15%, one-ramp slew 17-73% low)");

    let paths = OutputPaths::default_dir();
    write_csv(
        &paths.file("table1.csv"),
        &[
            "length_mm",
            "width_um",
            "driver_size",
            "input_slew_ps",
            "sim_delay_s",
            "two_ramp_delay_s",
            "one_ramp_delay_s",
            "sim_slew_s",
            "two_ramp_slew_s",
            "one_ramp_slew_s",
            "paper_hspice_delay_s",
            "paper_two_ramp_delay_s",
            "paper_one_ramp_delay_s",
            "paper_hspice_slew_s",
            "paper_two_ramp_slew_s",
            "paper_one_ramp_slew_s",
        ],
        &csv,
    );
    println!("full data (including the paper's published numbers) written to target/experiments/table1.csv");
}
