//! Regenerates Figure 3: single effective-capacitance approximations
//! (charge equated to the 100 % point and to the 50 % point) against the
//! actual driver output for the 7 mm / 1.6 µm line driven by a 75X inverter.

use rlc_bench::{export_series, run_fig3, ExperimentContext, OutputPaths};

fn main() {
    println!("== Figure 3: single-Ceff approximations of an inductive driver output ==");
    let mut ctx = ExperimentContext::new();
    let result = run_fig3(&mut ctx).expect("figure 3 experiment failed");
    let paths = OutputPaths::default_dir();
    export_series(&paths, "fig3", &result.series);

    println!(
        "total load capacitance          : {:7.1} fF",
        result.total_capacitance * 1e15
    );
    println!(
        "Ceff (charge to 100% of ramp)   : {:7.1} fF",
        result.ceff_full * 1e15
    );
    println!(
        "Ceff (charge to 50% of ramp)    : {:7.1} fF",
        result.ceff_to_50 * 1e15
    );
    println!(
        "shielding: Ceff(50%)/Ctotal = {:.2}, Ceff(100%)/Ctotal = {:.2}",
        result.ceff_to_50 / result.total_capacitance,
        result.ceff_full / result.total_capacitance
    );
    println!("Neither single ramp reproduces both the initial step and the slow tail;");
    println!("see fig3_*.csv under target/experiments/ for the three waveforms.");
}
