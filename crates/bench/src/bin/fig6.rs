//! Regenerates Figure 6: (left) the one-ramp model when inductance is not
//! significant (4 mm / 1.6 µm, 25X driver); (right) near- and far-end
//! responses of the modelled waveform vs. simulation (4 mm / 0.8 µm, 75X).

use rlc_bench::{export_series, run_fig6, ExperimentContext, OutputPaths};

fn main() {
    println!("== Figure 6: one-ramp case and near/far-end validation ==");
    let mut ctx = ExperimentContext::new();
    let result = run_fig6(&mut ctx).expect("figure 6 experiment failed");
    let paths = OutputPaths::default_dir();
    export_series(&paths, "fig6_left", &result.single_ramp_case.series);
    export_series(&paths, "fig6_right", &result.near_far_series);

    let left = &result.single_ramp_case.comparison;
    println!("-- left panel: 4 mm / 1.6 um line, 25X driver, 100 ps input slew --");
    println!(
        "screening selected the {} model (paper: single ramp is sufficient)",
        if result.single_ramp_selected {
            "single-ramp"
        } else {
            "two-ramp"
        }
    );
    println!(
        "driver-output delay : sim {:6.1} ps, model {:6.1} ps ({:+.1}%)",
        left.sim_delay * 1e12,
        left.model_delay * 1e12,
        left.delay_error * 100.0
    );
    println!(
        "driver-output slew  : sim {:6.1} ps, model {:6.1} ps ({:+.1}%)",
        left.sim_slew * 1e12,
        left.model_slew * 1e12,
        left.slew_error * 100.0
    );

    let far = &result.far_end;
    println!("-- right panel: 4 mm / 0.8 um line, 75X driver, 50 ps input slew --");
    println!(
        "far-end delay : sim {:6.1} ps, model-driven {:6.1} ps ({:+.1}%)",
        far.sim_delay * 1e12,
        far.model_delay * 1e12,
        far.delay_error * 100.0
    );
    println!(
        "far-end slew  : sim {:6.1} ps, model-driven {:6.1} ps ({:+.1}%)",
        far.sim_slew * 1e12,
        far.model_slew * 1e12,
        far.slew_error * 100.0
    );
    println!("waveform CSVs written to target/experiments/fig6_*_*.csv");
}
