//! Regenerates Figure 4: the construction of the two-ramp model — the first
//! ramp from `Ceff1`, the second ramp from `Ceff2`, and the plateau-shifted
//! second ramp (Equation 8).

use rlc_bench::{export_series, run_fig4, ExperimentContext, OutputPaths};

fn main() {
    println!("== Figure 4: construction of the two-ramp driver output model ==");
    let mut ctx = ExperimentContext::new();
    let result = run_fig4(&mut ctx).expect("figure 4 experiment failed");
    let paths = OutputPaths::default_dir();
    export_series(&paths, "fig4", &result.series);

    println!(
        "voltage breakpoint f            : {:7.3}",
        result.breakpoint
    );
    println!(
        "Tr1 (ramp 1, from Ceff1)        : {:7.1} ps",
        result.tr1 * 1e12
    );
    println!(
        "Tr2 (ramp 2, from Ceff2)        : {:7.1} ps",
        result.tr2 * 1e12
    );
    println!(
        "plateau duration 2tf - Tr1      : {:7.1} ps",
        result.plateau * 1e12
    );
    println!(
        "Tr2_new (plateau corrected)     : {:7.1} ps",
        result.tr2_new * 1e12
    );
    println!("waveform CSVs written to target/experiments/fig4_*.csv");
}
