//! Regenerates Figure 5: two-ramp driver output model vs. the golden
//! simulation for the 3 mm / 1.2 µm (75X, 75 ps) and 5 mm / 1.6 µm
//! (100X, 100 ps) cases.

use rlc_bench::output::format_table;
use rlc_bench::{export_series, run_fig5, ExperimentContext, OutputPaths};

fn main() {
    println!("== Figure 5: two-ramp model vs. simulation (driver output) ==");
    let mut ctx = ExperimentContext::new();
    let comparisons = run_fig5(&mut ctx).expect("figure 5 experiment failed");
    let paths = OutputPaths::default_dir();

    let mut rows = Vec::new();
    for (k, cmp) in comparisons.iter().enumerate() {
        export_series(&paths, &format!("fig5_case{}", k + 1), &cmp.series);
        let c = &cmp.comparison;
        rows.push(vec![
            cmp.label.clone(),
            format!("{:.1}", c.sim_delay * 1e12),
            format!("{:.1}", c.model_delay * 1e12),
            format!("{:+.1}%", c.delay_error * 100.0),
            format!("{:.1}", c.sim_slew * 1e12),
            format!("{:.1}", c.model_slew * 1e12),
            format!("{:+.1}%", c.slew_error * 100.0),
            if c.used_two_ramp { "2-ramp" } else { "1-ramp" }.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "case",
                "sim delay(ps)",
                "model delay(ps)",
                "delay err",
                "sim slew(ps)",
                "model slew(ps)",
                "slew err",
                "model",
            ],
            &rows
        )
    );
    println!("waveform CSVs written to target/experiments/fig5_case*_*.csv");
}
