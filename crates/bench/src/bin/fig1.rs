//! Regenerates Figure 1: the driver output waveform of a 5 mm, 1.6 µm RLC
//! line (R = 72.44 Ω, L = 5.14 nH, C = 1.10 pF) driven by a 75X inverter,
//! showing the transmission-line steps and plateaus.

use rlc_bench::{export_series, run_fig1, ExperimentContext, OutputPaths};

fn main() {
    println!("== Figure 1: driver output waveform of a 5 mm / 1.6 um line, 75X driver ==");
    let mut ctx = ExperimentContext::new();
    let series = run_fig1(&mut ctx).expect("figure 1 simulation failed");
    let paths = OutputPaths::default_dir();
    export_series(&paths, "fig1", &series);

    let near = series
        .iter()
        .find(|s| s.label == "driver_output")
        .expect("driver output series present");
    // Report the step/plateau structure: time to reach 40 % vs. 90 % of VDD.
    let vdd = 1.8;
    let wave = rlc_spice::Waveform::new(near.times.clone(), near.values.clone());
    let t40 = wave.crossing_fraction(0.4, vdd, true).unwrap_or(f64::NAN);
    let t90 = wave.crossing_fraction(0.9, vdd, true).unwrap_or(f64::NAN);
    println!("time to 40% of VDD : {:7.1} ps (initial step)", t40 * 1e12);
    println!(
        "time to 90% of VDD : {:7.1} ps (after reflection)",
        t90 * 1e12
    );
    println!(
        "plateau between them: {:7.1} ps (round-trip time of flight is ~150 ps)",
        (t90 - t40) * 1e12
    );
    println!("waveform CSVs written to target/experiments/fig1_*.csv");
}
