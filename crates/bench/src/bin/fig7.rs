//! Regenerates Figure 7: the model-vs-simulation scatter of delay and slew
//! over the full sweep (lengths 1–7 mm, widths 0.8–3.5 µm, drivers 25X–125X,
//! input slews 50–200 ps), restricted to the cases the screening criteria
//! mark as inductive, plus the Section 6 error statistics.
//!
//! Usage: `fig7 [--quick]` — `--quick` caps the sweep at 40 inductive cases
//! for a fast smoke run.

use rlc_bench::output::{format_table, write_csv};
use rlc_bench::{run_fig7, ExperimentContext, OutputPaths, SimFidelity};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let max_cases = if quick { Some(40) } else { None };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    println!("== Figure 7: model accuracy over the inductive sweep ==");
    let mut ctx = ExperimentContext::new();
    let result =
        run_fig7(&mut ctx, SimFidelity::Sweep, threads, max_cases).expect("figure 7 sweep failed");

    let paths = OutputPaths::default_dir();
    let rows: Vec<Vec<f64>> = result
        .cases
        .iter()
        .map(|c| {
            vec![
                c.length_mm,
                c.width_um,
                c.driver_size,
                c.input_slew_ps,
                c.sim_delay,
                c.model_delay,
                c.delay_error,
                c.sim_slew,
                c.model_slew,
                c.slew_error,
            ]
        })
        .collect();
    write_csv(
        &paths.file("fig7_scatter.csv"),
        &[
            "length_mm",
            "width_um",
            "driver_size",
            "input_slew_ps",
            "sim_delay_s",
            "model_delay_s",
            "delay_error",
            "sim_slew_s",
            "model_slew_s",
            "slew_error",
        ],
        &rows,
    );

    println!(
        "inductive cases evaluated: {} (screened out as non-inductive or failed: {})",
        result.cases.len(),
        result.screened_out
    );
    let stats_rows = vec![
        vec![
            "delay".to_string(),
            format!("{:.1}%", result.delay_stats.mean_abs * 100.0),
            format!("{:.0}%", result.delay_stats.frac_below_5pct * 100.0),
            format!("{:.0}%", result.delay_stats.frac_below_10pct * 100.0),
            format!("{:.1}%", result.delay_stats.max_abs * 100.0),
        ],
        vec![
            "slew".to_string(),
            format!("{:.1}%", result.slew_stats.mean_abs * 100.0),
            format!("{:.0}%", result.slew_stats.frac_below_5pct * 100.0),
            format!("{:.0}%", result.slew_stats.frac_below_10pct * 100.0),
            format!("{:.1}%", result.slew_stats.max_abs * 100.0),
        ],
    ];
    println!(
        "{}",
        format_table(
            &[
                "metric",
                "avg |err|",
                "<5% cases",
                "<10% cases",
                "max |err|"
            ],
            &stats_rows
        )
    );
    println!("paper reports: avg delay error 6% (48% <5%, 83% <10%), avg slew error 11.1% (31% <5%, 61% <10%) over 165 cases");
    println!("scatter data written to target/experiments/fig7_scatter.csv");
}
