//! Runs every experiment (Figures 1, 3–7 and Table 1) in one pass, sharing
//! the characterized library, and writes all outputs under
//! `target/experiments/`.
//!
//! Usage: `all_experiments [--quick]` — `--quick` caps the Figure 7 sweep at
//! 40 inductive cases.

use rlc_bench::output::write_csv;
use rlc_bench::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let paths = OutputPaths::default_dir();
    let mut ctx = ExperimentContext::new();

    println!("[1/7] figure 1: driver output waveform with reflections");
    let fig1 = run_fig1(&mut ctx).expect("figure 1 failed");
    export_series(&paths, "fig1", &fig1);

    println!("[2/7] figure 3: single-Ceff approximations");
    let fig3 = run_fig3(&mut ctx).expect("figure 3 failed");
    export_series(&paths, "fig3", &fig3.series);

    println!("[3/7] figure 4: two-ramp construction");
    let fig4 = run_fig4(&mut ctx).expect("figure 4 failed");
    export_series(&paths, "fig4", &fig4.series);

    println!("[4/7] figure 5: two-ramp model vs. simulation");
    let fig5 = run_fig5(&mut ctx).expect("figure 5 failed");
    for (k, cmp) in fig5.iter().enumerate() {
        export_series(&paths, &format!("fig5_case{}", k + 1), &cmp.series);
        println!(
            "    {}: delay err {:+.1}%, slew err {:+.1}%",
            cmp.label,
            cmp.comparison.delay_error * 100.0,
            cmp.comparison.slew_error * 100.0
        );
    }

    println!("[5/7] figure 6: one-ramp case and far-end validation");
    let fig6 = run_fig6(&mut ctx).expect("figure 6 failed");
    export_series(&paths, "fig6_left", &fig6.single_ramp_case.series);
    export_series(&paths, "fig6_right", &fig6.near_far_series);
    println!(
        "    single-ramp selected for the 25X case: {}",
        fig6.single_ramp_selected
    );

    println!("[6/7] table 1: 15 published inductive cases");
    let table1 = run_table1(&mut ctx, SimFidelity::Reference, threads).expect("table 1 failed");
    let rows: Vec<Vec<f64>> = table1
        .iter()
        .map(|r| {
            vec![
                r.published.parasitics.length_mm,
                r.published.parasitics.width_um,
                r.two_ramp_delay_error,
                r.one_ramp_delay_error,
                r.two_ramp_slew_error,
                r.one_ramp_slew_error,
            ]
        })
        .collect();
    write_csv(
        &paths.file("table1_errors.csv"),
        &[
            "length_mm",
            "width_um",
            "two_ramp_delay_error",
            "one_ramp_delay_error",
            "two_ramp_slew_error",
            "one_ramp_slew_error",
        ],
        &rows,
    );

    println!("[7/7] figure 7: accuracy sweep over inductive cases");
    let fig7 = run_fig7(
        &mut ctx,
        SimFidelity::Sweep,
        threads,
        if quick { Some(40) } else { None },
    )
    .expect("figure 7 failed");
    println!(
        "    {} inductive cases: avg delay err {:.1}%, avg slew err {:.1}%",
        fig7.cases.len(),
        fig7.delay_stats.mean_abs * 100.0,
        fig7.slew_stats.mean_abs * 100.0
    );
    let scatter: Vec<Vec<f64>> = fig7
        .cases
        .iter()
        .map(|c| vec![c.sim_delay, c.model_delay, c.sim_slew, c.model_slew])
        .collect();
    write_csv(
        &paths.file("fig7_scatter_summary.csv"),
        &["sim_delay_s", "model_delay_s", "sim_slew_s", "model_slew_s"],
        &scatter,
    );

    println!("all outputs written under target/experiments/");
}
