//! # rlc-bench
//!
//! Experiment harness for the DAC 2003 two-ramp effective-capacitance paper:
//! one binary per table/figure (`fig1`, `fig3`, `fig4`, `fig5`, `fig6`,
//! `fig7`, `table1`, plus `all_experiments`), sharing the runners in
//! [`experiments`], and Criterion benchmarks for the computational kernels.
//!
//! Each runner returns plain data structures; the binaries format them as
//! aligned text tables and CSV series under `target/experiments/` so the
//! results can be compared against the paper (see `EXPERIMENTS.md`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;
pub mod output;
pub mod setup;

pub use experiments::*;
pub use output::{
    write_bench_json, write_csv, write_service_bench_json, write_text, BenchComparison,
    OutputPaths, ServiceThroughput,
};
pub use setup::{build_line, cell_for, ExperimentContext, SimFidelity};
