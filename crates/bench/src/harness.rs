//! A minimal, dependency-free micro-benchmark harness for the `[[bench]]`
//! targets (`harness = false` in the manifest).
//!
//! Each measurement auto-calibrates the per-sample iteration count to a
//! target wall-clock budget, takes several samples and reports the median —
//! robust enough for the coarse "model is orders of magnitude cheaper than
//! simulation" comparisons this workspace cares about, with no third-party
//! framework needed.
//!
//! ```
//! let mut runner = rlc_bench::harness::Runner::new("demo");
//! runner.bench("add", || std::hint::black_box(1u64 + 2));
//! ```

use std::time::{Duration, Instant};

/// Collects and prints measurements for one benchmark target.
#[derive(Debug)]
pub struct Runner {
    target: String,
    samples: usize,
    budget: Duration,
}

impl Runner {
    /// Creates a runner with the default fidelity (9 samples, ~40 ms per
    /// sample).
    pub fn new(target: &str) -> Self {
        println!("benchmark target: {target}");
        Runner {
            target: target.to_string(),
            samples: 9,
            budget: Duration::from_millis(40),
        }
    }

    /// Lowers the fidelity for expensive benchmarks (3 samples, one
    /// measured call per sample when calibration says so).
    pub fn slow(mut self) -> Self {
        self.samples = 3;
        self.budget = Duration::from_millis(10);
        self
    }

    /// The target name this runner reports under.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Measures `f` and prints `name: <median> per iter (<samples> samples x
    /// <iters> iters)`. Returns the median duration per iteration.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> Duration {
        // Warm-up and calibration: find an iteration count filling the budget.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let mut per_iter: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed() / iters
            })
            .collect();
        per_iter.sort();
        let median = per_iter[per_iter.len() / 2];
        println!(
            "  {name}: {} per iter ({} samples x {iters} iters)",
            format_duration(median),
            self.samples,
        );
        median
    }
}

/// Formats a duration with an SI prefix suited to its magnitude.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_plausible_median() {
        let mut runner = Runner::new("harness-self-test").slow();
        let d = runner.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(d > Duration::ZERO);
        assert!(d < Duration::from_millis(100));
        assert_eq!(runner.target(), "harness-self-test");
    }

    #[test]
    fn durations_format_with_si_prefixes() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(50)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(20)).ends_with('s'));
    }
}
