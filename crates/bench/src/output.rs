//! Result output: aligned text tables on stdout and CSV files under
//! `target/experiments/`.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Location of experiment outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputPaths {
    root: PathBuf,
}

impl OutputPaths {
    /// Creates (and ensures) the default output directory
    /// `target/experiments/`.
    pub fn default_dir() -> Self {
        Self::at("target/experiments")
    }

    /// Creates (and ensures) a custom output directory.
    ///
    /// # Panics
    /// Panics if the directory cannot be created.
    pub fn at<P: AsRef<Path>>(path: P) -> Self {
        let root = path.as_ref().to_path_buf();
        fs::create_dir_all(&root).expect("failed to create the experiment output directory");
        OutputPaths { root }
    }

    /// Full path of a file inside the output directory.
    pub fn file(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

/// Writes rows of named columns to a CSV file.
///
/// # Panics
/// Panics on I/O errors (the experiment binaries have nothing sensible to do
/// about them) or when a row length does not match the header.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<f64>]) {
    let mut out = fs::File::create(path).expect("failed to create CSV file");
    writeln!(out, "{}", header.join(",")).expect("failed to write CSV header");
    for row in rows {
        assert_eq!(row.len(), header.len(), "CSV row length mismatch");
        let line: Vec<String> = row.iter().map(|v| format!("{v:.6e}")).collect();
        writeln!(out, "{}", line.join(",")).expect("failed to write CSV row");
    }
}

/// Writes a plain text report.
///
/// # Panics
/// Panics on I/O errors.
pub fn write_text(path: &Path, content: &str) {
    fs::write(path, content).expect("failed to write text report");
}

/// One before/after measurement of an optimized kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// Benchmark case name.
    pub name: String,
    /// Median wall-clock time of the baseline (legacy) kernel, nanoseconds.
    pub baseline_ns: u128,
    /// Median wall-clock time of the optimized kernel, nanoseconds.
    pub optimized_ns: u128,
}

impl BenchComparison {
    /// Baseline-over-optimized speedup factor.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / self.optimized_ns.max(1) as f64
    }
}

/// Writes before/after kernel measurements as a small JSON report (e.g.
/// `BENCH_transient.json`), so the perf trajectory of the hot paths is
/// recorded alongside the code. The format is hand-rolled because the
/// workspace is dependency-free.
///
/// # Panics
/// Panics on I/O errors.
pub fn write_bench_json(path: &Path, target: &str, mode: &str, results: &[BenchComparison]) {
    // Minimal string escaping so arbitrary case names cannot corrupt the
    // report (quotes, backslashes, control characters).
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"target\": \"{}\",\n", escape(target)));
    body.push_str(&format!("  \"mode\": \"{}\",\n", escape(mode)));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {}, \"optimized_ns\": {}, \"speedup\": {:.2}}}{}\n",
            escape(&r.name),
            r.baseline_ns,
            r.optimized_ns,
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    fs::write(path, body).expect("failed to write bench JSON report");
}

/// One throughput measurement of the timing service (or its in-process
/// baseline) on a wide stage batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceThroughput {
    /// Configuration name, e.g. `remote_4shard`.
    pub name: String,
    /// Worker processes behind the measurement (0 = in-process session).
    pub shards: usize,
    /// Stages analyzed.
    pub stages: usize,
    /// Wall-clock time for submit + drain of the whole batch, nanoseconds.
    pub elapsed_ns: u128,
}

impl ServiceThroughput {
    /// Completed stages per wall-clock second.
    pub fn stages_per_sec(&self) -> f64 {
        self.stages as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }
}

/// Writes service throughput measurements as a small JSON report
/// (`BENCH_service.json`), recording the multi-process scaling of the
/// sharded timing server alongside the in-process baseline. Hand-rolled
/// like [`write_bench_json`] — the workspace is dependency-free.
///
/// # Panics
/// Panics on I/O errors.
pub fn write_service_bench_json(path: &Path, mode: &str, results: &[ServiceThroughput]) {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"target\": \"service\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        assert!(
            !r.name.contains(['"', '\\']),
            "configuration names are identifiers"
        );
        body.push_str(&format!(
            "    {{\"name\": \"{}\", \"shards\": {}, \"stages\": {}, \"elapsed_ns\": {}, \
             \"stages_per_sec\": {:.1}}}{}\n",
            r.name,
            r.shards,
            r.stages,
            r.elapsed_ns,
            r.stages_per_sec(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    fs::write(path, body).expect("failed to write service bench JSON report");
}

/// Formats a table of rows (already stringified) with aligned columns.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate().take(n_cols) {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_table_aligns_columns() {
        let t = format_table(
            &["case", "delay", "err"],
            &[
                vec!["3mm".into(), "25.0".into(), "-3.2%".into()],
                vec!["5mm/1.6um".into(), "39.6".into(), "+1.0%".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("case"));
        assert!(lines[2].ends_with("-3.2%"));
        // All rows have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_and_text_roundtrip() {
        let dir = std::env::temp_dir().join("rlc_bench_output_test");
        let paths = OutputPaths::at(&dir);
        let csv = paths.file("test.csv");
        write_csv(&csv, &["a", "b"], &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let content = std::fs::read_to_string(&csv).unwrap();
        assert!(content.starts_with("a,b"));
        assert_eq!(content.lines().count(), 3);
        let txt = paths.file("test.txt");
        write_text(&txt, "hello");
        assert_eq!(std::fs::read_to_string(&txt).unwrap(), "hello");
    }

    #[test]
    fn bench_json_roundtrips() {
        let dir = std::env::temp_dir().join("rlc_bench_output_test3");
        let paths = OutputPaths::at(&dir);
        let path = paths.file("BENCH_test.json");
        let results = vec![
            BenchComparison {
                name: "ladder".into(),
                baseline_ns: 10_000,
                optimized_ns: 1_000,
            },
            BenchComparison {
                name: "grid".into(),
                baseline_ns: 500,
                optimized_ns: 100,
            },
        ];
        assert!((results[0].speedup() - 10.0).abs() < 1e-12);
        write_bench_json(&path, "transient", "full", &results);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"target\": \"transient\""));
        assert!(content.contains("\"speedup\": 10.00"));
        assert!(content.contains("\"baseline_ns\": 500,"));
        // Exactly one trailing comma between the two records.
        assert_eq!(content.matches("},").count(), 1);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn csv_rejects_ragged_rows() {
        let dir = std::env::temp_dir().join("rlc_bench_output_test2");
        let paths = OutputPaths::at(&dir);
        write_csv(&paths.file("bad.csv"), &["a", "b"], &[vec![1.0]]);
    }
}
