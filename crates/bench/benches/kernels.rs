//! Micro-benchmarks of the computational kernels of the modelling flow:
//! admittance moments, rational fit, charge-matching Ceff evaluation and the
//! full Ceff iteration. These are the operations a static timing analyzer
//! would execute per net, so their cost is the paper's "computationally
//! efficient" claim.
//!
//! Run with: `cargo bench --bench kernels`

use rlc_bench::harness::Runner;
use rlc_ceff::charge::{ceff_first_ramp, ceff_second_ramp};
use rlc_ceff::iteration::{iterate_ceff1, IterationSettings};
use rlc_charlib::{DriverCell, TimingTable};
use rlc_interconnect::RlcLine;
use rlc_moments::{distributed_admittance_moments, ladder_admittance_moments, RationalAdmittance};
use rlc_numeric::units::{ff, mm, nh, pf, ps};
use rlc_spice::testbench::InverterSpec;
use std::hint::black_box;

fn synthetic_cell() -> DriverCell {
    let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
    let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
    let transition: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(160.0))
                .collect()
        })
        .collect();
    let delay: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(53.0))
                .collect()
        })
        .collect();
    DriverCell::from_parts(
        InverterSpec::sized_018(75.0),
        TimingTable::new(slews, loads, delay, transition),
        70.0,
    )
}

fn paper_line() -> RlcLine {
    RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
}

fn main() {
    let mut runner = Runner::new("kernels");
    let line = paper_line();
    runner.bench("moments/distributed_5", || {
        distributed_admittance_moments(black_box(&line), ff(10.0), 5)
    });
    runner.bench("moments/ladder_50seg_5", || {
        ladder_admittance_moments(black_box(&line), ff(10.0), 50, 5)
    });

    let m = distributed_admittance_moments(&line, ff(10.0), 5);
    runner.bench("fit/rational_from_moments", || {
        RationalAdmittance::from_moments(black_box(&m)).unwrap()
    });

    let fit = RationalAdmittance::from_moments(&m).unwrap();
    runner.bench("ceff/first_ramp_eval", || {
        ceff_first_ramp(black_box(&fit), ps(60.0), 0.48)
    });
    runner.bench("ceff/second_ramp_eval", || {
        ceff_second_ramp(black_box(&fit), ps(60.0), ps(200.0), 0.48)
    });

    let cell = synthetic_cell();
    let settings = IterationSettings::default();
    runner.bench("ceff/full_ceff1_iteration", || {
        iterate_ceff1(
            black_box(&cell),
            black_box(&fit),
            ps(100.0),
            0.48,
            &settings,
        )
        .unwrap()
    });
}
