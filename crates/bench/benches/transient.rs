//! Before/after benchmarks of the transient simulation kernels: the legacy
//! full-reassembly kernel versus the factor-once LTI fast path and the
//! split-stamp Newton loop, on the fig4-style RLC-ladder transient and a
//! characterization-style grid of inverter runs — plus the `AnalysisSession`
//! scheduling benches (`path_chain_4stage`, `session_wide_batch_16`), which
//! assert the session's overhead stays within budget against hand-rolled
//! sequential propagation and the deprecated `analyze_many` fan-out.
//! Results are written to `BENCH_transient.json` so the perf trajectory of
//! the hot path is recorded.
//!
//! Run with: `cargo bench --bench transient`
//! Smoke mode (CI): `RLC_BENCH_SMOKE=1 cargo bench --bench transient`

use rlc_bench::harness::Runner;
use rlc_bench::{write_bench_json, BenchComparison, OutputPaths};
use rlc_charlib::{CharacterizationGrid, Library};
use rlc_interconnect::{CoupledBus, RlcLine, RlcTree};
use rlc_numeric::units::{ff, mm, nh, pf, ps};
use rlc_spice::circuit::Circuit;
use rlc_spice::source::SourceWaveform;
use rlc_spice::testbench::{
    inverter_with_cap_load, inverter_with_rlc_line, pwl_source_with_rlc_line, InverterSpec,
    OutputTransition,
};
use rlc_spice::transient::{
    KernelStrategy, TransientAnalysis, TransientOptions, TransientWorkspace,
};
use std::hint::black_box;

fn options(time_step: f64, stop: f64, strategy: KernelStrategy) -> TransientOptions {
    TransientOptions::try_new(time_step, stop)
        .unwrap()
        .with_strategy(strategy)
}

/// The workspace's canonical synthetic 75X cell
/// ([`rlc_ceff_suite::fixtures`]): deterministic and characterization-free,
/// so the session benches measure scheduling and propagation, not cell
/// characterization.
fn session_bench_cell() -> rlc_charlib::DriverCell {
    rlc_ceff_suite::fixtures::synthetic_cell_75x()
}

/// A balanced 8-sink clock-tree-like net: root, two level-1 arms, four
/// mid-level branches, eight sink stubs. Mirrors the reduced-order backend's
/// showcase fixture (stable 2-pole transfer fit at every sink).
fn balanced_8sink_tree() -> RlcTree {
    let mut tree = RlcTree::new();
    let root = tree.add_branch(None, RlcLine::new(100.0, nh(0.4), pf(0.5), mm(2.0)));
    let l1a = tree.add_branch(Some(root), RlcLine::new(120.0, nh(0.3), pf(0.4), mm(1.5)));
    let l1b = tree.add_branch(Some(root), RlcLine::new(120.0, nh(0.3), pf(0.4), mm(1.5)));
    for (i, &parent) in [l1a, l1a, l1b, l1b].iter().enumerate() {
        let mid = tree.add_branch(
            Some(parent),
            RlcLine::new(150.0, nh(0.2), pf(0.25), mm(1.0)),
        );
        let s1 = tree.add_branch(Some(mid), RlcLine::new(180.0, nh(0.1), pf(0.15), mm(0.6)));
        let s2 = tree.add_branch(Some(mid), RlcLine::new(180.0, nh(0.1), pf(0.15), mm(0.6)));
        tree.set_sink(s1, &format!("rx{}", 2 * i), ff(12.0));
        tree.set_sink(s2, &format!("rx{}", 2 * i + 1), ff(18.0));
    }
    tree
}

/// Benchmarks one circuit under the legacy and the automatic (fast) kernel,
/// reusing one workspace on the fast side the way `charlib` and the spice
/// backend do.
fn compare(
    runner: &mut Runner,
    name: &str,
    ckt: &Circuit,
    time_step: f64,
    stop: f64,
) -> BenchComparison {
    let legacy = TransientAnalysis::new(options(time_step, stop, KernelStrategy::LegacyFull));
    let baseline = runner.bench(&format!("{name}/legacy"), || {
        legacy.run(black_box(ckt)).unwrap()
    });
    let fast = TransientAnalysis::new(options(time_step, stop, KernelStrategy::Auto));
    let mut ws = TransientWorkspace::new();
    let optimized = runner.bench(&format!("{name}/fast"), || {
        fast.run_with(black_box(ckt), &mut ws).unwrap()
    });
    BenchComparison {
        name: name.to_string(),
        baseline_ns: baseline.as_nanos(),
        optimized_ns: optimized.as_nanos(),
    }
}

fn main() {
    let smoke = std::env::var("RLC_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mut runner = Runner::new("transient").slow();
    let mut results = Vec::new();
    // Benches run with the package directory as CWD; anchor all artifacts on
    // the workspace root.
    let workspace_root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    // Fig4-style line: the paper's 5 mm / 1.6 um case (R = 72.44 ohm,
    // L = 5.14 nH, C = 1.10 pF) terminated by 10 fF.
    let (r, l, c) = (72.44, nh(5.14), pf(1.10));
    let (segments, stop) = if smoke {
        (10, ps(200.0))
    } else {
        (40, ps(1200.0))
    };

    // LTI ladder: an ideal ramp driving the segmented line (the far-end
    // propagation circuit used by `StageReport::far_end`) — the factor-once
    // fast path.
    let (ladder, _) = pwl_source_with_rlc_line(
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
        0.0,
        r,
        l,
        c,
        segments,
        ff(10.0),
    );
    results.push(compare(
        &mut runner,
        &format!("ladder_lti_{segments}seg"),
        &ladder,
        ps(0.5),
        stop,
    ));

    // Coupled two-line bus: victim and aggressor ladders with distributed
    // coupling caps and per-segment mutual inductances — the widest LTI
    // system in the suite (twice the nodes, twice the inductor branches).
    let bus_segments = if smoke { 10 } else { 40 };
    let line = RlcLine::new(r, l, c, mm(5.0));
    let bus = CoupledBus::symmetric(line, 0.3 * c, 0.2 * l, ff(10.0));
    let mut bus_ckt = Circuit::new();
    let v_in = bus_ckt.node("v_in");
    let a_in = bus_ckt.node("a_in");
    bus_ckt.add_vsource(
        "VV",
        v_in,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
    );
    bus_ckt.add_vsource(
        "VA",
        a_in,
        Circuit::GROUND,
        SourceWaveform::falling_ramp(1.8, 0.0, ps(100.0)),
    );
    bus_ckt.set_initial_condition(v_in, 0.0);
    bus_ckt.set_initial_condition(a_in, 1.8);
    let _ = bus.add_to_circuit(&mut bus_ckt, v_in, a_in, bus_segments, 0.0, 1.8, "bus");
    results.push(compare(
        &mut runner,
        &format!("bus_coupled_{bus_segments}seg"),
        &bus_ckt,
        ps(0.5),
        stop,
    ));

    // Three-sink RLC tree: a trunk forking into three receiver branches —
    // the branching-topology load behind `RlcTreeLoad`.
    let tree_segments = if smoke { 6 } else { 20 };
    let trunk = RlcLine::new(30.0, nh(2.0), pf(0.5), mm(2.0));
    let stub = RlcLine::new(20.0, nh(1.2), pf(0.35), mm(1.5));
    let mut tree = RlcTree::new();
    let t = tree.add_branch(None, trunk);
    for (i, load_ff) in [10.0, 25.0, 40.0].iter().enumerate() {
        let b = tree.add_branch(Some(t), stub);
        tree.set_sink(b, &format!("rx{i}"), ff(*load_ff));
    }
    let mut tree_ckt = Circuit::new();
    let tree_in = tree_ckt.node("out");
    tree_ckt.add_vsource(
        "VDRV",
        tree_in,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
    );
    tree_ckt.set_initial_condition(tree_in, 0.0);
    let _ = tree.add_to_circuit(&mut tree_ckt, tree_in, tree_segments, 0.0, "net");
    results.push(compare(&mut runner, "tree_3sink", &tree_ckt, ps(0.5), stop));

    // ---- Sparse kernel: past the dense-matrix ceiling --------------------
    // The flagship line at 400 segments (~1200 MNA unknowns): dense
    // factor-once versus the min-degree sparse LU. This is the circuit size
    // the sparse kernel exists for; the full-mode JSON records the measured
    // win, and the smoke run doubles as a CI wall-clock gate.
    let sparse_stop = if smoke { ps(200.0) } else { ps(1200.0) };
    let (sparse_ladder, _) = pwl_source_with_rlc_line(
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
        0.0,
        r,
        l,
        c,
        400,
        ff(10.0),
    );
    let dense_400 =
        TransientAnalysis::new(options(ps(0.5), sparse_stop, KernelStrategy::FactorOnce));
    let baseline = runner.bench("ladder_400seg/dense", || {
        dense_400.run(black_box(&sparse_ladder)).unwrap()
    });
    let sparse_400 = TransientAnalysis::new(options(ps(0.5), sparse_stop, KernelStrategy::Sparse));
    let mut sparse_ws = TransientWorkspace::new();
    let optimized = runner.bench("ladder_400seg/sparse", || {
        let res = sparse_400
            .run_with(black_box(&sparse_ladder), &mut sparse_ws)
            .unwrap();
        assert_eq!(res.strategy(), KernelStrategy::Sparse);
        res
    });
    // CI gate: one 400-segment sparse transient must stay interactive even
    // on a loaded shared runner.
    assert!(
        optimized < std::time::Duration::from_secs(2),
        "ladder_400seg sparse transient took {optimized:?}, over the 2 s wall-clock budget"
    );
    results.push(BenchComparison {
        name: "ladder_400seg".to_string(),
        baseline_ns: baseline.as_nanos(),
        optimized_ns: optimized.as_nanos(),
    });

    // The balanced 8-sink clock-tree-like net (the reduced-order showcase
    // fixture) at sparse scale: 15 branches of segmented ladders, a matrix
    // with genuine branching sparsity rather than a banded chain.
    let eight_sink = balanced_8sink_tree();
    let eight_segments = if smoke { 4 } else { 12 };
    let mut eight_ckt = Circuit::new();
    let eight_in = eight_ckt.node("out");
    eight_ckt.add_vsource(
        "VDRV",
        eight_in,
        Circuit::GROUND,
        SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
    );
    eight_ckt.set_initial_condition(eight_in, 0.0);
    let _ = eight_sink.add_to_circuit(&mut eight_ckt, eight_in, eight_segments, 0.0, "net");
    let dense_tree =
        TransientAnalysis::new(options(ps(0.5), sparse_stop, KernelStrategy::FactorOnce));
    let baseline = runner.bench("tree_8sink_sparse/dense", || {
        dense_tree.run(black_box(&eight_ckt)).unwrap()
    });
    let sparse_tree = TransientAnalysis::new(options(ps(0.5), sparse_stop, KernelStrategy::Sparse));
    let mut tree_ws = TransientWorkspace::new();
    let optimized = runner.bench("tree_8sink_sparse/sparse", || {
        let res = sparse_tree
            .run_with(black_box(&eight_ckt), &mut tree_ws)
            .unwrap();
        assert_eq!(res.strategy(), KernelStrategy::Sparse);
        res
    });
    results.push(BenchComparison {
        name: "tree_8sink_sparse".to_string(),
        baseline_ns: baseline.as_nanos(),
        optimized_ns: optimized.as_nanos(),
    });

    // ---- Batched variation engine: one factorization per matrix group ----
    // 4 R/C process corners x 64 supply draws over the flagship ladder. The
    // naive statistical flow rebuilds and refactors the MNA system for every
    // sample; the sweep kernel revalues the fixed sparsity pattern once per
    // distinct matrix (supply draws only change the RHS) and pushes each
    // group's samples through multi-RHS panels. This is the headline number
    // of the variation engine, so the full run gates on the 10x target.
    {
        use rlc_numeric::stats::Rng;
        use rlc_spice::sweep::{VariationSpec, VariationSweep};

        let (mc_segments, draws, mc_stop) = if smoke {
            (16, 4, ps(150.0))
        } else {
            (64, 64, ps(600.0))
        };
        let corners = [
            VariationSpec::nominal(),
            VariationSpec::nominal()
                .with_r_scale(1.15)
                .with_c_scale(1.08),
            VariationSpec::nominal()
                .with_r_scale(0.87)
                .with_c_scale(0.93),
            VariationSpec::nominal()
                .with_r_scale(1.15)
                .with_c_scale(0.93),
        ];
        let mut rng = Rng::new(0x5eed);
        let mut specs = Vec::new();
        for corner in corners {
            for _ in 0..draws {
                specs.push(corner.with_source_scale(rng.normal(1.0, 0.03).clamp(0.9, 1.1)));
            }
        }
        let scaled_ladder = |spec: &VariationSpec| {
            pwl_source_with_rlc_line(
                SourceWaveform::rising_ramp(1.8 * spec.source_scale, 0.0, ps(100.0)),
                0.0,
                r * spec.effective_r_scale(),
                l * spec.l_scale,
                c * spec.c_scale,
                mc_segments,
                ff(10.0) * spec.c_scale,
            )
            .0
        };
        let (base, nodes) = pwl_source_with_rlc_line(
            SourceWaveform::rising_ramp(1.8, 0.0, ps(100.0)),
            0.0,
            r,
            l,
            c,
            mc_segments,
            ff(10.0),
        );
        let far = nodes.far_end;
        let mc_name = format!("mc_sweep_{mc_segments}seg_{}samples", specs.len());
        let naive = TransientAnalysis::new(options(ps(0.5), mc_stop, KernelStrategy::Auto));
        let mut naive_ws = TransientWorkspace::new();
        let baseline = runner.bench(&format!("{mc_name}/naive"), || {
            let mut acc = 0.0;
            for spec in &specs {
                let ckt = scaled_ladder(spec);
                let res = naive.run_with(black_box(&ckt), &mut naive_ws).unwrap();
                acc += res.waveform(far).values().last().unwrap();
            }
            black_box(acc)
        });
        let sweep = VariationSweep::new(TransientOptions::try_new(ps(0.5), mc_stop).unwrap());
        let optimized = runner.bench(&format!("{mc_name}/sweep"), || {
            let res = sweep
                .run(black_box(&base), &[far], black_box(&specs))
                .unwrap();
            assert_eq!(res.matrix_groups(), corners.len());
            black_box(res.samples(specs.len() - 1, 0).last().copied())
        });
        // CI wall-clock gate: even the smoke-sized sweep must stay snappy on
        // a loaded shared runner.
        assert!(
            optimized < std::time::Duration::from_secs(2),
            "{mc_name} sweep took {optimized:?}, over the 2 s wall-clock budget"
        );
        if !smoke {
            let speedup = baseline.as_nanos() as f64 / optimized.as_nanos() as f64;
            assert!(
                speedup >= 10.0,
                "{mc_name}: batched sweep speedup {speedup:.1}x is under the 10x target"
            );
        }

        // Seed determinism: the same Monte-Carlo seed must reproduce the
        // facade's DistributionReport bit for bit, worker scheduling aside.
        {
            use rlc_ceff_suite::{
                DistributedRlcLoad, EngineConfig, Stage, TimingEngine, VariationModel,
            };
            let engine = TimingEngine::new(EngineConfig::fast_for_tests());
            let mc_stage = || {
                Stage::builder(
                    session_bench_cell(),
                    DistributedRlcLoad::new(RlcLine::new(r, l, c, mm(5.0)), ff(10.0)).unwrap(),
                )
                .input_slew(ps(100.0))
                .monte_carlo(
                    if smoke { 8 } else { 16 },
                    0x5eed,
                    VariationModel::default(),
                )
                .build()
                .unwrap()
            };
            let a = engine.analyze_distribution(&mc_stage()).unwrap();
            let b = engine.analyze_distribution(&mc_stage()).unwrap();
            assert_eq!(
                a.delay().mean.to_bits(),
                b.delay().mean.to_bits(),
                "Monte-Carlo distribution must be seed-deterministic"
            );
            assert_eq!(a.delay().p99.to_bits(), b.delay().p99.to_bits());
            assert_eq!(a.worst_sample().0, b.worst_sample().0);
        }

        results.push(BenchComparison {
            name: mc_name,
            baseline_ns: baseline.as_nanos(),
            optimized_ns: optimized.as_nanos(),
        });
    }

    // ---- Reduced-order model versus transient simulation -----------------
    // The same 8-sink net analyzed as a timing stage: the golden
    // transistor-level simulation (driver netlist + stamped tree) versus the
    // moment-matched closed-form ROM answering the far end with no transient
    // at all.
    {
        use rlc_ceff_suite::{
            AnalysisBackend, EngineConfig, ReducedOrderBackend, RlcTreeLoad, SpiceBackend, Stage,
        };

        let rom_stage = Stage::builder(
            session_bench_cell(),
            RlcTreeLoad::new(eight_sink.clone()).unwrap(),
        )
        .label("rom-vs-spice")
        .input_slew(ps(100.0))
        .build()
        .unwrap();
        let rom_config = if smoke {
            EngineConfig::fast_for_tests()
        } else {
            EngineConfig::builder().extract_rs_per_case(false).build()
        };
        let spice = SpiceBackend;
        let baseline = runner.bench("rom_vs_spice/spice", || {
            spice.analyze(black_box(&rom_stage), &rom_config).unwrap()
        });
        let rom = ReducedOrderBackend::new();
        let optimized = runner.bench("rom_vs_spice/rom", || {
            let report = rom.analyze(black_box(&rom_stage), &rom_config).unwrap();
            assert_eq!(report.backend, "reduced-order", "ROM silently fell back");
            report
        });
        results.push(BenchComparison {
            name: "rom_vs_spice".to_string(),
            baseline_ns: baseline.as_nanos(),
            optimized_ns: optimized.as_nanos(),
        });
    }

    // Nonlinear driver stage: a 75X inverter driving the same line — the
    // split-stamp Newton kernel.
    let spec = InverterSpec::sized_018(75.0);
    let driver_segments = if smoke { 8 } else { 24 };
    let (stage, _) = inverter_with_rlc_line(
        &spec,
        ps(100.0),
        ps(20.0),
        r,
        l,
        c,
        driver_segments,
        ff(10.0),
        OutputTransition::Rising,
    );
    results.push(compare(
        &mut runner,
        &format!("driver_stage_{driver_segments}seg"),
        &stage,
        ps(0.5),
        stop,
    ));

    // Characterization-style grid: the sweep of inverter-plus-cap transients
    // that `charlib` runs per cell, legacy per-run allocation versus one
    // reused workspace.
    let slews: &[f64] = if smoke {
        &[ps(100.0)]
    } else {
        &[ps(50.0), ps(100.0), ps(200.0)]
    };
    let loads: &[f64] = if smoke {
        &[ff(200.0), pf(2.0)]
    } else {
        &[ff(50.0), ff(200.0), ff(800.0), pf(2.0)]
    };
    let grid_name = format!("char_grid_{}x{}", slews.len(), loads.len());
    let run_grid = |strategy: KernelStrategy, ws: Option<&mut TransientWorkspace>| {
        let mut fresh = TransientWorkspace::new();
        let ws = ws.unwrap_or(&mut fresh);
        for &slew in slews {
            for &load in loads {
                let (ckt, _) =
                    inverter_with_cap_load(&spec, slew, ps(20.0), load, OutputTransition::Rising);
                // Same simulation-window heuristic as charlib's
                // `characterize_point` (which cannot be called here directly
                // because the legacy baseline needs an explicit strategy).
                let window = ps(20.0) + slew + 8.0 * (3.0e-3 / spec.nmos_width) * load + ps(200.0);
                let steps = (window / ps(1.0)).ceil().max(50.0);
                let o = options(ps(1.0), steps * ps(1.0), strategy);
                black_box(TransientAnalysis::new(o).run_with(&ckt, ws).unwrap());
            }
        }
    };
    let baseline = runner.bench(&format!("{grid_name}/legacy"), || {
        run_grid(KernelStrategy::LegacyFull, None)
    });
    let mut grid_ws = TransientWorkspace::new();
    let optimized = runner.bench(&format!("{grid_name}/fast"), || {
        run_grid(KernelStrategy::Auto, Some(&mut grid_ws))
    });
    results.push(BenchComparison {
        name: grid_name,
        baseline_ns: baseline.as_nanos(),
        optimized_ns: optimized.as_nanos(),
    });

    // Characterization cache: a cold start (empty cache, full grid of
    // characterization transients, result persisted) versus a warm start
    // (the same request served entirely from the on-disk store). This is the
    // per-process cost the persistent cache removes.
    let cache_grid = if smoke {
        CharacterizationGrid::coarse_for_tests()
    } else {
        CharacterizationGrid::default()
    };
    let cache_dir = workspace_root.join("target/experiments/char-cache-bench");
    let cold = runner.bench("char_cache_75x/cold", || {
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut lib = Library::open_cached_with_grid(&cache_dir, cache_grid.clone()).unwrap();
        black_box(lib.get_or_characterize(75.0).unwrap())
    });
    // Re-populate once, then measure pure warm loads against it.
    {
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut lib = Library::open_cached_with_grid(&cache_dir, cache_grid.clone()).unwrap();
        lib.get_or_characterize(75.0).unwrap();
    }
    let warm = runner.bench("char_cache_75x/warm", || {
        let mut lib = Library::open_cached_with_grid(&cache_dir, cache_grid.clone()).unwrap();
        let cell = lib.get_or_characterize(75.0).unwrap();
        assert_eq!(
            lib.characterizations_run(),
            0,
            "a warm start must be characterization-free"
        );
        black_box(cell)
    });
    results.push(BenchComparison {
        name: "char_cache_75x_cold_vs_warm".to_string(),
        baseline_ns: cold.as_nanos(),
        optimized_ns: warm.as_nanos(),
    });

    // ---- Incremental re-analysis (ECO): the stage-result cache ------------
    // A 16-stage repeater chain analyzed cold (every stage simulates,
    // results persisted) versus fully warm (every stage replays from the
    // content-addressed store, no backend touched). Between the two, the
    // single-edit pass documents the cone property the cache exists for: a
    // one-stage edit re-simulates exactly that stage and its downstream
    // dependency cone. The full run gates the warm replay on the 10x target.
    {
        use rlc_ceff_suite::{DistributedRlcLoad, EngineConfig, Stage, TimingEngine};

        let eco_dir = workspace_root.join("target/experiments/eco-bench-cache");
        let eco_line = RlcLine::new(r, l, c, mm(5.0));
        let eco_engine = || {
            TimingEngine::new(
                EngineConfig::builder()
                    .extract_rs_per_case(false)
                    .result_cache_dir(&eco_dir)
                    .build(),
            )
        };
        // Analyzes the 16-stage chain; `edited` doubles stage 8's receiver
        // cap. Returns (stages simulated, cache hits, path-end delay).
        let analyze = |engine: &TimingEngine, edited: bool| -> (u64, u64, f64) {
            let cell = session_bench_cell();
            let mut session = engine.session();
            let mut prev = None;
            for i in 0..16usize {
                let c_load = if edited && i == 8 {
                    ff(2.0 * (10.0 + i as f64))
                } else {
                    ff(10.0 + i as f64)
                };
                let builder = Stage::builder(
                    cell.clone(),
                    DistributedRlcLoad::new(eco_line, c_load).unwrap(),
                )
                .label(format!("eco{i:02}"));
                let builder = match prev {
                    None => builder.input_slew(ps(100.0)),
                    Some(handle) => builder.input_from(handle),
                };
                prev = Some(session.submit(builder.build().unwrap()).unwrap());
            }
            let results = session.wait_all();
            let delay = results.last().unwrap().1.as_ref().unwrap().delay;
            (
                session.stages_simulated(),
                session.result_cache_hits(),
                delay,
            )
        };

        let baseline = runner.bench("eco_single_edit_16stage/cold", || {
            let _ = std::fs::remove_dir_all(&eco_dir);
            let (simulated, hits, delay) = analyze(&eco_engine(), true);
            assert_eq!(
                (simulated, hits),
                (16, 0),
                "a cold run simulates everything"
            );
            black_box(delay)
        });
        // The single-edit cone: prime with the unedited design, apply the
        // edit — exactly stage 8 and its 7 downstream stages re-simulate.
        {
            let _ = std::fs::remove_dir_all(&eco_dir);
            analyze(&eco_engine(), false);
            let (simulated, hits, _) = analyze(&eco_engine(), true);
            assert_eq!(
                (simulated, hits),
                (8, 8),
                "a stage-8 edit must re-simulate exactly its dependency cone"
            );
        }
        let optimized = runner.bench("eco_single_edit_16stage/warm", || {
            let (simulated, hits, delay) = analyze(&eco_engine(), true);
            assert_eq!(
                (simulated, hits),
                (0, 16),
                "a warm re-analysis replays everything"
            );
            black_box(delay)
        });
        if !smoke {
            let speedup = baseline.as_nanos() as f64 / optimized.as_nanos() as f64;
            assert!(
                speedup >= 10.0,
                "eco_single_edit_16stage: warm replay speedup {speedup:.1}x is under the 10x target"
            );
        }
        results.push(BenchComparison {
            name: "eco_single_edit_16stage".to_string(),
            baseline_ns: baseline.as_nanos(),
            optimized_ns: optimized.as_nanos(),
        });
    }

    // ---- AnalysisSession scheduling overhead ------------------------------
    // A 4-stage dependent chain through the session versus hand-rolled
    // sequential analyze + far_end propagation. Both sides run the same
    // analytic flow and the same propagation fidelity, so the difference is
    // pure scheduling (worker threads, queueing, handoff bookkeeping).
    {
        use rlc_ceff_suite::ceff::far_end::FarEndOptions;
        use rlc_ceff_suite::{
            DistributedRlcLoad, EngineConfig, InputEvent, LoadModel, SessionOptions, Stage,
            TimingEngine,
        };
        use std::sync::Arc;

        let cell = Arc::new(session_bench_cell());
        let engine = TimingEngine::new(
            EngineConfig::builder()
                .extract_rs_per_case(false)
                .threads(2)
                .build(),
        );
        let far_opts = FarEndOptions {
            segments: if smoke { 8 } else { 20 },
            time_step: ps(1.0),
            ..FarEndOptions::default()
        };
        let chain_line = RlcLine::new(r, l, c, mm(5.0));
        let loads: Vec<Arc<dyn LoadModel>> = (0..4)
            .map(|i| {
                Arc::new(DistributedRlcLoad::new(chain_line, ff(10.0 + 5.0 * i as f64)).unwrap())
                    as Arc<dyn LoadModel>
            })
            .collect();

        // The session cases gate CI on a ratio of two timings, so measure
        // them at the default fidelity (9 samples) instead of the kernel
        // benches' 3-sample slow mode — a 4-stage chain is ~10 ms, cheap
        // enough to sample properly.
        let mut session_runner = Runner::new("transient/session");
        let manual = session_runner.bench("path_chain_4stage/manual", || {
            let mut event = InputEvent {
                slew: ps(100.0),
                delay: ps(20.0),
            };
            let mut last_delay = 0.0;
            for (i, load) in loads.iter().enumerate() {
                let stage = Stage::builder_shared(cell.clone(), load.clone())
                    .label("manual")
                    .input_slew(event.slew)
                    .input_delay(event.delay)
                    .build()
                    .unwrap();
                let report = engine.analyze(&stage).unwrap();
                last_delay = report.delay;
                if i + 1 < loads.len() {
                    let far = report.far_end(load.as_ref(), &far_opts).unwrap();
                    event = InputEvent::from_measured(
                        report.input_t50 + far.delay_from_input,
                        far.slew,
                    );
                }
            }
            black_box(last_delay)
        });
        // A dependency chain has no parallelism to exploit: one worker.
        let session_opts = SessionOptions::default()
            .with_far_end(far_opts)
            .with_max_in_flight(1);
        let chained = session_runner.bench("path_chain_4stage/session", || {
            let mut session = engine.session_with(session_opts);
            let mut prev = None;
            for load in &loads {
                let mut builder =
                    Stage::builder_shared(cell.clone(), load.clone()).label("chained");
                builder = match prev {
                    None => builder.input_slew(ps(100.0)),
                    Some(handle) => builder.input_from(handle),
                };
                prev = Some(session.submit(builder.build().unwrap()).unwrap());
            }
            let results = session.wait_all();
            black_box(results.last().unwrap().1.as_ref().unwrap().delay)
        });
        results.push(BenchComparison {
            name: "path_chain_4stage".to_string(),
            baseline_ns: manual.as_nanos(),
            optimized_ns: chained.as_nanos(),
        });

        // A wide independent batch: the session must keep the deprecated
        // analyze_many's parallel throughput.
        let wide: Vec<Stage> = (0..16)
            .map(|i| {
                Stage::builder_shared(
                    cell.clone(),
                    Arc::new(DistributedRlcLoad::new(chain_line, ff(10.0 + i as f64)).unwrap()),
                )
                .label("wide")
                .input_slew(ps(100.0))
                .build()
                .unwrap()
            })
            .collect();
        let wide_engine = TimingEngine::new(
            EngineConfig::builder()
                .extract_rs_per_case(false)
                .threads(4)
                .build(),
        );
        #[allow(deprecated)] // benchmarking the shim against the session
        let flat = session_runner.bench("session_wide_batch_16/analyze_many", || {
            let batch = wide_engine.analyze_many(black_box(&wide));
            assert!(batch.all_ok());
            black_box(batch.len())
        });
        let via_session = session_runner.bench("session_wide_batch_16/session", || {
            let mut session = wide_engine.session();
            session.submit_all(wide.iter().cloned()).unwrap();
            let results = session.wait_all();
            assert!(results.iter().all(|(_, r)| r.is_ok()));
            black_box(results.len())
        });
        results.push(BenchComparison {
            name: "session_wide_batch_16".to_string(),
            baseline_ns: flat.as_nanos(),
            optimized_ns: via_session.as_nanos(),
        });

        // Budget check (the CI smoke step relies on this assert). Both sides
        // are wall-clock medians, so the budgets guard against pathological
        // scheduling regressions rather than restating the measurement: the
        // committed full-mode JSON is what documents the real overhead
        // (~4%, inside the < 5% target), and re-runs on other machines must
        // not flake on a point measurement's jitter.
        let budget = if smoke { 1.50 } else { 1.10 };
        for name in ["path_chain_4stage", "session_wide_batch_16"] {
            let case = results.iter().find(|r| r.name == name).unwrap();
            let ratio = case.optimized_ns as f64 / case.baseline_ns as f64;
            assert!(
                ratio <= budget,
                "{name}: session overhead ratio {ratio:.3} exceeds budget {budget:.2}"
            );
        }
    }

    for r in &results {
        println!(
            "  {}: {:.2}x speedup ({:.3} ms -> {:.3} ms)",
            r.name,
            r.speedup(),
            r.baseline_ns as f64 / 1e6,
            r.optimized_ns as f64 / 1e6,
        );
    }

    // Full runs record the trajectory next to the sources; smoke runs (CI)
    // only check that the harness executes, and park the report in target/.
    let (mode, path) = if smoke {
        (
            "smoke",
            OutputPaths::at(workspace_root.join("target/experiments")).file("BENCH_transient.json"),
        )
    } else {
        ("full", workspace_root.join("BENCH_transient.json"))
    };
    write_bench_json(&path, "transient", mode, &results);
    println!("wrote {}", path.display());
}
