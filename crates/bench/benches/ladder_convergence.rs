//! Ablation benchmark: cost of the golden transient simulation as a function
//! of the number of ladder segments used to discretize the line. Paired with
//! the accuracy data in EXPERIMENTS.md, this justifies the 40-segment /
//! 0.5 ps reference fidelity and the 24-segment sweep fidelity.
//!
//! Run with: `cargo bench --bench ladder_convergence`

use rlc_bench::harness::Runner;
use rlc_ceff::flow::AnalysisCase;
use rlc_ceff::validation::{GoldenOptions, GoldenWaveforms};
use rlc_charlib::{DriverCell, TimingTable};
use rlc_interconnect::RlcLine;
use rlc_numeric::units::{ff, mm, nh, pf, ps};
use rlc_spice::testbench::InverterSpec;

fn synthetic_cell() -> DriverCell {
    let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
    let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
    let transition: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(160.0))
                .collect()
        })
        .collect();
    let delay: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(53.0))
                .collect()
        })
        .collect();
    DriverCell::from_parts(
        InverterSpec::sized_018(75.0),
        TimingTable::new(slews, loads, delay, transition),
        70.0,
    )
}

fn main() {
    let mut runner = Runner::new("ladder_segments").slow();
    let cell = synthetic_cell();
    let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
    for segments in [8usize, 16, 24, 40, 64] {
        runner.bench(&format!("golden_{segments}seg"), || {
            let case = AnalysisCase::try_new(&cell, &line, ff(10.0), ps(100.0)).unwrap();
            let opts = GoldenOptions {
                segments,
                time_step: ps(1.0),
                max_stop_time: 2.0e-9,
            };
            GoldenWaveforms::simulate(&case, &opts).unwrap()
        });
    }
}
