//! The headline cost comparison: the complete two-ramp modelling flow
//! (admittance fit + breakpoint + both Ceff iterations) versus a golden
//! transient simulation of the same case. The paper's motivation for the
//! effective-capacitance approach is exactly this gap.
//!
//! Run with: `cargo bench --bench model_vs_spice`

use rlc_bench::harness::Runner;
use rlc_ceff::flow::{AnalysisCase, DriverOutputModeler, ModelingConfig};
use rlc_ceff::validation::{GoldenOptions, GoldenWaveforms};
use rlc_charlib::{DriverCell, TimingTable};
use rlc_interconnect::RlcLine;
use rlc_numeric::units::{ff, mm, nh, pf, ps};
use rlc_spice::testbench::InverterSpec;
use std::hint::black_box;

fn synthetic_cell() -> DriverCell {
    let slews = vec![ps(50.0), ps(100.0), ps(200.0)];
    let loads = vec![ff(50.0), ff(200.0), ff(500.0), pf(1.0), pf(2.0)];
    let transition: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(10.0) + 0.1 * s + (c / 1e-12) * ps(160.0))
                .collect()
        })
        .collect();
    let delay: Vec<Vec<f64>> = slews
        .iter()
        .map(|&s| {
            loads
                .iter()
                .map(|&c| ps(5.0) + 0.2 * s + (c / 1e-12) * ps(53.0))
                .collect()
        })
        .collect();
    DriverCell::from_parts(
        InverterSpec::sized_018(75.0),
        TimingTable::new(slews, loads, delay, transition),
        70.0,
    )
}

fn main() {
    let cell = synthetic_cell();
    let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
    let config = ModelingConfig {
        extract_rs_per_case: false,
        ..ModelingConfig::default()
    };
    let modeler = DriverOutputModeler::new(config);

    let mut runner = Runner::new("model_vs_spice");
    runner.bench("flow/two_ramp_model", || {
        let case =
            AnalysisCase::try_new(black_box(&cell), black_box(&line), ff(10.0), ps(100.0)).unwrap();
        modeler.model(&case).unwrap()
    });

    let mut runner = Runner::new("golden_simulation").slow();
    for (label, segments, step) in [
        ("24seg_1ps", 24usize, ps(1.0)),
        ("40seg_0p5ps", 40usize, ps(0.5)),
    ] {
        runner.bench(label, || {
            let case =
                AnalysisCase::try_new(black_box(&cell), black_box(&line), ff(10.0), ps(100.0))
                    .unwrap();
            let opts = GoldenOptions {
                segments,
                time_step: step,
                max_stop_time: 2.0e-9,
            };
            GoldenWaveforms::simulate(&case, &opts).unwrap()
        });
    }
}
