//! `service_wide_batch`: multi-process throughput of the sharded timing
//! service on a wide synthetic netlist.
//!
//! A client on localhost submits a many-stage batch (independent nets plus
//! a sprinkling of dependent chains) three ways — through an in-process
//! `AnalysisSession`, through a 1-shard service, and through an N-shard
//! service — and records wall-clock throughput for each to
//! `BENCH_service.json` at the workspace root. Stages use the canonical
//! synthetic cell and the analytic backend, so the numbers measure
//! scheduling, wire-protocol and multi-process overheads rather than cell
//! characterization or golden simulation.
//!
//! Run with: `cargo bench --bench service`
//! Smoke mode (CI): `RLC_BENCH_SMOKE=1 cargo bench --bench service`
//!
//! The self-check asserts every stage of every run succeeds and that the
//! in-process and remote results on the probe chain agree bit-for-bit.

use std::sync::Arc;
use std::time::Instant;

use rlc_bench::{write_service_bench_json, ServiceThroughput};
use rlc_ceff_suite::{fixtures, BackendChoice, EngineConfig, LumpedCapLoad, Stage, TimingEngine};
use rlc_interconnect::RlcLine;
use rlc_numeric::units::{ff, mm, nh, pf, ps};
use rlc_service::{
    maybe_run_worker_from_env, RemoteCell, RemoteLoad, RemoteStage, ServiceClient, ShardServer,
};

/// The synthetic netlist: mostly independent stages with varying loads
/// (hash-routed across shards), with every 8th stage chained onto its
/// predecessor's far end to exercise dependency-affinity routing too.
struct Netlist {
    stages: usize,
}

impl Netlist {
    fn load_cap(&self, i: usize) -> f64 {
        ff(20.0) + ff(5.0) * (i % 40) as f64
    }

    fn is_chained(&self, i: usize) -> bool {
        i % 8 == 7
    }
}

fn line_for(i: usize) -> RlcLine {
    RlcLine::new(
        60.0 + (i % 7) as f64,
        nh(4.0),
        pf(1.0),
        mm(4.0 + 0.1 * (i % 5) as f64),
    )
}

fn run_in_process(netlist: &Netlist) -> (u128, f64) {
    let engine = TimingEngine::new(EngineConfig::default());
    let cell = Arc::new(fixtures::synthetic_cell_75x());
    let start = Instant::now();
    let mut session = engine.session();
    let mut previous = None;
    for i in 0..netlist.stages {
        let builder = if netlist.is_chained(i) {
            Stage::builder(
                cell.clone(),
                LumpedCapLoad::new(netlist.load_cap(i)).unwrap(),
            )
            .input_from(previous.unwrap())
        } else {
            Stage::builder(
                cell.clone(),
                rlc_ceff_suite::DistributedRlcLoad::new(line_for(i), netlist.load_cap(i)).unwrap(),
            )
            .input_slew(ps(100.0))
        };
        previous = Some(
            session
                .submit(
                    builder
                        .label(format!("net-{i}"))
                        .backend(BackendChoice::Analytic)
                        .build()
                        .unwrap(),
                )
                .unwrap(),
        );
    }
    let results = session.wait_all();
    let elapsed = start.elapsed().as_nanos();
    let mut probe = 0.0;
    for (handle, outcome) in results {
        let report = outcome.unwrap_or_else(|e| panic!("stage #{} failed: {e}", handle.index()));
        probe += report.delay;
    }
    (elapsed, probe)
}

fn run_remote(netlist: &Netlist, shards: usize) -> (u128, f64) {
    let exe = std::env::current_exe().expect("own executable");
    let fleet =
        ShardServer::spawn("127.0.0.1:0", shards, None, None, &exe).expect("spawn worker fleet");
    let (addr, _pool) = fleet.serve_in_background();
    let cell = RemoteCell::synthetic(75.0, 70.0);
    let start = Instant::now();
    let mut client = ServiceClient::connect(addr).expect("connect to fleet");
    let mut previous = None;
    for i in 0..netlist.stages {
        let builder = if netlist.is_chained(i) {
            RemoteStage::builder(cell, RemoteLoad::lumped(netlist.load_cap(i)))
                .input_from(previous.unwrap())
        } else {
            RemoteStage::builder(cell, RemoteLoad::line(&line_for(i), netlist.load_cap(i)))
                .input_slew(ps(100.0))
        };
        previous = Some(
            client
                .submit(builder.label(format!("net-{i}")).analytic().build())
                .unwrap(),
        );
    }
    let results = client.wait_all().expect("drain fleet");
    let elapsed = start.elapsed().as_nanos();
    let mut probe = 0.0;
    for (i, outcome) in results.into_iter().enumerate() {
        let report = outcome.unwrap_or_else(|e| panic!("remote stage #{i} failed: {e}"));
        probe += report.delay;
    }
    client.close().expect("clean close");
    (elapsed, probe)
}

fn main() {
    // Shard workers are re-invocations of this very bench executable.
    if maybe_run_worker_from_env() {
        return;
    }
    let smoke = std::env::var("RLC_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let (stages, wide_shards) = if smoke { (192, 2) } else { (3840, 4) };
    let netlist = Netlist { stages };
    let workspace_root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));

    println!("service_wide_batch: {stages} stages, in-process vs 1-shard vs {wide_shards}-shard");

    let (inproc_ns, inproc_probe) = run_in_process(&netlist);
    let (single_ns, single_probe) = run_remote(&netlist, 1);
    let (wide_ns, wide_probe) = run_remote(&netlist, wide_shards);

    // The remote flows must compute exactly what the in-process session
    // computes — the probe is the sum of every stage delay.
    assert_eq!(
        inproc_probe.to_bits(),
        single_probe.to_bits(),
        "1-shard service diverged from the in-process session"
    );
    assert_eq!(
        inproc_probe.to_bits(),
        wide_probe.to_bits(),
        "{wide_shards}-shard service diverged from the in-process session"
    );

    let results = vec![
        ServiceThroughput {
            name: "in_process".into(),
            shards: 0,
            stages,
            elapsed_ns: inproc_ns,
        },
        ServiceThroughput {
            name: "remote_1shard".into(),
            shards: 1,
            stages,
            elapsed_ns: single_ns,
        },
        ServiceThroughput {
            name: format!("remote_{wide_shards}shard"),
            shards: wide_shards,
            stages,
            elapsed_ns: wide_ns,
        },
    ];
    for r in &results {
        println!(
            "  {:<16} {:>3} shards  {:>9.1} ms  {:>10.0} stages/s",
            r.name,
            r.shards,
            r.elapsed_ns as f64 / 1e6,
            r.stages_per_sec()
        );
    }
    write_service_bench_json(
        &workspace_root.join("BENCH_service.json"),
        if smoke { "smoke" } else { "full" },
        &results,
    );
    println!(
        "wrote {}",
        workspace_root.join("BENCH_service.json").display()
    );
}
