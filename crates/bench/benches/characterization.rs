//! Benchmarks of the library-characterization substrate: one characterization
//! point (a transient simulation of the inverter against a lumped load) and
//! the driver on-resistance extraction.
//!
//! Run with: `cargo bench --bench characterization`

use rlc_bench::harness::Runner;
use rlc_charlib::characterize::characterize_point;
use rlc_charlib::driver_on_resistance;
use rlc_numeric::units::{ff, pf, ps};
use rlc_spice::testbench::{InverterSpec, OutputTransition};

fn main() {
    let spec = InverterSpec::sized_018(75.0);
    let mut runner = Runner::new("characterization").slow();
    runner.bench("point_500fF_100ps", || {
        characterize_point(
            &spec,
            ps(100.0),
            ff(500.0),
            ps(0.5),
            OutputTransition::Rising,
        )
        .unwrap()
    });
    runner.bench("driver_on_resistance_1p1pF", || {
        driver_on_resistance(&spec, ps(100.0), pf(1.1), OutputTransition::Rising).unwrap()
    });
}
