//! Benchmarks of the library-characterization substrate: one characterization
//! point (a transient simulation of the inverter against a lumped load) and
//! the driver on-resistance extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use rlc_charlib::characterize::characterize_point;
use rlc_charlib::driver_on_resistance;
use rlc_numeric::units::{ff, pf, ps};
use rlc_spice::testbench::{InverterSpec, OutputTransition};

fn bench_characterization(c: &mut Criterion) {
    let spec = InverterSpec::sized_018(75.0);
    let mut group = c.benchmark_group("characterization");
    group.sample_size(10);
    group.bench_function("point_500fF_100ps", |b| {
        b.iter(|| {
            characterize_point(&spec, ps(100.0), ff(500.0), ps(0.5), OutputTransition::Rising)
                .unwrap()
        })
    });
    group.bench_function("driver_on_resistance_1p1pF", |b| {
        b.iter(|| driver_on_resistance(&spec, ps(100.0), pf(1.1), OutputTransition::Rising).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_characterization);
criterion_main!(benches);
