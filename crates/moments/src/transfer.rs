//! Moment-matched reduced-order voltage-transfer model.
//!
//! [`TransferModel`] fits the first transfer moments `h0..h3` of a
//! driving-point→sink voltage transfer (from
//! [`crate::tree_transfer_moments`]) to a low-order rational response
//!
//! ```text
//! H(s) = (a0 + a1 s) / (1 + b1 s + b2 s^2)
//! ```
//!
//! by the classic AWE/Padé construction, and evaluates the closed-form
//! response to a unit voltage ramp in constant time. Superposing shifted
//! ramp responses (any piecewise-linear drive is a sum of ramps) yields the
//! full far-end waveform in microseconds — no time stepping — which is what
//! the reduced-order analysis backend is built on.
//!
//! Moment matching is not passivity-preserving: a fit can produce a
//! right-half-plane pole for strongly inductive loads. The constructor
//! detects that (and degenerate/repeated-pole fits) and reports a typed
//! [`MomentError`] so callers can fall back to full simulation.

use rlc_numeric::roots::quadratic_roots;
use rlc_numeric::Complex;

use crate::MomentError;

/// Relative threshold below which the Padé 2×2 system is treated as
/// singular and the fit falls back to a single pole.
const DET_REL_TOL: f64 = 1e-12;

/// A reduced-order rational transfer function with its pole-residue
/// decomposition of the unit-ramp response precomputed.
#[derive(Debug, Clone)]
pub struct TransferModel {
    /// Numerator constant coefficient — the DC gain (`h0`, unity for a
    /// capacitively loaded tree).
    pub a0: f64,
    /// Numerator coefficient of `s`.
    pub a1: f64,
    /// Denominator coefficient of `s`.
    pub b1: f64,
    /// Denominator coefficient of `s^2` (zero for a one-pole fit).
    pub b2: f64,
    /// First transfer moment `h1` (its negative is the Elmore delay).
    h1: f64,
    /// Poles of the fit (1 or 2, conjugate pair stored explicitly).
    poles: Vec<Complex>,
    /// Ramp-response residues, aligned with `poles`.
    residues: Vec<Complex>,
}

impl TransferModel {
    /// Fits the model to transfer moments `h[k]` = coefficient of `s^k` in
    /// `H(s)` (as returned by [`crate::tree_transfer_moments`]); at least
    /// `h0..h3` are required.
    ///
    /// The two-pole Padé solves `[h1 h0; h2 h1]·[b1; b2] = [-h2; -h3]`; when
    /// that system is singular (a transfer dominated by one time constant)
    /// the fit degrades to a single pole matching `h0`, `h1` and the decay
    /// ratio `h2/h1`.
    ///
    /// # Errors
    /// [`MomentError::NotEnoughMoments`] with fewer than four moments;
    /// [`MomentError::DegenerateLoad`] when the transfer has no observable
    /// dynamics, the fit has a (numerically) repeated pole, or a pole lands
    /// in the right half plane — the AWE instability that moment matching
    /// cannot rule out, in which case callers should fall back to full
    /// simulation.
    pub fn from_moments(h: &[f64]) -> Result<Self, MomentError> {
        if h.len() < 4 {
            return Err(MomentError::NotEnoughMoments {
                required: 4,
                supplied: h.len(),
            });
        }
        let (h0, h1, h2, h3) = (h[0], h[1], h[2], h[3]);

        // Two-pole Padé: [h1 h0; h2 h1] [b1; b2] = [-h2; -h3].
        let det = h1 * h1 - h0 * h2;
        let scale = (h1 * h1).abs().max((h0 * h2).abs()).max(1e-300);
        let (b1, b2) = if det.abs() < DET_REL_TOL * scale {
            Self::one_pole_denominator(h0, h1, h2)?
        } else {
            let b1 = (h0 * h3 - h1 * h2) / det;
            let b2 = (h2 * h2 - h1 * h3) / det;
            // A vanishing s^2 coefficient means the second pole escaped to
            // infinity; fit the single observable pole instead.
            if b2.abs() < DET_REL_TOL * b1 * b1 {
                Self::one_pole_denominator(h0, h1, h2)?
            } else {
                (b1, b2)
            }
        };

        let a0 = h0;
        let a1 = h1 + b1 * h0;

        let poles = if b2 == 0.0 {
            vec![Complex::real(-1.0 / b1)]
        } else {
            let (p1, p2) = quadratic_roots(b2, b1, 1.0);
            if (p1 - p2).abs() < 1e-9 * p1.abs().max(p2.abs()) {
                return Err(MomentError::DegenerateLoad(
                    "transfer fit has a repeated pole; pole-residue ramp response is undefined"
                        .to_string(),
                ));
            }
            vec![p1, p2]
        };
        if poles.iter().any(|p| p.re >= 0.0) {
            return Err(MomentError::DegenerateLoad(format!(
                "moment matching produced an unstable pole ({}); \
                 fall back to full simulation",
                poles.iter().find(|p| p.re >= 0.0).unwrap()
            )));
        }

        // Residues of H(s)/s^2 at each pole: c = N(p) / (p^2 D'(p)) with
        // D'(s) = b1 + 2 b2 s.
        let residues = poles
            .iter()
            .map(|&p| {
                let n = Complex::real(a0) + Complex::real(a1) * p;
                n / (p * p * (Complex::real(b1) + Complex::real(2.0 * b2) * p))
            })
            .collect();

        Ok(TransferModel {
            a0,
            a1,
            b1,
            b2,
            h1,
            poles,
            residues,
        })
    }

    /// Single-pole denominator matching the decay ratio `h2/h1` (or, for a
    /// transfer with no second-order content, `h1/h0`).
    fn one_pole_denominator(h0: f64, h1: f64, h2: f64) -> Result<(f64, f64), MomentError> {
        if h1 == 0.0 {
            return Err(MomentError::DegenerateLoad(
                "transfer has no first-order dynamics to fit (h1 = 0)".to_string(),
            ));
        }
        let b1 = if h2 != 0.0 { -h2 / h1 } else { -h1 / h0 };
        if !(b1 > 0.0 && b1.is_finite()) {
            return Err(MomentError::DegenerateLoad(format!(
                "single-pole fit is unstable (b1 = {b1:.3e})"
            )));
        }
        Ok((b1, 0.0))
    }

    /// Number of poles in the fit (1 or 2).
    pub fn order(&self) -> usize {
        self.poles.len()
    }

    /// DC gain `H(0)`.
    pub fn dc_gain(&self) -> f64 {
        self.a0
    }

    /// Elmore delay of the modeled transfer, `-h1`.
    pub fn elmore_delay(&self) -> f64 {
        -self.h1
    }

    /// The poles of the fit (a conjugate pair is stored as both members).
    pub fn poles(&self) -> &[Complex] {
        &self.poles
    }

    /// Slowest time constant of the fit, `max 1/|Re p|` — the scale on which
    /// the ramp response settles to its asymptote.
    pub fn max_time_constant(&self) -> f64 {
        self.poles
            .iter()
            .map(|p| 1.0 / p.re.abs())
            .fold(0.0, f64::max)
    }

    /// Response at time `t` to a unit voltage ramp `v_in(t) = t·u(t)`,
    /// in closed form:
    ///
    /// ```text
    /// y(t) = a0·t + h1 + Σ_i Re(c_i · exp(p_i t))
    /// ```
    ///
    /// where `c_i = N(p_i) / (p_i^2 D'(p_i))`. The asymptote is the input
    /// delayed by the Elmore delay (`a0·t + h1` with `a0 = 1`), and
    /// `y(0) = 0` because the residues cancel `h1` exactly.
    pub fn unit_ramp_response(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let mut y = self.a0 * t + self.h1;
        for (p, c) in self.poles.iter().zip(&self.residues) {
            y += (*c * (*p * t).exp()).re;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;

    /// Exact moments of H = 1/(1 + s·tau): h_k = (-tau)^k.
    fn single_pole_moments(tau: f64) -> Vec<f64> {
        (0..4).map(|k| (-tau).powi(k)).collect()
    }

    /// Moments of the open RC line transfer sech(sqrt(s·rc)).
    fn sech_moments(rc: f64) -> Vec<f64> {
        vec![
            1.0,
            -rc / 2.0,
            5.0 * rc * rc / 24.0,
            -61.0 * rc * rc * rc / 720.0,
        ]
    }

    #[test]
    fn single_pole_rc_is_recovered_exactly() {
        let tau = 5e-12;
        let model = TransferModel::from_moments(&single_pole_moments(tau)).unwrap();
        assert_eq!(model.order(), 1);
        assert!(approx_eq(model.b1, tau, 1e-9));
        assert!(approx_eq(model.a0, 1.0, 1e-12));
        assert!(model.a1.abs() < 1e-9 * tau, "a1 = {}", model.a1);
        // y(t) = t - tau + tau e^{-t/tau} for the RC ramp response.
        for t_over_tau in [0.1, 0.5, 1.0, 3.0, 10.0] {
            let t = t_over_tau * tau;
            let expected = t - tau + tau * (-t / tau).exp();
            assert!(
                approx_eq(model.unit_ramp_response(t), expected, 1e-6),
                "t/tau = {t_over_tau}: {} vs {expected}",
                model.unit_ramp_response(t)
            );
        }
    }

    #[test]
    fn fitted_model_reproduces_its_input_moments() {
        // Expanding the fitted H(s) back into a power series must return the
        // moments it was built from (that is what Padé matching means).
        let h = sech_moments(80.0e-12);
        let model = TransferModel::from_moments(&h).unwrap();
        assert_eq!(model.order(), 2);
        // Series of (a0 + a1 s)/(1 + b1 s + b2 s^2): g0 = a0,
        // g1 = a1 - b1 g0, g_k = -b1 g_{k-1} - b2 g_{k-2}.
        let mut g = vec![model.a0, model.a1 - model.b1 * model.a0];
        for k in 2..4 {
            g.push(-model.b1 * g[k - 1] - model.b2 * g[k - 2]);
        }
        for k in 0..4 {
            assert!(
                approx_eq(g[k], h[k], 1e-9),
                "moment {k}: {} vs {}",
                g[k],
                h[k]
            );
        }
    }

    #[test]
    fn ramp_response_starts_at_zero_and_tracks_the_delayed_ramp() {
        let rc = 100.0e-12;
        let model = TransferModel::from_moments(&sech_moments(rc)).unwrap();
        assert!(model.unit_ramp_response(0.0).abs() < 1e-20);
        // The residues cancel h1 at t = 0+.
        assert!(model.unit_ramp_response(1e-18).abs() < 1e-15);
        // Far past the slowest time constant the output is the input delayed
        // by the Elmore delay rc/2.
        let t = 20.0 * model.max_time_constant();
        assert!(approx_eq(model.unit_ramp_response(t), t - rc / 2.0, 1e-9));
        assert!(approx_eq(model.elmore_delay(), rc / 2.0, 1e-12));
    }

    #[test]
    fn ramp_response_undershoot_is_small_and_tail_is_monotone() {
        // The 2-pole Padé of sech has a1 < 0, so the ramp response dips
        // slightly negative before rising (the well-known AWE precursor).
        // The dip must stay tiny relative to the Elmore delay and the
        // response must be monotone once past the fast pole.
        let model = TransferModel::from_moments(&sech_moments(50.0e-12)).unwrap();
        let tau = model.max_time_constant();
        let mut min_y: f64 = 0.0;
        let mut prev = f64::NEG_INFINITY;
        for k in 0..400 {
            let t = k as f64 * tau / 20.0;
            let y = model.unit_ramp_response(t);
            min_y = min_y.min(y);
            if t >= tau {
                assert!(y >= prev - 1e-18, "non-monotone tail at step {k}");
                prev = y;
            }
        }
        assert!(
            min_y >= -0.1 * model.elmore_delay(),
            "undershoot {min_y} too large"
        );
    }

    #[test]
    fn unstable_fit_is_reported() {
        // Moments of 1/(1 - s·tau): pole at +1/tau.
        let tau: f64 = 1e-12;
        let h: Vec<f64> = (0..4).map(|k| tau.powi(k)).collect();
        match TransferModel::from_moments(&h) {
            Err(MomentError::DegenerateLoad(msg)) => {
                assert!(msg.contains("unstable"), "message: {msg}")
            }
            other => panic!("expected unstable-pole error, got {other:?}"),
        }
    }

    #[test]
    fn too_few_moments_is_reported() {
        match TransferModel::from_moments(&[1.0, -1e-12, 1e-24]) {
            Err(MomentError::NotEnoughMoments { required, supplied }) => {
                assert_eq!((required, supplied), (4, 3));
            }
            other => panic!("expected NotEnoughMoments, got {other:?}"),
        }
    }

    #[test]
    fn pure_gain_transfer_is_degenerate() {
        match TransferModel::from_moments(&[1.0, 0.0, 0.0, 0.0]) {
            Err(MomentError::DegenerateLoad(_)) => {}
            other => panic!("expected DegenerateLoad, got {other:?}"),
        }
    }
}
