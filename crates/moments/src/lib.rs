//! # rlc-moments
//!
//! Driving-point admittance moment analysis for RLC interconnect loads.
//!
//! The paper models the load seen by a driver with the rational admittance
//!
//! ```text
//! Y(s) = (a1 s + a2 s^2 + a3 s^3) / (1 + b1 s + b2 s^2)
//! ```
//!
//! whose five coefficients are obtained by matching the first five moments of
//! the driving-point admittance of the actual RLC line (plus its load
//! capacitance). This crate computes those moments in two independent ways —
//! by truncated-power-series propagation through a lumped ladder and by the
//! analytic series of the distributed transmission-line input admittance —
//! fits the rational model, and also provides the classic RC baselines
//! (O'Brien–Savarino pi model and a Qian/Pillage-style single effective
//! capacitance) that the paper compares against.
//!
//! ```
//! use rlc_interconnect::RlcLine;
//! use rlc_moments::prelude::*;
//! use rlc_numeric::units::{ff, mm, nh, pf};
//!
//! let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
//! let moments = distributed_admittance_moments(&line, ff(10.0), 6);
//! let fit = RationalAdmittance::from_moments(&moments).unwrap();
//! // The first moment is the total capacitance of the load.
//! assert!((fit.a1 - (1.10e-12 + 10e-15)).abs() < 1e-15);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod driving_point;
pub mod pi_model;
pub mod rational;
pub mod transfer;

pub use driving_point::{
    distributed_admittance_moments, ladder_admittance_moments, tree_admittance_moments,
    tree_transfer_moments,
};
pub use pi_model::{PiModel, RcCeffBaseline};
pub use rational::{PolePair, RationalAdmittance};
pub use transfer::TransferModel;

/// Convenient glob import.
pub mod prelude {
    pub use crate::driving_point::{
        distributed_admittance_moments, ladder_admittance_moments, tree_admittance_moments,
        tree_transfer_moments,
    };
    pub use crate::pi_model::{PiModel, RcCeffBaseline};
    pub use crate::rational::{PolePair, RationalAdmittance};
    pub use crate::transfer::TransferModel;
}

/// Errors produced while fitting reduced-order load models.
#[derive(Debug, Clone, PartialEq)]
pub enum MomentError {
    /// Not enough moments were supplied for the requested fit.
    NotEnoughMoments {
        /// Number of moments required.
        required: usize,
        /// Number of moments supplied.
        supplied: usize,
    },
    /// The moment-matching linear system was singular — the load is
    /// degenerate (for example a pure capacitance, which has no second-order
    /// dynamics to fit).
    DegenerateLoad(String),
}

impl std::fmt::Display for MomentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MomentError::NotEnoughMoments { required, supplied } => write!(
                f,
                "moment fit needs {required} moments but only {supplied} were supplied"
            ),
            MomentError::DegenerateLoad(msg) => write!(f, "degenerate load: {msg}"),
        }
    }
}

impl std::error::Error for MomentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = MomentError::NotEnoughMoments {
            required: 5,
            supplied: 3,
        };
        assert!(e.to_string().contains('5'));
        let e = MomentError::DegenerateLoad("pure capacitor".into());
        assert!(e.to_string().contains("pure capacitor"));
    }
}
