//! Driving-point admittance moments of an RLC line terminated by a load
//! capacitance.
//!
//! `Y(s) = m1 s + m2 s^2 + m3 s^3 + ...` — the moment `m1` is the total load
//! capacitance, `m2` and higher carry the resistive/inductive shielding
//! information. Two independent computations are provided and cross-checked
//! in the tests:
//!
//! 1. [`ladder_admittance_moments`] — propagate a truncated power series
//!    backwards through a lumped ladder discretization (the same topology the
//!    transient simulator uses).
//! 2. [`distributed_admittance_moments`] — expand the exact input admittance
//!    of a uniform distributed RLC line,
//!    `Yin = (Y_L + Y_c tanh θ) / (1 + Y_L Z0 tanh θ)`, as a power series
//!    using `tanh(x)/x` in the analytic variable `u = (R + sL)(sC)`.

use rlc_interconnect::{RlcLine, RlcTree};
use rlc_numeric::PowerSeries;

/// Coefficients of `tanh(sqrt(u)) / sqrt(u)` as a power series in `u`:
/// `1 - u/3 + 2u^2/15 - 17u^3/315 + 62u^4/2835 - 1382u^5/155925 + ...`.
const TANH_SQRT_OVER_SQRT: [f64; 8] = [
    1.0,
    -1.0 / 3.0,
    2.0 / 15.0,
    -17.0 / 315.0,
    62.0 / 2835.0,
    -1382.0 / 155_925.0,
    21844.0 / 6_081_075.0,
    -929_569.0 / 638_512_875.0,
];

/// Coefficients of `cosh(sqrt(u))` as a power series in `u`: `1/(2k)!`.
const COSH_SQRT: [f64; 8] = [
    1.0,
    1.0 / 2.0,
    1.0 / 24.0,
    1.0 / 720.0,
    1.0 / 40_320.0,
    1.0 / 3_628_800.0,
    1.0 / 479_001_600.0,
    1.0 / 87_178_291_200.0,
];

/// Coefficients of `sinh(sqrt(u)) / sqrt(u)` as a power series in `u`:
/// `1/(2k+1)!`.
const SINH_SQRT_OVER_SQRT: [f64; 8] = [
    1.0,
    1.0 / 6.0,
    1.0 / 120.0,
    1.0 / 5_040.0,
    1.0 / 362_880.0,
    1.0 / 39_916_800.0,
    1.0 / 6_227_020_800.0,
    1.0 / 1_307_674_368_000.0,
];

/// Moments (`m1..=m_{n_moments}`) of the driving-point admittance of a
/// uniform RLC `line` terminated by `c_load`, computed from the distributed
/// (exact transmission-line) expression.
///
/// The returned vector has length `n_moments`; `result[k]` is the coefficient
/// of `s^(k+1)` in `Y(s)` (there is no `s^0` term because the DC input
/// admittance of a capacitively terminated line is zero).
///
/// # Panics
/// Panics if `n_moments` is 0 or larger than 8, or if `c_load < 0`.
pub fn distributed_admittance_moments(line: &RlcLine, c_load: f64, n_moments: usize) -> Vec<f64> {
    assert!(
        (1..=8).contains(&n_moments),
        "supported moment count is 1..=8"
    );
    assert!(c_load >= 0.0, "load capacitance must be non-negative");
    let n_terms = n_moments + 1; // series order includes s^0

    // Y_L = s * C_load.
    let yl = PowerSeries::linear(c_load, n_terms);
    let yin = propagate_through_line(line, &yl);

    debug_assert!(yin.coeff(0).abs() < 1e-30, "DC admittance must vanish");
    (1..=n_moments).map(|k| yin.coeff(k)).collect()
}

/// Propagates a far-end admittance series through a uniform distributed RLC
/// `line`:
///
/// ```text
/// Yin = (Y_far + Y_c tanh θ) / (1 + Y_far Z0 tanh θ)
/// ```
///
/// evaluated as truncated power series in `s` via `tanh(sqrt(u))/sqrt(u)` in
/// the analytic variable `u = (R + sL)(sC)`. This is the single propagation
/// step shared by the point-to-point expansion and the bottom-up tree
/// traversal.
fn propagate_through_line(line: &RlcLine, y_far: &PowerSeries) -> PowerSeries {
    let n_terms = y_far.n_terms();
    let c = line.capacitance();
    let (series_r_sl, u) = line_series_impedance_and_u(line, n_terms);

    // T(u) = tanh(sqrt(u))/sqrt(u) composed with the series u (u(0) = 0).
    let t_of_u = compose_in_zero_constant_series(&TANH_SQRT_OVER_SQRT, &u);

    // Y_c * tanh(theta) = sC * T(u); Z0 * tanh(theta) = (R + sL) * T(u).
    let sc = PowerSeries::linear(c, n_terms);
    let yc_tanh = sc.mul(&t_of_u);
    let z0_tanh = series_r_sl.mul(&t_of_u);

    let numerator = y_far.add(&yc_tanh);
    let denominator = PowerSeries::constant(1.0, n_terms).add(&y_far.mul(&z0_tanh));
    numerator.div(&denominator)
}

/// Total series impedance `R + sL` of a line and the analytic variable
/// `u(s) = (R + sL)(sC)` as truncated power series, shared by the admittance
/// and voltage-transfer propagation steps.
fn line_series_impedance_and_u(line: &RlcLine, n_terms: usize) -> (PowerSeries, PowerSeries) {
    let mut coeffs = vec![0.0; n_terms];
    coeffs[0] = line.resistance();
    if n_terms > 1 {
        coeffs[1] = line.inductance();
    }
    let series_r_sl = PowerSeries::new(coeffs);
    let u = series_r_sl.mul(&PowerSeries::linear(line.capacitance(), n_terms));
    (series_r_sl, u)
}

/// Denominator of the far-end/near-end voltage transfer across one
/// distributed line section terminated by the admittance `y_far`:
///
/// ```text
/// V_far / V_near = 1 / (cosh θ + Z0 sinh θ · Y_far)
/// ```
///
/// from the ABCD relation `V_near = cosh θ · V_far + Z0 sinh θ · I_far` with
/// `I_far = Y_far · V_far`. Both hyperbolic factors are analytic in
/// `u = (R + sL)(sC)`: `cosh θ = cosh(√u)` and
/// `Z0 sinh θ = (R + sL) · sinh(√u)/√u`.
fn line_transfer_denominator(line: &RlcLine, y_far: &PowerSeries) -> PowerSeries {
    let n_terms = y_far.n_terms();
    let (series_r_sl, u) = line_series_impedance_and_u(line, n_terms);
    let cosh = compose_in_zero_constant_series(&COSH_SQRT, &u);
    let z0_sinh = series_r_sl.mul(&compose_in_zero_constant_series(&SINH_SQRT_OVER_SQRT, &u));
    cosh.add(&z0_sinh.mul(y_far))
}

/// Moments of the driving-point admittance of an RLC tree, by the standard
/// bottom-up traversal: every branch propagates the admittance of its sink
/// load plus its children's subtrees through its own distributed line, and
/// the root admittance is the sum over the branches attached to the driving
/// point.
///
/// For a one-branch tree this reduces to — and produces bit-identical
/// results with — [`distributed_admittance_moments`], so the single-line
/// analysis path is a special case of the tree path rather than a parallel
/// implementation.
///
/// # Panics
/// Panics if the tree has no branches or `n_moments` is 0 or larger than 8.
pub fn tree_admittance_moments(tree: &RlcTree, n_moments: usize) -> Vec<f64> {
    assert!(
        (1..=8).contains(&n_moments),
        "supported moment count is 1..=8"
    );
    assert!(
        tree.num_branches() > 0,
        "tree must have at least one branch"
    );
    let n_terms = n_moments + 1;
    let (_, y_near) = tree_upward_pass(tree, n_terms);

    let mut total = PowerSeries::zero(n_terms);
    for (id, branch) in tree.branches() {
        if branch.parent().is_none() {
            total = total.add(&y_near[id.index()]);
        }
    }
    (1..=n_moments).map(|k| total.coeff(k)).collect()
}

/// Bottom-up admittance pass over every branch of a tree. Returns, per
/// branch, the far-end termination admittance (sink capacitance plus the
/// input admittances of the child subtrees) and the near-end input
/// admittance after propagation through the branch's own line. Children
/// always have larger indices than their parents, so one reverse pass visits
/// every subtree bottom-up.
fn tree_upward_pass(tree: &RlcTree, n_terms: usize) -> (Vec<PowerSeries>, Vec<PowerSeries>) {
    let n = tree.num_branches();
    let mut y_far_all = vec![PowerSeries::zero(n_terms); n];
    let mut y_near = vec![PowerSeries::zero(n_terms); n];
    for (id, branch) in tree.branches().collect::<Vec<_>>().into_iter().rev() {
        let c_sink = branch.sink().map_or(0.0, |s| s.c_load);
        let mut y_far = PowerSeries::linear(c_sink, n_terms);
        for child in tree.children(id) {
            // Children are processed before their parents by the reverse pass.
            y_far = y_far.add(&y_near[child.index()]);
        }
        y_near[id.index()] = propagate_through_line(branch.line(), &y_far);
        y_far_all[id.index()] = y_far;
    }
    (y_far_all, y_near)
}

/// Moments of the voltage transfer function `H(s) = V_sink(s) / V_root(s)`
/// from the tree's driving point to the named sink.
///
/// Along the root→sink path every branch contributes a factor
/// `1 / (cosh θ + Z0 sinh θ · Y_far)` where `Y_far` is the full admittance
/// terminating that branch (its sink load plus all child subtrees, computed
/// by the same bottom-up pass as [`tree_admittance_moments`]). Side branches
/// off the path enter only through those termination admittances.
///
/// Returns `None` if no sink with the given name exists. The returned vector
/// has length `n_moments + 1`; `result[k]` is the coefficient of `s^k` in
/// `H(s)`. `result[0]` is always `1.0` — at DC the capacitively loaded tree
/// draws no current, so the sink sits at the driving-point voltage — and
/// `-result[1]` is the Elmore delay of the sink.
///
/// # Panics
/// Panics if the tree has no branches or `n_moments` is 0 or larger than 7.
pub fn tree_transfer_moments(tree: &RlcTree, sink: &str, n_moments: usize) -> Option<Vec<f64>> {
    assert!(
        (1..=7).contains(&n_moments),
        "supported transfer moment count is 1..=7"
    );
    assert!(
        tree.num_branches() > 0,
        "tree must have at least one branch"
    );
    let n_terms = n_moments + 1;

    let target = tree.sinks().find(|(_, s)| s.name == sink)?.0;

    let (y_far_all, _) = tree_upward_pass(tree, n_terms);

    // H(s) = Π 1/D over the root→sink path; series products commute so the
    // walk order (sink→root via parent pointers) does not matter.
    let mut denominator = PowerSeries::constant(1.0, n_terms);
    let mut cursor = Some(target);
    while let Some(id) = cursor {
        let branch = tree.branch(id);
        denominator = denominator.mul(&line_transfer_denominator(
            branch.line(),
            &y_far_all[id.index()],
        ));
        cursor = branch.parent();
    }
    let h = PowerSeries::constant(1.0, n_terms).div(&denominator);

    debug_assert!(
        (h.coeff(0) - 1.0).abs() < 1e-12,
        "DC transfer gain must be unity"
    );
    Some((0..=n_moments).map(|k| h.coeff(k)).collect())
}

/// Composes a power series in `u` (given by `outer_coeffs[k]` for `u^k`) with
/// an inner series `u(s)` whose constant term is zero.
fn compose_in_zero_constant_series(outer_coeffs: &[f64], u: &PowerSeries) -> PowerSeries {
    assert!(
        u.coeff(0).abs() < 1e-30,
        "inner series must have zero constant term"
    );
    let n_terms = u.n_terms();
    let mut acc = PowerSeries::constant(outer_coeffs[0], n_terms);
    let mut u_power = PowerSeries::constant(1.0, n_terms);
    for &ck in outer_coeffs.iter().skip(1).take(n_terms - 1) {
        u_power = u_power.mul(u);
        acc = acc.add(&u_power.scale(ck));
    }
    acc
}

/// Moments of the driving-point admittance of the same load computed on a
/// lumped ladder discretization with `segments` sections (the discretization
/// used by the transient simulator: series R/L per section, shunt C split as
/// half-sections at both ends, `c_load` at the far end).
///
/// As `segments` grows this converges to
/// [`distributed_admittance_moments`]; the property tests check agreement.
///
/// # Panics
/// Panics if `segments == 0`, `n_moments` is 0 or larger than 8, or
/// `c_load < 0`.
pub fn ladder_admittance_moments(
    line: &RlcLine,
    c_load: f64,
    segments: usize,
    n_moments: usize,
) -> Vec<f64> {
    assert!(segments > 0, "need at least one segment");
    assert!(
        (1..=8).contains(&n_moments),
        "supported moment count is 1..=8"
    );
    assert!(c_load >= 0.0, "load capacitance must be non-negative");
    let n_terms = n_moments + 1;

    let rs = line.resistance() / segments as f64;
    let ls = line.inductance() / segments as f64;
    let cs = line.capacitance() / segments as f64;

    // Start from the far end: load capacitance plus the far half-section.
    let mut y = PowerSeries::linear(c_load + 0.5 * cs, n_terms);

    for k in 0..segments {
        // Series impedance of one section: Z = rs + s*ls.
        let mut z_coeffs = vec![0.0; n_terms];
        z_coeffs[0] = rs;
        if n_terms > 1 {
            z_coeffs[1] = ls;
        }
        let z = PowerSeries::new(z_coeffs);
        // Looking into the section: Y' = Y / (1 + Z*Y).
        let denom = PowerSeries::constant(1.0, n_terms).add(&z.mul(&y));
        y = y.div(&denom);
        // Shunt capacitance at the near side of the section: full section for
        // interior nodes, half section at the driving point.
        let shunt = if k + 1 == segments { 0.5 * cs } else { cs };
        y = y.add(&PowerSeries::linear(shunt, n_terms));
    }

    (1..=n_moments).map(|k| y.coeff(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::{ff, mm, nh, pf};

    fn paper_line() -> RlcLine {
        RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0))
    }

    #[test]
    fn first_moment_is_total_capacitance() {
        let line = paper_line();
        let cl = ff(20.0);
        let m = distributed_admittance_moments(&line, cl, 5);
        assert!(approx_eq(m[0], line.capacitance() + cl, 1e-9));
        let ml = ladder_admittance_moments(&line, cl, 50, 5);
        assert!(approx_eq(ml[0], line.capacitance() + cl, 1e-9));
    }

    #[test]
    fn second_moment_matches_open_ended_line_closed_form() {
        // For an open-ended uniform RC(L) line the second admittance moment
        // is -R C^2 / 3 (inductance does not enter until m3).
        let line = paper_line();
        let m = distributed_admittance_moments(&line, 0.0, 3);
        let expected = -line.resistance() * line.capacitance() * line.capacitance() / 3.0;
        assert!(
            approx_eq(m[1], expected, 1e-9),
            "m2 = {} vs {}",
            m[1],
            expected
        );
    }

    #[test]
    fn third_moment_contains_inductance_term() {
        // m3 for an open line: R^2 C^3 * 2/15 - L C^2 / 3.
        let line = paper_line();
        let m = distributed_admittance_moments(&line, 0.0, 3);
        let r = line.resistance();
        let c = line.capacitance();
        let l = line.inductance();
        let expected = 2.0 / 15.0 * r * r * c * c * c - l * c * c / 3.0;
        assert!(
            approx_eq(m[2], expected, 1e-9),
            "m3 = {} vs {}",
            m[2],
            expected
        );
    }

    #[test]
    fn ladder_converges_to_distributed() {
        let line = paper_line();
        let cl = ff(30.0);
        let exact = distributed_admittance_moments(&line, cl, 5);
        let coarse = ladder_admittance_moments(&line, cl, 10, 5);
        let fine = ladder_admittance_moments(&line, cl, 200, 5);
        for k in 0..5 {
            let err_coarse = (coarse[k] - exact[k]).abs() / exact[k].abs();
            let err_fine = (fine[k] - exact[k]).abs() / exact[k].abs();
            assert!(err_fine < 2e-3, "moment {k}: fine error {err_fine}");
            assert!(
                err_fine <= err_coarse + 1e-12,
                "refining the ladder must not increase the error (moment {k})"
            );
        }
    }

    #[test]
    fn load_capacitance_increases_low_order_moments() {
        let line = paper_line();
        let without = distributed_admittance_moments(&line, 0.0, 2);
        let with = distributed_admittance_moments(&line, ff(100.0), 2);
        assert!(with[0] > without[0]);
        // m2 is negative and becomes more negative with extra far-end load.
        assert!(with[1] < without[1]);
    }

    #[test]
    fn moment_signs_alternate_for_rc_line() {
        // For a pure RC line (inductance negligibly small) the admittance
        // moments alternate in sign: m1 > 0, m2 < 0, m3 > 0, ...
        let line = RlcLine::new(100.0, 1e-15, pf(1.0), mm(5.0));
        let m = distributed_admittance_moments(&line, 0.0, 5);
        assert!(m[0] > 0.0 && m[1] < 0.0 && m[2] > 0.0 && m[3] < 0.0 && m[4] > 0.0);
    }

    #[test]
    fn one_branch_tree_matches_distributed_exactly() {
        let line = paper_line();
        let cl = ff(20.0);
        let tree = rlc_interconnect::RlcTree::single_line(line, cl);
        let from_tree = tree_admittance_moments(&tree, 5);
        let from_line = distributed_admittance_moments(&line, cl, 5);
        // Bit-identical: both go through the same propagation step.
        assert_eq!(from_tree, from_line);
    }

    #[test]
    fn chained_uniform_branches_match_the_unsplit_line() {
        // A uniform line split into two half-length branches is the same
        // physical net; the moments must agree to rounding.
        let line = paper_line();
        let half = line.with_length(line.length() / 2.0);
        let cl = ff(30.0);
        let mut tree = rlc_interconnect::RlcTree::new();
        let first = tree.add_branch(None, half);
        let second = tree.add_branch(Some(first), half);
        tree.set_sink(second, "far", cl);

        let split = tree_admittance_moments(&tree, 5);
        let whole = distributed_admittance_moments(&line, cl, 5);
        for k in 0..5 {
            assert!(
                approx_eq(split[k], whole[k], 1e-9 * whole[k].abs().max(1e-40)),
                "moment {k}: {} vs {}",
                split[k],
                whole[k]
            );
        }
    }

    #[test]
    fn branching_tree_first_moment_is_total_capacitance() {
        let trunk = RlcLine::new(30.0, nh(2.0), pf(0.5), mm(2.0));
        let stub = RlcLine::new(20.0, nh(1.0), pf(0.3), mm(1.0));
        let mut tree = rlc_interconnect::RlcTree::new();
        let t = tree.add_branch(None, trunk);
        let l = tree.add_branch(Some(t), stub);
        let r = tree.add_branch(Some(t), stub);
        tree.set_sink(l, "rx0", ff(15.0));
        tree.set_sink(r, "rx1", ff(25.0));

        let m = tree_admittance_moments(&tree, 3);
        assert!(
            approx_eq(
                m[0],
                tree.total_capacitance(),
                1e-9 * tree.total_capacitance()
            ),
            "m1 = {} vs {}",
            m[0],
            tree.total_capacitance()
        );
        // Resistive shielding makes the second moment negative, as for lines.
        assert!(m[1] < 0.0);
    }

    #[test]
    fn rc_tree_moments_synthesize_a_pi_model() {
        // The O'Brien–Savarino pi synthesis must accept the moments of an
        // RC-dominated tree (the moments generalization the facade's
        // PiModelLoad::from_moments relies on).
        let trunk = RlcLine::new(300.0, nh(0.03), pf(0.8), mm(3.0));
        let stub = RlcLine::new(200.0, nh(0.02), pf(0.5), mm(2.0));
        let mut tree = rlc_interconnect::RlcTree::new();
        let t = tree.add_branch(None, trunk);
        let l = tree.add_branch(Some(t), stub);
        let r = tree.add_branch(Some(t), stub);
        tree.set_sink(l, "rx0", ff(20.0));
        tree.set_sink(r, "rx1", ff(20.0));

        let m = tree_admittance_moments(&tree, 3);
        let pi = crate::PiModel::from_moments(&m).unwrap();
        assert!(pi.c_near > 0.0 && pi.c_far > 0.0 && pi.resistance > 0.0);
        assert!(approx_eq(
            pi.total_capacitance(),
            tree.total_capacitance(),
            1e-9 * tree.total_capacitance()
        ));
    }

    #[test]
    fn open_rc_line_transfer_matches_sech_series() {
        // For an open-ended uniform RC line H(s) = 1/cosh(sqrt(sRC)) =
        // 1 - sRC/2 + 5(sRC)^2/24 - 61(sRC)^3/720 + ...
        let line = RlcLine::new(100.0, 1e-18, pf(1.0), mm(5.0));
        let tree = rlc_interconnect::RlcTree::single_line(line, 0.0);
        let rc = line.resistance() * line.capacitance();
        let h = tree_transfer_moments(&tree, "far", 3).unwrap();
        assert!(approx_eq(h[0], 1.0, 1e-12));
        assert!(approx_eq(h[1], -rc / 2.0, 1e-9), "h1 = {}", h[1]);
        assert!(approx_eq(h[2], 5.0 * rc * rc / 24.0, 1e-9), "h2 = {}", h[2]);
        assert!(
            approx_eq(h[3], -61.0 * rc * rc * rc / 720.0, 1e-9),
            "h3 = {}",
            h[3]
        );
    }

    #[test]
    fn split_line_transfer_matches_unsplit_line() {
        // Splitting a uniform line into two half-length cascaded branches is
        // the same physical net; the transfer moments must agree.
        let line = paper_line();
        let half = line.with_length(line.length() / 2.0);
        let cl = ff(30.0);
        let whole_tree = rlc_interconnect::RlcTree::single_line(line, cl);
        let mut split_tree = rlc_interconnect::RlcTree::new();
        let first = split_tree.add_branch(None, half);
        let second = split_tree.add_branch(Some(first), half);
        split_tree.set_sink(second, "far", cl);

        let whole = tree_transfer_moments(&whole_tree, "far", 4).unwrap();
        let split = tree_transfer_moments(&split_tree, "far", 4).unwrap();
        for k in 0..=4 {
            assert!(
                approx_eq(split[k], whole[k], 1e-9),
                "moment {k}: {} vs {}",
                split[k],
                whole[k]
            );
        }
    }

    #[test]
    fn transfer_first_moment_is_minus_elmore_delay() {
        // For an RC tree -h1 is the Elmore delay: sum over path resistances
        // times downstream capacitance. Check a two-sink RC tree by hand.
        let trunk = RlcLine::new(200.0, 1e-18, pf(0.4), mm(2.0));
        let stub = RlcLine::new(100.0, 1e-18, pf(0.2), mm(1.0));
        let mut tree = rlc_interconnect::RlcTree::new();
        let t = tree.add_branch(None, trunk);
        let a = tree.add_branch(Some(t), stub);
        let b = tree.add_branch(Some(t), stub);
        tree.set_sink(a, "rx0", ff(10.0));
        tree.set_sink(b, "rx1", ff(20.0));

        // Elmore to rx0: R_trunk (shared with everything downstream, with
        // the trunk's own distributed capacitance contributing C/2) plus
        // R_stub against its own downstream capacitance.
        let r_t = trunk.resistance();
        let c_t = trunk.capacitance();
        let r_s = stub.resistance();
        let c_s = stub.capacitance();
        let downstream_of_trunk = c_t / 2.0 + 2.0 * c_s + ff(10.0) + ff(20.0);
        let elmore = r_t * downstream_of_trunk + r_s * (c_s / 2.0 + ff(10.0));

        let h = tree_transfer_moments(&tree, "rx0", 2).unwrap();
        assert!(
            approx_eq(-h[1], elmore, 1e-9),
            "-h1 = {} vs Elmore {}",
            -h[1],
            elmore
        );
    }

    #[test]
    fn transfer_moments_unknown_sink_is_none() {
        let tree = rlc_interconnect::RlcTree::single_line(paper_line(), ff(10.0));
        assert!(tree_transfer_moments(&tree, "nope", 3).is_none());
        assert!(tree_transfer_moments(&tree, "far", 3).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_tree_rejected() {
        let _ = tree_admittance_moments(&rlc_interconnect::RlcTree::new(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn ladder_requires_segments() {
        let _ = ladder_admittance_moments(&paper_line(), 0.0, 0, 5);
    }

    #[test]
    #[should_panic(expected = "supported moment count")]
    fn too_many_moments_rejected() {
        let _ = distributed_admittance_moments(&paper_line(), 0.0, 9);
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use rlc_numeric::units::{mm, nh, pf};

    /// The lumped-ladder and distributed computations agree for any line
    /// in the paper's parameter range once the ladder is fine enough.
    #[test]
    fn ladder_and_distributed_agree() {
        for r in [20.0, 72.44, 149.0] {
            for l_nh in [1.0, 5.14, 7.9] {
                for c_pf in [0.3, 1.1, 1.9] {
                    for cl_ff in [0.0, 60.0, 199.0] {
                        let line = RlcLine::new(r, nh(l_nh), pf(c_pf), mm(5.0));
                        let exact = distributed_admittance_moments(&line, cl_ff * 1e-15, 5);
                        let ladder = ladder_admittance_moments(&line, cl_ff * 1e-15, 200, 5);
                        for k in 0..5 {
                            let scale = exact[k].abs().max(1e-40);
                            assert!(
                                ((ladder[k] - exact[k]) / scale).abs() < 1e-2,
                                "r={r} l={l_nh} c={c_pf} cl={cl_ff} moment {k}: {} vs {}",
                                ladder[k],
                                exact[k]
                            );
                        }
                    }
                }
            }
        }
    }

    /// m1 equals total capacitance for arbitrary loads.
    #[test]
    fn m1_is_total_capacitance() {
        for r in [20.0, 85.0, 149.0] {
            for l_nh in [1.0, 4.2, 7.9] {
                for c_pf in [0.3, 1.1, 1.9] {
                    for cl_ff in [1.0, 120.0, 499.0] {
                        let line = RlcLine::new(r, nh(l_nh), pf(c_pf), mm(3.0));
                        let m = distributed_admittance_moments(&line, cl_ff * 1e-15, 2);
                        let total = c_pf * 1e-12 + cl_ff * 1e-15;
                        assert!(
                            ((m[0] - total) / total).abs() < 1e-9,
                            "r={r} l={l_nh} c={c_pf} cl={cl_ff}"
                        );
                    }
                }
            }
        }
    }
}
