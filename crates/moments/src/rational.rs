//! The paper's rational driving-point admittance model
//! `Y(s) = (a1 s + a2 s^2 + a3 s^3) / (1 + b1 s + b2 s^2)` fitted to the
//! first five admittance moments, and its pole analysis.

use rlc_numeric::roots::quadratic_roots;
use rlc_numeric::Complex;

use crate::MomentError;

/// The two poles of the fitted admittance denominator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolePair {
    /// Two real poles `s1`, `s2` (both negative for passive loads).
    Real {
        /// First pole (1/s).
        s1: f64,
        /// Second pole (1/s).
        s2: f64,
    },
    /// A complex-conjugate pair `alpha ± j·beta`.
    Complex {
        /// Real part (1/s), negative for passive loads.
        alpha: f64,
        /// Imaginary part magnitude (1/s), positive.
        beta: f64,
    },
}

impl PolePair {
    /// Both poles as complex numbers (conjugate order for the complex case).
    pub fn as_complex(&self) -> (Complex, Complex) {
        match *self {
            PolePair::Real { s1, s2 } => (Complex::real(s1), Complex::real(s2)),
            PolePair::Complex { alpha, beta } => {
                (Complex::new(alpha, beta), Complex::new(alpha, -beta))
            }
        }
    }

    /// Whether the fitted load is stable (all poles strictly in the left half
    /// plane).
    pub fn is_stable(&self) -> bool {
        match *self {
            PolePair::Real { s1, s2 } => s1 < 0.0 && s2 < 0.0,
            PolePair::Complex { alpha, .. } => alpha < 0.0,
        }
    }
}

/// The fitted rational admittance (Equation 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RationalAdmittance {
    /// Numerator coefficient of `s` — equals the total load capacitance.
    pub a1: f64,
    /// Numerator coefficient of `s^2`.
    pub a2: f64,
    /// Numerator coefficient of `s^3`.
    pub a3: f64,
    /// Denominator coefficient of `s`.
    pub b1: f64,
    /// Denominator coefficient of `s^2`.
    pub b2: f64,
}

impl RationalAdmittance {
    /// Fits the five coefficients to the first five admittance moments
    /// (`moments[k]` is the coefficient of `s^(k+1)`).
    ///
    /// Matching `(a1 s + a2 s^2 + a3 s^3) = (1 + b1 s + b2 s^2) · Σ m_k s^k`
    /// order by order gives
    ///
    /// ```text
    /// a1 = m1
    /// a2 = m2 + b1 m1
    /// a3 = m3 + b1 m2 + b2 m1
    /// 0  = m4 + b1 m3 + b2 m2
    /// 0  = m5 + b1 m4 + b2 m3
    /// ```
    ///
    /// # Errors
    /// Returns [`MomentError::NotEnoughMoments`] when fewer than five moments
    /// are supplied and [`MomentError::DegenerateLoad`] when the 2×2 system
    /// for `b1`, `b2` is singular (for example a purely capacitive load).
    pub fn from_moments(moments: &[f64]) -> Result<Self, MomentError> {
        if moments.len() < 5 {
            return Err(MomentError::NotEnoughMoments {
                required: 5,
                supplied: moments.len(),
            });
        }
        let (m1, m2, m3, m4, m5) = (moments[0], moments[1], moments[2], moments[3], moments[4]);
        // Solve [m3 m2; m4 m3] [b1; b2] = [-m4; -m5].
        let det = m3 * m3 - m2 * m4;
        let scale = (m3 * m3).abs().max((m2 * m4).abs()).max(1e-300);
        if det.abs() < 1e-12 * scale {
            return Err(MomentError::DegenerateLoad(
                "moment matrix for b1/b2 is singular (load has fewer than two observable poles)"
                    .to_string(),
            ));
        }
        let b1 = (-m4 * m3 + m5 * m2) / det;
        let b2 = (-m5 * m3 + m4 * m4) / det;
        let a1 = m1;
        let a2 = m2 + b1 * m1;
        let a3 = m3 + b1 * m2 + b2 * m1;
        Ok(RationalAdmittance { a1, a2, a3, b1, b2 })
    }

    /// Builds a rational admittance directly from its five coefficients,
    /// for loads whose exact admittance is already known in rational form
    /// (a lumped capacitor is `Y(s) = C s`; an RC pi model is
    /// `Y(s) = ((C1+C2) s + R C1 C2 s²) / (1 + R C2 s)`). This is how the
    /// timing-engine facade's non-line load models enter the paper's flow
    /// without a (possibly degenerate) moment fit.
    ///
    /// # Errors
    /// Returns [`MomentError::DegenerateLoad`] when the coefficients are not
    /// finite, `a1` (the total capacitance) is not positive, a denominator
    /// coefficient is negative, or the numerator degree exceeds the
    /// denominator degree by more than one (`a3 != 0` with `b2 == 0`, or
    /// `a2 != 0` with `b1 == b2 == 0`) — an improper admittance no physical
    /// load produces.
    pub fn from_coefficients(
        a1: f64,
        a2: f64,
        a3: f64,
        b1: f64,
        b2: f64,
    ) -> Result<Self, MomentError> {
        let all_finite = [a1, a2, a3, b1, b2].iter().all(|v| v.is_finite());
        if !all_finite || a1 <= 0.0 {
            return Err(MomentError::DegenerateLoad(
                "admittance coefficients must be finite with a positive total capacitance a1"
                    .to_string(),
            ));
        }
        if b1 < 0.0 || b2 < 0.0 {
            return Err(MomentError::DegenerateLoad(
                "denominator coefficients b1, b2 must be non-negative for a passive load"
                    .to_string(),
            ));
        }
        let improper = (b2 == 0.0 && a3 != 0.0) || (b1 == 0.0 && b2 == 0.0 && a2 != 0.0);
        if improper {
            return Err(MomentError::DegenerateLoad(
                "numerator degree exceeds denominator degree + 1: improper admittance \
                 (more zeros than poles + 1)"
                    .to_string(),
            ));
        }
        Ok(RationalAdmittance { a1, a2, a3, b1, b2 })
    }

    /// The exact admittance of a lumped capacitor, `Y(s) = C s`.
    ///
    /// # Errors
    /// Returns [`MomentError::DegenerateLoad`] if `c` is not positive.
    pub fn lumped(c: f64) -> Result<Self, MomentError> {
        Self::from_coefficients(c, 0.0, 0.0, 0.0, 0.0)
    }

    /// Total capacitance of the load (= the first admittance moment).
    pub fn total_capacitance(&self) -> f64 {
        self.a1
    }

    /// Number of poles of the admittance: 2 in the general fitted case,
    /// 1 for a single-time-constant (RC pi) load, 0 for a lumped capacitor.
    /// The charge-matching formulas in `rlc-ceff` dispatch on this.
    pub fn pole_count(&self) -> usize {
        if self.b2 != 0.0 {
            2
        } else if self.b1 != 0.0 {
            1
        } else {
            0
        }
    }

    /// Evaluates `Y(s)` at a complex frequency.
    pub fn eval(&self, s: Complex) -> Complex {
        let num = s * (Complex::real(self.a1) + s * (Complex::real(self.a2) + s * self.a3));
        let den = Complex::ONE + s * (Complex::real(self.b1) + s * self.b2);
        num / den
    }

    /// The admittance moments reproduced by the fit (useful for round-trip
    /// checks); returns `n` moments.
    pub fn moments(&self, n: usize) -> Vec<f64> {
        // Expand (a1 s + a2 s^2 + a3 s^3) * (1 + b1 s + b2 s^2)^{-1}.
        let mut inv = vec![0.0; n + 1];
        inv[0] = 1.0;
        for k in 1..=n {
            let mut acc = 0.0;
            if k >= 1 {
                acc += self.b1 * inv[k - 1];
            }
            if k >= 2 {
                acc += self.b2 * inv[k - 2];
            }
            inv[k] = -acc;
        }
        let a = [0.0, self.a1, self.a2, self.a3];
        (1..=n)
            .map(|k| {
                let mut acc = 0.0;
                for (j, &aj) in a.iter().enumerate().take(4) {
                    if j <= k {
                        acc += aj * inv[k - j];
                    }
                }
                acc
            })
            .collect()
    }

    /// Poles of the admittance: the roots of `b2 s^2 + b1 s + 1 = 0`
    /// (equivalently the paper's `s^2 + (b1/b2) s + 1/b2 = 0`).
    ///
    /// # Panics
    /// Panics if `b2` is zero (the fit produced a single-pole load; this does
    /// not happen for the RLC lines handled by this workspace).
    pub fn poles(&self) -> PolePair {
        assert!(self.b2 != 0.0, "admittance fit has no second-order pole");
        let (r1, r2) = quadratic_roots(self.b2, self.b1, 1.0);
        if r1.im == 0.0 && r2.im == 0.0 {
            PolePair::Real {
                s1: r1.re,
                s2: r2.re,
            }
        } else {
            PolePair::Complex {
                alpha: r1.re,
                beta: r1.im.abs(),
            }
        }
    }

    /// Whether the fitted load's poles are real (heavily damped load) rather
    /// than a complex pair (ringing / inductance-dominated load).
    pub fn has_real_poles(&self) -> bool {
        matches!(self.poles(), PolePair::Real { .. })
    }
}

impl std::fmt::Display for RationalAdmittance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Y(s) = ({:.4e} s + {:.4e} s^2 + {:.4e} s^3) / (1 + {:.4e} s + {:.4e} s^2)",
            self.a1, self.a2, self.a3, self.b1, self.b2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driving_point::distributed_admittance_moments;
    use rlc_interconnect::RlcLine;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::{ff, mm, nh, pf};

    fn paper_line_fit() -> RationalAdmittance {
        let line = RlcLine::new(72.44, nh(5.14), pf(1.10), mm(5.0));
        let m = distributed_admittance_moments(&line, ff(10.0), 5);
        RationalAdmittance::from_moments(&m).unwrap()
    }

    #[test]
    fn fit_reproduces_the_matched_moments() {
        let line = RlcLine::new(101.3, nh(7.1), pf(1.54), mm(7.0));
        let m = distributed_admittance_moments(&line, ff(15.0), 5);
        let fit = RationalAdmittance::from_moments(&m).unwrap();
        let back = fit.moments(5);
        for k in 0..5 {
            assert!(
                approx_eq(back[k], m[k], 1e-6),
                "moment {k}: {} vs {}",
                back[k],
                m[k]
            );
        }
    }

    #[test]
    fn a1_is_total_capacitance() {
        let fit = paper_line_fit();
        assert!(approx_eq(fit.total_capacitance(), 1.10e-12 + 10e-15, 1e-6));
    }

    #[test]
    fn poles_are_stable() {
        let fit = paper_line_fit();
        assert!(fit.poles().is_stable());
    }

    #[test]
    fn rc_dominated_line_has_real_poles_and_rlc_line_can_ring() {
        // Heavily resistive line: poles must be real.
        let rc_line = RlcLine::new(500.0, nh(0.5), pf(1.5), mm(5.0));
        let m = distributed_admittance_moments(&rc_line, 0.0, 5);
        let fit = RationalAdmittance::from_moments(&m).unwrap();
        assert!(fit.has_real_poles(), "{fit}");

        // Low-loss, high-inductance line: complex poles.
        let lc_line = RlcLine::new(20.0, nh(6.0), pf(1.0), mm(5.0));
        let m = distributed_admittance_moments(&lc_line, 0.0, 5);
        let fit = RationalAdmittance::from_moments(&m).unwrap();
        assert!(!fit.has_real_poles(), "{fit}");
        assert!(fit.poles().is_stable());
    }

    #[test]
    fn eval_matches_low_frequency_capacitor_behaviour() {
        let fit = paper_line_fit();
        // At low frequency Y(jw) ~ jw * Ctotal: the conductive (real) part is
        // second order in w and therefore small relative to the susceptance.
        let w = 1e6;
        let y = fit.eval(Complex::new(0.0, w));
        assert!(y.re.abs() < 1e-3 * y.im.abs());
        assert!(approx_eq(y.im, w * fit.a1, 1e-3));
    }

    #[test]
    fn errors_for_bad_inputs() {
        assert!(matches!(
            RationalAdmittance::from_moments(&[1.0, 2.0]),
            Err(MomentError::NotEnoughMoments { .. })
        ));
        // A pure capacitor: m1 = C, all higher moments zero -> degenerate.
        assert!(matches!(
            RationalAdmittance::from_moments(&[1e-12, 0.0, 0.0, 0.0, 0.0]),
            Err(MomentError::DegenerateLoad(_))
        ));
    }

    #[test]
    fn pole_pair_helpers() {
        let real = PolePair::Real { s1: -1.0, s2: -2.0 };
        assert!(real.is_stable());
        let (p1, p2) = real.as_complex();
        assert_eq!(p1.im, 0.0);
        assert_eq!(p2.re, -2.0);
        let cplx = PolePair::Complex {
            alpha: -3.0,
            beta: 4.0,
        };
        assert!(cplx.is_stable());
        let (p1, p2) = cplx.as_complex();
        assert_eq!(p1.im, 4.0);
        assert_eq!(p2.im, -4.0);
        assert!(!PolePair::Real { s1: 1.0, s2: -1.0 }.is_stable());
    }

    #[test]
    fn display_contains_all_coefficients() {
        let s = paper_line_fit().to_string();
        assert!(s.contains("s^3"));
        assert!(s.contains("s^2"));
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use crate::driving_point::distributed_admittance_moments;
    use rlc_interconnect::RlcLine;
    use rlc_numeric::units::{mm, nh, pf};

    /// Over the paper's parameter range the fit always exists, keeps the
    /// total capacitance as its first coefficient and reproduces the
    /// matched moments. (Stability is *not* asserted over the whole
    /// range: for strongly resistive lines the two-pole Padé fit of a
    /// distributed line can produce a right-half-plane pole, which is the
    /// well-known AWE non-passivity issue; the modelling flow screens
    /// such loads into the RC path.)
    #[test]
    fn fit_exists_and_roundtrips() {
        for r in [20.0, 55.0, 110.0, 199.0] {
            for l_nh in [1.0, 3.3, 5.14, 7.9] {
                for c_pf in [0.3, 1.1, 1.9] {
                    for cl_ff in [0.0, 40.0, 199.0] {
                        let line = RlcLine::new(r, nh(l_nh), pf(c_pf), mm(5.0));
                        let m = distributed_admittance_moments(&line, cl_ff * 1e-15, 5);
                        let fit = RationalAdmittance::from_moments(&m).unwrap();
                        assert!(fit.a1 > 0.0);
                        let back = fit.moments(5);
                        for k in 0..5 {
                            let scale = m[k].abs().max(1e-40);
                            assert!(
                                ((back[k] - m[k]) / scale).abs() < 1e-6,
                                "r={r} l={l_nh} c={c_pf} cl={cl_ff} moment {k}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// In the inductance-dominated regime the paper actually applies the
    /// two-ramp model to (low-loss lines comparable to its Table 1 cases)
    /// the fitted poles are stable.
    #[test]
    fn fit_is_stable_for_inductive_lines() {
        for z0 in [50.0, 68.0, 89.0] {
            for tof_ps in [40.0, 75.0, 119.0] {
                for damping in [0.2, 0.5, 0.74] {
                    for cl_ff in [0.0, 10.0, 49.0] {
                        // Construct the line from its wave parameters: Z0,
                        // time of flight, and attenuation R/(2 Z0).
                        let l_total = z0 * tof_ps * 1e-12;
                        let c_total = tof_ps * 1e-12 / z0;
                        let r_total = damping * 2.0 * z0;
                        let line = RlcLine::new(r_total, l_total, c_total, mm(5.0));
                        let m = distributed_admittance_moments(&line, cl_ff * 1e-15, 5);
                        let fit = RationalAdmittance::from_moments(&m).unwrap();
                        assert!(
                            fit.poles().is_stable(),
                            "z0={z0} tof={tof_ps} damping={damping} cl={cl_ff}: {fit}"
                        );
                    }
                }
            }
        }
    }
}
