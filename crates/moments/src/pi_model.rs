//! Classic RC reduced-order baselines: the O'Brien–Savarino pi model
//! synthesized from three admittance moments, and a Qian/Pillage-style single
//! effective capacitance computed from it by charge matching over a ramp.
//!
//! The paper points out that a pi model *cannot* be synthesized once
//! inductance matters (the third moment changes sign), which is exactly why
//! it keeps the raw rational admittance instead. These baselines are included
//! to reproduce that observation and to serve as the RC comparison point.

use crate::MomentError;

/// An RC pi model: `c_near` at the driving point, series `resistance`, and
/// `c_far` at the far side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiModel {
    /// Near-end capacitance (F).
    pub c_near: f64,
    /// Series resistance (ohm).
    pub resistance: f64,
    /// Far-end capacitance (F).
    pub c_far: f64,
}

impl PiModel {
    /// Synthesizes the pi model from the first three driving-point admittance
    /// moments (O'Brien–Savarino):
    ///
    /// ```text
    /// c_far = m2^2 / m3,   resistance = -m3^2 / m2^3,   c_near = m1 - c_far
    /// ```
    ///
    /// # Errors
    /// Returns [`MomentError::NotEnoughMoments`] for fewer than three moments
    /// and [`MomentError::DegenerateLoad`] when the moments cannot be realized
    /// as a (positive-element) RC pi — which is precisely what happens for
    /// inductance-dominated loads.
    pub fn from_moments(moments: &[f64]) -> Result<Self, MomentError> {
        if moments.len() < 3 {
            return Err(MomentError::NotEnoughMoments {
                required: 3,
                supplied: moments.len(),
            });
        }
        let (m1, m2, m3) = (moments[0], moments[1], moments[2]);
        if m2 >= 0.0 || m3 == 0.0 {
            return Err(MomentError::DegenerateLoad(
                "second moment must be negative and third moment non-zero for an RC pi".into(),
            ));
        }
        let c_far = m2 * m2 / m3;
        let resistance = -(m3 * m3) / (m2 * m2 * m2);
        let c_near = m1 - c_far;
        if !(c_far > 0.0 && resistance > 0.0 && c_near >= 0.0) {
            return Err(MomentError::DegenerateLoad(format!(
                "pi synthesis produced non-physical elements (c_near={c_near:.3e}, R={resistance:.3e}, c_far={c_far:.3e}); \
                 the load is not RC-realizable"
            )));
        }
        Ok(PiModel {
            c_near,
            resistance,
            c_far,
        })
    }

    /// Total capacitance of the pi model.
    pub fn total_capacitance(&self) -> f64 {
        self.c_near + self.c_far
    }

    /// The exact rational driving-point admittance of the pi network:
    ///
    /// ```text
    /// Y(s) = s C_near + s C_far / (1 + s R C_far)
    ///      = ((C_near + C_far) s + R C_near C_far s²) / (1 + R C_far s)
    /// ```
    ///
    /// This lets a pi load enter the paper's charge-matching flow directly,
    /// without a moment fit (which is degenerate for single-pole loads).
    pub fn admittance(&self) -> crate::RationalAdmittance {
        crate::RationalAdmittance::from_coefficients(
            self.c_near + self.c_far,
            self.resistance * self.c_near * self.c_far,
            0.0,
            self.resistance * self.c_far,
            0.0,
        )
        .expect("a physical pi model always has a valid rational admittance")
    }

    /// First three admittance moments of the pi model (for round-trip tests).
    pub fn moments(&self) -> [f64; 3] {
        let m1 = self.c_near + self.c_far;
        let m2 = -self.resistance * self.c_far * self.c_far;
        let m3 = self.resistance * self.resistance * self.c_far * self.c_far * self.c_far;
        [m1, m2, m3]
    }
}

/// Qian/Pillage-style single effective capacitance for an RC pi load driven
/// by a saturated ramp, found by equating the charge delivered over the full
/// output transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcCeffBaseline {
    /// The pi model being reduced.
    pub pi: PiModel,
}

impl RcCeffBaseline {
    /// Creates the baseline from a pi model.
    pub fn new(pi: PiModel) -> Self {
        RcCeffBaseline { pi }
    }

    /// Effective capacitance for an output ramp of duration `ramp_time`
    /// (0 → 100 %):
    ///
    /// ```text
    /// Ceff = C_near + C_far * [1 - (R C_far / T) (1 - e^{-T / (R C_far)})]
    /// ```
    ///
    /// For very fast ramps the far capacitance is fully shielded
    /// (`Ceff → C_near`); for slow ramps `Ceff → C_near + C_far`.
    ///
    /// # Panics
    /// Panics if `ramp_time <= 0`.
    pub fn ceff_for_ramp(&self, ramp_time: f64) -> f64 {
        assert!(ramp_time > 0.0, "ramp time must be positive");
        let tau = self.pi.resistance * self.pi.c_far;
        if tau == 0.0 {
            return self.pi.total_capacitance();
        }
        let x = ramp_time / tau;
        let shield = 1.0 - (1.0 - (-x).exp()) / x;
        self.pi.c_near + self.pi.c_far * shield
    }

    /// Fixed-point iteration of the effective capacitance against a cell
    /// table: `ramp_time_of(ceff)` must return the driver's output ramp time
    /// (0 → 100 %) when loaded with `ceff`. Starts from the total capacitance,
    /// as the paper prescribes. Returns `(ceff, ramp_time, iterations)`.
    pub fn iterate<F: FnMut(f64) -> f64>(
        &self,
        mut ramp_time_of: F,
        rel_tol: f64,
        max_iterations: usize,
    ) -> (f64, f64, usize) {
        let mut ceff = self.pi.total_capacitance();
        let mut ramp = ramp_time_of(ceff);
        for it in 1..=max_iterations {
            let next = self.ceff_for_ramp(ramp);
            let change = (next - ceff).abs() / ceff.max(1e-30);
            ceff = next;
            ramp = ramp_time_of(ceff);
            if change < rel_tol {
                return (ceff, ramp, it);
            }
        }
        (ceff, ramp, max_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driving_point::distributed_admittance_moments;
    use rlc_interconnect::RlcLine;
    use rlc_numeric::approx_eq;
    use rlc_numeric::units::{mm, nh, pf, ps};

    fn rc_dominated_line() -> RlcLine {
        // Narrow, long, resistive line: inductance negligible.
        RlcLine::new(400.0, nh(0.05), pf(1.2), mm(6.0))
    }

    #[test]
    fn pi_model_roundtrips_its_own_moments() {
        let m = distributed_admittance_moments(&rc_dominated_line(), 20e-15, 3);
        let pi = PiModel::from_moments(&m).unwrap();
        let back = pi.moments();
        for k in 0..3 {
            assert!(
                approx_eq(back[k], m[k], 1e-9),
                "moment {k}: {} vs {}",
                back[k],
                m[k]
            );
        }
        assert!(approx_eq(pi.total_capacitance(), m[0], 1e-12));
    }

    #[test]
    fn pi_synthesis_fails_for_inductive_load() {
        // The paper's key observation (citing Kashyap/Krauter): with enough
        // inductance the three-moment pi model is no longer realizable.
        let inductive = RlcLine::new(20.0, nh(7.0), pf(1.0), mm(5.0));
        let m = distributed_admittance_moments(&inductive, 0.0, 3);
        assert!(PiModel::from_moments(&m).is_err());
    }

    #[test]
    fn ceff_limits_for_fast_and_slow_ramps() {
        let pi = PiModel {
            c_near: 0.2e-12,
            resistance: 100.0,
            c_far: 0.8e-12,
        };
        let base = RcCeffBaseline::new(pi);
        // Very fast ramp: far cap fully shielded.
        let fast = base.ceff_for_ramp(ps(0.1));
        assert!(fast < 0.22e-12, "fast ceff = {fast:.3e}");
        // Very slow ramp: full capacitance visible.
        let slow = base.ceff_for_ramp(ps(1e6));
        assert!(approx_eq(slow, 1.0e-12, 1e-3));
        // Monotonic in between.
        assert!(base.ceff_for_ramp(ps(50.0)) < base.ceff_for_ramp(ps(500.0)));
    }

    #[test]
    fn iteration_converges_with_a_table_like_closure() {
        let pi = PiModel {
            c_near: 0.3e-12,
            resistance: 150.0,
            c_far: 0.9e-12,
        };
        let base = RcCeffBaseline::new(pi);
        // A simple "cell table": ramp time grows affinely with load.
        let (ceff, ramp, iters) = base.iterate(|c| ps(20.0) + c / 1e-12 * ps(120.0), 1e-9, 100);
        assert!(iters < 100);
        assert!(ceff > pi.c_near && ceff < pi.total_capacitance());
        // Self-consistency: the returned ramp corresponds to the returned ceff.
        assert!(approx_eq(base.ceff_for_ramp(ramp), ceff, 1e-6));
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            PiModel::from_moments(&[1e-12]),
            Err(MomentError::NotEnoughMoments { .. })
        ));
        assert!(PiModel::from_moments(&[1e-12, 1e-24, 1e-36]).is_err());
    }
}
