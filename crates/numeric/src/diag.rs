//! Structured diagnostics shared across the workspace.
//!
//! A [`Diagnostic`] is one finding from a static analysis pass — a lint over
//! a netlist, a validation failure in a variation specification — carrying a
//! stable machine-readable code, a [`Severity`], a locus (the node or element
//! the finding is anchored to) and a human-readable message. Keeping the type
//! in `rlc-numeric` lets every layer (SPICE kernel, lint pass, facade,
//! service protocol) speak the same diagnostic without cyclic dependencies.

use std::fmt;

/// How serious a [`Diagnostic`] is.
///
/// Ordered: `Info < Warning < Error`, so "the worst finding in a list" is
/// simply `iter().map(|d| d.severity).max()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing is wrong, but something non-obvious happened
    /// (e.g. a kernel degraded to a slower but safer path).
    Info,
    /// Suspicious but not certainly fatal: the analysis can proceed, the
    /// result may be meaningless.
    Warning,
    /// The construct is certainly broken; running an analysis over it would
    /// fail or silently produce garbage.
    Error,
}

impl Severity {
    /// Short lowercase label (`"info"`, `"warning"`, `"error"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding from a static analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// Stable machine-readable code (e.g. `"L001"`). Codes are append-only:
    /// once shipped, a code keeps its meaning forever.
    pub code: String,
    /// How serious the finding is.
    pub severity: Severity,
    /// The node or element the finding is anchored to (e.g. a node name,
    /// an element name, a field path). Empty when the finding is global.
    pub locus: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        code: impl Into<String>,
        severity: Severity,
        locus: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.into(),
            severity,
            locus: locus.into(),
            message: message.into(),
        }
    }

    /// Shorthand for an [`Severity::Error`] diagnostic.
    pub fn error(
        code: impl Into<String>,
        locus: impl Into<String>,
        msg: impl Into<String>,
    ) -> Self {
        Diagnostic::new(code, Severity::Error, locus, msg)
    }

    /// Shorthand for a [`Severity::Warning`] diagnostic.
    pub fn warning(
        code: impl Into<String>,
        locus: impl Into<String>,
        msg: impl Into<String>,
    ) -> Self {
        Diagnostic::new(code, Severity::Warning, locus, msg)
    }

    /// Shorthand for an [`Severity::Info`] diagnostic.
    pub fn info(code: impl Into<String>, locus: impl Into<String>, msg: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Info, locus, msg)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.locus.is_empty() {
            write!(f, "{} [{}]: {}", self.severity, self.code, self.message)
        } else {
            write!(
                f,
                "{} [{}] at `{}`: {}",
                self.severity, self.code, self.locus, self.message
            )
        }
    }
}

/// The worst severity present in a list of diagnostics, or `None` for an
/// empty (clean) list.
pub fn worst_severity(diagnostics: &[Diagnostic]) -> Option<Severity> {
    diagnostics.iter().map(|d| d.severity).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_code_and_locus() {
        let d = Diagnostic::error("L001", "n3", "node is floating");
        assert_eq!(d.to_string(), "error [L001] at `n3`: node is floating");
        let global = Diagnostic::info("L030", "", "degraded");
        assert_eq!(global.to_string(), "info [L030]: degraded");
    }

    #[test]
    fn worst_severity_picks_max() {
        assert_eq!(worst_severity(&[]), None);
        let list = vec![
            Diagnostic::info("L030", "", "a"),
            Diagnostic::error("L001", "n", "b"),
            Diagnostic::warning("L003", "r", "c"),
        ];
        assert_eq!(worst_severity(&list), Some(Severity::Error));
    }
}
