//! Truncated power series arithmetic.
//!
//! Moment analysis of a driving-point admittance is exactly power-series
//! arithmetic in the Laplace variable `s` truncated at a fixed order: the
//! moments of `Y(s)` are its Maclaurin coefficients. Propagating moments
//! through a ladder of series impedances and shunt admittances only needs
//! addition, multiplication and reciprocals of such truncated series, which
//! this module provides.

use std::fmt;

/// A power series `c0 + c1 s + c2 s^2 + ...` truncated after a fixed number
/// of terms.
///
/// All binary operations require both operands to have the same truncation
/// order and panic otherwise; this catches accidental mixing of series built
/// for different moment counts.
///
/// ```
/// use rlc_numeric::PowerSeries;
/// // 1/(1 - s) = 1 + s + s^2 + ... truncated at order 3
/// let one = PowerSeries::constant(1.0, 4);
/// let denom = PowerSeries::new(vec![1.0, -1.0, 0.0, 0.0]);
/// let q = one.div(&denom);
/// assert_eq!(q.coeffs(), &[1.0, 1.0, 1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSeries {
    coeffs: Vec<f64>,
}

impl PowerSeries {
    /// Creates a series from coefficients in ascending power order. The
    /// truncation order is `coeffs.len() - 1`.
    ///
    /// # Panics
    /// Panics if `coeffs` is empty.
    pub fn new(coeffs: Vec<f64>) -> Self {
        assert!(!coeffs.is_empty(), "power series needs at least one term");
        Self { coeffs }
    }

    /// A constant series with `n_terms` stored coefficients.
    pub fn constant(value: f64, n_terms: usize) -> Self {
        assert!(n_terms > 0);
        let mut coeffs = vec![0.0; n_terms];
        coeffs[0] = value;
        Self { coeffs }
    }

    /// The zero series with `n_terms` stored coefficients.
    pub fn zero(n_terms: usize) -> Self {
        Self::constant(0.0, n_terms)
    }

    /// The series `value * s` with `n_terms` stored coefficients.
    ///
    /// # Panics
    /// Panics if `n_terms < 2`.
    pub fn linear(value: f64, n_terms: usize) -> Self {
        assert!(n_terms >= 2, "need at least two terms for a linear series");
        let mut coeffs = vec![0.0; n_terms];
        coeffs[1] = value;
        Self { coeffs }
    }

    /// Number of stored coefficients (truncation order + 1).
    pub fn n_terms(&self) -> usize {
        self.coeffs.len()
    }

    /// Stored coefficients in ascending power order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Coefficient of `s^k`.
    ///
    /// # Panics
    /// Panics if `k` exceeds the truncation order.
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs[k]
    }

    fn assert_same_order(&self, other: &Self) {
        assert_eq!(
            self.coeffs.len(),
            other.coeffs.len(),
            "power series truncation orders differ"
        );
    }

    /// Term-by-term sum.
    pub fn add(&self, other: &Self) -> Self {
        self.assert_same_order(other);
        Self {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Term-by-term difference.
    pub fn sub(&self, other: &Self) -> Self {
        self.assert_same_order(other);
        Self {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Scales every coefficient.
    pub fn scale(&self, k: f64) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
        }
    }

    /// Cauchy product truncated at the common order.
    pub fn mul(&self, other: &Self) -> Self {
        self.assert_same_order(other);
        let n = self.coeffs.len();
        let mut coeffs = vec![0.0; n];
        for i in 0..n {
            if self.coeffs[i] == 0.0 {
                continue;
            }
            for j in 0..n - i {
                coeffs[i + j] += self.coeffs[i] * other.coeffs[j];
            }
        }
        Self { coeffs }
    }

    /// Multiplicative inverse `1/self` as a truncated series.
    ///
    /// # Panics
    /// Panics if the constant term is zero (the reciprocal would not be a
    /// power series).
    pub fn recip(&self) -> Self {
        let c0 = self.coeffs[0];
        assert!(
            c0 != 0.0,
            "reciprocal of a power series with zero constant term"
        );
        let n = self.coeffs.len();
        let mut out = vec![0.0; n];
        out[0] = 1.0 / c0;
        for k in 1..n {
            // c0 * out[k] + sum_{i=1..=k} self[i] * out[k-i] = 0
            let mut acc = 0.0;
            for i in 1..=k {
                acc += self.coeffs[i] * out[k - i];
            }
            out[k] = -acc / c0;
        }
        Self { coeffs: out }
    }

    /// Series division `self / other`.
    ///
    /// # Panics
    /// Panics if `other` has a zero constant term.
    pub fn div(&self, other: &Self) -> Self {
        self.mul(&other.recip())
    }

    /// Multiplies the series by `s` (shifts coefficients up by one), dropping
    /// the highest-order term.
    pub fn mul_s(&self) -> Self {
        let n = self.coeffs.len();
        let mut coeffs = vec![0.0; n];
        coeffs[1..n].copy_from_slice(&self.coeffs[..n - 1]);
        Self { coeffs }
    }

    /// Evaluates the truncated series at a real point.
    pub fn eval(&self, s: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * s + c)
    }
}

impl fmt::Display for PowerSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .map(|(k, c)| format!("{c:+.6e} s^{k}"))
            .collect();
        write!(f, "{}", terms.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn constant_and_linear_constructors() {
        let c = PowerSeries::constant(3.0, 4);
        assert_eq!(c.coeffs(), &[3.0, 0.0, 0.0, 0.0]);
        let l = PowerSeries::linear(2.5, 3);
        assert_eq!(l.coeffs(), &[0.0, 2.5, 0.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = PowerSeries::new(vec![1.0, 2.0, 3.0]);
        let b = PowerSeries::new(vec![0.5, -1.0, 4.0]);
        assert_eq!(a.add(&b).coeffs(), &[1.5, 1.0, 7.0]);
        assert_eq!(a.sub(&b).coeffs(), &[0.5, 3.0, -1.0]);
        assert_eq!(a.scale(2.0).coeffs(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn multiplication_truncates() {
        // (1 + s)^2 = 1 + 2s + s^2, truncated at order 2
        let a = PowerSeries::new(vec![1.0, 1.0, 0.0]);
        let sq = a.mul(&a);
        assert_eq!(sq.coeffs(), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn reciprocal_of_one_minus_s_is_geometric() {
        let d = PowerSeries::new(vec![1.0, -1.0, 0.0, 0.0, 0.0]);
        let r = d.recip();
        assert_eq!(r.coeffs(), &[1.0, 1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn recip_roundtrip() {
        let a = PowerSeries::new(vec![2.0, 0.3, -0.7, 0.05, 1.2, -0.4]);
        let prod = a.mul(&a.recip());
        assert!(approx_eq(prod.coeff(0), 1.0, 1e-12));
        for k in 1..a.n_terms() {
            assert!(prod.coeff(k).abs() < 1e-12, "k={k}: {}", prod.coeff(k));
        }
    }

    #[test]
    fn division_matches_hand_computed_rational_expansion() {
        // (s + 2 s^2) / (1 + s) = s + s^2 - s^3 + s^4 ...
        let num = PowerSeries::new(vec![0.0, 1.0, 2.0, 0.0, 0.0]);
        let den = PowerSeries::new(vec![1.0, 1.0, 0.0, 0.0, 0.0]);
        let q = num.div(&den);
        assert!(approx_eq(q.coeff(1), 1.0, 1e-12));
        assert!(approx_eq(q.coeff(2), 1.0, 1e-12));
        assert!(approx_eq(q.coeff(3), -1.0, 1e-12));
        assert!(approx_eq(q.coeff(4), 1.0, 1e-12));
    }

    #[test]
    fn mul_s_shifts_up() {
        let a = PowerSeries::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(a.mul_s().coeffs(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "truncation orders differ")]
    fn mismatched_orders_panic() {
        let a = PowerSeries::new(vec![1.0, 2.0]);
        let b = PowerSeries::new(vec![1.0, 2.0, 3.0]);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "zero constant term")]
    fn recip_of_pure_s_panics() {
        let a = PowerSeries::new(vec![0.0, 1.0]);
        let _ = a.recip();
    }

    #[test]
    fn eval_is_truncated_horner() {
        let a = PowerSeries::new(vec![1.0, 1.0, 0.5]);
        assert!(approx_eq(a.eval(0.1), 1.0 + 0.1 + 0.005, 1e-12));
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    /// Deterministic pseudo-random series with `n` coefficients in `[-5, 5)`
    /// whose constant term is kept away from zero so `recip()` is defined —
    /// a dependency-free stand-in for property-based generation.
    fn pseudo_series(seed: u64, n: usize) -> PowerSeries {
        let mut unit = crate::splitmix_stream(seed);
        let mut next = move || unit() * 10.0 - 5.0;
        let mut v: Vec<f64> = (0..n).map(|_| next()).collect();
        // keep the constant term in ±[0.2, 5.0]
        let c0 = v[0];
        let magnitude = c0.abs().clamp(0.2, 5.0);
        v[0] = if c0 < 0.0 { -magnitude } else { magnitude };
        PowerSeries::new(v)
    }

    #[test]
    fn mul_is_commutative() {
        for seed in 0..32u64 {
            let a = pseudo_series(seed * 2 + 1, 6);
            let b = pseudo_series(seed * 2 + 2, 6);
            let ab = a.mul(&b);
            let ba = b.mul(&a);
            for k in 0..6 {
                assert!(
                    (ab.coeff(k) - ba.coeff(k)).abs() < 1e-9,
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn recip_is_involutive() {
        for seed in 0..32u64 {
            let a = pseudo_series(seed + 100, 6);
            let back = a.recip().recip();
            for k in 0..6 {
                assert!(
                    (back.coeff(k) - a.coeff(k)).abs() < 1e-6 * (1.0 + a.coeff(k).abs()),
                    "seed {seed} k {k}: {} vs {}",
                    back.coeff(k),
                    a.coeff(k)
                );
            }
        }
    }

    #[test]
    fn distributive_law() {
        for seed in 0..32u64 {
            let a = pseudo_series(seed * 3 + 1, 5);
            let b = pseudo_series(seed * 3 + 2, 5);
            let c = pseudo_series(seed * 3 + 3, 5);
            let lhs = a.mul(&b.add(&c));
            let rhs = a.mul(&b).add(&a.mul(&c));
            for k in 0..5 {
                assert!(
                    (lhs.coeff(k) - rhs.coeff(k)).abs() < 1e-8,
                    "seed {seed} k {k}"
                );
            }
        }
    }
}
