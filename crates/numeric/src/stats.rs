//! Simple descriptive statistics used by the experiment harness
//! (average/percentile error over the Figure 7 sweep, error-bucket counts),
//! plus the seedable deterministic PRNG and sampling helpers used by the
//! Monte-Carlo variation engine.

/// Deterministic seedable pseudo-random generator (splitmix64 core).
///
/// The generator is dependency-free, has a full 2^64 period over its state
/// increment, and produces an identical stream for an identical seed on every
/// platform — which is what makes Monte-Carlo sweep results reproducible and
/// lets tests pin bit-identical distribution reports.
///
/// ```
/// use rlc_numeric::stats::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.uniform();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
    /// Cached second output of the Box–Muller pair, if any.
    spare_normal: Option<u64>,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output of the splitmix64 sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of mantissa entropy.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range"
        );
        lo + self.uniform() * (hi - lo)
    }

    /// Standard-normal draw (mean 0, σ 1) via the Box–Muller transform.
    ///
    /// Pairs are generated two at a time; the spare is cached so consecutive
    /// calls consume the underlying stream deterministically.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return f64::from_bits(bits);
        }
        // Reject u1 == 0 so ln(u1) stays finite.
        let mut u1 = self.uniform();
        while u1 <= 0.0 {
            u1 = self.uniform();
        }
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some((r * theta.sin()).to_bits());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or non-finite.
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be finite and >= 0"
        );
        mean + sigma * self.standard_normal()
    }
}

/// Streaming accumulator for mean/σ/min/max plus retained samples for
/// quantiles — the reduction used to summarize each metric of a
/// Monte-Carlo sweep.
///
/// Accumulation order is the push order, so summaries built from the same
/// sample sequence are bit-identical run to run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    samples: Vec<f64>,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples accumulated so far.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Finishes the reduction. Returns `None` if no samples were pushed.
    pub fn summary(&self) -> Option<DistributionSummary> {
        DistributionSummary::from_samples(&self.samples)
    }
}

/// Mean/σ/quantile/extreme summary of one scalar metric over a sample
/// population (delay, slew, peak noise, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample (NaN-ignoring).
    pub min: f64,
    /// Maximum sample (NaN-ignoring).
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl DistributionSummary {
    /// Builds a summary from a sample population. Returns `None` for an
    /// empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        Some(Self {
            count: samples.len(),
            mean: mean(samples)?,
            std_dev: std_dev(samples)?,
            min: min(samples)?,
            max: max(samples)?,
            p50: percentile(samples, 50.0)?,
            p95: percentile(samples, 95.0)?,
            p99: percentile(samples, 99.0)?,
        })
    }
}

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Maximum of a slice (ignoring NaN). Returns `None` for an empty slice.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Minimum of a slice (ignoring NaN). Returns `None` for an empty slice.
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Linear-interpolated percentile (`p` in `[0, 100]`). Returns `None` for an
/// empty slice.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let t = rank - lo as f64;
        Some(sorted[lo] + t * (sorted[hi] - sorted[lo]))
    }
}

/// Fraction of values whose absolute value is below `threshold`.
/// Returns `None` for an empty slice.
pub fn fraction_below(values: &[f64], threshold: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let count = values.iter().filter(|v| v.abs() < threshold).count();
    Some(count as f64 / values.len() as f64)
}

/// Summary of an error population, as reported in the paper's Section 6
/// ("average error", "% of cases under 5 %", "% of cases under 10 %").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean of |error|.
    pub mean_abs: f64,
    /// Maximum |error|.
    pub max_abs: f64,
    /// Fraction of samples with |error| < 0.05.
    pub frac_below_5pct: f64,
    /// Fraction of samples with |error| < 0.10.
    pub frac_below_10pct: f64,
}

impl ErrorSummary {
    /// Builds a summary from signed fractional errors (0.06 == 6 %).
    /// Returns `None` for an empty slice.
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        Some(Self {
            count: errors.len(),
            mean_abs: mean(&abs)?,
            max_abs: max(&abs)?,
            frac_below_5pct: fraction_below(errors, 0.05)?,
            frac_below_10pct: fraction_below(errors, 0.10)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&v).unwrap(), 5.0, 1e-12));
        assert!(approx_eq(std_dev(&v).unwrap(), 2.0, 1e-12));
        assert!(mean(&[]).is_none());
        assert!(std_dev(&[]).is_none());
    }

    #[test]
    fn min_max_ignore_nan() {
        let v = [1.0, f64::NAN, -3.0, 2.0];
        assert_eq!(min(&v), Some(-3.0));
        assert_eq!(max(&v), Some(2.0));
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!(approx_eq(percentile(&v, 0.0).unwrap(), 1.0, 1e-12));
        assert!(approx_eq(percentile(&v, 100.0).unwrap(), 4.0, 1e-12));
        assert!(approx_eq(percentile(&v, 50.0).unwrap(), 2.5, 1e-12));
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }

    #[test]
    fn fraction_below_counts_absolute_values() {
        let v = [0.01, -0.04, 0.2, -0.07];
        assert!(approx_eq(fraction_below(&v, 0.05).unwrap(), 0.5, 1e-12));
        assert!(approx_eq(fraction_below(&v, 0.10).unwrap(), 0.75, 1e-12));
    }

    #[test]
    fn rng_is_deterministic_and_matches_splitmix_reference() {
        let mut rng = Rng::new(7);
        let mut reference = crate::splitmix_stream(7);
        for _ in 0..64 {
            assert_eq!(rng.uniform(), reference());
        }
        // Same seed twice → identical stream, including through normal draws.
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..32 {
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_covers_range() {
        let mut rng = Rng::new(99);
        for _ in 0..256 {
            let v = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
        assert_eq!(rng.clone().uniform_in(5.0, 5.0), 5.0);
    }

    #[test]
    fn normal_draws_have_expected_moments() {
        let mut rng = Rng::new(2024);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.normal(3.0, 0.5)).collect();
        let m = mean(&samples).unwrap();
        let s = std_dev(&samples).unwrap();
        assert!((m - 3.0).abs() < 0.02, "mean {m}");
        assert!((s - 0.5).abs() < 0.02, "std {s}");
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn normal_rejects_negative_sigma() {
        let _ = Rng::new(1).normal(0.0, -1.0);
    }

    #[test]
    fn accumulator_and_summary_reduce_population() {
        let mut acc = Accumulator::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            acc.push(v);
        }
        assert_eq!(acc.count(), 4);
        let s = acc.summary().unwrap();
        assert_eq!(s.count, 4);
        assert!(approx_eq(s.mean, 2.5, 1e-12));
        assert!(approx_eq(s.min, 1.0, 1e-12));
        assert!(approx_eq(s.max, 4.0, 1e-12));
        assert!(approx_eq(s.p50, 2.5, 1e-12));
        assert!(Accumulator::new().summary().is_none());
        assert!(DistributionSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn error_summary_matches_paper_style_reporting() {
        let errors = [0.03, -0.02, 0.06, 0.12, -0.04];
        let s = ErrorSummary::from_errors(&errors).unwrap();
        assert_eq!(s.count, 5);
        assert!(approx_eq(s.mean_abs, 0.054, 1e-12));
        assert!(approx_eq(s.max_abs, 0.12, 1e-12));
        assert!(approx_eq(s.frac_below_5pct, 0.6, 1e-12));
        assert!(approx_eq(s.frac_below_10pct, 0.8, 1e-12));
        assert!(ErrorSummary::from_errors(&[]).is_none());
    }
}
