//! Simple descriptive statistics used by the experiment harness
//! (average/percentile error over the Figure 7 sweep, error-bucket counts).

/// Arithmetic mean. Returns `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Maximum of a slice (ignoring NaN). Returns `None` for an empty slice.
pub fn max(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Minimum of a slice (ignoring NaN). Returns `None` for an empty slice.
pub fn min(values: &[f64]) -> Option<f64> {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

/// Linear-interpolated percentile (`p` in `[0, 100]`). Returns `None` for an
/// empty slice.
///
/// # Panics
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let t = rank - lo as f64;
        Some(sorted[lo] + t * (sorted[hi] - sorted[lo]))
    }
}

/// Fraction of values whose absolute value is below `threshold`.
/// Returns `None` for an empty slice.
pub fn fraction_below(values: &[f64], threshold: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let count = values.iter().filter(|v| v.abs() < threshold).count();
    Some(count as f64 / values.len() as f64)
}

/// Summary of an error population, as reported in the paper's Section 6
/// ("average error", "% of cases under 5 %", "% of cases under 10 %").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean of |error|.
    pub mean_abs: f64,
    /// Maximum |error|.
    pub max_abs: f64,
    /// Fraction of samples with |error| < 0.05.
    pub frac_below_5pct: f64,
    /// Fraction of samples with |error| < 0.10.
    pub frac_below_10pct: f64,
}

impl ErrorSummary {
    /// Builds a summary from signed fractional errors (0.06 == 6 %).
    /// Returns `None` for an empty slice.
    pub fn from_errors(errors: &[f64]) -> Option<Self> {
        if errors.is_empty() {
            return None;
        }
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        Some(Self {
            count: errors.len(),
            mean_abs: mean(&abs)?,
            max_abs: max(&abs)?,
            frac_below_5pct: fraction_below(errors, 0.05)?,
            frac_below_10pct: fraction_below(errors, 0.10)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&v).unwrap(), 5.0, 1e-12));
        assert!(approx_eq(std_dev(&v).unwrap(), 2.0, 1e-12));
        assert!(mean(&[]).is_none());
        assert!(std_dev(&[]).is_none());
    }

    #[test]
    fn min_max_ignore_nan() {
        let v = [1.0, f64::NAN, -3.0, 2.0];
        assert_eq!(min(&v), Some(-3.0));
        assert_eq!(max(&v), Some(2.0));
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!(approx_eq(percentile(&v, 0.0).unwrap(), 1.0, 1e-12));
        assert!(approx_eq(percentile(&v, 100.0).unwrap(), 4.0, 1e-12));
        assert!(approx_eq(percentile(&v, 50.0).unwrap(), 2.5, 1e-12));
        assert!(percentile(&[], 50.0).is_none());
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }

    #[test]
    fn fraction_below_counts_absolute_values() {
        let v = [0.01, -0.04, 0.2, -0.07];
        assert!(approx_eq(fraction_below(&v, 0.05).unwrap(), 0.5, 1e-12));
        assert!(approx_eq(fraction_below(&v, 0.10).unwrap(), 0.75, 1e-12));
    }

    #[test]
    fn error_summary_matches_paper_style_reporting() {
        let errors = [0.03, -0.02, 0.06, 0.12, -0.04];
        let s = ErrorSummary::from_errors(&errors).unwrap();
        assert_eq!(s.count, 5);
        assert!(approx_eq(s.mean_abs, 0.054, 1e-12));
        assert!(approx_eq(s.max_abs, 0.12, 1e-12));
        assert!(approx_eq(s.frac_below_5pct, 0.6, 1e-12));
        assert!(approx_eq(s.frac_below_10pct, 0.8, 1e-12));
        assert!(ErrorSummary::from_errors(&[]).is_none());
    }
}
